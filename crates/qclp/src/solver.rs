//! Projected-gradient QCLP solver.

use crate::{project_box, project_halfspace, project_l2_ball};

/// One instance of the fairness-aware re-weighting QCLP (Eq. 13).
#[derive(Debug, Clone)]
pub struct QclpProblem {
    /// Linear objective coefficients `a_v = I_fbias(w_v)`.
    pub bias_influence: Vec<f64>,
    /// Utility-constraint coefficients `b_v = I_futil(w_v)`.
    pub util_influence: Vec<f64>,
    /// Re-weighting budget multiplier α (`Σ w² ≤ α |V_l|`).
    pub alpha: f64,
    /// Utility-cost multiplier β (`Σ w_v b_v ≤ β Σ b_v⁺`).
    pub beta: f64,
}

/// Solver output.
#[derive(Debug, Clone)]
pub struct QclpSolution {
    /// The optimal weights `w` (one per labelled node, in `[-1, 1]`).
    pub weights: Vec<f64>,
    /// Objective value `Σ w_v a_v` at the solution.
    pub objective: f64,
    /// Number of projected-gradient iterations performed.
    pub iterations: usize,
}

/// Solver hyper-parameters.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Maximum projected-gradient iterations.
    pub max_iters: usize,
    /// Initial step size (scaled by the objective norm internally).
    pub step: f64,
    /// Convergence tolerance on the weight update norm.
    pub tol: f64,
    /// Inner cyclic-projection sweeps per iteration.
    pub projection_sweeps: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            max_iters: 2000,
            step: 0.05,
            tol: 1e-9,
            projection_sweeps: 8,
        }
    }
}

impl QclpProblem {
    /// Number of decision variables.
    pub fn len(&self) -> usize {
        self.bias_influence.len()
    }

    /// True when the problem has no variables.
    pub fn is_empty(&self) -> bool {
        self.bias_influence.is_empty()
    }

    /// Right-hand side of the utility constraint: `β Σ_v max(b_v, 0)`.
    pub fn util_budget(&self) -> f64 {
        self.beta
            * self
                .util_influence
                .iter()
                .filter(|&&b| b > 0.0)
                .sum::<f64>()
    }

    /// Squared radius of the re-weighting ball: `α |V_l|`.
    pub fn ball_radius_sq(&self) -> f64 {
        self.alpha * self.len() as f64
    }

    /// True when `w` satisfies every constraint within tolerance `tol`.
    pub fn is_feasible(&self, w: &[f64], tol: f64) -> bool {
        if w.len() != self.len() {
            return false;
        }
        let norm_sq: f64 = w.iter().map(|v| v * v).sum();
        if norm_sq > self.ball_radius_sq() + tol {
            return false;
        }
        let util: f64 = w
            .iter()
            .zip(&self.util_influence)
            .map(|(&x, &b)| x * b)
            .sum();
        if util > self.util_budget() + tol {
            return false;
        }
        w.iter().all(|&v| (-1.0 - tol..=1.0 + tol).contains(&v))
    }

    /// Objective value `Σ w_v a_v`.
    pub fn objective(&self, w: &[f64]) -> f64 {
        w.iter()
            .zip(&self.bias_influence)
            .map(|(&x, &a)| x * a)
            .sum()
    }

    fn project(&self, w: &mut [f64], sweeps: usize) {
        // Cyclic projections converge to a point of the intersection; keep
        // sweeping until the iterate is feasible (tight tolerance) so the
        // returned weights always satisfy every constraint of Eq. (13).
        let max_sweeps = sweeps.max(1) * 50;
        for sweep in 0.. {
            project_box(w, -1.0, 1.0);
            project_l2_ball(w, self.ball_radius_sq());
            project_halfspace(w, &self.util_influence, self.util_budget());
            if self.is_feasible(w, 1e-9) || sweep >= max_sweeps {
                break;
            }
        }
        // Guaranteed repair: the all-zero point is strictly feasible, so
        // shrinking towards it always restores feasibility if the cyclic
        // projections stopped short.
        while !self.is_feasible(w, 1e-9) {
            for v in w.iter_mut() {
                *v *= 0.97;
            }
        }
        // Hard clamp: feasibility above allows a 1e-9 slack, but downstream
        // loss weights require w strictly inside [-1, 1].  Clamping can only
        // shrink magnitudes, so the ball stays satisfied and any half-space
        // movement is bounded by the same 1e-9 slack.
        project_box(w, -1.0, 1.0);
    }
}

/// Solves the QCLP with projected gradient descent from the all-zero start
/// (the paper's "no re-weighting" point, which is always feasible).
pub fn solve(problem: &QclpProblem, options: &SolverOptions) -> QclpSolution {
    assert_eq!(
        problem.bias_influence.len(),
        problem.util_influence.len(),
        "bias and utility influence vectors must align"
    );
    assert!(
        problem.alpha >= 0.0 && problem.beta >= 0.0,
        "alpha and beta must be non-negative"
    );
    let n = problem.len();
    if n == 0 {
        return QclpSolution {
            weights: Vec::new(),
            objective: 0.0,
            iterations: 0,
        };
    }
    // Scale the step by the objective magnitude so convergence speed does not
    // depend on the (tiny) scale of influence values.
    let obj_norm = problem
        .bias_influence
        .iter()
        .map(|v| v * v)
        .sum::<f64>()
        .sqrt()
        .max(1e-12);
    let step = options.step * (n as f64).sqrt() / obj_norm;

    let mut w = vec![0.0; n];
    let mut iterations = 0;
    for it in 0..options.max_iters {
        iterations = it + 1;
        let mut next = w.clone();
        for (x, &a) in next.iter_mut().zip(&problem.bias_influence) {
            *x -= step * a;
        }
        problem.project(&mut next, options.projection_sweeps);
        let delta: f64 = next
            .iter()
            .zip(&w)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        w = next;
        if delta < options.tol {
            break;
        }
    }
    let objective = problem.objective(&w);
    QclpSolution {
        weights: w,
        objective,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_solve(problem: &QclpProblem) -> QclpSolution {
        solve(problem, &SolverOptions::default())
    }

    #[test]
    fn unconstrained_by_utility_reaches_the_box_and_ball_boundary() {
        // Objective pushes w_0 to -1 and w_1 to +1; the utility constraint is
        // inactive (b = 0), α = 1 so the ball allows the full box corner.
        let problem = QclpProblem {
            bias_influence: vec![1.0, -1.0],
            util_influence: vec![0.0, 0.0],
            alpha: 1.0,
            beta: 0.1,
        };
        let sol = default_solve(&problem);
        assert!(problem.is_feasible(&sol.weights, 1e-6));
        assert!(
            (sol.weights[0] + 1.0).abs() < 1e-3,
            "w0 should reach -1, got {}",
            sol.weights[0]
        );
        assert!(
            (sol.weights[1] - 1.0).abs() < 1e-3,
            "w1 should reach +1, got {}",
            sol.weights[1]
        );
        assert!((sol.objective + 2.0).abs() < 1e-2);
    }

    #[test]
    fn ball_constraint_limits_the_norm() {
        // α = 0.125 over 2 variables ⇒ ‖w‖² ≤ 0.25 ⇒ ‖w‖ ≤ 0.5.
        let problem = QclpProblem {
            bias_influence: vec![1.0, 1.0],
            util_influence: vec![0.0, 0.0],
            alpha: 0.125,
            beta: 0.1,
        };
        let sol = default_solve(&problem);
        let norm: f64 = sol.weights.iter().map(|v| v * v).sum::<f64>();
        assert!(norm <= 0.25 + 1e-6, "ball violated: ‖w‖² = {norm}");
        // Optimum of a symmetric linear objective on a ball is the scaled
        // negative gradient direction: w = (-0.3535.., -0.3535..).
        assert!((sol.weights[0] - sol.weights[1]).abs() < 1e-3);
        assert!((sol.weights[0] + (0.125_f64).sqrt()).abs() < 1e-2);
    }

    #[test]
    fn utility_constraint_is_respected() {
        // Objective wants w = (-1, -1); utility coefficients make that point
        // infeasible: b = (-1, -1), budget = β·0 = 0, so Σ w_v b_v ≤ 0 means
        // w_0 + w_1 ≥ 0.
        let problem = QclpProblem {
            bias_influence: vec![1.0, 1.0],
            util_influence: vec![-1.0, -1.0],
            alpha: 1.0,
            beta: 0.1,
        };
        let sol = default_solve(&problem);
        assert!(problem.is_feasible(&sol.weights, 1e-6));
        let util: f64 = sol
            .weights
            .iter()
            .zip(&problem.util_influence)
            .map(|(&w, &b)| w * b)
            .sum();
        assert!(util <= 1e-6, "utility constraint violated: {util}");
    }

    #[test]
    fn zero_objective_keeps_zero_weights() {
        let problem = QclpProblem {
            bias_influence: vec![0.0; 5],
            util_influence: vec![1.0; 5],
            alpha: 0.9,
            beta: 0.1,
        };
        let sol = default_solve(&problem);
        assert!(sol.weights.iter().all(|&w| w.abs() < 1e-9));
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn empty_problem_returns_empty_solution() {
        let problem = QclpProblem {
            bias_influence: vec![],
            util_influence: vec![],
            alpha: 0.9,
            beta: 0.1,
        };
        let sol = default_solve(&problem);
        assert!(sol.weights.is_empty());
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn solution_improves_over_the_zero_start() {
        // Random-ish mixed problem: objective at the solution must be no
        // larger than at the all-zero start (which is always feasible).
        let problem = QclpProblem {
            bias_influence: vec![0.3, -0.7, 0.2, 0.9, -0.1],
            util_influence: vec![0.5, 0.1, -0.4, 0.2, 0.3],
            alpha: 0.9,
            beta: 0.1,
        };
        let sol = default_solve(&problem);
        assert!(problem.is_feasible(&sol.weights, 1e-6));
        assert!(
            sol.objective <= 1e-9,
            "objective {} should not exceed the feasible start 0",
            sol.objective
        );
    }
}
