//! Euclidean projections onto the three constraint sets of the QCLP.

/// Projects `w` onto the box `[lo, hi]^n` in place.
pub fn project_box(w: &mut [f64], lo: f64, hi: f64) {
    for v in w.iter_mut() {
        *v = v.clamp(lo, hi);
    }
}

/// Projects `w` onto the ℓ₂ ball `{x : ‖x‖² ≤ radius_sq}` in place.
pub fn project_l2_ball(w: &mut [f64], radius_sq: f64) {
    assert!(radius_sq >= 0.0, "squared radius must be non-negative");
    let norm_sq: f64 = w.iter().map(|v| v * v).sum();
    if norm_sq > radius_sq && norm_sq > 0.0 {
        let scale = (radius_sq / norm_sq).sqrt();
        for v in w.iter_mut() {
            *v *= scale;
        }
    }
}

/// Projects `w` onto the half-space `{x : aᵀx ≤ c}` in place.
pub fn project_halfspace(w: &mut [f64], a: &[f64], c: f64) {
    assert_eq!(w.len(), a.len());
    let dot: f64 = w.iter().zip(a).map(|(&x, &y)| x * y).sum();
    if dot <= c {
        return;
    }
    let norm_sq: f64 = a.iter().map(|v| v * v).sum();
    if norm_sq <= f64::EPSILON {
        return;
    }
    let t = (dot - c) / norm_sq;
    for (x, &ai) in w.iter_mut().zip(a) {
        *x -= t * ai;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_projection_clamps() {
        let mut w = vec![-2.0, 0.3, 1.7];
        project_box(&mut w, -1.0, 1.0);
        assert_eq!(w, vec![-1.0, 0.3, 1.0]);
    }

    #[test]
    fn ball_projection_scales_only_when_outside() {
        let mut inside = vec![0.3, 0.4];
        project_l2_ball(&mut inside, 1.0);
        assert_eq!(inside, vec![0.3, 0.4]);
        let mut outside = vec![3.0, 4.0];
        project_l2_ball(&mut outside, 1.0);
        let norm: f64 = outside.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((outside[1] / outside[0] - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn halfspace_projection_moves_to_the_boundary() {
        let a = vec![1.0, 1.0];
        let mut w = vec![2.0, 2.0];
        project_halfspace(&mut w, &a, 1.0);
        let dot: f64 = w.iter().zip(&a).map(|(&x, &y)| x * y).sum();
        assert!(
            (dot - 1.0).abs() < 1e-12,
            "projected point must lie on the boundary"
        );
        // Feasible points are untouched.
        let mut feasible = vec![-1.0, 0.5];
        project_halfspace(&mut feasible, &a, 1.0);
        assert_eq!(feasible, vec![-1.0, 0.5]);
    }

    #[test]
    fn halfspace_with_zero_normal_is_a_noop() {
        let mut w = vec![5.0, -5.0];
        project_halfspace(&mut w, &[0.0, 0.0], -1.0);
        assert_eq!(w, vec![5.0, -5.0]);
    }
}
