//! Projected-gradient solver for the quadratically constrained linear program
//! (QCLP) of the fairness-aware re-weighting (Eq. 13 of the paper).
//!
//! The program is
//!
//! ```text
//! min_w   Σ_v w_v a_v                       (a_v = I_fbias(w_v))
//! s.t.    Σ_v w_v²            ≤ α |V_l|      (re-weighting budget)
//!         Σ_v w_v b_v         ≤ β Σ_v b_v⁺   (bounded utility cost, b_v = I_futil(w_v))
//!         −1 ≤ w_v ≤ 1
//! ```
//!
//! The paper solves it with Gurobi; Gurobi is proprietary and unavailable
//! offline, so this crate implements projected gradient descent with cyclic
//! projections onto the three convex constraint sets (box, ℓ₂ ball,
//! half-space).  The objective is linear and the feasible set is convex and
//! compact, so projected gradient descent converges to the global optimum;
//! the analytic tests below verify it against hand-solvable instances.

#![forbid(unsafe_code)]

mod projections;
mod solver;

pub use projections::{project_box, project_halfspace, project_l2_ball};
pub use solver::{solve, QclpProblem, QclpSolution, SolverOptions};
