//! Aggregation of per-seed runs into `mean ± std` summaries.
//!
//! Runs are canonicalised (sorted by dataset, model, method, seed) before
//! any statistic is computed, so the aggregate is bit-identical no matter in
//! which order the parallel executor finished the runs.  Statistics are
//! NaN-free by construction: a single seed reports `std = 0`, and min/max
//! are plain folds over finite metric values.

use ppfr_core::{Evaluation, MethodDeltas};
use serde::{Deserialize, Serialize};

/// `mean ± std` (plus the range) of one metric over the seed axis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n−1` denominator); `0` for a single run.
    pub std: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Number of runs aggregated.
    pub n: usize,
}

impl MetricStats {
    /// Aggregates a non-empty slice of metric values.
    ///
    /// # Panics
    /// Panics on an empty slice — an aggregated metric always has ≥ 1 run.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot aggregate zero runs");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            let ss = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>();
            (ss / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            mean,
            std,
            min,
            max,
            n,
        }
    }

    /// `mean ± std` rendering at the given precision.
    pub fn pm(&self, precision: usize) -> String {
        format!("{:.p$}±{:.p$}", self.mean, self.std, p = precision)
    }

    /// This statistic with every field scaled by `factor` (e.g. ×100 to
    /// render a fraction as a percentage).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            mean: self.mean * factor,
            std: self.std * factor,
            min: self.min * factor,
            max: self.max * factor,
            n: self.n,
        }
    }
}

/// One executed `(dataset, model, method, seed)` run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeedRun {
    /// Dataset name.
    pub dataset: String,
    /// Model architecture name.
    pub model: String,
    /// Method name.
    pub method: String,
    /// The run seed (dataset generation + pipeline RNG streams).
    pub seed: u64,
    /// Full evaluation of the trained model.
    pub evaluation: Evaluation,
    /// Δ metrics against the same-seed vanilla reference (all zero for the
    /// vanilla rows themselves).
    pub deltas: MethodDeltas,
}

impl SeedRun {
    /// The named metrics this run contributes to the aggregation: the five
    /// scalar evaluation metrics, the four Δ metrics of Eq. (22), and the
    /// per-distance / per-threat attack AUCs.
    pub fn metrics(&self) -> Vec<(String, f64)> {
        let e = &self.evaluation;
        let d = &self.deltas;
        let mut out = vec![
            ("acc".to_string(), e.accuracy),
            ("bias".to_string(), e.bias),
            ("risk_auc".to_string(), e.risk_auc),
            ("risk_gap".to_string(), e.risk_gap),
            ("worst_risk_auc".to_string(), e.worst_risk_auc),
            ("d_acc_pct".to_string(), d.d_acc * 100.0),
            ("d_bias_pct".to_string(), d.d_bias * 100.0),
            ("d_risk_pct".to_string(), d.d_risk * 100.0),
            ("delta".to_string(), d.delta),
        ];
        for (name, auc) in &e.auc_per_distance {
            out.push((format!("auc_dist:{name}"), *auc));
        }
        for (name, auc) in &e.auc_per_threat {
            out.push((format!("auc_threat:{name}"), *auc));
        }
        out
    }

    fn cell_key(&self) -> (&str, &str, &str) {
        (&self.dataset, &self.model, &self.method)
    }
}

/// One `(dataset, model, method, seed)` cell that failed permanently — every
/// retry attempt exhausted or its whole group panicked.  Failed cells are
/// quarantined out of `runs` (their seeds simply do not contribute to the
/// `mean ± std` statistics) and reported here instead of aborting the
/// scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailedCell {
    /// Dataset name.
    pub dataset: String,
    /// Model architecture name.
    pub model: String,
    /// Method name.
    pub method: String,
    /// The run seed.
    pub seed: u64,
    /// Human-readable error (panic message, injected fault, …).
    pub error: String,
    /// Attempts consumed before the cell was quarantined.
    pub attempts: u32,
}

/// One recorded graceful degradation: a `(dataset, model, method, seed)`
/// cell that completed, but on a downgraded estimator (e.g. exact CG →
/// shallow LiSSA) because its work budget ran out.  Degraded cells still
/// contribute to the statistics — this section is what flags that their
/// metrics deviate from the paper's exact protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradedCell {
    /// Dataset name.
    pub dataset: String,
    /// Model architecture name.
    pub model: String,
    /// Method name.
    pub method: String,
    /// The run seed.
    pub seed: u64,
    /// Where the downgrade happened (e.g. `influence`, `pair_sample`).
    pub site: String,
    /// The exact estimator that was abandoned.
    pub from: String,
    /// The degraded estimator that ran instead.
    pub to: String,
}

/// `mean ± std` of one metric of one `(dataset, model, method)` cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Dataset name.
    pub dataset: String,
    /// Model architecture name.
    pub model: String,
    /// Method name.
    pub method: String,
    /// Metric name (see [`SeedRun::metrics`]).
    pub metric: String,
    /// The aggregated statistic.
    pub stats: MetricStats,
}

/// The aggregated result of one scenario execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixReport {
    /// Scenario name.
    pub scenario: String,
    /// Seed axis, ascending.
    pub seeds: Vec<u64>,
    /// Every run, sorted by `(dataset, model, method, seed)`.
    pub runs: Vec<SeedRun>,
    /// Every `mean ± std` row, sorted by `(dataset, model, method, metric)`.
    pub summaries: Vec<RunSummary>,
    /// Cells quarantined after exhausting their retry attempts, sorted by
    /// `(dataset, model, method, seed)`; empty on a clean run.
    pub failed_cells: Vec<FailedCell>,
    /// Cells that completed on a degraded estimator, sorted by
    /// `(dataset, model, method, seed, site)`; empty on an unbounded run.
    pub degraded: Vec<DegradedCell>,
}

/// Canonicalises and aggregates the executor's runs into a report.
pub fn aggregate(scenario: &str, seeds: &[u64], mut runs: Vec<SeedRun>) -> MatrixReport {
    runs.sort_by(|a, b| (a.cell_key(), a.seed).cmp(&(b.cell_key(), b.seed)));
    let mut summaries = Vec::new();
    let mut start = 0;
    while start < runs.len() {
        let end = runs[start..]
            .iter()
            .position(|r| r.cell_key() != runs[start].cell_key())
            .map_or(runs.len(), |p| start + p);
        let cell = &runs[start..end];
        // Metric names are identical across a cell's seeds; take them from
        // the first run and gather each metric's values in seed order.
        let names: Vec<String> = cell[0].metrics().into_iter().map(|(n, _)| n).collect();
        let per_run: Vec<Vec<(String, f64)>> = cell.iter().map(SeedRun::metrics).collect();
        for (i, name) in names.iter().enumerate() {
            let values: Vec<f64> = per_run
                .iter()
                .map(|metrics| {
                    debug_assert_eq!(&metrics[i].0, name, "metric sets differ within a cell");
                    metrics[i].1
                })
                .collect();
            summaries.push(RunSummary {
                dataset: cell[0].dataset.clone(),
                model: cell[0].model.clone(),
                method: cell[0].method.clone(),
                metric: name.clone(),
                stats: MetricStats::from_values(&values),
            });
        }
        start = end;
    }
    summaries.sort_by(|a, b| {
        (&a.dataset, &a.model, &a.method, &a.metric)
            .cmp(&(&b.dataset, &b.model, &b.method, &b.metric))
    });
    let mut sorted_seeds = seeds.to_vec();
    sorted_seeds.sort_unstable();
    MatrixReport {
        scenario: scenario.to_string(),
        seeds: sorted_seeds,
        runs,
        summaries,
        failed_cells: Vec::new(),
        degraded: Vec::new(),
    }
}

/// Canonicalises the resilience sections in place (the executor collects
/// them in group-completion order, which is thread-count dependent).
pub fn sort_resilience_sections(failed: &mut [FailedCell], degraded: &mut [DegradedCell]) {
    failed.sort_by(|a, b| {
        (&a.dataset, &a.model, &a.method, a.seed).cmp(&(&b.dataset, &b.model, &b.method, b.seed))
    });
    degraded.sort_by(|a, b| {
        (&a.dataset, &a.model, &a.method, a.seed, &a.site)
            .cmp(&(&b.dataset, &b.model, &b.method, b.seed, &b.site))
    });
}

impl MatrixReport {
    /// Stable JSON rendering: rows are pre-sorted, struct field order is
    /// fixed, so two bit-identical executions print identical text.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Looks up one aggregated metric.
    pub fn summary(
        &self,
        dataset: &str,
        model: &str,
        method: &str,
        metric: &str,
    ) -> Option<&RunSummary> {
        self.summaries.iter().find(|s| {
            s.dataset == dataset && s.model == model && s.method == method && s.metric == metric
        })
    }

    /// The distinct dataset names, in summary (i.e. sorted) order.
    pub fn datasets(&self) -> Vec<String> {
        let mut names: Vec<String> = self.cells().into_iter().map(|c| c.0).collect();
        names.dedup();
        names
    }

    /// The distinct `(dataset, model, method)` cells, in summary order.
    pub fn cells(&self) -> Vec<(String, String, String)> {
        let mut cells: Vec<(String, String, String)> = Vec::new();
        for s in &self.summaries {
            let key = (s.dataset.clone(), s.model.clone(), s.method.clone());
            if cells.last() != Some(&key) {
                cells.push(key);
            }
        }
        cells
    }

    /// Plain-text rendering of the Table III–V metric set, one line per
    /// `(dataset, model, method)` cell, every number as `mean±std`.
    pub fn to_table_string(&self) -> String {
        let mut out = format!(
            "scenario '{}' over seeds {:?} ({} runs)\n",
            self.scenario,
            self.seeds,
            self.runs.len()
        );
        out.push_str(
            "dataset        model      method   acc%            bias            meanAUC         worstAUC        Δacc%           Δbias%          Δrisk%          Δ\n",
        );
        for (dataset, model, method) in self.cells() {
            let get = |metric: &str| {
                self.summary(&dataset, &model, &method, metric)
                    .map(|s| s.stats.clone())
                    .expect("core metrics exist for every cell")
            };
            let acc_pct = get("acc").scaled(100.0);
            out.push_str(&format!(
                "{:<14} {:<10} {:<8} {:<15} {:<15} {:<15} {:<15} {:<15} {:<15} {:<15} {}\n",
                dataset,
                model,
                method,
                acc_pct.pm(2),
                get("bias").pm(4),
                get("risk_auc").pm(4),
                get("worst_risk_auc").pm(4),
                get("d_acc_pct").pm(2),
                get("d_bias_pct").pm(2),
                get("d_risk_pct").pm(2),
                get("delta").pm(3),
            ));
        }
        for f in &self.failed_cells {
            out.push_str(&format!(
                "FAILED   {} {} {} seed {}: {} (after {} attempts)\n",
                f.dataset, f.model, f.method, f.seed, f.error, f.attempts
            ));
        }
        for d in &self.degraded {
            out.push_str(&format!(
                "DEGRADED {} {} {} seed {}: {} {} -> {}\n",
                d.dataset, d.model, d.method, d.seed, d.site, d.from, d.to
            ));
        }
        out
    }

    /// [`Self::to_table_string`] plus a trailing artifact-cache summary line.
    /// The cache tallies ride along in the human-readable rendering only —
    /// the serialised report must stay bit-identical between cold and
    /// cache-warm runs, so they never enter [`Self::to_json`].
    pub fn to_table_string_with_cache(&self, cache: &crate::cache::CacheStats) -> String {
        let mut out = self.to_table_string();
        out.push_str(&cache.summary_line());
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn fake_run(dataset: &str, method: &str, seed: u64, acc: f64) -> SeedRun {
        SeedRun {
            dataset: dataset.to_string(),
            model: "GCN".to_string(),
            method: method.to_string(),
            seed,
            evaluation: Evaluation {
                accuracy: acc,
                bias: 0.1,
                risk_auc: 0.9,
                risk_gap: 0.2,
                auc_per_distance: vec![("cosine".to_string(), 0.8)],
                worst_risk_auc: 0.92,
                auc_per_threat: vec![("posteriors".to_string(), 0.91)],
            },
            deltas: MethodDeltas {
                d_acc: -0.01,
                d_bias: -0.3,
                d_risk: 0.02,
                delta: -0.6,
            },
        }
    }

    #[test]
    fn stats_match_hand_computation() {
        let s = MetricStats::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert_eq!((s.min, s.max, s.n), (1.0, 3.0, 3));
        assert_eq!(s.pm(2), "2.00±1.00");
    }

    #[test]
    fn single_run_and_constant_metrics_are_nan_free() {
        let single = MetricStats::from_values(&[0.5]);
        assert_eq!((single.mean, single.std, single.n), (0.5, 0.0, 1));
        let constant = MetricStats::from_values(&[0.7; 5]);
        assert_eq!(constant.std, 0.0);
        assert!(constant.mean.is_finite());
    }

    #[test]
    fn aggregation_is_invariant_to_run_order() {
        let runs = vec![
            fake_run("b", "Reg", 2, 0.8),
            fake_run("a", "Reg", 1, 0.7),
            fake_run("a", "Reg", 2, 0.9),
            fake_run("b", "Reg", 1, 0.6),
        ];
        let mut reversed = runs.clone();
        reversed.reverse();
        let fwd = aggregate("t", &[1, 2], runs);
        let rev = aggregate("t", &[2, 1], reversed);
        assert_eq!(fwd.to_json(), rev.to_json());
        let acc = fwd.summary("a", "GCN", "Reg", "acc").expect("summary");
        assert!((acc.stats.mean - 0.8).abs() < 1e-12);
        assert_eq!(acc.stats.n, 2);
    }

    #[test]
    fn report_covers_every_table_metric_and_distance() {
        let report = aggregate("t", &[1], vec![fake_run("a", "PPFR", 1, 0.75)]);
        for metric in [
            "acc",
            "bias",
            "risk_auc",
            "risk_gap",
            "worst_risk_auc",
            "d_acc_pct",
            "d_bias_pct",
            "d_risk_pct",
            "delta",
            "auc_dist:cosine",
            "auc_threat:posteriors",
        ] {
            assert!(
                report.summary("a", "GCN", "PPFR", metric).is_some(),
                "missing metric {metric}"
            );
        }
        let text = report.to_table_string();
        assert!(text.contains("PPFR"));
        assert!(text.contains('±'));
    }
}
