//! Large-graph scaling scenario: the full PPFR measurement loop at node
//! counts where every dense `n × n` object is unaffordable.
//!
//! The paper's experiments stop at citation-graph scale (§VII-A); this
//! module drives the streamed/stochastic code paths at up to 10⁶ nodes:
//!
//! 1. graph generation through the `O(n · d̄)` sparse SBM sampler
//!    ([`ppfr_datasets::sparse_sbm`]) — never the exact `O(n²)` pair sweep;
//! 2. block-derived posteriors (an `n × c` matrix, the only per-node dense
//!    state the scenario holds);
//! 3. individual-fairness bias through [`ppfr_fairness::streamed_bias`],
//!    which accumulates `Tr(PᵀL_S P)` over CSR row blocks without ever
//!    materialising the similarity Laplacian;
//! 4. edge-inference attack AUC over a size-capped pair sample
//!    ([`ppfr_privacy::PairSample::capped`]) so the distance table stays
//!    `O(max_attack_pos)`;
//! 5. neighbour-sampled GCN training ([`ppfr_gnn::train_sampled`]) on a
//!    companion training graph with `O(n · fanout)` per-epoch operators.
//!
//! Every stage is deterministic in [`ScaleSpec::seed`] and telemetry-spanned,
//! so `ppfr_bench`'s `exp_bench_json` can report per-stage wall-clock without
//! the scenario itself ever reading a clock.

use ppfr_datasets::{sparse_sbm, sparse_sbm_dataset};
use ppfr_fairness::streamed_bias;
use ppfr_gnn::{train_sampled, AnyModel, ModelKind, SampledContext, TrainConfig, TrainWorkspace};
use ppfr_linalg::Matrix;
use ppfr_privacy::{average_attack_auc, PairSample};
use ppfr_resilience::RunError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Shape of one large-graph scaling scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleSpec {
    /// Nodes of the measurement graph (bias + attack stages).
    pub n_nodes: usize,
    /// SBM blocks (doubles as the posterior class count).
    pub n_blocks: usize,
    /// Expected same-block degree per node.
    pub intra_degree: f64,
    /// Expected cross-block degree per node.
    pub inter_degree: f64,
    /// Feature dimensionality of the training graph.
    pub feat_dim: usize,
    /// Nodes of the companion training graph (sampled-training stage).
    pub train_nodes: usize,
    /// Per-node neighbour fan-out of sampled training.
    pub fanout: usize,
    /// Sampled-training epochs.
    pub epochs: usize,
    /// CSR row-block height of the streamed bias accumulation.
    pub bias_block_rows: usize,
    /// Positive-pair cap of the attack sample.
    pub max_attack_pos: usize,
    /// Master seed; every stage derives its own stream from it.
    pub seed: u64,
}

impl ScaleSpec {
    /// The million-node scenario pinned by the `#[ignore]`d release smoke
    /// test and reported in `BENCH_kernels.json`'s `scaling` section.
    pub fn million() -> Self {
        Self {
            n_nodes: 1_000_000,
            n_blocks: 4,
            intra_degree: 6.0,
            inter_degree: 1.5,
            feat_dim: 32,
            train_nodes: 100_000,
            fanout: 5,
            epochs: 8,
            bias_block_rows: 4096,
            max_attack_pos: 20_000,
            seed: 42,
        }
    }

    /// A debug-buildable reduction (same structure, ~50× smaller) for CI and
    /// the benchmark smoke scale.
    pub fn smoke() -> Self {
        Self {
            n_nodes: 20_000,
            train_nodes: 2_000,
            epochs: 4,
            bias_block_rows: 512,
            max_attack_pos: 2_000,
            ..Self::million()
        }
    }
}

/// Metrics of one [`run_scale_scenario`] execution.  Deterministic in the
/// spec: same spec ⇒ bit-identical report, at any thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleReport {
    /// Nodes of the measurement graph.
    pub n_nodes: usize,
    /// Realised undirected edge count of the measurement graph.
    pub n_edges: usize,
    /// Streamed InFoRM bias `Tr(PᵀL_S P) / n` of the block posteriors.
    pub bias: f64,
    /// Distance-averaged edge-inference AUC over the capped pair sample.
    pub attack_auc: f64,
    /// `(positives, negatives)` of the capped attack sample.
    pub attack_pairs: (usize, usize),
    /// Nodes of the companion training graph.
    pub train_nodes: usize,
    /// Final full-graph training accuracy of the neighbour-sampled GCN.
    pub sampled_train_accuracy: f64,
}

/// Deterministic per-node posterior concentration in `[0.70, 0.95)`: a cheap
/// multiplicative-hash wiggle so rows are distinguishable (ties would blur
/// the attack's distance ranking) without any RNG state.
fn posterior_concentration(v: usize) -> f64 {
    let h = (v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
    0.70 + 0.25 * (h as f64 / (1u64 << 24) as f64)
}

/// Block-derived posteriors: row `v` concentrates on `blocks[v]` and spreads
/// the remainder uniformly.  The `n × c` matrix is the only per-node dense
/// state of the scenario.
fn block_posteriors(blocks: &[usize], n_classes: usize) -> Matrix {
    let n = blocks.len();
    let mut probs = Matrix::zeros(n, n_classes);
    for (v, &b) in blocks.iter().enumerate() {
        let p = posterior_concentration(v);
        let rest = (1.0 - p) / (n_classes - 1).max(1) as f64;
        for c in 0..n_classes {
            probs[(v, c)] = if c == b { p } else { rest };
        }
    }
    probs
}

/// Runs the full scaling scenario for `spec`; see the module docs for the
/// stage list.  Never materialises any `n × n` object — peak memory is
/// `O(|E| + n · n_blocks)`.
///
/// Malformed specs come back as [`RunError::InvalidSpec`] instead of
/// panicking, so callers embedding the scenario in larger sweeps can report
/// the bad configuration and move on.
pub fn run_scale_scenario(spec: &ScaleSpec) -> Result<ScaleReport, RunError> {
    let _span = ppfr_telemetry::span!("scale_scenario");
    if spec.n_nodes < 2 || spec.train_nodes < 2 {
        return Err(RunError::InvalidSpec(format!(
            "graphs too small: n_nodes={}, train_nodes={} (both need >= 2)",
            spec.n_nodes, spec.train_nodes
        )));
    }
    if spec.n_blocks < 2 {
        return Err(RunError::InvalidSpec(format!(
            "need at least two blocks for an attack, got {}",
            spec.n_blocks
        )));
    }

    let (graph, blocks) = {
        let _s = ppfr_telemetry::span!("scale_graph_gen");
        sparse_sbm(
            spec.n_nodes,
            spec.n_blocks,
            spec.intra_degree,
            spec.inter_degree,
            spec.seed,
        )
    };

    let probs = {
        let _s = ppfr_telemetry::span!("scale_posteriors");
        block_posteriors(&blocks, spec.n_blocks)
    };

    let bias = {
        let _s = ppfr_telemetry::span!("scale_streamed_bias");
        streamed_bias(&graph, &probs, spec.bias_block_rows)
    };

    let (attack_auc, attack_pairs) = {
        let _s = ppfr_telemetry::span!("scale_attack");
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xb492_b66f);
        let sample = PairSample::capped(&graph, spec.max_attack_pos, &mut rng);
        (average_attack_auc(&probs, &sample), sample.counts())
    };

    let sampled_train_accuracy = {
        let _s = ppfr_telemetry::span!("scale_sampled_training");
        let ds = sparse_sbm_dataset(
            spec.train_nodes,
            spec.n_blocks,
            spec.intra_degree,
            spec.inter_degree,
            spec.feat_dim,
            spec.seed ^ 0x517c_c1b7_2722_0a95,
        );
        let mut sctx = SampledContext::new(ds.graph.clone(), ds.features.clone(), spec.fanout);
        let mut model = AnyModel::new(ModelKind::Gcn, spec.feat_dim, 16, spec.n_blocks, spec.seed);
        let weights = vec![1.0; ds.splits.train.len()];
        let cfg = TrainConfig {
            epochs: spec.epochs,
            lr: 0.05,
            weight_decay: 5e-4,
            seed: spec.seed.wrapping_add(13),
        };
        let mut ws = TrainWorkspace::new();
        let report = train_sampled(
            &mut model,
            &mut sctx,
            &ds.labels,
            &ds.splits.train,
            &weights,
            None,
            &cfg,
            &mut ws,
        );
        report.train_accuracy
    };

    Ok(ScaleReport {
        n_nodes: graph.n_nodes(),
        n_edges: graph.n_edges(),
        bias,
        attack_auc,
        attack_pairs,
        train_nodes: spec.train_nodes,
        sampled_train_accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sub-second reduction of the scenario for unit tests.
    fn tiny() -> ScaleSpec {
        ScaleSpec {
            n_nodes: 1_500,
            train_nodes: 300,
            epochs: 3,
            bias_block_rows: 64,
            max_attack_pos: 200,
            ..ScaleSpec::million()
        }
    }

    #[test]
    fn scale_scenario_produces_sane_metrics() {
        let report = run_scale_scenario(&tiny()).expect("tiny spec is valid");
        assert_eq!(report.n_nodes, 1_500);
        assert!(report.n_edges > 0);
        assert!(report.bias.is_finite() && report.bias >= 0.0);
        assert!((0.0..=1.0).contains(&report.attack_auc));
        assert!(
            report.attack_auc > 0.5,
            "block posteriors leak edges, AUC should beat chance: {}",
            report.attack_auc
        );
        let (pos, neg) = report.attack_pairs;
        assert_eq!(pos, 200, "the positive cap must bind");
        assert_eq!(neg, pos, "capped sample stays balanced");
        assert!((0.0..=1.0).contains(&report.sampled_train_accuracy));
    }

    #[test]
    fn scale_scenario_is_deterministic_and_thread_count_invariant() {
        let spec = tiny();
        let baseline = ppfr_linalg::parallel::with_forced_threads(1, || run_scale_scenario(&spec))
            .expect("tiny spec is valid");
        assert_eq!(
            baseline,
            run_scale_scenario(&spec).expect("tiny spec is valid"),
            "scale scenario must be deterministic run-to-run"
        );
        let par = ppfr_linalg::parallel::with_forced_threads(4, || run_scale_scenario(&spec))
            .expect("tiny spec is valid");
        assert_eq!(par, baseline, "scale scenario differs at 4 threads");
    }

    #[test]
    fn degenerate_scale_specs_are_errors_not_panics() {
        let too_small = ScaleSpec {
            n_nodes: 1,
            ..tiny()
        };
        let err = run_scale_scenario(&too_small).expect_err("one-node graph must be rejected");
        assert!(matches!(err, RunError::InvalidSpec(_)), "got {err:?}");
        let one_block = ScaleSpec {
            n_blocks: 1,
            ..tiny()
        };
        let err = run_scale_scenario(&one_block).expect_err("one block must be rejected");
        assert!(err.to_string().contains("two blocks"), "got {err}");
    }

    #[test]
    fn posteriors_concentrate_on_the_block_label() {
        let blocks = vec![0, 1, 2, 0, 1];
        let probs = block_posteriors(&blocks, 3);
        for (v, &b) in blocks.iter().enumerate() {
            let row = probs.row(v);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            for (c, &p) in row.iter().enumerate() {
                if c == b {
                    assert!(p >= 0.70);
                } else {
                    assert!(p < 0.5);
                }
            }
        }
    }

    #[test]
    fn million_and_smoke_specs_share_structure() {
        let full = ScaleSpec::million();
        let smoke = ScaleSpec::smoke();
        assert_eq!(full.n_nodes, 1_000_000);
        assert!(smoke.n_nodes < full.n_nodes / 10);
        assert_eq!(full.n_blocks, smoke.n_blocks);
        assert_eq!(full.fanout, smoke.fanout);
    }
}
