//! Multi-seed views of the paper's tables and figures.
//!
//! The `exp_*` binaries render these instead of single-seed point
//! estimates: every reported number is the `mean ± std` over the scenario's
//! seed axis.  Tables III–V and Figs. 4/5/7 are straight views over a
//! [`MatrixReport`]; Fig. 6 aggregates whole ablation curves pointwise over
//! seeds.

use crate::aggregate::{MatrixReport, MetricStats};
use ppfr_core::experiments::{fig6_ablation_seeded, Fig6Result};
use ppfr_core::ExperimentScale;
use ppfr_linalg::parallel::par_rows;

/// Table III view: accuracy and bias of Vanilla vs Reg per dataset, each as
/// `mean ± std` over the seed axis.
pub fn table3_view(report: &MatrixReport) -> String {
    let mut out = format!(
        "Table III (multi-seed, seeds {:?}): accuracy and bias of GCN (Vanilla vs Reg)\n",
        report.seeds
    );
    out.push_str("dataset        method   acc(%)          bias\n");
    for dataset in report.datasets() {
        for method in ["Vanilla", "Reg"] {
            let (Some(acc), Some(bias)) = (
                report.summary(&dataset, "GCN", method, "acc"),
                report.summary(&dataset, "GCN", method, "bias"),
            ) else {
                continue;
            };
            out.push_str(&format!(
                "{:<14} {:<8} {:<15} {}\n",
                dataset,
                method,
                acc.stats.scaled(100.0).pm(2),
                bias.stats.pm(4)
            ));
        }
    }
    out
}

/// Fig. 4 view: per-distance link-stealing AUC of Vanilla vs Reg, each as
/// `mean ± std`, plus the mean change — the multi-seed version of the
/// paper's RQ1 bar chart.
pub fn fig4_view(report: &MatrixReport) -> String {
    let mut out = format!(
        "Fig. 4 (multi-seed, seeds {:?}): link-stealing AUC per distance (Vanilla vs Reg, GCN)\n",
        report.seeds
    );
    out.push_str("dataset        distance         AUC(vanilla)    AUC(Reg)        meanΔ\n");
    let mut increases = 0usize;
    let mut total = 0usize;
    for dataset in report.datasets() {
        let distances: Vec<String> = report
            .summaries
            .iter()
            .filter(|s| {
                s.dataset == dataset
                    && s.model == "GCN"
                    && s.method == "Vanilla"
                    && s.metric.starts_with("auc_dist:")
            })
            .map(|s| s.metric.clone())
            .collect();
        for metric in distances {
            let (Some(vanilla), Some(reg)) = (
                report.summary(&dataset, "GCN", "Vanilla", &metric),
                report.summary(&dataset, "GCN", "Reg", &metric),
            ) else {
                continue;
            };
            let change = reg.stats.mean - vanilla.stats.mean;
            total += 1;
            if change >= 0.0 {
                increases += 1;
            }
            out.push_str(&format!(
                "{:<14} {:<16} {:<15} {:<15} {:+.4}\n",
                dataset,
                metric.trim_start_matches("auc_dist:"),
                vanilla.stats.pm(4),
                reg.stats.pm(4),
                change
            ));
        }
    }
    out.push_str(&format!(
        "mean risk increased in {increases}/{total} dataset-distance pairs\n"
    ));
    out
}

/// Fig. 5 / Fig. 7 view: accuracy cost of the non-vanilla methods for the
/// given architectures, each bar as `mean ± std`.
pub fn accuracy_view(report: &MatrixReport, models: &[&str], label: &str) -> String {
    let mut out = format!(
        "{label} (multi-seed, seeds {:?}): accuracy cost of the methods\n",
        report.seeds
    );
    out.push_str("dataset        model      method   ΔAcc%           Acc%\n");
    for (dataset, model, method) in report.cells() {
        if method == "Vanilla" || !models.contains(&model.as_str()) {
            continue;
        }
        let (Some(d_acc), Some(acc)) = (
            report.summary(&dataset, &model, &method, "d_acc_pct"),
            report.summary(&dataset, &model, &method, "acc"),
        ) else {
            continue;
        };
        out.push_str(&format!(
            "{:<14} {:<10} {:<8} {:<15} {}\n",
            dataset,
            model,
            method,
            d_acc.stats.pm(2),
            acc.stats.scaled(100.0).pm(2)
        ));
    }
    out
}

/// One aggregated point of a Fig. 6 ablation curve.
#[derive(Debug, Clone)]
pub struct CurvePointStats {
    /// The swept parameter value.
    pub x: f64,
    /// Test accuracy over seeds.
    pub accuracy: MetricStats,
    /// InFoRM bias over seeds.
    pub bias: MetricStats,
    /// Mean attack AUC over seeds.
    pub risk_auc: MetricStats,
    /// Worst-case threat-model AUC over seeds.
    pub worst_risk_auc: MetricStats,
}

/// One aggregated Fig. 6 panel.
#[derive(Debug, Clone)]
pub struct CurveStats {
    /// Panel title.
    pub title: String,
    /// Swept-parameter name.
    pub x_label: String,
    /// Aggregated points.
    pub points: Vec<CurvePointStats>,
}

/// Fig. 6 aggregated over the seed axis.
#[derive(Debug, Clone)]
pub struct Fig6MultiResult {
    /// The seeds aggregated over.
    pub seeds: Vec<u64>,
    /// Vanilla reference levels.
    pub vanilla: CurvePointStats,
    /// The three panels.
    pub panels: Vec<CurveStats>,
}

fn aggregate_points(
    x: f64,
    per_seed: &[&ppfr_core::experiments::AblationPoint],
) -> CurvePointStats {
    let col = |f: fn(&ppfr_core::experiments::AblationPoint) -> f64| {
        MetricStats::from_values(&per_seed.iter().map(|p| f(p)).collect::<Vec<f64>>())
    };
    CurvePointStats {
        x,
        accuracy: col(|p| p.accuracy),
        bias: col(|p| p.bias),
        risk_auc: col(|p| p.risk_auc),
        worst_risk_auc: col(|p| p.worst_risk_auc),
    }
}

fn aggregate_curves(per_seed: Vec<&ppfr_core::experiments::AblationCurve>) -> CurveStats {
    let first = per_seed[0];
    let points = (0..first.points.len())
        .map(|i| {
            let column: Vec<_> = per_seed.iter().map(|c| &c.points[i]).collect();
            aggregate_points(first.points[i].x, &column)
        })
        .collect();
    CurveStats {
        title: first.title.clone(),
        x_label: first.x_label.clone(),
        points,
    }
}

/// Runs the Fig. 6 ablation once per seed (seeds in parallel) and aggregates
/// each curve pointwise.
// lint: allow(twin-kernel) — per-seed rows are fully independent and
// par_rows collects them in index order; end-to-end determinism of the
// ablation is pinned by the runner golden-metric suite
pub fn fig6_multi(scale: ExperimentScale, seeds: &[u64]) -> Fig6MultiResult {
    assert!(!seeds.is_empty(), "fig6_multi needs at least one seed");
    let results: Vec<Fig6Result> = par_rows(seeds.len(), |i| fig6_ablation_seeded(scale, seeds[i]));
    let vanilla: Vec<_> = results.iter().map(|r| &r.vanilla).collect();
    let panels = [
        results.iter().map(|r| &r.fr_only).collect::<Vec<_>>(),
        results.iter().map(|r| &r.pp_sweep).collect(),
        results.iter().map(|r| &r.pp_fixed_fr_sweep).collect(),
    ]
    .into_iter()
    .map(aggregate_curves)
    .collect();
    Fig6MultiResult {
        seeds: seeds.to_vec(),
        vanilla: aggregate_points(0.0, &vanilla),
        panels,
    }
}

impl Fig6MultiResult {
    /// Plain-text rendering of the aggregated panels.
    pub fn to_table_string(&self) -> String {
        let mut out = format!(
            "Fig. 6 (multi-seed, seeds {:?}): PPFR ablation, mean±std per point\n",
            self.seeds
        );
        out.push_str(&format!(
            "vanilla reference: acc {}  bias {}  risk {}  worst {}\n",
            self.vanilla.accuracy.pm(4),
            self.vanilla.bias.pm(4),
            self.vanilla.risk_auc.pm(4),
            self.vanilla.worst_risk_auc.pm(4)
        ));
        for panel in &self.panels {
            out.push_str(&format!("\n[{}] (x = {})\n", panel.title, panel.x_label));
            out.push_str("x        acc             bias            risk            worst\n");
            for p in &panel.points {
                out.push_str(&format!(
                    "{:<8.2} {:<15} {:<15} {:<15} {}\n",
                    p.x,
                    p.accuracy.pm(4),
                    p.bias.pm(4),
                    p.risk_auc.pm(4),
                    p.worst_risk_auc.pm(4)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{aggregate, SeedRun};
    use ppfr_core::{Evaluation, MethodDeltas};

    fn fake_run(method: &str, seed: u64, acc: f64) -> SeedRun {
        SeedRun {
            dataset: "two-block".to_string(),
            model: "GCN".to_string(),
            method: method.to_string(),
            seed,
            evaluation: Evaluation {
                accuracy: acc,
                bias: 0.1,
                risk_auc: 0.9,
                risk_gap: 0.2,
                auc_per_distance: vec![
                    ("cosine".to_string(), 0.8),
                    ("euclidean".to_string(), 0.85),
                ],
                worst_risk_auc: 0.92,
                auc_per_threat: vec![],
            },
            deltas: MethodDeltas {
                d_acc: -0.02,
                d_bias: -0.3,
                d_risk: 0.05,
                delta: -0.75,
            },
        }
    }

    fn fake_report() -> MatrixReport {
        aggregate(
            "fake",
            &[1, 2],
            vec![
                fake_run("Vanilla", 1, 0.8),
                fake_run("Vanilla", 2, 0.9),
                fake_run("Reg", 1, 0.7),
                fake_run("Reg", 2, 0.8),
            ],
        )
    }

    #[test]
    fn views_render_means_and_methods() {
        let report = fake_report();
        let t3 = table3_view(&report);
        assert!(t3.contains("Vanilla") && t3.contains("Reg") && t3.contains('±'));
        let f4 = fig4_view(&report);
        assert!(f4.contains("cosine") && f4.contains("euclidean"));
        assert!(f4.contains("2/2") || f4.contains("0/2") || f4.contains("1/2"));
        let f5 = accuracy_view(&report, &["GCN"], "Fig. 5");
        assert!(f5.contains("Reg") && !f5.contains("Vanilla "));
        let empty = accuracy_view(&report, &["GraphSage"], "Fig. 7");
        assert!(!empty.contains("Reg"));
    }
}
