//! Keyed artifact cache: one [`DatasetArtifacts`] bundle per
//! `(dataset spec, run seed, config, threat subset)`.
//!
//! The expensive per-group setup — dataset generation, the threat auditor's
//! pair sample + shadow bundle, and the trained vanilla checkpoints — is
//! paid once per key; a warm re-run of the same scenario (or a different
//! scenario sharing cells) skips straight to the method-specific training.
//! Every artifact is deterministic in its key, so cache hits are
//! bit-identical to cold builds (pinned by the runner's property tests).

use ppfr_core::experiments::DatasetArtifacts;
use ppfr_core::PpfrConfig;
use ppfr_datasets::DatasetSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a, the cheap stable hash used for cache-key fingerprints.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Thread-safe keyed store of shared per-`(dataset, seed)` artifacts.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    map: Mutex<HashMap<String, Arc<Mutex<DatasetArtifacts>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cache key of one `(dataset, seed, config, threat subset)` cell:
    /// a readable prefix plus a fingerprint over every input that shapes the
    /// artifacts.
    pub fn key(
        spec: &DatasetSpec,
        cfg: &PpfrConfig,
        data_seed: u64,
        threat_models: Option<&[String]>,
    ) -> String {
        let cfg_json = serde_json::to_string(cfg).expect("config serialises");
        let fingerprint = fnv1a(
            format!("{spec:?}|seed={data_seed}|cfg={cfg_json}|threats={threat_models:?}")
                .as_bytes(),
        );
        format!("{}:s{}:{:016x}", spec.name, data_seed, fingerprint)
    }

    /// Fetches the artifacts for a key, building them on a miss.  The build
    /// runs outside the map lock so independent groups build concurrently;
    /// when set, `threat_models` subsets the auditor's registry before the
    /// first audit.
    pub fn get_or_build(
        &self,
        spec: &DatasetSpec,
        cfg: &PpfrConfig,
        data_seed: u64,
        threat_models: Option<&[String]>,
    ) -> Arc<Mutex<DatasetArtifacts>> {
        let key = Self::key(spec, cfg, data_seed, threat_models);
        if let Some(found) = self.map.lock().expect("cache lock").get(&key) {
            // Relaxed is sufficient for the hit/miss tallies: they are pure
            // statistics read after the run quiesces and never order access
            // to the artifacts, which the map mutex already publishes.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut artifacts = DatasetArtifacts::build(spec, data_seed, cfg);
        if let Some(names) = threat_models {
            artifacts
                .auditor_mut()
                .registry_mut()
                .retain(|model| names.iter().any(|n| n == model.name()));
        }
        let built = Arc::new(Mutex::new(artifacts));
        let mut map = self.map.lock().expect("cache lock");
        // Two groups never share a key within one scenario run, but a racing
        // duplicate across runs keeps the first insertion canonical.
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (= builds) so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached artifact bundles.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cache tallies, for summary output.  Read it at
    /// quiescence (after the scenario run returns) — the tallies are relaxed
    /// statistics, not synchronised with in-flight builds.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len(),
            hits: self.hits(),
            misses: self.misses(),
        }
    }
}

/// Hit/miss/entry tallies of an [`ArtifactCache`], as surfaced in runner
/// summaries.  Deliberately *not* part of the serialised [`MatrixReport`]:
/// the report is pinned bit-identical between cold and cache-warm runs,
/// which these tallies are not.
///
/// [`MatrixReport`]: crate::MatrixReport
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cached artifact bundles.
    pub entries: usize,
    /// Fetches served from the cache.
    pub hits: usize,
    /// Fetches that had to build (= bundles ever built).
    pub misses: usize,
}

impl CacheStats {
    /// One-line human-readable summary, e.g.
    /// `artifact cache: 4 entries, 0 hits, 4 misses (hit rate 0%)`.
    pub fn summary_line(&self) -> String {
        let total = self.hits + self.misses;
        let rate = if total > 0 {
            100.0 * self.hits as f64 / total as f64
        } else {
            0.0
        };
        format!(
            "artifact cache: {} entries, {} hits, {} misses (hit rate {rate:.0}%)",
            self.entries, self.hits, self.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_datasets::two_block_synthetic;

    fn tiny_cfg() -> PpfrConfig {
        PpfrConfig {
            vanilla_epochs: 8,
            influence_cg_iters: 3,
            ..PpfrConfig::smoke()
        }
    }

    #[test]
    fn keys_separate_seed_config_and_threat_subset() {
        let spec = two_block_synthetic();
        let cfg = tiny_cfg();
        let base = ArtifactCache::key(&spec, &cfg, 7, None);
        assert!(base.starts_with("two-block:s7:"));
        assert_ne!(base, ArtifactCache::key(&spec, &cfg, 8, None));
        let other_cfg = PpfrConfig {
            perturb_ratio: 0.5,
            ..tiny_cfg()
        };
        assert_ne!(base, ArtifactCache::key(&spec, &other_cfg, 7, None));
        let subset = vec!["posteriors".to_string()];
        assert_ne!(base, ArtifactCache::key(&spec, &cfg, 7, Some(&subset)));
    }

    #[test]
    fn keys_separate_sampling_and_estimator_config() {
        // Regression guard: the sampled-training and LiSSA knobs must reach
        // the key fingerprint — a collision here would hand a full-batch
        // scenario artifacts trained with sampling (or vice versa).
        let spec = two_block_synthetic();
        let base = ArtifactCache::key(&spec, &tiny_cfg(), 7, None);
        let variants = [
            PpfrConfig {
                train_sample_fanout: 10,
                ..tiny_cfg()
            },
            PpfrConfig {
                lissa_depth: 150,
                ..tiny_cfg()
            },
            PpfrConfig {
                lissa_scale: 2.5,
                ..tiny_cfg()
            },
            PpfrConfig {
                lissa_batch: 16,
                ..tiny_cfg()
            },
            PpfrConfig {
                lissa_samples: 4,
                ..tiny_cfg()
            },
        ];
        for (i, cfg) in variants.iter().enumerate() {
            assert_ne!(
                base,
                ArtifactCache::key(&spec, cfg, 7, None),
                "variant {i} collided with the base key"
            );
        }
    }

    #[test]
    fn second_fetch_is_a_hit_and_returns_the_same_bundle() {
        let cache = ArtifactCache::new();
        let spec = two_block_synthetic();
        let cfg = tiny_cfg();
        let first = cache.get_or_build(&spec, &cfg, 7, None);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 1, 1));
        let second = cache.get_or_build(&spec, &cfg, 7, None);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn threat_subset_shrinks_the_registry() {
        let cache = ArtifactCache::new();
        let spec = two_block_synthetic();
        let cfg = tiny_cfg();
        let subset = vec!["posteriors".to_string()];
        let bundle = cache.get_or_build(&spec, &cfg, 7, Some(&subset));
        let mut artifacts = bundle.lock().expect("bundle lock");
        assert_eq!(artifacts.auditor_mut().registry().len(), 1);
    }
}
