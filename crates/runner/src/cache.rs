//! Keyed artifact cache: one [`DatasetArtifacts`] bundle per
//! `(dataset spec, run seed, config, threat subset, cell budget)`.
//!
//! The expensive per-group setup — dataset generation, the threat auditor's
//! pair sample + shadow bundle, and the trained vanilla checkpoints — is
//! paid once per key; a warm re-run of the same scenario (or a different
//! scenario sharing cells) skips straight to the method-specific training.
//! Every artifact is deterministic in its key, so cache hits are
//! bit-identical to cold builds (pinned by the runner's property tests).
//!
//! The cache is self-healing: every entry stores the FNV digest of its
//! immutable dataset at build time ([`DatasetArtifacts::content_checksum`])
//! and revalidates it on each hit, and a bundle whose mutex was poisoned by
//! a panicking holder is detected via [`Mutex::is_poisoned`].  Either way
//! only the bad entry is rebuilt — corruption or a crash in one group never
//! cascades into the rest of the matrix.

use ppfr_core::experiments::DatasetArtifacts;
use ppfr_core::PpfrConfig;
use ppfr_datasets::DatasetSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// FNV-1a, the cheap stable hash used for cache-key fingerprints.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Locks a mutex, recovering from poisoning: the values behind the runner's
/// mutexes (the cache map and the artifact bundles) are updated
/// transactionally — a panic mid-cell never leaves a half-written insert —
/// so the data is still consistent and the poison flag alone must not take
/// the whole audit down.  Bundle-level staleness is handled separately by
/// the checksum/poison revalidation in [`ArtifactCache::get_or_build`].
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One cached bundle plus the build-time digest of its immutable dataset.
#[derive(Debug, Clone)]
struct CacheEntry {
    bundle: Arc<Mutex<DatasetArtifacts>>,
    checksum: u64,
}

/// Thread-safe keyed store of shared per-`(dataset, seed)` artifacts.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    map: Mutex<HashMap<String, CacheEntry>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    poison_rebuilds: AtomicUsize,
    corruption_rebuilds: AtomicUsize,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cache key of one `(dataset, seed, config, threat subset, budget)`
    /// cell: a readable prefix plus a fingerprint over every input that
    /// shapes the artifacts.  The cell budget is part of the key because a
    /// bounded build may hold budget-truncated (degraded) vanilla
    /// checkpoints — handing those to an unbounded scenario (or vice versa)
    /// would silently mix exact and degraded artifacts.
    pub fn key(
        spec: &DatasetSpec,
        cfg: &PpfrConfig,
        data_seed: u64,
        threat_models: Option<&[String]>,
        cell_budget: Option<u64>,
    ) -> String {
        let cfg_json = serde_json::to_string(cfg).expect("config serialises");
        let fingerprint = fnv1a(
            format!(
                "{spec:?}|seed={data_seed}|cfg={cfg_json}|threats={threat_models:?}|budget={cell_budget:?}"
            )
            .as_bytes(),
        );
        format!("{}:s{}:{:016x}", spec.name, data_seed, fingerprint)
    }

    /// Builds a fresh entry (outside any lock).
    fn build_entry(
        spec: &DatasetSpec,
        cfg: &PpfrConfig,
        data_seed: u64,
        threat_models: Option<&[String]>,
    ) -> CacheEntry {
        let mut artifacts = DatasetArtifacts::build(spec, data_seed, cfg);
        if let Some(names) = threat_models {
            artifacts
                .auditor_mut()
                .registry_mut()
                .retain(|model| names.iter().any(|n| n == model.name()));
        }
        let checksum = artifacts.content_checksum();
        CacheEntry {
            bundle: Arc::new(Mutex::new(artifacts)),
            checksum,
        }
    }

    /// Fetches the artifacts for a key, building them on a miss.  The build
    /// runs outside the map lock so independent groups build concurrently;
    /// when set, `threat_models` subsets the auditor's registry before the
    /// first audit.
    ///
    /// A hit is revalidated before being served: a bundle whose mutex was
    /// poisoned, or whose dataset no longer matches its build-time checksum
    /// (artifact corruption — e.g. injected via the `artifact` fault site),
    /// is discarded and rebuilt.  Only that entry is invalidated.
    pub fn get_or_build(
        &self,
        spec: &DatasetSpec,
        cfg: &PpfrConfig,
        data_seed: u64,
        threat_models: Option<&[String]>,
        cell_budget: Option<u64>,
    ) -> Arc<Mutex<DatasetArtifacts>> {
        let key = Self::key(spec, cfg, data_seed, threat_models, cell_budget);
        let cached = lock_recover(&self.map).get(&key).cloned();
        if let Some(entry) = cached {
            // Fault injection: simulate in-place corruption of the cached
            // bundle.  The gate is a single relaxed load when no plan is
            // installed.
            if ppfr_resilience::armed()
                && ppfr_resilience::fault_at("artifact", &key)
                    == Some(ppfr_resilience::FaultKind::CorruptArtifact)
                && !entry.bundle.is_poisoned()
            {
                let mut artifacts = lock_recover(&entry.bundle);
                let features = artifacts.dataset.features.as_mut_slice();
                if let Some(first) = features.first_mut() {
                    *first = f64::from_bits(first.to_bits() ^ 0xdead_beef);
                }
            }
            let poisoned = entry.bundle.is_poisoned();
            let valid =
                !poisoned && lock_recover(&entry.bundle).content_checksum() == entry.checksum;
            if valid {
                // Relaxed is sufficient for all the tallies here: they are
                // pure statistics read after the run quiesces and never
                // order access to the artifacts, which the map mutex
                // already publishes.
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.bundle);
            }
            if poisoned {
                self.poison_rebuilds.fetch_add(1, Ordering::Relaxed);
            } else {
                self.corruption_rebuilds.fetch_add(1, Ordering::Relaxed);
            }
            let rebuilt = Self::build_entry(spec, cfg, data_seed, threat_models);
            let bundle = Arc::clone(&rebuilt.bundle);
            lock_recover(&self.map).insert(key, rebuilt);
            return bundle;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Self::build_entry(spec, cfg, data_seed, threat_models);
        let mut map = lock_recover(&self.map);
        // Two groups never share a key within one scenario run, but a racing
        // duplicate across runs keeps the first insertion canonical.
        Arc::clone(&map.entry(key).or_insert(built).bundle)
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (= cold builds) so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of entries rebuilt because their bundle mutex was poisoned.
    pub fn poison_rebuilds(&self) -> usize {
        self.poison_rebuilds.load(Ordering::Relaxed)
    }

    /// Number of entries rebuilt because their dataset failed checksum
    /// revalidation.
    pub fn corruption_rebuilds(&self) -> usize {
        self.corruption_rebuilds.load(Ordering::Relaxed)
    }

    /// Number of cached artifact bundles.
    pub fn len(&self) -> usize {
        lock_recover(&self.map).len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cache tallies, for summary output.  Read it at
    /// quiescence (after the scenario run returns) — the tallies are relaxed
    /// statistics, not synchronised with in-flight builds.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len(),
            hits: self.hits(),
            misses: self.misses(),
            poison_rebuilds: self.poison_rebuilds(),
            corruption_rebuilds: self.corruption_rebuilds(),
        }
    }
}

/// Hit/miss/entry/rebuild tallies of an [`ArtifactCache`], as surfaced in
/// runner summaries.  Deliberately *not* part of the serialised
/// [`MatrixReport`]: the report is pinned bit-identical between cold and
/// cache-warm runs, which these tallies are not.
///
/// [`MatrixReport`]: crate::MatrixReport
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cached artifact bundles.
    pub entries: usize,
    /// Fetches served from the cache.
    pub hits: usize,
    /// Fetches that had to build (= bundles ever built cold).
    pub misses: usize,
    /// Entries rebuilt after mutex poisoning.
    pub poison_rebuilds: usize,
    /// Entries rebuilt after checksum-revalidation failure.
    pub corruption_rebuilds: usize,
}

impl CacheStats {
    /// One-line human-readable summary, e.g.
    /// `artifact cache: 4 entries, 0 hits, 4 misses (hit rate 0%), 0 rebuilt`.
    pub fn summary_line(&self) -> String {
        let total = self.hits + self.misses;
        let rate = if total > 0 {
            100.0 * self.hits as f64 / total as f64
        } else {
            0.0
        };
        format!(
            "artifact cache: {} entries, {} hits, {} misses (hit rate {rate:.0}%), {} rebuilt ({} poisoned, {} corrupted)",
            self.entries,
            self.hits,
            self.misses,
            self.poison_rebuilds + self.corruption_rebuilds,
            self.poison_rebuilds,
            self.corruption_rebuilds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_datasets::two_block_synthetic;

    fn tiny_cfg() -> PpfrConfig {
        PpfrConfig {
            vanilla_epochs: 8,
            influence_cg_iters: 3,
            ..PpfrConfig::smoke()
        }
    }

    #[test]
    fn keys_separate_seed_config_threat_subset_and_budget() {
        let spec = two_block_synthetic();
        let cfg = tiny_cfg();
        let base = ArtifactCache::key(&spec, &cfg, 7, None, None);
        assert!(base.starts_with("two-block:s7:"));
        assert_ne!(base, ArtifactCache::key(&spec, &cfg, 8, None, None));
        let other_cfg = PpfrConfig {
            perturb_ratio: 0.5,
            ..tiny_cfg()
        };
        assert_ne!(base, ArtifactCache::key(&spec, &other_cfg, 7, None, None));
        let subset = vec!["posteriors".to_string()];
        assert_ne!(
            base,
            ArtifactCache::key(&spec, &cfg, 7, Some(&subset), None)
        );
        // A bounded build may hold degraded vanilla checkpoints — it must
        // never be served to an unbounded scenario.
        assert_ne!(base, ArtifactCache::key(&spec, &cfg, 7, None, Some(100)));
        assert_ne!(
            ArtifactCache::key(&spec, &cfg, 7, None, Some(100)),
            ArtifactCache::key(&spec, &cfg, 7, None, Some(200))
        );
    }

    #[test]
    fn keys_separate_sampling_and_estimator_config() {
        // Regression guard: the sampled-training and LiSSA knobs must reach
        // the key fingerprint — a collision here would hand a full-batch
        // scenario artifacts trained with sampling (or vice versa).
        let spec = two_block_synthetic();
        let base = ArtifactCache::key(&spec, &tiny_cfg(), 7, None, None);
        let variants = [
            PpfrConfig {
                train_sample_fanout: 10,
                ..tiny_cfg()
            },
            PpfrConfig {
                lissa_depth: 150,
                ..tiny_cfg()
            },
            PpfrConfig {
                lissa_scale: 2.5,
                ..tiny_cfg()
            },
            PpfrConfig {
                lissa_batch: 16,
                ..tiny_cfg()
            },
            PpfrConfig {
                lissa_samples: 4,
                ..tiny_cfg()
            },
        ];
        for (i, cfg) in variants.iter().enumerate() {
            assert_ne!(
                base,
                ArtifactCache::key(&spec, cfg, 7, None, None),
                "variant {i} collided with the base key"
            );
        }
    }

    #[test]
    fn second_fetch_is_a_hit_and_returns_the_same_bundle() {
        let cache = ArtifactCache::new();
        let spec = two_block_synthetic();
        let cfg = tiny_cfg();
        let first = cache.get_or_build(&spec, &cfg, 7, None, None);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 1, 1));
        let second = cache.get_or_build(&spec, &cfg, 7, None, None);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.poison_rebuilds(), 0);
        assert_eq!(cache.corruption_rebuilds(), 0);
    }

    #[test]
    fn threat_subset_shrinks_the_registry() {
        let cache = ArtifactCache::new();
        let spec = two_block_synthetic();
        let cfg = tiny_cfg();
        let subset = vec!["posteriors".to_string()];
        let bundle = cache.get_or_build(&spec, &cfg, 7, Some(&subset), None);
        let mut artifacts = lock_recover(&bundle);
        assert_eq!(artifacts.auditor_mut().registry().len(), 1);
    }

    #[test]
    fn poisoned_bundle_is_rebuilt_without_cascading() {
        let cache = ArtifactCache::new();
        let spec = two_block_synthetic();
        let cfg = tiny_cfg();
        let first = cache.get_or_build(&spec, &cfg, 7, None, None);
        // Poison the bundle mutex by panicking while holding its guard.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = first.lock().expect("fresh bundle lock");
            panic!("simulated crash while holding the bundle");
        }));
        assert!(poison.is_err());
        assert!(first.is_poisoned());
        // The next fetch detects the poison, rebuilds only this entry and
        // serves a healthy bundle.
        let second = cache.get_or_build(&spec, &cfg, 7, None, None);
        assert!(!Arc::ptr_eq(&first, &second), "poisoned bundle was reused");
        assert!(!second.is_poisoned());
        assert_eq!(cache.poison_rebuilds(), 1);
        assert_eq!(cache.len(), 1, "entry replaced, not duplicated");
        // And the rebuilt entry now serves plain hits again.
        let third = cache.get_or_build(&spec, &cfg, 7, None, None);
        assert!(Arc::ptr_eq(&second, &third));
        assert_eq!(cache.poison_rebuilds(), 1);
    }

    #[test]
    fn corrupted_bundle_fails_revalidation_and_is_rebuilt() {
        let cache = ArtifactCache::new();
        let spec = two_block_synthetic();
        let cfg = tiny_cfg();
        let first = cache.get_or_build(&spec, &cfg, 7, None, None);
        let clean_checksum = lock_recover(&first).content_checksum();
        // Corrupt the cached dataset directly (the `artifact` fault site
        // does the same through the injection gate).
        lock_recover(&first).dataset.features.as_mut_slice()[0] += 1.0;
        assert_ne!(lock_recover(&first).content_checksum(), clean_checksum);
        let second = cache.get_or_build(&spec, &cfg, 7, None, None);
        assert!(!Arc::ptr_eq(&first, &second), "corrupted bundle was reused");
        assert_eq!(cache.corruption_rebuilds(), 1);
        assert_eq!(
            lock_recover(&second).content_checksum(),
            clean_checksum,
            "rebuild restores the deterministic dataset"
        );
    }

    #[test]
    fn injected_artifact_corruption_is_detected_on_the_next_fetch() {
        let cache = ArtifactCache::new();
        let spec = two_block_synthetic();
        let cfg = tiny_cfg();
        let first = cache.get_or_build(&spec, &cfg, 7, None, None);
        let clean_checksum = lock_recover(&first).content_checksum();
        let key = ArtifactCache::key(&spec, &cfg, 7, None, None);
        let plan = ppfr_resilience::FaultPlan::empty(1).with(ppfr_resilience::FaultSpec::times(
            "artifact",
            &key,
            ppfr_resilience::FaultKind::CorruptArtifact,
            1,
        ));
        let second = ppfr_resilience::with_fault_plan(plan, || {
            cache.get_or_build(&spec, &cfg, 7, None, None)
        });
        // The injected corruption hit the cached bundle, was caught by the
        // checksum revalidation, and a clean rebuild was served instead.
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(cache.corruption_rebuilds(), 1);
        assert_eq!(lock_recover(&second).content_checksum(), clean_checksum);
    }
}
