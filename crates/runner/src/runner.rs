//! The scenario executor: expands a [`ScenarioSpec`] into run groups,
//! executes them in parallel through `ppfr_linalg::parallel` (with a
//! bit-identical serial twin) and aggregates the per-seed runs.
//!
//! Parallelism is over `(dataset, seed)` groups: runs inside one group share
//! mutable artifacts (the auditor's distance buffers, the vanilla
//! checkpoints), so the group is the natural independence boundary.  Every
//! group is deterministic in its cache key and the aggregation
//! canonicalises run order, so thread count never changes the report —
//! pinned by the `forced-thread` tests below, exactly like the kernel layer.

use crate::aggregate::{aggregate, MatrixReport, SeedRun};
use crate::cache::ArtifactCache;
use crate::spec::{RunGroup, ScenarioSpec};
use ppfr_linalg::parallel::par_rows;

/// Executes every run of one group against its (possibly cached) shared
/// artifacts.
fn run_group(spec: &ScenarioSpec, group: &RunGroup, cache: &ArtifactCache) -> Vec<SeedRun> {
    let _span = ppfr_telemetry::span!("runner_group");
    let cfg = spec.config_for_seed(group.seed);
    let dataset_spec = &spec.datasets[group.dataset_index];
    let bundle = cache.get_or_build(
        dataset_spec,
        &cfg,
        group.seed,
        spec.threat_models.as_deref(),
    );
    let mut artifacts = bundle.lock().expect("artifact lock");
    let mut runs = Vec::with_capacity(spec.models.len() * spec.methods.len());
    for &kind in &spec.models {
        for &method in &spec.methods {
            let _cell_span = ppfr_telemetry::span!("runner_cell");
            let cell = artifacts.cell(kind, method, &cfg);
            runs.push(SeedRun {
                dataset: cell.run.dataset.clone(),
                model: cell.run.model.clone(),
                method: cell.run.method.clone(),
                seed: group.seed,
                deltas: cell.deltas(),
                evaluation: cell.run.evaluation,
            });
        }
    }
    runs
}

fn finish(spec: &ScenarioSpec, per_group: Vec<Vec<SeedRun>>) -> MatrixReport {
    let _span = ppfr_telemetry::span!("aggregate");
    let runs: Vec<SeedRun> = per_group.into_iter().flatten().collect();
    aggregate(&spec.name, &spec.seeds, runs)
}

/// Publishes the cache tallies as telemetry gauges, from the orchestrating
/// thread after the run quiesced (gauges are last-write-wins and expect a
/// single writer).  Never enters the serialised [`MatrixReport`] — that is
/// pinned bit-identical between cold and warm runs, which tallies are not.
fn publish_cache_gauges(cache: &ArtifactCache) {
    static HITS: ppfr_telemetry::Gauge = ppfr_telemetry::Gauge::new("runner.cache.hits");
    static MISSES: ppfr_telemetry::Gauge = ppfr_telemetry::Gauge::new("runner.cache.misses");
    static ENTRIES: ppfr_telemetry::Gauge = ppfr_telemetry::Gauge::new("runner.cache.entries");
    let stats = cache.stats();
    HITS.set(stats.hits as f64);
    MISSES.set(stats.misses as f64);
    ENTRIES.set(stats.entries as f64);
}

/// Executes the scenario's full run matrix, groups in parallel.
///
/// # Panics
/// Panics on an invalid spec (empty axis, duplicate seeds).
pub fn run_scenario(spec: &ScenarioSpec, cache: &ArtifactCache) -> MatrixReport {
    spec.validate().expect("valid scenario");
    let groups = spec.groups();
    let report = finish(
        spec,
        par_rows(groups.len(), |g| run_group(spec, &groups[g], cache)),
    );
    publish_cache_gauges(cache);
    report
}

/// The serial twin of [`run_scenario`]: identical results, one group at a
/// time.  Kept for the equivalence tests and for callers that must not
/// spawn worker threads.
pub fn run_scenario_serial(spec: &ScenarioSpec, cache: &ArtifactCache) -> MatrixReport {
    spec.validate().expect("valid scenario");
    let report = finish(
        spec,
        spec.groups()
            .iter()
            .map(|g| run_group(spec, g, cache))
            .collect(),
    );
    publish_cache_gauges(cache);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::two_block_weak;
    use ppfr_core::{Method, PpfrConfig};
    use ppfr_datasets::two_block_synthetic;
    use ppfr_linalg::parallel::with_forced_threads;

    /// A deliberately tiny matrix so the executor tests stay fast: 2 small
    /// datasets × 2 methods × 2 seeds at 10 epochs.
    fn tiny_scenario() -> ScenarioSpec {
        ScenarioSpec::new(
            "tiny",
            vec![two_block_synthetic(), two_block_weak()],
            PpfrConfig {
                vanilla_epochs: 10,
                influence_cg_iters: 3,
                ..PpfrConfig::smoke()
            },
        )
        .with_methods(&[Method::Vanilla, Method::Reg])
        .with_seeds(&[7, 11])
    }

    #[test]
    fn matrix_shape_and_summary_coverage() {
        let cache = ArtifactCache::new();
        let report = run_scenario(&tiny_scenario(), &cache);
        assert_eq!(report.runs.len(), 8, "2 datasets × 2 methods × 2 seeds");
        assert_eq!(cache.misses(), 4, "one build per (dataset, seed)");
        for (dataset, model, method) in report.cells() {
            for metric in ["acc", "bias", "risk_auc", "worst_risk_auc", "delta"] {
                let s = report
                    .summary(&dataset, &model, &method, metric)
                    .unwrap_or_else(|| panic!("{dataset}/{method}/{metric} missing"));
                assert_eq!(s.stats.n, 2);
                assert!(s.stats.mean.is_finite() && s.stats.std.is_finite());
            }
        }
        // Vanilla rows are their own reference: Δ metrics are exactly zero.
        let d = report
            .summary("two-block", "GCN", "Vanilla", "d_acc_pct")
            .expect("vanilla delta row");
        assert_eq!(d.stats.mean, 0.0);
        assert_eq!(d.stats.std, 0.0);
    }

    #[test]
    fn parallel_serial_and_forced_thread_counts_agree_bitwise() {
        let spec = tiny_scenario();
        let serial = run_scenario_serial(&spec, &ArtifactCache::new()).to_json();
        for threads in [1, 4] {
            let parallel =
                with_forced_threads(threads, || run_scenario(&spec, &ArtifactCache::new()));
            assert_eq!(
                parallel.to_json(),
                serial,
                "report differs at {threads} forced threads"
            );
        }
    }

    #[test]
    fn threat_subset_restricts_the_per_threat_metrics() {
        let cache = ArtifactCache::new();
        let spec = tiny_scenario()
            .with_seeds(&[7])
            .with_threat_models(&["posteriors", "posteriors+shadow"]);
        let report = run_scenario(&spec, &cache);
        let run = &report.runs[0];
        assert_eq!(run.evaluation.auc_per_threat.len(), 2);
        assert!(report
            .summary("two-block", "GCN", "Vanilla", "auc_threat:posteriors")
            .is_some());
        assert!(report
            .summary(
                "two-block",
                "GCN",
                "Vanilla",
                "auc_threat:posteriors+features"
            )
            .is_none());
    }
}
