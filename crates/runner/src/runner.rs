//! The scenario executor: expands a [`ScenarioSpec`] into run groups,
//! executes them in parallel through `ppfr_linalg::parallel` (with a
//! bit-identical serial twin) and aggregates the per-seed runs.
//!
//! Parallelism is over `(dataset, seed)` groups: runs inside one group share
//! mutable artifacts (the auditor's distance buffers, the vanilla
//! checkpoints), so the group is the natural independence boundary.  Every
//! group is deterministic in its cache key and the aggregation
//! canonicalises run order, so thread count never changes the report —
//! pinned by the `forced-thread` tests below, exactly like the kernel layer.
//!
//! # Failure semantics
//!
//! The executor is crash-proof at two granularities.  A panicking **cell**
//! is caught *inside* the artifact-bundle lock scope (so the bundle mutex is
//! never poisoned), retried per the spec's deterministic
//! [`RetryPolicy`](ppfr_resilience::RetryPolicy), and — if every attempt
//! fails — quarantined into the report's `failed_cells` section while every
//! other cell completes untouched.  A panicking **group** (anything that
//! escapes the per-cell quarantine, e.g. an artifact build crash) is caught
//! at the dispatch boundary by [`par_rows_quarantined`] and surfaces as one
//! `failed_cells` entry per cell it would have run.  Each cell additionally
//! runs under the spec's optional work [`Budget`](ppfr_resilience::Budget);
//! degraded estimators triggered by budget exhaustion land in the report's
//! `degraded` section, so deviation from the exact protocol is always
//! flagged.

use crate::aggregate::{
    aggregate, sort_resilience_sections, DegradedCell, FailedCell, MatrixReport, SeedRun,
};
use crate::cache::{lock_recover, ArtifactCache};
use crate::spec::{RunGroup, ScenarioSpec};
use ppfr_linalg::parallel::par_rows_quarantined;
use ppfr_resilience::{
    collect_degradations, panic_message, run_with_retry, with_budget, Budget, FaultKind,
    RetryPolicy, RunError,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Everything one group produced: completed runs plus the quarantined
/// failures and recorded degradations of its cells.
struct GroupOutcome {
    runs: Vec<SeedRun>,
    failed: Vec<FailedCell>,
    degraded: Vec<DegradedCell>,
}

/// Executes every run of one group against its (possibly cached) shared
/// artifacts.  Cell failures are quarantined per cell; only a failure
/// outside any cell (artifact build, injected group fault) unwinds out of
/// this function, into the dispatch-level quarantine.
fn run_group(spec: &ScenarioSpec, group: &RunGroup, cache: &ArtifactCache) -> GroupOutcome {
    let _span = ppfr_telemetry::span!("runner_group");
    let cfg = spec.config_for_seed(group.seed);
    let dataset_spec = &spec.datasets[group.dataset_index];
    if ppfr_resilience::armed() {
        let group_key = format!("{}:s{}", dataset_spec.name, group.seed);
        if ppfr_resilience::fault_at("group", &group_key) == Some(FaultKind::Panic) {
            panic!("injected fault: group {group_key} panicked");
        }
    }
    let bundle = cache.get_or_build(
        dataset_spec,
        &cfg,
        group.seed,
        spec.threat_models.as_deref(),
        spec.cell_budget,
    );
    let mut artifacts = lock_recover(&bundle);
    let mut out = GroupOutcome {
        runs: Vec::with_capacity(spec.models.len() * spec.methods.len()),
        failed: Vec::new(),
        degraded: Vec::new(),
    };
    let policy = RetryPolicy::attempts(spec.max_cell_attempts);
    for &kind in &spec.models {
        for &method in &spec.methods {
            let _cell_span = ppfr_telemetry::span!("runner_cell");
            let cell_key = format!(
                "{}:s{}:{}:{}",
                dataset_spec.name,
                group.seed,
                kind.name(),
                method.name()
            );
            let attempted = run_with_retry(policy, |_attempt| {
                // Injected faults, resolved before any real work so an
                // injected panic never leaves partially mutated artifacts —
                // that is what lets the chaos suite pin surviving cells
                // bit-identical.  One relaxed load when no plan is armed.
                let mut inject_panic = false;
                if ppfr_resilience::armed() {
                    match ppfr_resilience::fault_at("cell", &cell_key) {
                        Some(FaultKind::Panic) => inject_panic = true,
                        Some(FaultKind::Error) => {
                            return Err(RunError::CellError {
                                cell: cell_key.clone(),
                                message: "injected transient cell error".to_string(),
                            })
                        }
                        _ => {}
                    }
                }
                // Fresh budget per attempt: a retried cell restarts with the
                // full allowance, keeping attempts deterministic.
                let budget = match spec.cell_budget {
                    Some(units) => Budget::units(units),
                    None => Budget::unlimited(),
                };
                if ppfr_resilience::armed()
                    && ppfr_resilience::fault_at("budget", &cell_key)
                        == Some(FaultKind::ExhaustBudget)
                {
                    budget.exhaust();
                }
                // The catch sits INSIDE the bundle-lock scope, so a cell
                // panic never poisons the artifact mutex.  AssertUnwindSafe
                // is justified: `DatasetArtifacts` mutates transactionally
                // (the vanilla checkpoint is inserted only after it is fully
                // built), so an unwound cell leaves the bundle consistent.
                let (result, degradations) = collect_degradations(|| {
                    with_budget(&budget, || {
                        catch_unwind(AssertUnwindSafe(|| {
                            if inject_panic {
                                panic!("injected fault: cell {cell_key} panicked");
                            }
                            artifacts.cell(kind, method, &cfg)
                        }))
                    })
                });
                match result {
                    Ok(cell) => Ok((cell, degradations)),
                    Err(payload) => {
                        ppfr_resilience::note_cell_panic();
                        Err(RunError::CellPanic {
                            cell: cell_key.clone(),
                            message: panic_message(payload.as_ref()),
                        })
                    }
                }
            });
            match attempted {
                Ok((cell, degradations)) => {
                    for event in degradations {
                        out.degraded.push(DegradedCell {
                            dataset: cell.run.dataset.clone(),
                            model: cell.run.model.clone(),
                            method: cell.run.method.clone(),
                            seed: group.seed,
                            site: event.site,
                            from: event.from,
                            to: event.to,
                        });
                    }
                    out.runs.push(SeedRun {
                        dataset: cell.run.dataset.clone(),
                        model: cell.run.model.clone(),
                        method: cell.run.method.clone(),
                        seed: group.seed,
                        deltas: cell.deltas(),
                        evaluation: cell.run.evaluation,
                    });
                }
                Err(err) => out.failed.push(FailedCell {
                    dataset: dataset_spec.name.to_string(),
                    model: kind.name().to_string(),
                    method: method.name().to_string(),
                    seed: group.seed,
                    error: err.to_string(),
                    attempts: policy.max_attempts,
                }),
            }
        }
    }
    out
}

/// Folds per-group outcomes (including whole-group panics) into the final
/// report.  A panicked group contributes one `failed_cells` entry per cell
/// it would have run; its panic message is preserved verbatim.
fn finish(
    spec: &ScenarioSpec,
    groups: &[RunGroup],
    outcomes: Vec<Result<GroupOutcome, String>>,
) -> MatrixReport {
    let _span = ppfr_telemetry::span!("aggregate");
    let mut runs = Vec::new();
    let mut failed = Vec::new();
    let mut degraded = Vec::new();
    for (group, outcome) in groups.iter().zip(outcomes) {
        match outcome {
            Ok(o) => {
                runs.extend(o.runs);
                failed.extend(o.failed);
                degraded.extend(o.degraded);
            }
            Err(message) => {
                ppfr_resilience::note_cell_panic();
                let dataset = spec.datasets[group.dataset_index].name;
                for &kind in &spec.models {
                    for &method in &spec.methods {
                        failed.push(FailedCell {
                            dataset: dataset.to_string(),
                            model: kind.name().to_string(),
                            method: method.name().to_string(),
                            seed: group.seed,
                            error: format!("group panicked: {message}"),
                            attempts: 0,
                        });
                    }
                }
            }
        }
    }
    let mut report = aggregate(&spec.name, &spec.seeds, runs);
    sort_resilience_sections(&mut failed, &mut degraded);
    report.failed_cells = failed;
    report.degraded = degraded;
    report
}

/// Publishes the cache tallies as telemetry gauges, from the orchestrating
/// thread after the run quiesced (gauges are last-write-wins and expect a
/// single writer).  Never enters the serialised [`MatrixReport`] — that is
/// pinned bit-identical between cold and warm runs, which tallies are not.
fn publish_cache_gauges(cache: &ArtifactCache) {
    static HITS: ppfr_telemetry::Gauge = ppfr_telemetry::Gauge::new("runner.cache.hits");
    static MISSES: ppfr_telemetry::Gauge = ppfr_telemetry::Gauge::new("runner.cache.misses");
    static ENTRIES: ppfr_telemetry::Gauge = ppfr_telemetry::Gauge::new("runner.cache.entries");
    let stats = cache.stats();
    HITS.set(stats.hits as f64);
    MISSES.set(stats.misses as f64);
    ENTRIES.set(stats.entries as f64);
}

/// Executes the scenario's full run matrix, groups in parallel.
///
/// Never panics on runner-path failures: an invalid spec returns
/// [`RunError::InvalidSpec`], and crashed cells/groups are quarantined into
/// the report's `failed_cells` section while the rest of the matrix
/// completes.
pub fn run_scenario(spec: &ScenarioSpec, cache: &ArtifactCache) -> Result<MatrixReport, RunError> {
    spec.validate().map_err(RunError::InvalidSpec)?;
    let groups = spec.groups();
    let outcomes = par_rows_quarantined(groups.len(), |g| run_group(spec, &groups[g], cache));
    let report = finish(spec, &groups, outcomes);
    publish_cache_gauges(cache);
    Ok(report)
}

/// The serial twin of [`run_scenario`]: identical results (including the
/// quarantine semantics), one group at a time.  Kept for the equivalence
/// tests and for callers that must not spawn worker threads.
pub fn run_scenario_serial(
    spec: &ScenarioSpec,
    cache: &ArtifactCache,
) -> Result<MatrixReport, RunError> {
    spec.validate().map_err(RunError::InvalidSpec)?;
    let groups = spec.groups();
    let outcomes = groups
        .iter()
        .map(|g| {
            catch_unwind(AssertUnwindSafe(|| run_group(spec, g, cache)))
                .map_err(|payload| panic_message(payload.as_ref()))
        })
        .collect();
    let report = finish(spec, &groups, outcomes);
    publish_cache_gauges(cache);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::two_block_weak;
    use ppfr_core::{Method, PpfrConfig};
    use ppfr_datasets::two_block_synthetic;
    use ppfr_linalg::parallel::with_forced_threads;

    /// A deliberately tiny matrix so the executor tests stay fast: 2 small
    /// datasets × 2 methods × 2 seeds at 10 epochs.
    fn tiny_scenario() -> ScenarioSpec {
        ScenarioSpec::new(
            "tiny",
            vec![two_block_synthetic(), two_block_weak()],
            PpfrConfig {
                vanilla_epochs: 10,
                influence_cg_iters: 3,
                ..PpfrConfig::smoke()
            },
        )
        .with_methods(&[Method::Vanilla, Method::Reg])
        .with_seeds(&[7, 11])
    }

    #[test]
    fn matrix_shape_and_summary_coverage() {
        let cache = ArtifactCache::new();
        let report = run_scenario(&tiny_scenario(), &cache).expect("valid scenario runs");
        assert_eq!(report.runs.len(), 8, "2 datasets × 2 methods × 2 seeds");
        assert_eq!(cache.misses(), 4, "one build per (dataset, seed)");
        assert!(
            report.failed_cells.is_empty(),
            "clean run quarantines nothing"
        );
        assert!(
            report.degraded.is_empty(),
            "unbudgeted run degrades nothing"
        );
        for (dataset, model, method) in report.cells() {
            for metric in ["acc", "bias", "risk_auc", "worst_risk_auc", "delta"] {
                let s = report
                    .summary(&dataset, &model, &method, metric)
                    .unwrap_or_else(|| panic!("{dataset}/{method}/{metric} missing"));
                assert_eq!(s.stats.n, 2);
                assert!(s.stats.mean.is_finite() && s.stats.std.is_finite());
            }
        }
        // Vanilla rows are their own reference: Δ metrics are exactly zero.
        let d = report
            .summary("two-block", "GCN", "Vanilla", "d_acc_pct")
            .expect("vanilla delta row");
        assert_eq!(d.stats.mean, 0.0);
        assert_eq!(d.stats.std, 0.0);
    }

    #[test]
    fn invalid_spec_is_an_error_not_a_panic() {
        let cache = ArtifactCache::new();
        let empty = tiny_scenario().with_methods(&[]);
        let err = run_scenario(&empty, &cache).expect_err("empty axis must be rejected");
        assert!(matches!(err, RunError::InvalidSpec(_)), "got {err:?}");
        assert!(err.to_string().contains("empty axis"));
        let serial_err =
            run_scenario_serial(&empty, &cache).expect_err("serial twin rejects it too");
        assert_eq!(serial_err.to_string(), err.to_string());
        assert!(cache.is_empty(), "nothing was built for an invalid spec");
    }

    #[test]
    fn parallel_serial_and_forced_thread_counts_agree_bitwise() {
        let spec = tiny_scenario();
        let serial = run_scenario_serial(&spec, &ArtifactCache::new())
            .expect("serial run")
            .to_json();
        for threads in [1, 4] {
            let parallel = with_forced_threads(threads, || {
                run_scenario(&spec, &ArtifactCache::new()).expect("parallel run")
            });
            assert_eq!(
                parallel.to_json(),
                serial,
                "report differs at {threads} forced threads"
            );
        }
    }

    #[test]
    fn threat_subset_restricts_the_per_threat_metrics() {
        let cache = ArtifactCache::new();
        let spec = tiny_scenario()
            .with_seeds(&[7])
            .with_threat_models(&["posteriors", "posteriors+shadow"]);
        let report = run_scenario(&spec, &cache).expect("scenario runs");
        let run = &report.runs[0];
        assert_eq!(run.evaluation.auc_per_threat.len(), 2);
        assert!(report
            .summary("two-block", "GCN", "Vanilla", "auc_threat:posteriors")
            .is_some());
        assert!(report
            .summary(
                "two-block",
                "GCN",
                "Vanilla",
                "auc_threat:posteriors+features"
            )
            .is_none());
    }

    #[test]
    fn budgeted_run_completes_with_flagged_degradations() {
        // A 1-unit budget exhausts while the PPFR cell trains its vanilla
        // checkpoint, so the downstream FR pipeline must walk the
        // degradation ladder — and the cell still completes: no failures,
        // metrics finite, downgrades flagged.
        let spec = tiny_scenario()
            .with_methods(&[Method::Ppfr])
            .with_seeds(&[7])
            .with_cell_budget(1);
        let cache = ArtifactCache::new();
        let report = run_scenario(&spec, &cache).expect("budgeted scenario runs");
        assert_eq!(report.runs.len(), 2, "every cell completed");
        assert!(report.failed_cells.is_empty());
        assert!(
            !report.degraded.is_empty(),
            "an exhausted budget must be flagged as degradation"
        );
        let sites: Vec<&str> = report.degraded.iter().map(|d| d.site.as_str()).collect();
        assert!(sites.contains(&"pair_sample"), "sites: {sites:?}");
        assert!(sites.contains(&"influence"), "sites: {sites:?}");
        for d in &report.degraded {
            assert_eq!(d.method, "PPFR", "only the FR method walks the ladder");
        }
        for run in &report.runs {
            assert!(run.evaluation.accuracy.is_finite());
            assert!(run.evaluation.bias.is_finite());
        }
        // Degraded runs are deterministic too: the same budget stops the
        // same loops at the same iterations at any thread count.
        let again = with_forced_threads(4, || {
            run_scenario(&spec, &ArtifactCache::new()).expect("budgeted rerun")
        });
        assert_eq!(again.to_json(), report.to_json());
    }
}
