//! Scenario specifications: what to run, over which seeds, with which knobs.
//!
//! A [`ScenarioSpec`] is the declarative description of one experiment
//! matrix — datasets × models × methods × seeds plus the perturbation knobs
//! and an optional threat-model subset.  [`ScenarioSpec::groups`] expands it
//! into the per-`(dataset, seed)` run groups the executor parallelises over,
//! and the [`ScenarioRegistry`] names the stock scenarios the `exp_*`
//! binaries and the golden regression suite share.

use ppfr_core::{ExperimentScale, Method, PpfrConfig};
use ppfr_datasets::{two_block_synthetic, DatasetSpec};
use ppfr_gnn::ModelKind;

/// Default seed list of the multi-seed reports (3 repetitions, as in the
/// paper's "averaged over repeated runs" protocol).
pub const DEFAULT_SEEDS: [u64; 3] = [7, 17, 27];

/// One experiment matrix: every `(dataset, model, method, seed)` combination
/// is one run; runs sharing a `(dataset, seed)` cell share artifacts.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (reported in the aggregated output).
    pub name: String,
    /// Dataset axis.
    pub datasets: Vec<DatasetSpec>,
    /// Architecture axis.
    pub models: Vec<ModelKind>,
    /// Method axis (include [`Method::Vanilla`] to report the reference).
    pub methods: Vec<Method>,
    /// Seed axis: each seed drives both dataset generation and the pipeline
    /// RNG streams, so repetitions differ in graph *and* initialisation.
    pub seeds: Vec<u64>,
    /// Base pipeline configuration (epochs, perturbation knobs, DP budget);
    /// its `seed` field is overridden per run by the seed axis.
    pub config: PpfrConfig,
    /// When set, audit only the named threat models (see
    /// [`ppfr_core::ThreatModel::name`]); `None` audits the full grid.
    pub threat_models: Option<Vec<String>>,
    /// Optional per-cell work budget, in cooperative checkpoint units
    /// (training epochs, CG/LiSSA iterations).  `None` runs the exact
    /// protocol unbounded; `Some(n)` makes every cell deadline-aware — on
    /// exhaustion the pipelines degrade gracefully (truncated training,
    /// shallow LiSSA, capped pair sample) and every downgrade is recorded in
    /// the report's `degraded` section.
    pub cell_budget: Option<u64>,
    /// Total attempts per cell (first try included, ≥ 1): a transient cell
    /// failure is retried deterministically before the cell is quarantined
    /// into the report's `failed_cells` section.
    pub max_cell_attempts: u32,
}

/// One `(dataset, seed)` cell of the expanded matrix — the unit of artifact
/// sharing and of parallel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunGroup {
    /// Index into [`ScenarioSpec::datasets`].
    pub dataset_index: usize,
    /// The run seed.
    pub seed: u64,
}

impl ScenarioSpec {
    /// A scenario over `datasets` with the default axes: GCN, all five
    /// methods, [`DEFAULT_SEEDS`], full threat grid.
    pub fn new(name: impl Into<String>, datasets: Vec<DatasetSpec>, config: PpfrConfig) -> Self {
        Self {
            name: name.into(),
            datasets,
            models: vec![ModelKind::Gcn],
            methods: Method::ALL.to_vec(),
            seeds: DEFAULT_SEEDS.to_vec(),
            config,
            threat_models: None,
            cell_budget: None,
            max_cell_attempts: 2,
        }
    }

    /// Sets the per-cell work budget (cooperative checkpoint units).
    pub fn with_cell_budget(mut self, units: u64) -> Self {
        self.cell_budget = Some(units);
        self
    }

    /// Sets the total attempts per cell (first try included).
    pub fn with_max_cell_attempts(mut self, attempts: u32) -> Self {
        self.max_cell_attempts = attempts;
        self
    }

    /// Sets the architecture axis.
    pub fn with_models(mut self, models: &[ModelKind]) -> Self {
        self.models = models.to_vec();
        self
    }

    /// Sets the method axis.
    pub fn with_methods(mut self, methods: &[Method]) -> Self {
        self.methods = methods.to_vec();
        self
    }

    /// Sets the seed axis.
    pub fn with_seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Sets the heterophilic-perturbation ratio γ knob.
    pub fn with_perturb_ratio(mut self, gamma: f64) -> Self {
        self.config.perturb_ratio = gamma;
        self
    }

    /// Sets the edge-DP budget ε knob.
    pub fn with_dp_epsilon(mut self, epsilon: f64) -> Self {
        self.config.dp_epsilon = epsilon;
        self
    }

    /// Restricts the audit to the named threat models.
    pub fn with_threat_models(mut self, names: &[&str]) -> Self {
        self.threat_models = Some(names.iter().map(|n| n.to_string()).collect());
        self
    }

    /// The pipeline configuration of one run: the base config with its RNG
    /// seed replaced by the run seed.
    pub fn config_for_seed(&self, seed: u64) -> PpfrConfig {
        PpfrConfig {
            seed,
            ..self.config.clone()
        }
    }

    /// Expands the `(dataset, seed)` axes into run groups, datasets-major so
    /// the report orders like the paper's tables.
    pub fn groups(&self) -> Vec<RunGroup> {
        let mut groups = Vec::with_capacity(self.datasets.len() * self.seeds.len());
        for dataset_index in 0..self.datasets.len() {
            for &seed in &self.seeds {
                groups.push(RunGroup {
                    dataset_index,
                    seed,
                });
            }
        }
        groups
    }

    /// Total number of runs in the expanded matrix.
    pub fn n_runs(&self) -> usize {
        self.datasets.len() * self.models.len() * self.methods.len() * self.seeds.len()
    }

    /// Rejects empty axes, duplicate seeds and duplicate dataset names —
    /// duplicates would make two runs indistinguishable in the aggregation
    /// (cells are keyed by the dataset name string), silently doubling `n`.
    pub fn validate(&self) -> Result<(), String> {
        if self.datasets.is_empty()
            || self.models.is_empty()
            || self.methods.is_empty()
            || self.seeds.is_empty()
        {
            return Err(format!("scenario '{}' has an empty axis", self.name));
        }
        let mut seen = std::collections::HashSet::new();
        for &seed in &self.seeds {
            if !seen.insert(seed) {
                return Err(format!("scenario '{}' repeats seed {seed}", self.name));
            }
        }
        let mut names = std::collections::HashSet::new();
        for spec in &self.datasets {
            if !names.insert(spec.name) {
                return Err(format!(
                    "scenario '{}' repeats dataset '{}'",
                    self.name, spec.name
                ));
            }
        }
        if self.max_cell_attempts == 0 {
            return Err(format!(
                "scenario '{}' allows zero cell attempts",
                self.name
            ));
        }
        Ok(())
    }
}

/// The weak-homophily twin of [`two_block_synthetic`], used by the stock
/// small scenarios so the matrix spans both homophily regimes the paper
/// contrasts (Tables IV vs V).
pub fn two_block_weak() -> DatasetSpec {
    DatasetSpec {
        name: "two-block-weak",
        target_homophily: 0.62,
        feature_signal: 0.35,
        ..two_block_synthetic()
    }
}

/// The cheap configuration the small stock scenarios run with: smoke epochs
/// shortened further so a full 2 × 5 × 2 matrix stays test-sized.
fn small_config() -> PpfrConfig {
    PpfrConfig {
        vanilla_epochs: 40,
        influence_cg_iters: 8,
        ..PpfrConfig::smoke()
    }
}

impl ScenarioSpec {
    /// The golden-regression scenario: 2 small SBM datasets × GCN × all five
    /// methods × 2 fixed seeds.  `tests/golden/golden_small.json` pins its
    /// aggregated metrics.
    pub fn golden_small() -> Self {
        ScenarioSpec::new(
            "golden-small",
            vec![two_block_synthetic(), two_block_weak()],
            small_config(),
        )
        .with_seeds(&[7, 11])
    }

    /// The benchmark scenario recorded in `BENCH_kernels.json`: the
    /// acceptance-floor 2 datasets × 5 methods × 3 seeds matrix.
    pub fn bench_small() -> Self {
        ScenarioSpec::new(
            "bench-small",
            vec![two_block_synthetic(), two_block_weak()],
            small_config(),
        )
    }
}

/// Named stock scenarios shared by the `exp_*` binaries, benches and tests.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioRegistry;

impl ScenarioRegistry {
    /// Names accepted by [`ScenarioRegistry::get`].
    pub const NAMES: [&'static str; 4] = [
        "golden-small",
        "bench-small",
        "tables-high-homophily",
        "tables-weak-homophily",
    ];

    /// Builds a named scenario at the requested experiment scale (the small
    /// stock scenarios ignore the scale — they are already small).
    pub fn get(name: &str, scale: ExperimentScale) -> Option<ScenarioSpec> {
        match name {
            "golden-small" => Some(ScenarioSpec::golden_small()),
            "bench-small" => Some(ScenarioSpec::bench_small()),
            "tables-high-homophily" => Some(
                ScenarioSpec::new(
                    "tables-high-homophily",
                    ppfr_core::experiments::high_homophily_specs(scale),
                    scale.config(),
                )
                .with_models(&ModelKind::ALL),
            ),
            "tables-weak-homophily" => Some(ScenarioSpec::new(
                "tables-weak-homophily",
                ppfr_core::experiments::weak_homophily_specs(scale),
                scale.config(),
            )),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_counts_match_the_axes() {
        let spec = ScenarioSpec::bench_small();
        assert_eq!(spec.datasets.len(), 2);
        assert_eq!(spec.methods.len(), 5);
        assert_eq!(spec.seeds.len(), 3);
        assert_eq!(spec.groups().len(), 6);
        assert_eq!(spec.n_runs(), 30);
        spec.validate().expect("stock scenario is valid");
    }

    #[test]
    fn groups_are_datasets_major_and_seed_ordered() {
        let spec = ScenarioSpec::golden_small();
        let groups = spec.groups();
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].dataset_index, 0);
        assert_eq!(groups[0].seed, 7);
        assert_eq!(groups[1].seed, 11);
        assert_eq!(groups[2].dataset_index, 1);
    }

    #[test]
    fn validation_rejects_duplicate_seeds_datasets_and_empty_axes() {
        let dup = ScenarioSpec::golden_small().with_seeds(&[3, 3]);
        assert!(dup.validate().is_err());
        let empty = ScenarioSpec::golden_small().with_methods(&[]);
        assert!(empty.validate().is_err());
        let mut twice = ScenarioSpec::golden_small();
        twice.datasets = vec![two_block_synthetic(), two_block_synthetic()];
        assert!(twice.validate().is_err(), "duplicate dataset names");
        let no_attempts = ScenarioSpec::golden_small().with_max_cell_attempts(0);
        assert!(no_attempts.validate().is_err(), "zero cell attempts");
    }

    #[test]
    fn resilience_knobs_default_to_the_exact_protocol() {
        let spec = ScenarioSpec::golden_small();
        assert_eq!(spec.cell_budget, None, "budget must be opt-in");
        assert_eq!(spec.max_cell_attempts, 2);
        let bounded = ScenarioSpec::golden_small()
            .with_cell_budget(500)
            .with_max_cell_attempts(3);
        assert_eq!(bounded.cell_budget, Some(500));
        assert_eq!(bounded.max_cell_attempts, 3);
        bounded.validate().expect("bounded spec is valid");
    }

    #[test]
    fn registry_resolves_every_advertised_name() {
        for name in ScenarioRegistry::NAMES {
            let spec = ScenarioRegistry::get(name, ExperimentScale::Smoke)
                .unwrap_or_else(|| panic!("{name} not resolvable"));
            spec.validate().expect("stock scenarios validate");
        }
        assert!(ScenarioRegistry::get("nope", ExperimentScale::Smoke).is_none());
    }

    #[test]
    fn knob_builders_reach_the_per_seed_config() {
        let spec = ScenarioSpec::golden_small()
            .with_perturb_ratio(1.5)
            .with_dp_epsilon(2.0);
        let cfg = spec.config_for_seed(99);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.perturb_ratio, 1.5);
        assert_eq!(cfg.dp_epsilon, 2.0);
    }
}
