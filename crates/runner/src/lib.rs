//! # `ppfr_runner` — multi-seed scenario runner with artifact caching
//!
//! The paper reports every number of Tables III–V and Figs. 4–7 as an
//! average over repeated runs.  This crate turns the single-seed experiment
//! drivers of `ppfr_core` into that protocol:
//!
//! * a [`ScenarioSpec`] declares the run matrix — datasets × models ×
//!   methods × seeds — plus the perturbation knobs and an optional
//!   threat-model subset, and the [`ScenarioRegistry`] names the stock
//!   scenarios shared by the `exp_*` binaries and the golden suite;
//! * the executor ([`run_scenario`], serial twin [`run_scenario_serial`])
//!   runs `(dataset, seed)` groups in parallel through
//!   `ppfr_linalg::parallel` — thread count never changes the report, which
//!   is pinned by forced-`PPFR_NUM_THREADS` tests like the kernel layer;
//!   a panicking cell is quarantined into the report's `failed_cells`
//!   section (after deterministic retries) instead of aborting the matrix,
//!   and per-cell budgets degrade the estimators gracefully, recorded in
//!   the `degraded` section (see `ppfr_resilience`);
//! * the [`ArtifactCache`] shares per-`(dataset, seed)` artifacts (the
//!   generated graph, the threat auditor's pair sample + shadow bundle, the
//!   trained vanilla checkpoints) across methods and across re-runs, so
//!   warm executions skip straight to method-specific training;
//! * aggregation produces typed [`RunSummary`] rows — `mean ± std` plus
//!   min/max per metric — serialized as stable, sorted JSON
//!   ([`MatrixReport::to_json`]), which `tests/golden_metrics.rs` pins
//!   against committed snapshots.
//!
//! ```no_run
//! use ppfr_runner::{ArtifactCache, ScenarioSpec, run_scenario};
//!
//! let cache = ArtifactCache::new();
//! let report = run_scenario(&ScenarioSpec::bench_small(), &cache).expect("valid spec");
//! println!("{}", report.to_table_string());
//! let warm = run_scenario(&ScenarioSpec::bench_small(), &cache).expect("valid spec");
//! assert_eq!(report.to_json(), warm.to_json()); // cache-warm, bit-identical
//! ```

#![forbid(unsafe_code)]

mod aggregate;
mod cache;
mod multi;
mod runner;
mod scale;
mod spec;

pub use aggregate::{aggregate, MatrixReport, MetricStats, RunSummary, SeedRun};
pub use cache::{ArtifactCache, CacheStats};
pub use multi::{
    accuracy_view, fig4_view, fig6_multi, table3_view, CurvePointStats, CurveStats, Fig6MultiResult,
};
pub use runner::{run_scenario, run_scenario_serial};
pub use scale::{run_scale_scenario, ScaleReport, ScaleSpec};
pub use spec::{two_block_weak, RunGroup, ScenarioRegistry, ScenarioSpec, DEFAULT_SEEDS};
