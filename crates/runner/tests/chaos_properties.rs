//! Property test over seeded fault plans: for ANY subset of cells injected
//! with an always-firing panic, at ANY forced thread count, the report's
//! `failed_cells` section is exactly the injected set and every surviving
//! cell is bit-identical to the fault-free baseline.

use ppfr_core::{Method, PpfrConfig};
use ppfr_datasets::two_block_synthetic;
use ppfr_linalg::parallel::with_forced_threads;
use ppfr_resilience::{with_fault_plan, FaultKind, FaultPlan, FaultSpec};
use ppfr_runner::{run_scenario, ArtifactCache, MatrixReport, ScenarioSpec};
use proptest::prelude::*;
use std::sync::OnceLock;

/// 1 dataset × GCN × {Vanilla, Reg} × 2 seeds — 4 cells, the smallest matrix
/// with both a seed axis and a method axis to aim faults at.
fn prop_scenario() -> ScenarioSpec {
    ScenarioSpec::new(
        "chaos-prop",
        vec![two_block_synthetic()],
        PpfrConfig {
            vanilla_epochs: 10,
            influence_cg_iters: 3,
            ..PpfrConfig::smoke()
        },
    )
    .with_methods(&[Method::Vanilla, Method::Reg])
    .with_seeds(&[7, 11])
}

/// Every `(cell key, dataset, model, method, seed)` of [`prop_scenario`]'s
/// matrix, in expansion order.
fn all_cells() -> Vec<(String, &'static str, &'static str, &'static str, u64)> {
    let mut cells = Vec::new();
    for seed in [7u64, 11] {
        for method in ["Vanilla", "Reg"] {
            cells.push((
                format!("two-block:s{seed}:GCN:{method}"),
                "two-block",
                "GCN",
                method,
                seed,
            ));
        }
    }
    cells
}

/// The fault-free baseline, computed once per process.
fn baseline() -> &'static MatrixReport {
    static BASELINE: OnceLock<MatrixReport> = OnceLock::new();
    BASELINE.get_or_init(|| {
        run_scenario(&prop_scenario(), &ArtifactCache::new()).expect("prop scenario is valid")
    })
}

proptest! {
    // Each case executes the full (small) matrix, so keep the case count low;
    // the mask × thread-count space is only 32 points anyway.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn failed_cells_are_exactly_the_injected_set_and_survivors_are_untouched(
        mask in 0u32..16,
        plan_seed in 0u64..u64::MAX,
        threads_pick in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_pick];
        let clean = baseline();
        let cells = all_cells();
        let injected: Vec<_> = cells
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, cell)| cell)
            .collect();
        let mut plan = FaultPlan::empty(plan_seed);
        for (key, ..) in &injected {
            plan = plan.with(FaultSpec::always("cell", key, FaultKind::Panic));
        }
        let report = with_fault_plan(plan, || {
            with_forced_threads(threads, || {
                run_scenario(&prop_scenario(), &ArtifactCache::new())
                    .expect("faulted run still reports")
            })
        });

        // `failed_cells` is exactly the injected set (sorted canonically).
        let mut want: Vec<(&str, &str, &str, u64)> = injected
            .iter()
            .map(|(_, d, m, meth, s)| (*d, *m, *meth, *s))
            .collect();
        want.sort_unstable();
        let got: Vec<(&str, &str, &str, u64)> = report
            .failed_cells
            .iter()
            .map(|f| (f.dataset.as_str(), f.model.as_str(), f.method.as_str(), f.seed))
            .collect();
        prop_assert_eq!(got, want, "failed set mismatch at {} threads", threads);

        // Every survivor is bit-identical to the fault-free baseline.
        prop_assert_eq!(
            report.runs.len() + report.failed_cells.len(),
            cells.len(),
            "every cell is either a run or a quarantined failure"
        );
        for run in &report.runs {
            let reference = clean
                .runs
                .iter()
                .find(|r| {
                    (&r.dataset, &r.model, &r.method, r.seed)
                        == (&run.dataset, &run.model, &run.method, run.seed)
                })
                .expect("survivor exists in the baseline");
            prop_assert_eq!(
                serde_json::to_string(run).expect("serialises"),
                serde_json::to_string(reference).expect("serialises"),
                "surviving cell diverged from the baseline"
            );
        }
    }
}
