//! Chaos suite: the executor under injected faults.
//!
//! Every test installs a seeded [`FaultPlan`] through `with_fault_plan`
//! (which serialises plans process-wide, so the suite is safe under the
//! default parallel test harness) and pins three properties:
//!
//! * **zero interference** — a run with no plan, and a run with an armed but
//!   empty plan, are bit-identical: the chaos machinery observes, it never
//!   perturbs;
//! * **blast-radius containment** — an injected cell/group panic quarantines
//!   exactly the targeted cells into `failed_cells`, and every surviving
//!   cell is bit-identical to the clean run, at forced thread counts 1
//!   and 4;
//! * **self-healing** — transient errors are retried away, corrupted cached
//!   artifacts are detected by checksum and rebuilt, and budget exhaustion
//!   degrades gracefully with every downgrade flagged in `degraded`.

use ppfr_core::{Method, PpfrConfig};
use ppfr_datasets::two_block_synthetic;
use ppfr_linalg::parallel::with_forced_threads;
use ppfr_resilience::{counters, with_fault_plan, FaultKind, FaultPlan, FaultSpec};
use ppfr_runner::{
    run_scenario, two_block_weak, ArtifactCache, MatrixReport, ScenarioSpec, SeedRun,
};
use std::sync::{Mutex, MutexGuard};

/// The fault plan is process-global, so a "clean" run in one test must not
/// overlap another test's armed plan: every test takes this lock first.
static SUITE: Mutex<()> = Mutex::new(());

fn suite_lock() -> MutexGuard<'static, ()> {
    SUITE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The suite's scenario: 2 small SBM datasets × GCN × {Vanilla, Reg} ×
/// 1 seed — 4 cells in 2 groups, small enough that every test re-runs it
/// from a fresh cache several times.
fn chaos_scenario() -> ScenarioSpec {
    ScenarioSpec::new(
        "chaos",
        vec![two_block_synthetic(), two_block_weak()],
        PpfrConfig {
            vanilla_epochs: 10,
            influence_cg_iters: 3,
            ..PpfrConfig::smoke()
        },
    )
    .with_methods(&[Method::Vanilla, Method::Reg])
    .with_seeds(&[7])
}

/// The clean (fault-free, fresh-cache) report of [`chaos_scenario`].
fn clean_report() -> MatrixReport {
    run_scenario(&chaos_scenario(), &ArtifactCache::new()).expect("chaos scenario is valid")
}

fn run_json(run: &SeedRun) -> String {
    serde_json::to_string(run).expect("runs serialise")
}

/// Asserts every run in `report` is bit-identical to the same
/// `(dataset, model, method, seed)` run of the clean baseline.
fn assert_survivors_match(report: &MatrixReport, clean: &MatrixReport) {
    for run in &report.runs {
        let reference = clean
            .runs
            .iter()
            .find(|r| {
                (&r.dataset, &r.model, &r.method, r.seed)
                    == (&run.dataset, &run.model, &run.method, run.seed)
            })
            .expect("surviving cell exists in the clean run");
        assert_eq!(
            run_json(run),
            run_json(reference),
            "{}:{}:{} diverged from the clean run",
            run.dataset,
            run.model,
            run.method
        );
    }
}

#[test]
fn armed_empty_plan_is_bit_identical_to_the_disarmed_run() {
    let _suite = suite_lock();
    let clean = clean_report();
    let armed = with_fault_plan(FaultPlan::empty(0xc0ffee), clean_report);
    assert_eq!(
        clean.to_json(),
        armed.to_json(),
        "an armed-but-empty plan must not perturb the run"
    );
    assert!(clean.failed_cells.is_empty() && clean.degraded.is_empty());
}

#[test]
fn injected_cell_panic_quarantines_only_that_cell() {
    let _suite = suite_lock();
    let clean = clean_report();
    let spec = chaos_scenario();
    let target = "two-block:s7:GCN:Reg";
    let plan = || FaultPlan::empty(11).with(FaultSpec::always("cell", target, FaultKind::Panic));

    let mut reports = Vec::new();
    for threads in [1, 4] {
        let panics_before = counters().cell_panics;
        let report = with_fault_plan(plan(), || {
            with_forced_threads(threads, || {
                run_scenario(&spec, &ArtifactCache::new()).expect("faulted run still reports")
            })
        });
        assert_eq!(
            report.failed_cells.len(),
            1,
            "exactly the targeted cell fails at {threads} threads"
        );
        let failed = &report.failed_cells[0];
        assert_eq!(
            (
                failed.dataset.as_str(),
                failed.model.as_str(),
                failed.method.as_str(),
                failed.seed
            ),
            ("two-block", "GCN", "Reg", 7)
        );
        assert_eq!(failed.attempts, 2, "the always-fault defeats every retry");
        assert!(
            failed.error.contains("injected fault"),
            "panic message preserved: {}",
            failed.error
        );
        assert_eq!(report.runs.len(), 3, "every other cell completed");
        assert_survivors_match(&report, &clean);
        assert!(
            counters().cell_panics > panics_before,
            "quarantined panics are tallied"
        );
        reports.push(report.to_json());
    }
    assert_eq!(
        reports[0], reports[1],
        "the faulted report is thread-count-invariant"
    );
}

#[test]
fn injected_group_panic_quarantines_every_cell_of_the_group() {
    let _suite = suite_lock();
    let clean = clean_report();
    let spec = chaos_scenario();
    let plan =
        FaultPlan::empty(13).with(FaultSpec::always("group", "two-block:s7", FaultKind::Panic));
    let report = with_fault_plan(plan, || {
        run_scenario(&spec, &ArtifactCache::new()).expect("faulted run still reports")
    });
    assert_eq!(
        report.failed_cells.len(),
        2,
        "the whole two-block group is quarantined"
    );
    for failed in &report.failed_cells {
        assert_eq!(failed.dataset, "two-block");
        assert_eq!(failed.attempts, 0, "the group never reached its cells");
        assert!(failed.error.contains("group panicked"), "{}", failed.error);
    }
    assert_eq!(report.runs.len(), 2, "the other group completed");
    assert_survivors_match(&report, &clean);
}

#[test]
fn transient_cell_error_is_retried_away() {
    let _suite = suite_lock();
    let clean = clean_report();
    let spec = chaos_scenario();
    let plan = FaultPlan::empty(17).with(FaultSpec::times(
        "cell",
        "two-block:s7:GCN:Reg",
        FaultKind::Error,
        1,
    ));
    let retries_before = counters().retries;
    let report = with_fault_plan(plan, || {
        run_scenario(&spec, &ArtifactCache::new()).expect("faulted run still reports")
    });
    assert!(
        report.failed_cells.is_empty(),
        "a once-only fault must not survive the retry: {:?}",
        report.failed_cells
    );
    assert!(counters().retries > retries_before, "the retry was taken");
    // The fault fires before any cell work, so the retried run is
    // bit-identical to a never-faulted one.
    assert_eq!(report.to_json(), clean.to_json());
}

#[test]
fn corrupted_cached_artifacts_are_detected_and_rebuilt() {
    let _suite = suite_lock();
    let spec = chaos_scenario();
    let cache = ArtifactCache::new();
    let cold = run_scenario(&spec, &cache).expect("cold run");
    assert_eq!(cache.corruption_rebuilds(), 0);

    // Corrupt every cached bundle the warm run touches: the checksum
    // revalidation must catch each one and rebuild it, leaving the report
    // bit-identical to the cold run.
    let plan = FaultPlan::empty(19).with(FaultSpec::always(
        "artifact",
        "",
        FaultKind::CorruptArtifact,
    ));
    let warm = with_fault_plan(plan, || run_scenario(&spec, &cache).expect("warm run"));
    assert!(
        cache.corruption_rebuilds() >= 2,
        "each corrupted bundle is rebuilt: {}",
        cache.corruption_rebuilds()
    );
    assert_eq!(
        cold.to_json(),
        warm.to_json(),
        "a detected corruption must never skew the metrics"
    );
}

#[test]
fn budget_exhaustion_fault_walks_the_degradation_ladder() {
    let _suite = suite_lock();
    let spec = chaos_scenario().with_methods(&[Method::Vanilla, Method::Ppfr]);
    let plan = || {
        FaultPlan::empty(23).with(FaultSpec::always(
            "budget",
            "two-block:s7:GCN:PPFR",
            FaultKind::ExhaustBudget,
        ))
    };
    let mut reports = Vec::new();
    for threads in [1, 4] {
        let report = with_fault_plan(plan(), || {
            with_forced_threads(threads, || {
                run_scenario(&spec, &ArtifactCache::new()).expect("faulted run still reports")
            })
        });
        assert!(report.failed_cells.is_empty(), "degradation is not failure");
        assert_eq!(report.runs.len(), 4, "every cell completed");
        let sites: Vec<(&str, &str)> = report
            .degraded
            .iter()
            .map(|d| (d.site.as_str(), d.to.as_str()))
            .collect();
        assert!(
            sites.contains(&("influence", "lissa")),
            "dense CG must fall back to LiSSA: {sites:?}"
        );
        assert!(
            sites.contains(&("pair_sample", "capped")),
            "the pair sample must fall back to the cap: {sites:?}"
        );
        for d in &report.degraded {
            assert_eq!(
                (
                    d.dataset.as_str(),
                    d.model.as_str(),
                    d.method.as_str(),
                    d.seed
                ),
                ("two-block", "GCN", "PPFR", 7),
                "only the targeted cell degrades"
            );
        }
        reports.push(report.to_json());
    }
    assert_eq!(
        reports[0], reports[1],
        "degraded runs are thread-count-invariant"
    );
}
