//! Property tests for the scenario runner's aggregation and artifact cache:
//!
//! * `mean ± std` is invariant to the order runs complete in;
//! * degenerate inputs (single seed, constant metric) never produce NaN;
//! * cache-hit (warm) executions are bit-identical to cold executions.

use ppfr_core::{Evaluation, Method, MethodDeltas, PpfrConfig};
use ppfr_datasets::two_block_synthetic;
use ppfr_runner::{
    aggregate, run_scenario, run_scenario_serial, ArtifactCache, ScenarioSpec, SeedRun,
};
use proptest::prelude::*;

fn synthetic_run(dataset: usize, method: usize, seed: u64, value: f64) -> SeedRun {
    SeedRun {
        dataset: format!("ds{dataset}"),
        model: "GCN".to_string(),
        method: format!("m{method}"),
        seed,
        evaluation: Evaluation {
            accuracy: value,
            bias: value * 0.1,
            risk_auc: 0.5 + value * 0.4,
            risk_gap: value.abs(),
            auc_per_distance: vec![("cosine".to_string(), 0.5 + value * 0.3)],
            worst_risk_auc: 0.5 + value * 0.45,
            auc_per_threat: vec![("posteriors".to_string(), 0.5 + value * 0.2)],
        },
        deltas: MethodDeltas {
            d_acc: value * 0.01,
            d_bias: -value * 0.3,
            d_risk: value * 0.05,
            delta: -value,
        },
    }
}

/// Deterministic permutation: rotate by `shift` then reverse alternate
/// halves, enough to scramble any completion order.
fn permute<T>(mut items: Vec<T>, shift: usize) -> Vec<T> {
    if items.is_empty() {
        return items;
    }
    let shift = shift % items.len();
    items.rotate_left(shift);
    let mid = items.len() / 2;
    items[..mid].reverse();
    items
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aggregation_is_invariant_to_completion_order(
        values in proptest::collection::vec(0.0f64..1.0, 8),
        shift in 0usize..17,
    ) {
        // 2 datasets × 2 methods × 2 seeds, metric values drawn at random.
        let mut runs = Vec::new();
        let mut v = values.iter().copied();
        for dataset in 0..2 {
            for method in 0..2 {
                for seed in [3u64, 9] {
                    runs.push(synthetic_run(dataset, method, seed, v.next().unwrap()));
                }
            }
        }
        let baseline = aggregate("prop", &[3, 9], runs.clone());
        let shuffled = aggregate("prop", &[9, 3], permute(runs, shift));
        prop_assert_eq!(baseline.to_json(), shuffled.to_json());
    }

    #[test]
    fn degenerate_inputs_stay_nan_free(
        value in -2.0f64..2.0,
        n_seeds in 1usize..5,
    ) {
        // Constant metric over every seed (and the single-seed case).
        let runs: Vec<SeedRun> = (0..n_seeds)
            .map(|s| synthetic_run(0, 0, s as u64, value))
            .collect();
        let seeds: Vec<u64> = (0..n_seeds as u64).collect();
        let report = aggregate("degenerate", &seeds, runs);
        for summary in &report.summaries {
            let s = &summary.stats;
            prop_assert!(s.mean.is_finite(), "{}: mean NaN", summary.metric);
            prop_assert!(s.std.is_finite(), "{}: std NaN", summary.metric);
            // `(n·x)/n` may round away from `x`, so the deviation is not
            // exactly zero — but it must stay at rounding-error scale.
            let tol = 1e-12 * s.mean.abs().max(1.0);
            prop_assert!(
                s.std <= tol,
                "{}: constant metric has std {} > {tol}",
                summary.metric,
                s.std
            );
            prop_assert_eq!(s.min, s.max);
            prop_assert_eq!(s.n, n_seeds);
        }
    }
}

/// A cache-warm re-run reuses every artifact and still reproduces the cold
/// report bit for bit; and the serial twin agrees with the parallel
/// executor on the same cache.
#[test]
fn warm_cache_runs_are_bit_identical_to_cold() {
    let spec = ScenarioSpec::new(
        "cache-prop",
        vec![two_block_synthetic()],
        PpfrConfig {
            vanilla_epochs: 10,
            influence_cg_iters: 3,
            ..PpfrConfig::smoke()
        },
    )
    .with_methods(&[Method::Vanilla, Method::Ppfr])
    .with_seeds(&[7, 11]);

    let cache = ArtifactCache::new();
    let cold = run_scenario(&spec, &cache).expect("cache-prop spec is valid");
    assert_eq!(cache.misses(), 2);
    assert_eq!(cache.hits(), 0);

    let warm = run_scenario(&spec, &cache).expect("cache-prop spec is valid");
    assert_eq!(cache.misses(), 2, "warm run must not rebuild artifacts");
    assert_eq!(cache.hits(), 2);
    assert_eq!(cold.to_json(), warm.to_json(), "warm != cold");

    let serial_warm = run_scenario_serial(&spec, &cache).expect("cache-prop spec is valid");
    assert_eq!(cold.to_json(), serial_warm.to_json(), "serial warm != cold");
}
