//! Neural-network primitives shared by every GNN in the workspace:
//! the weighted softmax-cross-entropy loss of Eq. (6)/(7), the Adam and SGD
//! optimisers, and finite-difference gradient-check helpers used by tests.

#![forbid(unsafe_code)]

mod gradcheck;
mod loss;
mod optim;

pub use gradcheck::{central_difference, max_relative_error};
pub use loss::{accuracy, weighted_cross_entropy, weighted_cross_entropy_into, CrossEntropy};
pub use optim::{Adam, Optimizer, Sgd};
