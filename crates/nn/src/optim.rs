//! First-order optimisers operating on flat parameter vectors.

/// A first-order optimiser over a flat `Vec<f64>` parameter vector.
pub trait Optimizer {
    /// Applies one update `params ← params − step(grads)`.
    fn step(&mut self, params: &mut [f64], grads: &[f64]);

    /// Resets any internal state (moment estimates, step counters).
    fn reset(&mut self);
}

/// Plain stochastic gradient descent with optional weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// L2 weight decay coefficient.
    pub weight_decay: f64,
}

impl Sgd {
    /// New SGD optimiser.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            weight_decay: 0.0,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len());
        for (p, &g) in params.iter_mut().zip(grads.iter()) {
            *p -= self.lr * (g + self.weight_decay * *p);
        }
    }

    fn reset(&mut self) {}
}

/// Adam optimiser (Kingma & Ba) with the standard bias correction, the
/// optimiser used for every GNN in the paper's experimental setup.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    /// L2 weight decay coefficient.
    pub weight_decay: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// New Adam optimiser with the usual defaults (β₁=0.9, β₂=0.999).
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 5e-4,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Builder-style override of the weight decay.
    pub fn with_weight_decay(mut self, wd: f64) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len());
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i] + self.weight_decay * params[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)² with each optimiser and check convergence.
    fn minimise(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = vec![10.0];
        for _ in 0..steps {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let x = minimise(&mut sgd, 200);
        assert!((x - 3.0).abs() < 1e-6, "SGD failed to converge: {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.2).with_weight_decay(0.0);
        let x = minimise(&mut adam, 500);
        assert!((x - 3.0).abs() < 1e-3, "Adam failed to converge: {x}");
    }

    #[test]
    fn weight_decay_pulls_parameters_towards_zero() {
        let mut sgd = Sgd {
            lr: 0.1,
            weight_decay: 0.5,
        };
        let mut x = vec![1.0];
        for _ in 0..100 {
            sgd.step(&mut x, &[0.0]);
        }
        assert!(
            x[0].abs() < 1e-2,
            "weight decay should shrink parameters, got {}",
            x[0]
        );
    }

    #[test]
    fn adam_reset_clears_state() {
        let mut adam = Adam::new(0.1);
        let mut x = vec![1.0, 2.0];
        adam.step(&mut x, &[0.1, 0.1]);
        assert_eq!(adam.m.len(), 2);
        adam.reset();
        assert!(adam.m.is_empty());
        assert_eq!(adam.t, 0);
    }
}
