//! Weighted softmax cross-entropy (Eqs. 6–7 of the paper) and accuracy.

use ppfr_linalg::{row_softmax, row_softmax_into, Matrix};

/// Result of evaluating the weighted cross-entropy: the scalar loss, the
/// softmax probabilities and the gradient w.r.t. the logits.
#[derive(Debug, Clone)]
pub struct CrossEntropy {
    /// Mean weighted negative log-likelihood over the supervised nodes.
    pub loss: f64,
    /// Softmax probabilities for every node (not just supervised ones).
    pub probs: Matrix,
    /// Gradient of the loss w.r.t. the logits (zero on unsupervised rows).
    pub d_logits: Matrix,
}

/// Weighted softmax cross-entropy over the nodes in `node_ids`.
///
/// `weights[k]` multiplies the loss of `node_ids[k]` — this is the `(1 + w_v)`
/// factor of Eq. (7); pass all-ones for vanilla training (Eq. 6).  The loss is
/// normalised by the number of supervised nodes (not by the weight sum) so
/// that re-weighting actually changes the optimum, mirroring the paper.
pub fn weighted_cross_entropy(
    logits: &Matrix,
    labels: &[usize],
    node_ids: &[usize],
    weights: &[f64],
) -> CrossEntropy {
    let probs = row_softmax(logits);
    let mut d_logits = Matrix::zeros(logits.rows(), logits.cols());
    let loss = ce_core(logits, labels, node_ids, weights, &probs, &mut d_logits);
    CrossEntropy {
        loss,
        probs,
        d_logits,
    }
}

/// [`weighted_cross_entropy`] writing the probabilities and logit gradient
/// into caller-owned buffers (resized as needed; allocation-free when shapes
/// already match) and returning the scalar loss.  Bit-identical to the
/// allocating entry point.
pub fn weighted_cross_entropy_into(
    logits: &Matrix,
    labels: &[usize],
    node_ids: &[usize],
    weights: &[f64],
    probs: &mut Matrix,
    d_logits: &mut Matrix,
) -> f64 {
    row_softmax_into(logits, probs);
    d_logits.resize_to(logits.rows(), logits.cols());
    d_logits.as_mut_slice().fill(0.0);
    ce_core(logits, labels, node_ids, weights, probs, d_logits)
}

/// Shared loss/gradient core: assumes `probs = row_softmax(logits)` and
/// `d_logits` zero-initialised at the logits' shape.
fn ce_core(
    logits: &Matrix,
    labels: &[usize],
    node_ids: &[usize],
    weights: &[f64],
    probs: &Matrix,
    d_logits: &mut Matrix,
) -> f64 {
    assert_eq!(
        node_ids.len(),
        weights.len(),
        "one weight per supervised node"
    );
    assert_eq!(logits.rows(), labels.len(), "one label per node");
    let mut loss = 0.0;
    let norm = node_ids.len().max(1) as f64;
    for (&v, &w) in node_ids.iter().zip(weights.iter()) {
        let y = labels[v];
        let p = probs[(v, y)].max(1e-12);
        loss += -w * p.ln();
        for c in 0..logits.cols() {
            let indicator = if c == y { 1.0 } else { 0.0 };
            d_logits[(v, c)] = w * (probs[(v, c)] - indicator) / norm;
        }
    }
    loss / norm
}

/// Classification accuracy of `logits` against `labels` restricted to
/// `node_ids` (e.g. the test split).
pub fn accuracy(logits: &Matrix, labels: &[usize], node_ids: &[usize]) -> f64 {
    if node_ids.is_empty() {
        return 0.0;
    }
    let pred = logits.row_argmax();
    let correct = node_ids.iter().filter(|&&v| pred[v] == labels[v]).count();
    correct as f64 / node_ids.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_low_when_logits_match_labels() {
        let logits = Matrix::from_rows(&[vec![10.0, 0.0], vec![0.0, 10.0]]);
        let labels = vec![0, 1];
        let ce = weighted_cross_entropy(&logits, &labels, &[0, 1], &[1.0, 1.0]);
        assert!(
            ce.loss < 1e-3,
            "confident correct predictions should have tiny loss"
        );
        let wrong = weighted_cross_entropy(&logits, &[1, 0], &[0, 1], &[1.0, 1.0]);
        assert!(
            wrong.loss > 5.0,
            "confident wrong predictions should have large loss"
        );
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[vec![0.5, -0.3, 0.1], vec![-1.0, 0.2, 0.7]]);
        let labels = vec![2, 0];
        let ids = vec![0, 1];
        let w = vec![1.0, 0.5];
        let ce = weighted_cross_entropy(&logits, &labels, &ids, &w);
        let h = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus[(r, c)] += h;
                let mut minus = logits.clone();
                minus[(r, c)] -= h;
                let fp = weighted_cross_entropy(&plus, &labels, &ids, &w).loss;
                let fm = weighted_cross_entropy(&minus, &labels, &ids, &w).loss;
                let numeric = (fp - fm) / (2.0 * h);
                assert!(
                    (numeric - ce.d_logits[(r, c)]).abs() < 1e-6,
                    "({r},{c}): numeric {numeric} vs analytic {}",
                    ce.d_logits[(r, c)]
                );
            }
        }
    }

    #[test]
    fn unsupervised_rows_receive_zero_gradient() {
        let logits = Matrix::from_rows(&[vec![0.5, -0.3], vec![1.0, 2.0], vec![0.0, 0.0]]);
        let labels = vec![0, 1, 0];
        let ce = weighted_cross_entropy(&logits, &labels, &[1], &[1.0]);
        assert!(ce.d_logits.row(0).iter().all(|&v| v == 0.0));
        assert!(ce.d_logits.row(2).iter().all(|&v| v == 0.0));
        assert!(ce.d_logits.row(1).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn zero_weight_removes_a_node_from_the_loss() {
        let logits = Matrix::from_rows(&[vec![3.0, -1.0], vec![-2.0, 0.5]]);
        let labels = vec![1, 1];
        let with_node0 = weighted_cross_entropy(&logits, &labels, &[0, 1], &[0.0, 1.0]);
        let only_node1 = weighted_cross_entropy(&logits, &labels, &[1], &[1.0]);
        // Same gradient direction on node 1; node 0 contributes nothing.
        assert!(with_node0.d_logits.row(0).iter().all(|&v| v == 0.0));
        assert!(with_node0.loss > 0.0 && only_node1.loss > 0.0);
    }

    #[test]
    fn into_variant_matches_allocating_version_bitwise() {
        let logits = Matrix::from_rows(&[vec![0.5, -0.3, 0.1], vec![-1.0, 0.2, 0.7]]);
        let labels = vec![2, 0];
        let ids = vec![0, 1];
        let w = vec![1.0, 0.5];
        let ce = weighted_cross_entropy(&logits, &labels, &ids, &w);
        let mut probs = Matrix::zeros(9, 9);
        let mut d_logits = Matrix::zeros(0, 0);
        let loss =
            weighted_cross_entropy_into(&logits, &labels, &ids, &w, &mut probs, &mut d_logits);
        assert_eq!(loss.to_bits(), ce.loss.to_bits());
        assert_eq!(probs.as_slice(), ce.probs.as_slice());
        assert_eq!(d_logits.as_slice(), ce.d_logits.as_slice());
        // Reuse must fully overwrite stale contents.
        let loss2 =
            weighted_cross_entropy_into(&logits, &labels, &ids, &w, &mut probs, &mut d_logits);
        assert_eq!(loss2.to_bits(), ce.loss.to_bits());
        assert_eq!(d_logits.as_slice(), ce.d_logits.as_slice());
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let logits = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 2.0], vec![2.0, 0.0]]);
        let labels = vec![0, 1, 1];
        assert!((accuracy(&logits, &labels, &[0, 1, 2]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&logits, &labels, &[]), 0.0);
    }
}
