//! Finite-difference gradient checking used by the GNN backward-pass tests
//! and by the influence-function Hessian-vector products.

/// Central finite-difference approximation of the gradient of `f` at `x`.
pub fn central_difference(f: impl Fn(&[f64]) -> f64, x: &[f64], h: f64) -> Vec<f64> {
    let mut grad = vec![0.0; x.len()];
    let mut work = x.to_vec();
    for i in 0..x.len() {
        let orig = work[i];
        work[i] = orig + h;
        let fp = f(&work);
        work[i] = orig - h;
        let fm = f(&work);
        work[i] = orig;
        grad[i] = (fp - fm) / (2.0 * h);
    }
    grad
}

/// Maximum relative error between an analytic and a numeric gradient, using
/// `max(|a|, |b|, floor)` as the denominator so near-zero entries do not blow
/// up the ratio.
pub fn max_relative_error(analytic: &[f64], numeric: &[f64], floor: f64) -> f64 {
    assert_eq!(analytic.len(), numeric.len());
    analytic
        .iter()
        .zip(numeric.iter())
        .map(|(&a, &n)| (a - n).abs() / a.abs().max(n.abs()).max(floor))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_difference_recovers_quadratic_gradient() {
        // f(x) = sum i * x_i^2 → df/dx_i = 2 i x_i
        let f = |x: &[f64]| x.iter().enumerate().map(|(i, &v)| i as f64 * v * v).sum();
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let numeric = central_difference(f, &x, 1e-5);
        let analytic: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * i as f64 * v)
            .collect();
        assert!(max_relative_error(&analytic, &numeric, 1e-8) < 1e-6);
    }

    #[test]
    fn relative_error_uses_floor_for_tiny_values() {
        let err = max_relative_error(&[1e-15], &[0.0], 1e-6);
        assert!(
            err < 1e-8,
            "tiny absolute differences should not explode: {err}"
        );
    }
}
