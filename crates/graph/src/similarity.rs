//! Jaccard similarity between node neighbourhoods and its Laplacian.
//!
//! Following the paper (§III), the neighbour set used for Jaccard similarity
//! includes the node itself (the `A + I` normalisation makes `v_i ∈ N(i)`),
//! which is what makes `S_{i,j} > 0` for 1-hop pairs (Lemma V.1, case k=1).

use crate::{Graph, SparseMatrix};
use ppfr_linalg::par_rows;
use std::collections::BTreeSet;

/// Size of the intersection of two sorted slices.
fn intersection_size(a: &[usize], b: &[usize]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Jaccard similarity matrix `S` derived from the adjacency structure.
///
/// `S_{i,j} = |N(i) ∩ N(j)| / |N(i) ∪ N(j)|` where `N(i)` is the closed
/// neighbourhood `{i} ∪ neighbours(i)`.  Only pairs within two hops can be
/// non-zero (Lemma V.1), so the matrix is built by enumerating, for every
/// node `i`, the union of its neighbours' neighbourhoods.
///
/// The diagonal is excluded (a node's similarity with itself carries no
/// fairness signal and would only add a constant to the bias).
pub fn jaccard_similarity(graph: &Graph) -> SparseMatrix {
    let n = graph.n_nodes();
    let closed = closed_neighbourhoods(graph);
    // Row i only reads the closed neighbourhoods, so rows are independent;
    // computed in parallel and concatenated in row order — identical to the
    // serial enumeration.
    let per_row = par_rows(n, |i| jaccard_row(i, &closed));
    let triplets: Vec<(usize, usize, f64)> = per_row.into_iter().flatten().collect();
    SparseMatrix::from_triplets(n, n, &triplets)
}

/// Single-threaded reference implementation of [`jaccard_similarity`]; kept
/// for equivalence tests and benchmark baselines.
pub fn jaccard_similarity_serial(graph: &Graph) -> SparseMatrix {
    let n = graph.n_nodes();
    let closed = closed_neighbourhoods(graph);
    let mut triplets = Vec::new();
    for i in 0..n {
        triplets.extend(jaccard_row(i, &closed));
    }
    SparseMatrix::from_triplets(n, n, &triplets)
}

/// Sorted closed neighbourhoods `{v} ∪ neighbours(v)` for every node.
///
/// Public because the streamed-bias path in `ppfr_fairness` rebuilds one
/// similarity-Laplacian row at a time from these neighbourhoods instead of
/// materialising `S` or `L_S`.
pub fn closed_neighbourhoods(graph: &Graph) -> Vec<Vec<usize>> {
    (0..graph.n_nodes())
        .map(|v| {
            let mut set: Vec<usize> = graph.neighbors(v).to_vec();
            match set.binary_search(&v) {
                Ok(_) => {}
                Err(pos) => set.insert(pos, v),
            }
            set
        })
        .collect()
}

/// All non-zero `(i, j, S_ij)` entries of row `i`; shared by the parallel and
/// serial builders (and the streamed-bias path in `ppfr_fairness`) so every
/// consumer sees identical triplet sequences.  Entries come out sorted by
/// `j`, duplicate-free and without the diagonal.
pub fn jaccard_row(i: usize, closed: &[Vec<usize>]) -> Vec<(usize, usize, f64)> {
    // Candidate js: anything within two hops of i (via closed neighbourhoods).
    let mut candidates: BTreeSet<usize> = BTreeSet::new();
    for &u in &closed[i] {
        for &w in &closed[u] {
            if w != i {
                candidates.insert(w);
            }
        }
    }
    let mut row = Vec::with_capacity(candidates.len());
    for &j in &candidates {
        let inter = intersection_size(&closed[i], &closed[j]);
        if inter == 0 {
            continue;
        }
        let union = closed[i].len() + closed[j].len() - inter;
        row.push((i, j, inter as f64 / union as f64));
    }
    row
}

/// Laplacian `L_S = D_S − S` of a (symmetric) similarity matrix, where `D_S`
/// is the diagonal of row sums.  This is the operator inside the InFoRM bias
/// `Tr(Yᵀ L_S Y)`.
pub fn similarity_laplacian(similarity: &SparseMatrix) -> SparseMatrix {
    let n = similarity.n_rows();
    assert_eq!(n, similarity.n_cols(), "similarity matrix must be square");
    let mut triplets = Vec::with_capacity(similarity.nnz() + n);
    for r in 0..n {
        let mut degree = 0.0;
        for (c, v) in similarity.row(r) {
            if r == c {
                continue;
            }
            degree += v;
            triplets.push((r, c, -v));
        }
        triplets.push((r, r, degree));
    }
    SparseMatrix::from_triplets(n, n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hops::shortest_hops_from;
    use ppfr_linalg::Matrix;

    fn path5() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn jaccard_is_symmetric_and_in_unit_interval() {
        let g = path5();
        let s = jaccard_similarity(&g);
        for (i, j, v) in s.iter() {
            assert!(v > 0.0 && v <= 1.0, "S[{i},{j}] = {v} out of (0,1]");
            assert!((s.get(j, i) - v).abs() < 1e-12, "S must be symmetric");
        }
    }

    #[test]
    fn lemma_v1_one_and_two_hop_pairs_have_positive_similarity() {
        // Lemma V.1: S_{i,j} > 0 iff the pair is within 2 hops.
        let g = path5();
        let s = jaccard_similarity(&g);
        for i in 0..5 {
            let hops = shortest_hops_from(&g, i);
            for (j, &hop) in hops.iter().enumerate() {
                if i == j {
                    continue;
                }
                let sij = s.get(i, j);
                if hop <= 2 {
                    assert!(sij > 0.0, "pair ({i},{j}) at hop {hop} should have S>0");
                } else {
                    assert_eq!(sij, 0.0, "pair ({i},{j}) at hop {hop} should have S=0");
                }
            }
        }
    }

    #[test]
    fn jaccard_of_twin_nodes_is_one() {
        // Nodes 0 and 1 are connected and share the exact same closed
        // neighbourhood {0,1,2}: similarity must be 1.
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let s = jaccard_similarity(&g);
        assert!((s.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn laplacian_rows_sum_to_zero_and_is_psd_quadratic_form() {
        let g = path5();
        let s = jaccard_similarity(&g);
        let l = similarity_laplacian(&s);
        for r in 0..5 {
            assert!(
                l.row_sum(r).abs() < 1e-12,
                "Laplacian row {r} must sum to 0"
            );
        }
        // xᵀ L x = ½ Σ S_ij (x_i - x_j)² ≥ 0 for arbitrary x.
        let x = Matrix::from_rows(&[vec![1.0], vec![-2.0], vec![0.5], vec![3.0], vec![0.0]]);
        let lx = l.matmul_dense(&x);
        let quad: f64 = (0..5).map(|i| x[(i, 0)] * lx[(i, 0)]).sum();
        assert!(
            quad >= -1e-12,
            "Laplacian quadratic form must be non-negative, got {quad}"
        );
    }

    #[test]
    fn laplacian_quadratic_form_matches_pairwise_sum() {
        let g = path5();
        let s = jaccard_similarity(&g);
        let l = similarity_laplacian(&s);
        let x = Matrix::from_rows(&[vec![0.3], vec![1.7], vec![-0.4], vec![2.2], vec![0.9]]);
        let lx = l.matmul_dense(&x);
        let quad: f64 = (0..5).map(|i| x[(i, 0)] * lx[(i, 0)]).sum();
        let mut pairwise = 0.0;
        for (i, j, v) in s.iter() {
            if i == j {
                continue;
            }
            let d = x[(i, 0)] - x[(j, 0)];
            pairwise += 0.5 * v * d * d;
        }
        assert!(
            (quad - pairwise).abs() < 1e-9,
            "Tr form {quad} vs pairwise {pairwise}"
        );
    }

    #[test]
    fn parallel_jaccard_equals_serial_exactly() {
        // Ring with chords: rich 2-hop structure across many rows.
        let n = 30;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n));
            if i % 3 == 0 {
                edges.push((i, (i + 7) % n));
            }
        }
        let g = Graph::from_edges(n, &edges);
        let serial = jaccard_similarity_serial(&g);
        for threads in [1, 2, 4] {
            let parallel =
                ppfr_linalg::parallel::with_forced_threads(threads, || jaccard_similarity(&g));
            assert_eq!(parallel, serial, "similarity differs at {threads} threads");
        }
    }

    #[test]
    fn empty_graph_has_zero_similarity_between_distinct_nodes() {
        let g = Graph::empty(4);
        let s = jaccard_similarity(&g);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_eq!(s.get(i, j), 0.0);
                }
            }
        }
    }
}
