//! A generic sparse matrix in compressed-sparse-row form.
//!
//! Used both for normalised adjacency operators (`Â`) and for the Jaccard
//! similarity matrix `S` / its Laplacian `L_S`.

use ppfr_linalg::{par_row_blocks, Matrix};

/// Rows per parallel work item in [`SparseMatrix::matmul_dense_into`]: one
/// block of output rows amortises a dispatch over several CSR row sweeps,
/// which keeps per-item overhead low on power-law graphs full of short rows.
/// A fixed constant (never derived from the thread count) so blocking cannot
/// affect results.
const SPMM_BLOCK_ROWS: usize = 16;

/// One output row of a sparse × dense product given the row's CSR slices;
/// shared by [`SparseMatrix::matmul_dense`] and the streamed-bias path in
/// `ppfr_fairness` so both run the exact same floating-point chain.
///
/// Runs as a 4-wide microkernel over the row's stored entries: groups of
/// four nonzero values gather their four dense rows and fuse the
/// contributions into one left-associative update per output element —
/// bit-identical to the four sequential scalar adds, with four independent
/// multiplies for the autovectoriser.  Groups containing an explicit zero
/// fall back to the per-entry skip loop (`0 × NaN` must still vanish exactly
/// as before).
#[inline]
pub fn spmm_row_kernel(cols: &[usize], vals: &[f64], dense: &Matrix, out_row: &mut [f64]) {
    let mut i = 0;
    while i + 4 <= vals.len() {
        let (v0, v1, v2, v3) = (vals[i], vals[i + 1], vals[i + 2], vals[i + 3]);
        if v0 != 0.0 && v1 != 0.0 && v2 != 0.0 && v3 != 0.0 {
            let d0 = dense.row(cols[i]);
            let d1 = dense.row(cols[i + 1]);
            let d2 = dense.row(cols[i + 2]);
            let d3 = dense.row(cols[i + 3]);
            for ((((o, &e0), &e1), &e2), &e3) in out_row.iter_mut().zip(d0).zip(d1).zip(d2).zip(d3)
            {
                *o = *o + v0 * e0 + v1 * e1 + v2 * e2 + v3 * e3;
            }
        } else {
            for t in i..i + 4 {
                let v = vals[t];
                if v == 0.0 {
                    continue;
                }
                let d_row = dense.row(cols[t]);
                for (o, &d) in out_row.iter_mut().zip(d_row.iter()) {
                    *o += v * d;
                }
            }
        }
        i += 4;
    }
    for t in i..vals.len() {
        let v = vals[t];
        if v == 0.0 {
            continue;
        }
        let d_row = dense.row(cols[t]);
        for (o, &d) in out_row.iter_mut().zip(d_row.iter()) {
            *o += v * d;
        }
    }
}

/// Sparse matrix in CSR format with `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    n_rows: usize,
    n_cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes the entries of row `r`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets.  Duplicate cells
    /// are summed; explicit zeros are kept (callers filter when they care).
    pub fn from_triplets(n_rows: usize, n_cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_rows];
        for &(r, c, v) in triplets {
            assert!(r < n_rows && c < n_cols, "triplet ({r},{c}) out of bounds");
            per_row[r].push((c, v));
        }
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in &mut per_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = 0.0;
                while i < row.len() && row[i].0 == c {
                    v += row[i].1;
                    i += 1;
                }
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        let out = Self {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        };
        out.debug_validate();
        out
    }

    /// Builds a CSR matrix directly from its raw parts.
    ///
    /// Every row's column indices must already be sorted, duplicate-free and
    /// in bounds — the blocked SpMM and streamed-Laplacian kernels silently
    /// miscompute on malformed CSR, so this is checked by
    /// [`SparseMatrix::debug_validate`] (debug builds only).
    ///
    /// # Panics
    /// Panics when `row_ptr` is not a monotone cover of `col_idx`, or (debug
    /// builds) when any row's columns are unsorted, duplicated or out of
    /// bounds.
    pub fn from_csr_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(
            row_ptr.len(),
            n_rows + 1,
            "row_ptr must have n_rows+1 entries"
        );
        assert_eq!(
            col_idx.len(),
            values.len(),
            "col_idx/values length mismatch"
        );
        assert_eq!(
            *row_ptr.last().expect("row_ptr is non-empty"),
            col_idx.len(),
            "row_ptr must cover all entries"
        );
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be monotone"
        );
        let out = Self {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        };
        out.debug_validate();
        out
    }

    /// Debug-build structural check: every row's column indices are sorted,
    /// duplicate-free and within `n_cols`.
    fn debug_validate(&self) {
        if cfg!(debug_assertions) {
            for r in 0..self.n_rows {
                let cols = &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]];
                debug_assert!(
                    cols.windows(2).all(|w| w[0] < w[1]),
                    "row {r} has unsorted or duplicate column indices"
                );
                debug_assert!(
                    cols.iter().all(|&c| c < self.n_cols),
                    "row {r} has a column index out of bounds"
                );
            }
        }
    }

    /// An all-zero sparse matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            row_ptr: vec![0; n_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over `(col, value)` of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let start = self.row_ptr[r];
        let end = self.row_ptr[r + 1];
        self.col_idx[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
    }

    /// Value at `(r, c)` (zero when not stored).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.row(r).find(|&(cc, _)| cc == c).map_or(0.0, |(_, v)| v)
    }

    /// Iterator over every stored `(row, col, value)` triplet.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n_rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// One output row of the sparse × dense product; shared by the parallel
    /// and serial SpMM (via [`spmm_row_kernel`]) so both produce bit-identical
    /// results.
    #[inline]
    fn spmm_row_into(&self, r: usize, dense: &Matrix, out_row: &mut [f64]) {
        let start = self.row_ptr[r];
        let end = self.row_ptr[r + 1];
        spmm_row_kernel(
            &self.col_idx[start..end],
            &self.values[start..end],
            dense,
            out_row,
        );
    }

    fn spmm_check(&self, dense: &Matrix) {
        assert_eq!(
            self.n_cols,
            dense.rows(),
            "spmm dimension mismatch: {}x{} * {}x{}",
            self.n_rows,
            self.n_cols,
            dense.rows(),
            dense.cols()
        );
    }

    /// Sparse × dense product, parallelised over [`SPMM_BLOCK_ROWS`]-row
    /// output blocks via the shared `ppfr_linalg::parallel` idiom.
    pub fn matmul_dense(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_dense_into(dense, &mut out);
        out
    }

    /// [`SparseMatrix::matmul_dense`] writing into a caller-owned buffer
    /// (resized as needed; allocation-free when the shape already matches).
    pub fn matmul_dense_into(&self, dense: &Matrix, out: &mut Matrix) {
        self.spmm_check(dense);
        let cols = dense.cols();
        out.resize_to(self.n_rows, cols);
        if cols == 0 || self.n_rows == 0 {
            return;
        }
        out.as_mut_slice().fill(0.0);
        par_row_blocks(
            out.as_mut_slice(),
            cols,
            SPMM_BLOCK_ROWS,
            |first_row, block| {
                for (dr, out_row) in block.chunks_mut(cols).enumerate() {
                    self.spmm_row_into(first_row + dr, dense, out_row);
                }
            },
        );
    }

    /// Single-threaded reference implementation of
    /// [`SparseMatrix::matmul_dense`]; kept for equivalence tests and
    /// benchmark baselines.
    pub fn matmul_dense_serial(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_dense_into_serial(dense, &mut out);
        out
    }

    /// Single-threaded twin of [`SparseMatrix::matmul_dense_into`].
    pub fn matmul_dense_into_serial(&self, dense: &Matrix, out: &mut Matrix) {
        self.spmm_check(dense);
        let cols = dense.cols();
        out.resize_to(self.n_rows, cols);
        if cols == 0 || self.n_rows == 0 {
            return;
        }
        out.as_mut_slice().fill(0.0);
        for r in 0..self.n_rows {
            self.spmm_row_into(r, dense, out.row_mut(r));
        }
    }

    /// Transposed sparse × dense product (`selfᵀ * dense`) without building the
    /// transpose explicitly.
    pub fn transpose_matmul_dense(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_matmul_dense_into(dense, &mut out);
        out
    }

    /// [`SparseMatrix::transpose_matmul_dense`] writing into a caller-owned
    /// buffer.  Serial by construction: the scatter over output rows follows
    /// the CSR layout of `self`, which keeps the accumulation order fixed.
    pub fn transpose_matmul_dense_into(&self, dense: &Matrix, out: &mut Matrix) {
        assert_eq!(self.n_rows, dense.rows(), "spmmᵀ dimension mismatch");
        let cols = dense.cols();
        out.resize_to(self.n_cols, cols);
        out.as_mut_slice().fill(0.0);
        for r in 0..self.n_rows {
            let d_row = dense.row(r);
            for (c, v) in self.row(r) {
                if v == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(c);
                for (o, &d) in out_row.iter_mut().zip(d_row.iter()) {
                    *o += v * d;
                }
            }
        }
    }

    /// Converts to a dense matrix (tests / tiny graphs only).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.n_rows, self.n_cols);
        for (r, c, v) in self.iter() {
            out[(r, c)] += v;
        }
        out
    }

    /// Sum of all stored values in row `r`.
    pub fn row_sum(&self, r: usize) -> f64 {
        self.row(r).map(|(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        SparseMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
    }

    #[test]
    fn get_returns_stored_and_zero_values() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.get(0, 1), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let m = sample();
        let d = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let sparse_result = m.matmul_dense(&d);
        let dense_result = m.to_dense().matmul(&d);
        for (a, b) in sparse_result.as_slice().iter().zip(dense_result.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_spmm_matches_dense() {
        let m = sample();
        let d = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let got = m.transpose_matmul_dense(&d);
        let want = m.to_dense().transpose().matmul(&d);
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_spmm_equals_serial_exactly() {
        // 40x40 ring-with-chords sparse matrix times a 40x5 dense matrix.
        let n = 40;
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, (i + 1) % n, 1.0 + i as f64 / 10.0));
            triplets.push((i, (i * 7 + 3) % n, -0.5));
        }
        let m = SparseMatrix::from_triplets(n, n, &triplets);
        let dense = Matrix::from_vec(n, 5, (0..n * 5).map(|v| (v as f64).cos()).collect());
        let serial = m.matmul_dense_serial(&dense);
        for threads in [1, 2, 4] {
            let parallel =
                ppfr_linalg::parallel::with_forced_threads(threads, || m.matmul_dense(&dense));
            assert_eq!(
                parallel.as_slice(),
                serial.as_slice(),
                "differs at {threads} threads"
            );
        }
    }

    #[test]
    fn into_variants_match_allocating_versions_bitwise() {
        let m = sample();
        let d = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let mut buf = Matrix::zeros(7, 7);
        let want = m.matmul_dense(&d);
        for threads in [1, 2, 4] {
            ppfr_linalg::parallel::with_forced_threads(threads, || {
                m.matmul_dense_into(&d, &mut buf)
            });
            assert_eq!(
                buf.as_slice(),
                want.as_slice(),
                "differs at {threads} threads"
            );
            assert_eq!(buf.shape(), want.shape());
        }
        m.matmul_dense_into_serial(&d, &mut buf);
        assert_eq!(buf.as_slice(), want.as_slice());

        let want_t = m.transpose_matmul_dense(&d);
        m.transpose_matmul_dense_into(&d, &mut buf);
        assert_eq!(buf.as_slice(), want_t.as_slice());
        assert_eq!(buf.shape(), want_t.shape());

        // Buffer reuse across calls must not leak previous contents.
        m.matmul_dense_into(&d, &mut buf);
        assert_eq!(buf.as_slice(), want.as_slice());
    }

    #[test]
    fn row_sum_counts_only_that_row() {
        let m = sample();
        assert_eq!(m.row_sum(0), 3.0);
        assert_eq!(m.row_sum(1), 0.0);
        assert_eq!(m.row_sum(2), 7.0);
    }

    #[test]
    fn from_csr_parts_roundtrips_from_triplets() {
        let m = sample();
        let rebuilt = SparseMatrix::from_csr_parts(
            3,
            3,
            m.row_ptr.clone(),
            m.col_idx.clone(),
            m.values.clone(),
        );
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn spmm_row_kernel_matches_matmul_row() {
        let m = sample();
        let d = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let full = m.matmul_dense_serial(&d);
        for r in 0..3 {
            let start = m.row_ptr[r];
            let end = m.row_ptr[r + 1];
            let mut out = vec![0.0; 2];
            spmm_row_kernel(&m.col_idx[start..end], &m.values[start..end], &d, &mut out);
            assert_eq!(out.as_slice(), full.row(r));
        }
    }

    #[test]
    #[should_panic(expected = "row_ptr must cover all entries")]
    fn from_csr_parts_rejects_short_row_ptr_cover() {
        let _ = SparseMatrix::from_csr_parts(2, 2, vec![0, 1, 1], vec![0, 1], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "row_ptr must be monotone")]
    fn from_csr_parts_rejects_non_monotone_row_ptr() {
        let _ = SparseMatrix::from_csr_parts(2, 2, vec![2, 0, 2], vec![0, 1], vec![1.0, 2.0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "unsorted or duplicate column indices")]
    fn from_csr_parts_rejects_unsorted_columns_in_debug() {
        let _ = SparseMatrix::from_csr_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "unsorted or duplicate column indices")]
    fn from_csr_parts_rejects_duplicate_columns_in_debug() {
        let _ = SparseMatrix::from_csr_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "column index out of bounds")]
    fn from_csr_parts_rejects_out_of_bounds_column_in_debug() {
        let _ = SparseMatrix::from_csr_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }
}
