//! k-hop neighbourhood analysis (BFS shortest hop counts).
//!
//! The paper's Lemma V.1 and Proposition V.2 reason about k-hop node pairs:
//! connected pairs are 1-hop, pairs sharing a neighbour are 2-hop, isolated
//! pairs are ∞-hop.  These helpers compute hop distances and hop histograms
//! used in tests and in the sparsity-ratio analysis of Eq. (5).

use crate::Graph;
use std::collections::VecDeque;

/// Hop value used for unreachable (∞-hop) node pairs.
pub const UNREACHABLE: usize = usize::MAX;

/// Shortest hop count from `source` to every node (BFS).  `source` maps to 0,
/// unreachable nodes map to [`UNREACHABLE`].
pub fn shortest_hops_from(graph: &Graph, source: usize) -> Vec<usize> {
    let mut dist = vec![UNREACHABLE; graph.n_nodes()];
    dist[source] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &v in graph.neighbors(u) {
            if dist[v] == UNREACHABLE {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// All node pairs `(u, v)` with `u < v` whose shortest-path hop count is
/// exactly `k`.  Quadratic in the number of nodes; intended for analysis on
/// the (scaled) datasets, not for hot paths.
pub fn k_hop_pairs(graph: &Graph, k: usize) -> Vec<(usize, usize)> {
    let n = graph.n_nodes();
    let mut out = Vec::new();
    for u in 0..n {
        let dist = shortest_hops_from(graph, u);
        for (v, &d) in dist.iter().enumerate().skip(u + 1) {
            if d == k {
                out.push((u, v));
            }
        }
    }
    out
}

/// Histogram of hop distances over all unordered node pairs.
/// Index `k` holds the number of k-hop pairs; the last entry counts
/// unreachable pairs.  Returns `(histogram, unreachable_count)`.
pub fn hop_histogram(graph: &Graph, max_hops: usize) -> (Vec<usize>, usize) {
    let n = graph.n_nodes();
    let mut hist = vec![0usize; max_hops + 1];
    let mut unreachable = 0usize;
    for u in 0..n {
        let dist = shortest_hops_from(graph, u);
        for &d in dist.iter().skip(u + 1) {
            if d == UNREACHABLE {
                unreachable += 1;
            } else if d <= max_hops {
                hist[d] += 1;
            }
        }
    }
    (hist, unreachable)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path4();
        assert_eq!(shortest_hops_from(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(shortest_hops_from(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn unreachable_nodes_are_marked() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = shortest_hops_from(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn k_hop_pairs_match_hand_enumeration() {
        let g = path4();
        assert_eq!(k_hop_pairs(&g, 1), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(k_hop_pairs(&g, 2), vec![(0, 2), (1, 3)]);
        assert_eq!(k_hop_pairs(&g, 3), vec![(0, 3)]);
        assert!(k_hop_pairs(&g, 4).is_empty());
    }

    #[test]
    fn hop_histogram_covers_all_pairs() {
        let g = path4();
        let (hist, unreachable) = hop_histogram(&g, 5);
        let total: usize = hist.iter().sum::<usize>() + unreachable;
        assert_eq!(total, 4 * 3 / 2);
        assert_eq!(hist[1], 3);
        assert_eq!(hist[2], 2);
        assert_eq!(hist[3], 1);
        assert_eq!(unreachable, 0);
    }

    #[test]
    fn hop_histogram_counts_disconnected_pairs() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let (hist, unreachable) = hop_histogram(&g, 3);
        assert_eq!(hist[1], 2);
        assert_eq!(unreachable, 4);
    }
}
