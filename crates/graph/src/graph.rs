//! The undirected [`Graph`] type and its normalised propagation operators.

use crate::SparseMatrix;
use std::collections::BTreeSet;

/// An undirected, unweighted graph `G = {V, E}` stored as a sorted
/// neighbour-list (CSR-like) structure.
///
/// Nodes are `0..n_nodes`.  Self-loops are not stored in the edge set; the
/// normalised operators add them explicitly (the `A + I` of GCN).
#[derive(Debug, Clone)]
pub struct Graph {
    n_nodes: usize,
    /// Sorted, deduplicated neighbour lists.
    adj: Vec<Vec<usize>>,
    n_edges: usize,
}

impl Graph {
    /// Builds a graph from an undirected edge list.  Duplicate edges and
    /// self-loops are ignored.
    pub fn from_edges(n_nodes: usize, edges: &[(usize, usize)]) -> Self {
        let mut sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n_nodes];
        for &(u, v) in edges {
            assert!(u < n_nodes && v < n_nodes, "edge ({u},{v}) out of bounds");
            if u == v {
                continue;
            }
            sets[u].insert(v);
            sets[v].insert(u);
        }
        let adj: Vec<Vec<usize>> = sets.into_iter().map(|s| s.into_iter().collect()).collect();
        let n_edges = adj.iter().map(Vec::len).sum::<usize>() / 2;
        Self {
            n_nodes,
            adj,
            n_edges,
        }
    }

    /// Graph with no edges.
    pub fn empty(n_nodes: usize) -> Self {
        Self {
            n_nodes,
            adj: vec![Vec::new(); n_nodes],
            n_edges: 0,
        }
    }

    /// Number of nodes `|V|`.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of undirected edges `|E|`.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Sorted neighbours of `v` (excluding `v` itself).
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of `v` (number of neighbours, self-loop excluded).
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Whether the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].binary_search(&v).is_ok()
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n_nodes).flat_map(move |u| {
            self.adj[u]
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Raw (unnormalised) adjacency matrix `A` as a sparse matrix.
    pub fn adjacency(&self) -> SparseMatrix {
        let triplets: Vec<(usize, usize, f64)> = (0..self.n_nodes)
            .flat_map(|u| self.adj[u].iter().map(move |&v| (u, v, 1.0)))
            .collect();
        SparseMatrix::from_triplets(self.n_nodes, self.n_nodes, &triplets)
    }

    /// Symmetrically normalised adjacency with self loops:
    /// `Â = D̃^{-1/2} (A + I) D̃^{-1/2}` — the GCN propagation operator.
    pub fn normalized_adjacency(&self) -> SparseMatrix {
        let deg_tilde: Vec<f64> = (0..self.n_nodes)
            .map(|v| self.degree(v) as f64 + 1.0)
            .collect();
        let mut triplets = Vec::with_capacity(2 * self.n_edges + self.n_nodes);
        for u in 0..self.n_nodes {
            triplets.push((u, u, 1.0 / deg_tilde[u]));
            for &v in &self.adj[u] {
                triplets.push((u, v, 1.0 / (deg_tilde[u] * deg_tilde[v]).sqrt()));
            }
        }
        SparseMatrix::from_triplets(self.n_nodes, self.n_nodes, &triplets)
    }

    /// Left (random-walk) normalised adjacency with self loops:
    /// `Â = D̃^{-1} (A + I)` — used by the risk model of §VI-B2.
    pub fn left_normalized_adjacency(&self) -> SparseMatrix {
        let mut triplets = Vec::with_capacity(2 * self.n_edges + self.n_nodes);
        for u in 0..self.n_nodes {
            let inv = 1.0 / (self.degree(u) as f64 + 1.0);
            triplets.push((u, u, inv));
            for &v in &self.adj[u] {
                triplets.push((u, v, inv));
            }
        }
        SparseMatrix::from_triplets(self.n_nodes, self.n_nodes, &triplets)
    }

    /// Row-normalised *mean aggregation* operator over neighbours only
    /// (no self loop), used by the GraphSAGE mean aggregator.  Isolated nodes
    /// get an all-zero row.
    pub fn mean_aggregation(&self) -> SparseMatrix {
        let mut triplets = Vec::with_capacity(2 * self.n_edges);
        for u in 0..self.n_nodes {
            let deg = self.degree(u);
            if deg == 0 {
                continue;
            }
            let inv = 1.0 / deg as f64;
            for &v in &self.adj[u] {
                triplets.push((u, v, inv));
            }
        }
        SparseMatrix::from_triplets(self.n_nodes, self.n_nodes, &triplets)
    }

    /// Directed edge list *including self loops*, as `(dst, src)` pairs grouped
    /// by destination — the layout GAT attention uses.
    pub fn attention_edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(2 * self.n_edges + self.n_nodes);
        for u in 0..self.n_nodes {
            out.push((u, u));
            for &v in &self.adj[u] {
                out.push((u, v));
            }
        }
        out
    }

    /// Returns a new graph with every edge in `extra` added (self-loops and
    /// duplicates ignored).
    pub fn with_extra_edges(&self, extra: &[(usize, usize)]) -> Graph {
        let mut edges: Vec<(usize, usize)> = self.edges().collect();
        edges.extend_from_slice(extra);
        Graph::from_edges(self.n_nodes, &edges)
    }

    /// Returns all node pairs `(u, v)` with `u < v` that are *not* connected.
    /// Quadratic — only for small graphs / tests; attack code samples instead.
    pub fn unconnected_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for u in 0..self.n_nodes {
            for v in (u + 1)..self.n_nodes {
                if !self.has_edge(u, v) {
                    out.push((u, v));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node path graph 0-1-2-3.
    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn builds_symmetric_adjacency() {
        let g = path4();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(2), &[1, 3]);
    }

    #[test]
    fn duplicates_and_self_loops_are_ignored() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 2), (0, 1)]);
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = path4();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn normalized_adjacency_rows_of_regular_graph_sum_to_one() {
        // A triangle is 2-regular: D̃ = 3I, Â = (A+I)/3, rows sum to 1.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let a_hat = g.normalized_adjacency();
        for r in 0..3 {
            assert!((a_hat.row_sum(r) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn left_normalized_rows_always_sum_to_one() {
        let g = path4();
        let a_hat = g.left_normalized_adjacency();
        for r in 0..4 {
            assert!((a_hat.row_sum(r) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_adjacency_is_symmetric() {
        let g = path4();
        let a_hat = g.normalized_adjacency().to_dense();
        for i in 0..4 {
            for j in 0..4 {
                assert!((a_hat[(i, j)] - a_hat[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mean_aggregation_skips_isolated_nodes() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let m = g.mean_aggregation();
        assert_eq!(m.row_sum(2), 0.0);
        assert!((m.row_sum(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn attention_edges_include_self_loops() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let edges = g.attention_edges();
        assert!(edges.contains(&(0, 0)));
        assert!(edges.contains(&(1, 1)));
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(1, 0)));
    }

    #[test]
    fn with_extra_edges_adds_new_edges_only() {
        let g = path4();
        let g2 = g.with_extra_edges(&[(0, 3), (0, 1), (2, 2)]);
        assert_eq!(g2.n_edges(), 4);
        assert!(g2.has_edge(0, 3));
    }

    #[test]
    fn unconnected_pairs_complement_edges() {
        let g = path4();
        let unconnected = g.unconnected_pairs();
        assert_eq!(unconnected, vec![(0, 2), (0, 3), (1, 3)]);
        let total_pairs = 4 * 3 / 2;
        assert_eq!(unconnected.len() + g.n_edges(), total_pairs);
    }
}
