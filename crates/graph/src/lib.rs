//! Graph substrate for the PPFR stack.
//!
//! Provides the undirected [`Graph`] type (edge set + CSR adjacency), the
//! normalised propagation operators used by GCN/GAT/GraphSAGE, the Jaccard
//! similarity matrix and its Laplacian (the individual-fairness similarity of
//! InFoRM), k-hop analysis used by Lemma V.1, homophily/sparsity statistics
//! and edge-perturbation utilities (`A' = A + ΔA`).

#![forbid(unsafe_code)]

mod csr;
mod graph;
mod hops;
mod perturb;
mod similarity;
mod stats;

pub use csr::{spmm_row_kernel, SparseMatrix};
pub use graph::Graph;
pub use hops::{hop_histogram, k_hop_pairs, shortest_hops_from};
pub use perturb::{add_edges, EdgePerturbation};
pub use similarity::{
    closed_neighbourhoods, jaccard_row, jaccard_similarity, jaccard_similarity_serial,
    similarity_laplacian,
};
pub use stats::{average_degree, edge_density, homophily, intra_inter_probabilities};
