//! Homophily, sparsity and degree statistics of labelled graphs.

use crate::Graph;

/// Edge homophily: the fraction of edges whose endpoints share a label.
/// This is the statistic the paper quotes (0.81 for Cora, 0.74 Citeseer,
/// 0.80 Pubmed, 0.66 Enzymes, 0.62 Credit).
pub fn homophily(graph: &Graph, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), graph.n_nodes(), "one label per node required");
    let mut same = 0usize;
    let mut total = 0usize;
    for (u, v) in graph.edges() {
        total += 1;
        if labels[u] == labels[v] {
            same += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    same as f64 / total as f64
}

/// Average node degree `2|E| / |V|`.
pub fn average_degree(graph: &Graph) -> f64 {
    if graph.n_nodes() == 0 {
        return 0.0;
    }
    2.0 * graph.n_edges() as f64 / graph.n_nodes() as f64
}

/// Edge density `|E| / (n choose 2)` — the paper's sparsity assumption is
/// that this is much smaller than one.
pub fn edge_density(graph: &Graph) -> f64 {
    let n = graph.n_nodes();
    if n < 2 {
        return 0.0;
    }
    let possible = n * (n - 1) / 2;
    graph.n_edges() as f64 / possible as f64
}

/// Empirical intra-class (`p`) and inter-class (`q`) linking probabilities,
/// the quantities appearing in the sparsity ratio of Eq. (5).
pub fn intra_inter_probabilities(graph: &Graph, labels: &[usize]) -> (f64, f64) {
    assert_eq!(labels.len(), graph.n_nodes());
    let n = graph.n_nodes();
    let mut intra_pairs = 0usize;
    let mut inter_pairs = 0usize;
    for u in 0..n {
        for v in (u + 1)..n {
            if labels[u] == labels[v] {
                intra_pairs += 1;
            } else {
                inter_pairs += 1;
            }
        }
    }
    let mut intra_edges = 0usize;
    let mut inter_edges = 0usize;
    for (u, v) in graph.edges() {
        if labels[u] == labels[v] {
            intra_edges += 1;
        } else {
            inter_edges += 1;
        }
    }
    let p = if intra_pairs == 0 {
        0.0
    } else {
        intra_edges as f64 / intra_pairs as f64
    };
    let q = if inter_pairs == 0 {
        0.0
    } else {
        inter_edges as f64 / inter_pairs as f64
    };
    (p, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homophily_of_fully_homophilous_graph_is_one() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let labels = vec![0, 0, 1, 1];
        assert_eq!(homophily(&g, &labels), 1.0);
    }

    #[test]
    fn homophily_counts_mixed_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let labels = vec![0, 0, 1, 1];
        assert!((homophily(&g, &labels) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degree_and_density() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!((average_degree(&g) - 1.5).abs() < 1e-12);
        assert!((edge_density(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn intra_inter_probabilities_on_two_blocks() {
        // Two blocks of two nodes each; both intra edges present, no inter.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let labels = vec![0, 0, 1, 1];
        let (p, q) = intra_inter_probabilities(&g, &labels);
        assert!((p - 1.0).abs() < 1e-12);
        assert_eq!(q, 0.0);
    }

    #[test]
    fn empty_graph_statistics_are_zero() {
        let g = Graph::empty(3);
        assert_eq!(homophily(&g, &[0, 1, 2]), 0.0);
        assert_eq!(average_degree(&g), 0.0);
        assert_eq!(edge_density(&g), 0.0);
    }
}
