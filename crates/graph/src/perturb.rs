//! Graph-structure perturbation `A' = A + ΔA`.
//!
//! Holds the generic machinery used both by the paper's privacy-aware
//! perturbation (heterophilic noisy edges, built in `ppfr-core`) and by the
//! differential-privacy baselines (random / Laplacian edge noise, built in
//! `ppfr-privacy`).

use crate::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// A set of edges to add to a graph (the non-zero entries of `ΔA`).
#[derive(Debug, Clone, Default)]
pub struct EdgePerturbation {
    edges: Vec<(usize, usize)>,
}

impl EdgePerturbation {
    /// Empty perturbation (ΔA = 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a perturbation from an explicit edge list.
    pub fn from_edges(edges: Vec<(usize, usize)>) -> Self {
        Self { edges }
    }

    /// Adds a single edge to the perturbation.
    pub fn push(&mut self, u: usize, v: usize) {
        self.edges.push((u, v));
    }

    /// Number of perturbation edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the perturbation is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The perturbation edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Applies the perturbation, producing `A' = A + ΔA`.
    pub fn apply(&self, graph: &Graph) -> Graph {
        graph.with_extra_edges(&self.edges)
    }

    /// Randomly samples, for every node, `ratio * degree(v)` candidate
    /// partners from `candidates(v)` and records them as perturbation edges.
    /// This is the shared skeleton of the heterophilic-noise strategy
    /// (`|N(i)_Δ| = γ |N(i)|` of §VI-B2).
    pub fn per_node_sampled<R, F>(graph: &Graph, ratio: f64, rng: &mut R, candidates: F) -> Self
    where
        R: Rng + ?Sized,
        F: Fn(usize) -> Vec<usize>,
    {
        assert!(ratio >= 0.0, "perturbation ratio must be non-negative");
        let mut edges = Vec::new();
        for v in 0..graph.n_nodes() {
            let budget = (ratio * graph.degree(v) as f64).round() as usize;
            if budget == 0 {
                continue;
            }
            let mut pool = candidates(v);
            pool.shuffle(rng);
            for &u in pool.iter().take(budget) {
                if u != v && !graph.has_edge(u, v) {
                    edges.push((v, u));
                }
            }
        }
        Self { edges }
    }
}

/// Convenience wrapper: add an explicit edge list to a graph.
pub fn add_edges(graph: &Graph, edges: &[(usize, usize)]) -> Graph {
    graph.with_extra_edges(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn apply_adds_edges_without_touching_original() {
        let g = path4();
        let mut p = EdgePerturbation::new();
        p.push(0, 3);
        let g2 = p.apply(&g);
        assert!(g2.has_edge(0, 3));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g2.n_edges(), g.n_edges() + 1);
    }

    #[test]
    fn empty_perturbation_is_identity() {
        let g = path4();
        let p = EdgePerturbation::new();
        assert!(p.is_empty());
        let g2 = p.apply(&g);
        assert_eq!(g2.n_edges(), g.n_edges());
    }

    #[test]
    fn per_node_sampling_respects_budget_and_avoids_existing_edges() {
        let g = path4();
        let mut rng = StdRng::seed_from_u64(11);
        let ratio = 1.0;
        let p = EdgePerturbation::per_node_sampled(&g, ratio, &mut rng, |v| {
            (0..4).filter(|&u| u != v).collect()
        });
        // Budget per node is its degree; every sampled edge must be new.
        for &(u, v) in p.edges() {
            assert!(!g.has_edge(u, v), "sampled an existing edge ({u},{v})");
            assert_ne!(u, v);
        }
        let max_budget: usize = (0..4).map(|v| g.degree(v)).sum();
        assert!(p.len() <= max_budget);
    }

    #[test]
    fn zero_ratio_produces_no_edges() {
        let g = path4();
        let mut rng = StdRng::seed_from_u64(1);
        let p = EdgePerturbation::per_node_sampled(&g, 0.0, &mut rng, |_| vec![0, 1, 2, 3]);
        assert!(p.is_empty());
    }
}
