//! The InFoRM individual-fairness bias `Tr(Pᵀ L_S P)` and its gradient.

use ppfr_graph::SparseMatrix;
use ppfr_linalg::Matrix;

/// InFoRM bias of predictions `probs` under the similarity Laplacian `l_s`,
/// normalised by the number of nodes:
/// `f_bias = Tr(Pᵀ L_S P) / n`.
///
/// Lower values mean fairer predictions (Definition 1).
pub fn bias(probs: &Matrix, l_s: &SparseMatrix) -> f64 {
    assert_eq!(
        probs.rows(),
        l_s.n_rows(),
        "Laplacian must match prediction rows"
    );
    let lp = l_s.matmul_dense(probs);
    let mut tr = 0.0;
    for r in 0..probs.rows() {
        tr += probs.row_dot(r, &lp, r);
    }
    tr / probs.rows() as f64
}

/// Equivalent pairwise form `½ Σ_{ij} S_ij ‖P_i − P_j‖² / n` computed directly
/// from the similarity matrix.  Used as a cross-check of [`bias`] in tests and
/// kept public because its per-pair terms are handy for diagnostics.
pub fn pairwise_bias(probs: &Matrix, similarity: &SparseMatrix) -> f64 {
    assert_eq!(probs.rows(), similarity.n_rows());
    let mut total = 0.0;
    for (i, j, s) in similarity.iter() {
        if i == j {
            continue;
        }
        let mut d2 = 0.0;
        for c in 0..probs.cols() {
            let d = probs[(i, c)] - probs[(j, c)];
            d2 += d * d;
        }
        total += 0.5 * s * d2;
    }
    total / probs.rows() as f64
}

/// Gradient of `Tr(Pᵀ L_S P) / n` w.r.t. `P`: `2 L_S P / n` (the Laplacian is
/// symmetric).
pub fn bias_gradient_wrt_probs(probs: &Matrix, l_s: &SparseMatrix) -> Matrix {
    l_s.matmul_dense(probs).scale(2.0 / probs.rows() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_graph::{jaccard_similarity, similarity_laplacian, Graph};

    fn toy() -> (Graph, SparseMatrix, SparseMatrix) {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)]);
        let s = jaccard_similarity(&g);
        let l = similarity_laplacian(&s);
        (g, s, l)
    }

    #[test]
    fn uniform_predictions_have_zero_bias() {
        let (_, _, l) = toy();
        let probs = Matrix::filled(5, 3, 1.0 / 3.0);
        assert!(bias(&probs, &l).abs() < 1e-12);
    }

    #[test]
    fn laplacian_and_pairwise_forms_agree() {
        let (_, s, l) = toy();
        let probs = Matrix::from_rows(&[
            vec![0.9, 0.1],
            vec![0.2, 0.8],
            vec![0.5, 0.5],
            vec![0.7, 0.3],
            vec![0.1, 0.9],
        ]);
        let a = bias(&probs, &l);
        let b = pairwise_bias(&probs, &s);
        assert!((a - b).abs() < 1e-9, "trace form {a} vs pairwise form {b}");
        assert!(a > 0.0);
    }

    #[test]
    fn bias_is_non_negative_for_arbitrary_predictions() {
        let (_, _, l) = toy();
        let probs = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.5, 0.5],
        ]);
        assert!(bias(&probs, &l) >= 0.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let (_, _, l) = toy();
        let probs = Matrix::from_rows(&[
            vec![0.6, 0.4],
            vec![0.3, 0.7],
            vec![0.5, 0.5],
            vec![0.8, 0.2],
            vec![0.45, 0.55],
        ]);
        let grad = bias_gradient_wrt_probs(&probs, &l);
        let h = 1e-6;
        for r in 0..5 {
            for c in 0..2 {
                let mut plus = probs.clone();
                plus[(r, c)] += h;
                let mut minus = probs.clone();
                minus[(r, c)] -= h;
                let numeric = (bias(&plus, &l) - bias(&minus, &l)) / (2.0 * h);
                assert!(
                    (numeric - grad[(r, c)]).abs() < 1e-6,
                    "({r},{c}): numeric {numeric} vs analytic {}",
                    grad[(r, c)]
                );
            }
        }
    }

    #[test]
    fn smoothing_similar_nodes_reduces_bias() {
        let (_, _, l) = toy();
        let sharp = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ]);
        let smooth = Matrix::from_rows(&[
            vec![0.6, 0.4],
            vec![0.5, 0.5],
            vec![0.6, 0.4],
            vec![0.5, 0.5],
            vec![0.6, 0.4],
        ]);
        assert!(bias(&smooth, &l) < bias(&sharp, &l));
    }
}
