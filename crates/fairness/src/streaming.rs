//! Streamed InFoRM bias for large graphs.
//!
//! [`bias`](crate::bias) materialises the Jaccard similarity `S` and its
//! Laplacian `L_S` (both `O(n · 2-hop-degree)` sparse matrices) before the
//! trace.  At the million-node scale that is the dominant allocation, so this
//! module recomputes one Laplacian row at a time from the closed
//! neighbourhoods and streams the trace
//! `Tr(Pᵀ L_S P) = Σ_r P_r · (L_S P)_r` over row blocks: no `S`, no `L_S`,
//! and certainly no `n×n` dense object ever exists.
//!
//! Bit-identity with the dense oracle is load-bearing (the scale-layer tests
//! pin it across block sizes and thread counts): every step replays the exact
//! floating-point chain of the materialised path —
//!
//! * the Laplacian row is assembled in the same sorted column order
//!   `from_triplets` would produce, with the degree accumulated over the
//!   similarity entries in column order exactly like `similarity_laplacian`;
//! * the row of `L_S P` runs through the shared
//!   [`spmm_row_kernel`](ppfr_graph::spmm_row_kernel) 4-wide microkernel that
//!   `SparseMatrix::matmul_dense` uses;
//! * per-row trace terms are written into an `n`-vector and reduced by one
//!   serial in-order sum, matching the oracle's row loop regardless of block
//!   size or thread count.

use ppfr_graph::{closed_neighbourhoods, jaccard_row, spmm_row_kernel, Graph};
use ppfr_linalg::{par_row_blocks, Matrix};

/// One trace term `P_r · (L_S P)_r`, with the Laplacian row rebuilt on the
/// fly from the closed neighbourhoods.  `lp_row` is caller-provided scratch
/// of length `probs.cols()`.
fn bias_row_term(r: usize, closed: &[Vec<usize>], probs: &Matrix, lp_row: &mut [f64]) -> f64 {
    let srow = jaccard_row(r, closed);
    // Degree in similarity-column order — the accumulation order of
    // `similarity_laplacian`.
    let mut degree = 0.0;
    for &(_, _, s) in &srow {
        degree += s;
    }
    // Laplacian row in sorted column order: off-diagonals `-s` with the
    // diagonal `degree` merged at its sorted position, exactly as
    // `from_triplets` lays the row out.
    let mut cols = Vec::with_capacity(srow.len() + 1);
    let mut vals = Vec::with_capacity(srow.len() + 1);
    let mut diag_placed = false;
    for &(_, j, s) in &srow {
        if !diag_placed && j > r {
            cols.push(r);
            vals.push(degree);
            diag_placed = true;
        }
        cols.push(j);
        vals.push(-s);
    }
    if !diag_placed {
        cols.push(r);
        vals.push(degree);
    }
    lp_row.fill(0.0);
    spmm_row_kernel(&cols, &vals, probs, lp_row);
    // Same left-fold as `Matrix::row_dot` (zip–map–sum from 0.0).
    let mut term = 0.0;
    for (&p, &lp) in probs.row(r).iter().zip(lp_row.iter()) {
        term += p * lp;
    }
    term
}

/// Streamed InFoRM bias `Tr(Pᵀ L_S P) / n`, bit-identical to
/// `bias(probs, &similarity_laplacian(&jaccard_similarity(graph)))` for every
/// `block_rows ≥ 1` and thread count, without materialising `S` or `L_S`.
///
/// `block_rows` is the number of trace rows per parallel work item; callers
/// pass a fixed constant (never derived from the thread count).
///
/// # Panics
/// Panics when `probs` has fewer or more rows than the graph has nodes, or
/// when `block_rows` is zero.
pub fn streamed_bias(graph: &Graph, probs: &Matrix, block_rows: usize) -> f64 {
    let _span = ppfr_telemetry::span!("streamed_bias");
    let n = graph.n_nodes();
    assert_eq!(probs.rows(), n, "predictions must match graph nodes");
    assert!(block_rows > 0, "block_rows must be positive");
    if n == 0 {
        return 0.0;
    }
    let closed = closed_neighbourhoods(graph);
    let mut rowterms = vec![0.0; n];
    par_row_blocks(&mut rowterms, 1, block_rows, |first_row, block| {
        let mut lp_row = vec![0.0; probs.cols()];
        for (dr, term) in block.iter_mut().enumerate() {
            *term = bias_row_term(first_row + dr, &closed, probs, &mut lp_row);
        }
    });
    finish_trace(&rowterms)
}

/// Single-threaded twin of [`streamed_bias`]; kept for the forced-thread
/// pinning tests and as the reference for new block sizes.
pub fn streamed_bias_serial(graph: &Graph, probs: &Matrix, block_rows: usize) -> f64 {
    let n = graph.n_nodes();
    assert_eq!(probs.rows(), n, "predictions must match graph nodes");
    assert!(block_rows > 0, "block_rows must be positive");
    if n == 0 {
        return 0.0;
    }
    let closed = closed_neighbourhoods(graph);
    let mut rowterms = vec![0.0; n];
    let mut lp_row = vec![0.0; probs.cols()];
    for (r, term) in rowterms.iter_mut().enumerate() {
        *term = bias_row_term(r, &closed, probs, &mut lp_row);
    }
    finish_trace(&rowterms)
}

/// Serial in-order reduction of the per-row trace terms — the oracle's
/// `tr += row_dot` loop, independent of how the terms were produced.
fn finish_trace(rowterms: &[f64]) -> f64 {
    let mut tr = 0.0;
    for &t in rowterms {
        tr += t;
    }
    tr / rowterms.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias;
    use ppfr_graph::{jaccard_similarity, similarity_laplacian};

    fn ring_with_chords(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n));
            if i % 3 == 0 {
                edges.push((i, (i + 7) % n));
            }
        }
        Graph::from_edges(n, &edges)
    }

    fn smooth_probs(n: usize, c: usize) -> Matrix {
        Matrix::from_vec(
            n,
            c,
            (0..n * c)
                .map(|v| 0.5 + 0.4 * ((v as f64) * 0.37).sin())
                .collect(),
        )
    }

    #[test]
    fn streamed_bias_is_bit_identical_to_dense_oracle_across_block_sizes() {
        let n = 41;
        let g = ring_with_chords(n);
        let probs = smooth_probs(n, 3);
        let oracle = bias(&probs, &similarity_laplacian(&jaccard_similarity(&g)));
        for block_rows in [1, 7, 64, n] {
            let streamed = streamed_bias(&g, &probs, block_rows);
            assert_eq!(
                streamed.to_bits(),
                oracle.to_bits(),
                "streamed bias differs from oracle at block_rows={block_rows}"
            );
        }
    }

    #[test]
    fn streamed_bias_matches_serial_twin_under_forced_threads() {
        let n = 37;
        let g = ring_with_chords(n);
        let probs = smooth_probs(n, 4);
        let serial = streamed_bias_serial(&g, &probs, 7);
        for threads in [1, 4] {
            let parallel = ppfr_linalg::parallel::with_forced_threads(threads, || {
                streamed_bias(&g, &probs, 7)
            });
            assert_eq!(
                parallel.to_bits(),
                serial.to_bits(),
                "streamed bias differs at {threads} threads"
            );
        }
    }

    #[test]
    fn uniform_predictions_have_zero_streamed_bias() {
        let g = ring_with_chords(12);
        let probs = Matrix::filled(12, 3, 1.0 / 3.0);
        assert!(streamed_bias(&g, &probs, 4).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_streams_to_zero() {
        let g = Graph::empty(0);
        let probs = Matrix::zeros(0, 2);
        assert_eq!(streamed_bias(&g, &probs, 8), 0.0);
    }
}
