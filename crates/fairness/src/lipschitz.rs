//! Lipschitz-style individual-fairness audit.
//!
//! "Similar nodes should receive similar predictions" can be audited pair by
//! pair: a pair `(i, j)` with similarity `S_ij` violates an `L`-Lipschitz
//! fairness promise when `‖P_i − P_j‖ > L · (1 − S_ij) + tol`.  The audit is
//! a complementary, more interpretable view of the aggregate InFoRM bias.

use ppfr_graph::SparseMatrix;
use ppfr_linalg::Matrix;

/// A single fairness violation found by [`lipschitz_violations`].
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// First node of the pair.
    pub i: usize,
    /// Second node of the pair.
    pub j: usize,
    /// Jaccard similarity of the pair.
    pub similarity: f64,
    /// Euclidean distance between the two prediction rows.
    pub prediction_distance: f64,
}

/// Returns every pair `(i, j)` with `S_ij > 0` whose prediction distance
/// exceeds `lipschitz * (1 − S_ij)`.
pub fn lipschitz_violations(
    probs: &Matrix,
    similarity: &SparseMatrix,
    lipschitz: f64,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, j, s) in similarity.iter() {
        if i >= j || s <= 0.0 {
            continue;
        }
        let mut d2 = 0.0;
        for c in 0..probs.cols() {
            let d = probs[(i, c)] - probs[(j, c)];
            d2 += d * d;
        }
        let dist = d2.sqrt();
        if dist > lipschitz * (1.0 - s) {
            out.push(Violation {
                i,
                j,
                similarity: s,
                prediction_distance: dist,
            });
        }
    }
    out
}

/// The largest prediction gap among maximally-similar pairs (`S_ij ≥ 0.99`).
/// Zero when no such pair exists.
pub fn max_unfairness_gap(probs: &Matrix, similarity: &SparseMatrix) -> f64 {
    let mut max_gap: f64 = 0.0;
    for (i, j, s) in similarity.iter() {
        if i >= j || s < 0.99 {
            continue;
        }
        let mut d2 = 0.0;
        for c in 0..probs.cols() {
            let d = probs[(i, c)] - probs[(j, c)];
            d2 += d * d;
        }
        max_gap = max_gap.max(d2.sqrt());
    }
    max_gap
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_graph::{jaccard_similarity, Graph};

    fn triangle_plus_tail() -> (Graph, SparseMatrix) {
        // 0-1-2 triangle (nodes 0 and 1 are twins) with a tail 2-3.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        let s = jaccard_similarity(&g);
        (g, s)
    }

    #[test]
    fn identical_predictions_produce_no_violations() {
        let (_, s) = triangle_plus_tail();
        let probs = Matrix::filled(4, 2, 0.5);
        assert!(lipschitz_violations(&probs, &s, 0.1).is_empty());
        assert_eq!(max_unfairness_gap(&probs, &s), 0.0);
    }

    #[test]
    fn twins_with_opposite_predictions_are_flagged() {
        let (_, s) = triangle_plus_tail();
        // Nodes 0 and 1 have similarity 1 but opposite predictions.
        let probs = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.5, 0.5],
            vec![0.5, 0.5],
        ]);
        let violations = lipschitz_violations(&probs, &s, 0.5);
        assert!(
            violations.iter().any(|v| (v.i, v.j) == (0, 1)),
            "twin pair must be flagged"
        );
        assert!(max_unfairness_gap(&probs, &s) > 1.0);
    }

    #[test]
    fn looser_lipschitz_constant_reduces_violations() {
        let (_, s) = triangle_plus_tail();
        let probs = Matrix::from_rows(&[
            vec![0.8, 0.2],
            vec![0.4, 0.6],
            vec![0.6, 0.4],
            vec![0.3, 0.7],
        ]);
        let strict = lipschitz_violations(&probs, &s, 0.01).len();
        let loose = lipschitz_violations(&probs, &s, 10.0).len();
        assert!(strict >= loose);
    }
}
