//! Individual-fairness metrics for GNN predictions.
//!
//! Implements the InFoRM bias `f_bias = Tr(Pᵀ L_S P)` (Definition 1 of the
//! paper), its gradient w.r.t. the prediction matrix (used both by the Reg
//! baseline and by the influence-function machinery), a Lipschitz-style
//! individual-fairness audit and a REDRESS-style ranking-fairness metric
//! (listed as an extension in DESIGN.md).

#![forbid(unsafe_code)]

mod bias;
mod lipschitz;
mod ranking;
mod streaming;

pub use bias::{bias, bias_gradient_wrt_probs, pairwise_bias};
pub use lipschitz::{lipschitz_violations, max_unfairness_gap};
pub use ranking::ranking_fairness_ndcg;
pub use streaming::{streamed_bias, streamed_bias_serial};
