//! REDRESS-style ranking fairness (extension).
//!
//! REDRESS (Dong et al., KDD'21) measures individual fairness from a ranking
//! perspective: for every node, the ranking of the other nodes induced by the
//! *prediction* similarity should agree with the ranking induced by the
//! *input* (here: Jaccard) similarity.  We report the average NDCG@k of the
//! prediction-based ranking against the similarity-based ground truth, which
//! is the metric REDRESS optimises.  It is not used by the PPFR pipeline but
//! provides a second, independent fairness lens for the examples.

use ppfr_graph::SparseMatrix;
use ppfr_linalg::Matrix;

fn prediction_similarity(probs: &Matrix, i: usize, j: usize) -> f64 {
    // Negative euclidean distance as a similarity score.
    let mut d2 = 0.0;
    for c in 0..probs.cols() {
        let d = probs[(i, c)] - probs[(j, c)];
        d2 += d * d;
    }
    -d2.sqrt()
}

/// Average NDCG@k agreement between the prediction-induced ranking and the
/// Jaccard-similarity-induced ranking, over nodes with at least one positive
/// similarity entry.  Returns a value in `[0, 1]`; higher is fairer.
pub fn ranking_fairness_ndcg(probs: &Matrix, similarity: &SparseMatrix, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let n = probs.rows();
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        let neighbors: Vec<(usize, f64)> = similarity
            .row(i)
            .filter(|&(j, s)| j != i && s > 0.0)
            .collect();
        if neighbors.is_empty() {
            continue;
        }
        // Ideal DCG: neighbours sorted by true similarity.
        let mut by_sim = neighbors.clone();
        by_sim.sort_by(|a, b| b.1.total_cmp(&a.1));
        let idcg: f64 = by_sim
            .iter()
            .take(k)
            .enumerate()
            .map(|(rank, &(_, s))| (2f64.powf(s) - 1.0) / ((rank + 2) as f64).log2())
            .sum();
        if idcg <= 0.0 {
            continue;
        }
        // DCG of the prediction-induced ranking.
        let mut by_pred = neighbors.clone();
        // NaN-safe: a NaN prediction similarity is canonicalised to -inf so
        // the pair ranks last instead of panicking mid-experiment.
        let pred = |j: usize| {
            let s = prediction_similarity(probs, i, j);
            if s.is_nan() {
                f64::NEG_INFINITY
            } else {
                s
            }
        };
        by_pred.sort_by(|a, b| pred(b.0).total_cmp(&pred(a.0)));
        let dcg: f64 = by_pred
            .iter()
            .take(k)
            .enumerate()
            .map(|(rank, &(_, s))| (2f64.powf(s) - 1.0) / ((rank + 2) as f64).log2())
            .sum();
        total += dcg / idcg;
        counted += 1;
    }
    if counted == 0 {
        return 1.0;
    }
    total / counted as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_graph::{jaccard_similarity, Graph};

    #[test]
    fn single_candidate_rankings_score_one_and_ndcg_is_bounded() {
        // With a single edge each node has exactly one ranking candidate, so
        // any prediction ordering is trivially perfect.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let s = jaccard_similarity(&g);
        let probs = Matrix::from_rows(&[vec![0.9, 0.1], vec![0.2, 0.8]]);
        let ndcg = ranking_fairness_ndcg(&probs, &s, 3);
        assert!(
            (ndcg - 1.0).abs() < 1e-12,
            "single-candidate NDCG must be 1, got {ndcg}"
        );

        // On a larger graph the score stays inside (0, 1].
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let s = jaccard_similarity(&g);
        let probs = Matrix::from_rows(&[
            vec![0.7, 0.3],
            vec![0.6, 0.4],
            vec![0.4, 0.6],
            vec![0.3, 0.7],
        ]);
        let ndcg = ranking_fairness_ndcg(&probs, &s, 3);
        assert!(
            ndcg > 0.0 && ndcg <= 1.0 + 1e-12,
            "NDCG out of range: {ndcg}"
        );
    }

    #[test]
    fn anti_correlated_predictions_score_lower() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (0, 3), (3, 4)]);
        let s = jaccard_similarity(&g);
        let aligned = Matrix::from_rows(&[
            vec![0.9, 0.1],
            vec![0.88, 0.12],
            vec![0.86, 0.14],
            vec![0.3, 0.7],
            vec![0.2, 0.8],
        ]);
        // Scramble: most-similar neighbours get the most distant predictions.
        let scrambled = Matrix::from_rows(&[
            vec![0.9, 0.1],
            vec![0.05, 0.95],
            vec![0.5, 0.5],
            vec![0.89, 0.11],
            vec![0.9, 0.1],
        ]);
        let good = ranking_fairness_ndcg(&aligned, &s, 4);
        let bad = ranking_fairness_ndcg(&scrambled, &s, 4);
        assert!(
            good >= bad,
            "aligned predictions must not rank worse: {good} vs {bad}"
        );
    }

    #[test]
    fn graph_without_edges_returns_one() {
        let g = Graph::empty(3);
        let s = jaccard_similarity(&g);
        let probs = Matrix::filled(3, 2, 0.5);
        assert_eq!(ranking_fairness_ndcg(&probs, &s, 2), 1.0);
    }
}
