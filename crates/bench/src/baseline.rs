//! Pre-microkernel reference implementations, frozen for benchmarking.
//!
//! The PR that introduced the persistent work-stealing pool and the 4-wide
//! GEMM/SpMM microkernels kept every production kernel bit-identical to
//! these scalar forms — so this module replicates the *previous* inner loops
//! (scalar zero-skip accumulation, per-call scoped-thread dispatch) as
//! stable baselines.  `benches/microkernels.rs` and `exp_bench_json` measure
//! the production kernels against them, and the unit tests below pin the
//! bit-identity claim itself.

use ppfr_graph::SparseMatrix;
use ppfr_linalg::Matrix;

/// Block height of the cache-blocked `Aᵀ·B` baseline (the PR 5 constant).
pub const AT_B_BLOCK_ROWS: usize = 8;

/// Replica of the pre-pool parallel dispatch: spawn one scoped thread per
/// worker with a statically partitioned index range, every call.  This is
/// the latency baseline the persistent pool must beat.
pub fn scoped_spawn_dispatch<F>(n_items: usize, threads: usize, task: F)
where
    F: Fn(usize) + Sync,
{
    if threads <= 1 || n_items <= 1 {
        for i in 0..n_items {
            task(i);
        }
        return;
    }
    let workers = threads.min(n_items);
    let per = n_items.div_ceil(workers);
    std::thread::scope(|scope| {
        let task = &task;
        for w in 0..workers {
            let start = w * per;
            let end = ((w + 1) * per).min(n_items);
            scope.spawn(move || {
                for i in start..end {
                    task(i);
                }
            });
        }
    });
}

/// Scalar zero-skip row update of the dense product (the pre-microkernel
/// `matmul_row_into`).
fn matmul_row_scalar(a_row: &[f64], b: &Matrix, out_row: &mut [f64]) {
    for (k, &a) in a_row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let b_row = b.row(k);
        for (o, &v) in out_row.iter_mut().zip(b_row.iter()) {
            *o += a * v;
        }
    }
}

/// Scalar single-threaded `A·B` (finite operands assumed).
pub fn matmul_serial(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        matmul_row_scalar(a.row(r), b, out.row_mut(r));
    }
    out
}

/// Scalar single-threaded cache-blocked `Aᵀ·B` (the PR 5 kernel).
pub fn matmul_at_b_serial(a: &Matrix, b: &Matrix) -> Matrix {
    let n = b.cols();
    let mut out = Matrix::zeros(a.cols(), n);
    let block_len = AT_B_BLOCK_ROWS * n;
    if n == 0 || a.cols() == 0 {
        return out;
    }
    let mut first_row = 0;
    for block in out.as_mut_slice().chunks_mut(block_len) {
        for i in 0..a.rows() {
            let a_row = a.row(i);
            let b_row = b.row(i);
            for (r, out_row) in block.chunks_mut(n).enumerate() {
                let coeff = a_row[first_row + r];
                if coeff == 0.0 {
                    continue;
                }
                for (o, &v) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += coeff * v;
                }
            }
        }
        first_row += AT_B_BLOCK_ROWS;
    }
    out
}

/// Scalar single-threaded `A·Bᵀ` (one dot product per output element).
pub fn matmul_a_bt_serial(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for r in 0..a.rows() {
        let a_row = a.row(r);
        let out_row = out.row_mut(r);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0;
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                acc += av * b_row[k];
            }
            *o = acc;
        }
    }
    out
}

/// Scalar single-threaded sparse × dense product (the pre-microkernel
/// per-entry gather).
pub fn spmm_serial(m: &SparseMatrix, dense: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.n_rows(), dense.cols());
    for r in 0..m.n_rows() {
        let out_row = out.row_mut(r);
        for (c, v) in m.row(r) {
            if v == 0.0 {
                continue;
            }
            let d_row = dense.row(c);
            for (o, &d) in out_row.iter_mut().zip(d_row.iter()) {
                *o += v * d;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize, seed: f64) -> Matrix {
        // ReLU-like sparsity so the zero-skip paths fire.
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| {
                let v = ((i as f64) * 0.7 + seed).sin();
                if v < 0.0 {
                    0.0
                } else {
                    v
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn production_kernels_are_bit_identical_to_the_scalar_baselines() {
        let a = dense(23, 17, 0.3);
        let b = dense(17, 11, 1.1);
        assert_eq!(
            a.matmul_serial(&b).as_slice(),
            matmul_serial(&a, &b).as_slice()
        );

        let c = dense(23, 11, 2.2);
        assert_eq!(
            a.matmul_at_b(&c).as_slice(),
            matmul_at_b_serial(&a, &c).as_slice()
        );

        let d = dense(9, 17, 0.9);
        assert_eq!(
            a.matmul_a_bt(&d).as_slice(),
            matmul_a_bt_serial(&a, &d).as_slice()
        );
    }

    #[test]
    fn spmm_is_bit_identical_to_the_scalar_baseline() {
        let n = 37;
        let mut triplets = Vec::new();
        for i in 0..n {
            for s in 0..6 {
                triplets.push((i, (i * 5 + s * 7 + 1) % n, 0.25 + (i + s) as f64 / 10.0));
            }
        }
        let m = SparseMatrix::from_triplets(n, n, &triplets);
        let d = dense(n, 8, 0.4);
        assert_eq!(
            m.matmul_dense_serial(&d).as_slice(),
            spmm_serial(&m, &d).as_slice()
        );
    }

    #[test]
    fn scoped_spawn_dispatch_covers_every_index() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1, 3, 8] {
            let counters: Vec<AtomicUsize> = (0..101).map(|_| AtomicUsize::new(0)).collect();
            scoped_spawn_dispatch(counters.len(), threads, |i| {
                counters[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }
}
