//! Experiment binaries and Criterion benchmarks for the PPFR reproduction.
//!
//! * `src/bin/exp_table{2,3,4,5}.rs`, `src/bin/exp_fig{4,5,6,7}.rs` —
//!   regenerate each table / figure of the paper, multi-seed via
//!   `ppfr_runner`, and print every metric as `mean ± std` (pass `--smoke`
//!   for the reduced scale);
//! * `src/bin/exp_runner.rs` — execute one named scenario matrix and print
//!   the aggregated report (text + stable JSON);
//! * `benches/kernels.rs` — micro-benchmarks of the hot kernels;
//! * `benches/microkernels.rs` — the 4-wide GEMM/SpMM microkernels and the
//!   persistent-pool dispatch against the frozen [`baseline`] replicas;
//! * `benches/tables.rs`, `benches/figures.rs` — smoke-scale end-to-end
//!   benchmarks, one group per table / figure;
//! * `benches/ablations.rs` — design-choice ablations called out in DESIGN.md
//!   (PP vs DP noise, QCLP re-weighting vs top-k node deletion).

#![forbid(unsafe_code)]

pub mod baseline;

use ppfr_core::ExperimentScale;
use ppfr_linalg::Matrix;
use ppfr_privacy::{auc_from_distances_quadratic, pairwise_distance, DistanceKind, PairSample};
use serde::Value;

/// Parses the experiment scale from command-line arguments: `--smoke` selects
/// the reduced scale, anything else (including nothing) selects full scale.
pub fn scale_from_args() -> ExperimentScale {
    if std::env::args().any(|a| a == "--smoke") {
        ExperimentScale::Smoke
    } else {
        ExperimentScale::Full
    }
}

/// Unwraps a runner result for the `exp_*` binaries: a failed scenario prints
/// the error to stderr and exits non-zero instead of panicking with a
/// backtrace, so shell pipelines and CI see a clean diagnostic + status code.
pub fn report_or_exit<T>(result: Result<T, ppfr_resilience::RunError>) -> T {
    match result {
        Ok(report) => report,
        Err(err) => {
            eprintln!("scenario failed: {err}");
            std::process::exit(1);
        }
    }
}

/// Merges top-level sections into an existing JSON object document and
/// returns the merged pretty JSON: named sections are replaced (or appended
/// in order), every other key is preserved verbatim.  `existing` is the
/// previous file content, if any; unparseable or non-object content starts a
/// fresh object, so a corrupt report never blocks a new run.
///
/// `exp_bench_json` uses this so re-running it (or any future binary owning
/// its own section) updates only its own sections of `BENCH_kernels.json`
/// instead of clobbering the rest of the report.
pub fn merge_bench_sections(existing: Option<&str>, sections: Vec<(&str, Value)>) -> String {
    let mut entries: Vec<(String, Value)> = match existing.map(serde_json::from_str::<Value>) {
        Some(Ok(Value::Obj(entries))) => entries,
        _ => Vec::new(),
    };
    for (key, value) in sections {
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value,
            None => entries.push((key.to_string(), value)),
        }
    }
    serde_json::to_string_pretty(&Value::Obj(entries)).expect("bench report serialises")
}

/// The seed's attack-evaluation path, kept as the shared benchmark baseline
/// for the `attack` criterion bench and `exp_bench_json`: one pair traversal
/// per distance metric plus the `O(|pos|·|neg|)` quadratic AUC oracle.
pub fn legacy_average_attack_auc(probs: &Matrix, sample: &PairSample) -> f64 {
    let mut total = 0.0;
    for kind in DistanceKind::ALL {
        let pos: Vec<f64> = sample
            .positives
            .iter()
            .map(|&(u, v)| pairwise_distance(kind, probs.row(u), probs.row(v)))
            .collect();
        let neg: Vec<f64> = sample
            .negatives
            .iter()
            .map(|&(u, v)| pairwise_distance(kind, probs.row(u), probs.row(v)))
            .collect();
        total += auc_from_distances_quadratic(&pos, &neg);
    }
    total / DistanceKind::ALL.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        // The test binary has no --smoke flag.
        assert_eq!(scale_from_args(), ExperimentScale::Full);
    }

    #[test]
    fn merging_preserves_foreign_sections_and_replaces_owned_ones() {
        let existing = r#"{"custom": {"kept": true}, "kernels": [1, 2], "threads": 1}"#;
        let merged = merge_bench_sections(
            Some(existing),
            vec![
                ("kernels", Value::Arr(vec![Value::Num(3.0)])),
                ("runner", Value::Str("new".to_string())),
            ],
        );
        let back: Value = serde_json::from_str(&merged).expect("merged JSON parses");
        // Foreign sections survive untouched, owned ones are replaced or
        // appended.
        assert!(matches!(
            back.field("custom").field("kept"),
            Value::Bool(true)
        ));
        assert_eq!(back.field("threads").as_f64().unwrap(), 1.0);
        assert_eq!(back.field("kernels").as_arr().unwrap().len(), 1);
        assert_eq!(back.field("runner").as_str().unwrap(), "new");
    }

    #[test]
    fn merging_starts_fresh_on_missing_or_corrupt_input() {
        for existing in [None, Some("not json"), Some("[1, 2]")] {
            let merged = merge_bench_sections(existing, vec![("runner", Value::Num(1.0))]);
            let back: Value = serde_json::from_str(&merged).expect("parses");
            assert_eq!(back.field("runner").as_f64().unwrap(), 1.0);
        }
    }
}
