//! Experiment binaries and Criterion benchmarks for the PPFR reproduction.
//!
//! * `src/bin/exp_table{2,3,4,5}.rs`, `src/bin/exp_fig{4,5,6,7}.rs` —
//!   regenerate each table / figure of the paper and print it (pass `--smoke`
//!   for the reduced scale);
//! * `benches/kernels.rs` — micro-benchmarks of the hot kernels;
//! * `benches/tables.rs`, `benches/figures.rs` — smoke-scale end-to-end
//!   benchmarks, one group per table / figure;
//! * `benches/ablations.rs` — design-choice ablations called out in DESIGN.md
//!   (PP vs DP noise, QCLP re-weighting vs top-k node deletion).

use ppfr_core::ExperimentScale;

/// Parses the experiment scale from command-line arguments: `--smoke` selects
/// the reduced scale, anything else (including nothing) selects full scale.
pub fn scale_from_args() -> ExperimentScale {
    if std::env::args().any(|a| a == "--smoke") {
        ExperimentScale::Smoke
    } else {
        ExperimentScale::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        // The test binary has no --smoke flag.
        assert_eq!(scale_from_args(), ExperimentScale::Full);
    }
}
