//! Experiment binaries and Criterion benchmarks for the PPFR reproduction.
//!
//! * `src/bin/exp_table{2,3,4,5}.rs`, `src/bin/exp_fig{4,5,6,7}.rs` —
//!   regenerate each table / figure of the paper and print it (pass `--smoke`
//!   for the reduced scale);
//! * `benches/kernels.rs` — micro-benchmarks of the hot kernels;
//! * `benches/tables.rs`, `benches/figures.rs` — smoke-scale end-to-end
//!   benchmarks, one group per table / figure;
//! * `benches/ablations.rs` — design-choice ablations called out in DESIGN.md
//!   (PP vs DP noise, QCLP re-weighting vs top-k node deletion).

use ppfr_core::ExperimentScale;
use ppfr_linalg::Matrix;
use ppfr_privacy::{auc_from_distances_quadratic, pairwise_distance, DistanceKind, PairSample};

/// Parses the experiment scale from command-line arguments: `--smoke` selects
/// the reduced scale, anything else (including nothing) selects full scale.
pub fn scale_from_args() -> ExperimentScale {
    if std::env::args().any(|a| a == "--smoke") {
        ExperimentScale::Smoke
    } else {
        ExperimentScale::Full
    }
}

/// The seed's attack-evaluation path, kept as the shared benchmark baseline
/// for the `attack` criterion bench and `exp_bench_json`: one pair traversal
/// per distance metric plus the `O(|pos|·|neg|)` quadratic AUC oracle.
pub fn legacy_average_attack_auc(probs: &Matrix, sample: &PairSample) -> f64 {
    let mut total = 0.0;
    for kind in DistanceKind::ALL {
        let pos: Vec<f64> = sample
            .positives
            .iter()
            .map(|&(u, v)| pairwise_distance(kind, probs.row(u), probs.row(v)))
            .collect();
        let neg: Vec<f64> = sample
            .negatives
            .iter()
            .map(|&(u, v)| pairwise_distance(kind, probs.row(u), probs.row(v)))
            .collect();
        total += auc_from_distances_quadratic(&pos, &neg);
    }
    total / DistanceKind::ALL.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        // The test binary has no --smoke flag.
        assert_eq!(scale_from_args(), ExperimentScale::Full);
    }
}
