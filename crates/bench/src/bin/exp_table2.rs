//! Regenerates Table II: Pearson correlation between the influence of
//! training nodes on f_bias and on f_risk, per dataset and model.
fn main() {
    let scale = ppfr_bench::scale_from_args();
    let result = ppfr_core::experiments::table2(scale);
    println!("{}", result.to_table_string());
    println!(
        "{}",
        serde_json::to_string_pretty(&result).expect("serialise result")
    );
}
