//! Runs every table and figure experiment in one go (used to produce
//! EXPERIMENTS.md), multi-seed: the high-homophily scenario is executed once
//! through the runner and every table/figure view is derived from that one
//! report, with the artifact cache shared across the derived scenarios.
use ppfr_runner::{
    accuracy_view, fig4_view, fig6_multi, run_scenario, table3_view, ArtifactCache,
    ScenarioRegistry, DEFAULT_SEEDS,
};

fn main() {
    let scale = ppfr_bench::scale_from_args();
    println!("# PPFR full experiment run (scale: {scale:?}, seeds {DEFAULT_SEEDS:?})\n");

    // Table II stays single-seed: it reports an influence-vector correlation,
    // not a defence metric.
    let t2 = ppfr_core::experiments::table2(scale);
    println!("{}", t2.to_table_string());

    // One runner execution of the full high-homophily matrix feeds Tables
    // III & IV and Figs. 4, 5 and 7.
    let cache = ArtifactCache::new();
    let high = ScenarioRegistry::get("tables-high-homophily", scale).expect("stock scenario");
    let high_report = ppfr_bench::report_or_exit(run_scenario(&high, &cache));

    println!("{}", table3_view(&high_report));
    println!("{}", fig4_view(&high_report));
    println!("Table IV: effectiveness of the methods (high-homophily datasets)");
    println!("{}", high_report.to_table_string());
    println!("{}", accuracy_view(&high_report, &["GCN", "GAT"], "Fig. 5"));
    println!("{}", accuracy_view(&high_report, &["GraphSage"], "Fig. 7"));

    let weak = ScenarioRegistry::get("tables-weak-homophily", scale).expect("stock scenario");
    let weak_report = ppfr_bench::report_or_exit(run_scenario(&weak, &cache));
    println!("Table V: GCN on weak-homophily datasets");
    println!("{}", weak_report.to_table_string());

    let f6 = fig6_multi(scale, &DEFAULT_SEEDS);
    println!("{}", f6.to_table_string());
}
