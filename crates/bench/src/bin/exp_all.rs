//! Runs every table and figure experiment in one go (used to produce
//! EXPERIMENTS.md).  Table IV is computed once and reused for Figs. 5 and 7.
fn main() {
    let scale = ppfr_bench::scale_from_args();
    println!("# PPFR full experiment run (scale: {scale:?})\n");

    let t2 = ppfr_core::experiments::table2(scale);
    println!("{}", t2.to_table_string());

    let t3 = ppfr_core::experiments::table3(scale);
    println!("{}", t3.to_table_string());

    let f4 = ppfr_core::experiments::fig4(scale);
    println!("{}", f4.to_table_string());
    println!(
        "risk increased in {}/{} dataset-distance pairs\n",
        f4.count_risk_increases(),
        f4.rows.len()
    );

    let t4 = ppfr_core::experiments::table4(scale);
    println!("Table IV: effectiveness of the methods (high-homophily datasets)");
    println!("{}", t4.to_table_string());
    println!(
        "{}",
        ppfr_core::experiments::fig5_from(&t4).to_table_string()
    );
    println!(
        "{}",
        ppfr_core::experiments::fig7_from(&t4).to_table_string()
    );

    let t5 = ppfr_core::experiments::table5(scale);
    println!("Table V: GCN on weak-homophily datasets");
    println!("{}", t5.to_table_string());

    let f6 = ppfr_core::experiments::fig6_ablation(scale);
    println!("{}", f6.to_table_string());
}
