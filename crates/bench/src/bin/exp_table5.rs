//! Regenerates Table V: the same method comparison on the weak-homophily
//! datasets (Enzymes, Credit) with the GCN model, including Δacc.
fn main() {
    let scale = ppfr_bench::scale_from_args();
    let result = ppfr_core::experiments::table5(scale);
    println!("Table V: GCN on weak-homophily datasets");
    println!("{}", result.to_table_string());
}
