//! Regenerates Table V (multi-seed): the method comparison on the
//! weak-homophily datasets (Enzymes, Credit) with the GCN model, every
//! number `mean ± std` over the seed axis.
use ppfr_runner::{run_scenario, ArtifactCache, ScenarioRegistry};

fn main() {
    let scale = ppfr_bench::scale_from_args();
    let spec = ScenarioRegistry::get("tables-weak-homophily", scale).expect("stock scenario");
    let report = ppfr_bench::report_or_exit(run_scenario(&spec, &ArtifactCache::new()));
    println!("Table V: GCN on weak-homophily datasets");
    println!("{}", report.to_table_string());
}
