//! Regenerates Table III: accuracy and bias of the GCN with and without the
//! InFoRM fairness regulariser.
fn main() {
    let scale = ppfr_bench::scale_from_args();
    let result = ppfr_core::experiments::table3(scale);
    println!("{}", result.to_table_string());
    println!(
        "{}",
        serde_json::to_string_pretty(&result).expect("serialise result")
    );
}
