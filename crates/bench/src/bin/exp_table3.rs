//! Regenerates Table III (multi-seed): accuracy and bias of the GCN with and
//! without the InFoRM fairness regulariser, `mean ± std` over the seed axis.
use ppfr_core::Method;
use ppfr_gnn::ModelKind;
use ppfr_runner::{run_scenario, table3_view, ArtifactCache, ScenarioRegistry};

fn main() {
    let scale = ppfr_bench::scale_from_args();
    let spec = ScenarioRegistry::get("tables-high-homophily", scale)
        .expect("stock scenario")
        .with_models(&[ModelKind::Gcn])
        .with_methods(&[Method::Vanilla, Method::Reg]);
    let report = ppfr_bench::report_or_exit(run_scenario(&spec, &ArtifactCache::new()));
    println!("{}", table3_view(&report));
    println!("{}", report.to_json());
}
