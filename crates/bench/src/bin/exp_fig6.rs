//! Regenerates Fig. 6: the PPFR ablation (FR-only sweep, PP ratio sweep with
//! fixed FR, and FR epoch sweep with fixed PP).
fn main() {
    let scale = ppfr_bench::scale_from_args();
    let result = ppfr_core::experiments::fig6_ablation(scale);
    println!("{}", result.to_table_string());
}
