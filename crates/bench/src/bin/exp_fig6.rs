//! Regenerates Fig. 6 (multi-seed): the PPFR ablation (FR-only sweep, PP
//! ratio sweep with fixed FR, and FR epoch sweep with fixed PP), every point
//! aggregated `mean ± std` over the seed axis.
use ppfr_runner::{fig6_multi, DEFAULT_SEEDS};

fn main() {
    let scale = ppfr_bench::scale_from_args();
    let result = fig6_multi(scale, &DEFAULT_SEEDS);
    println!("{}", result.to_table_string());
}
