//! Runs one scenario with full telemetry on and exports the observability
//! artifacts: a span-tree/metrics text report on stdout, a chrome://tracing
//! trace-event JSON file, and a `telemetry` section merged into
//! `BENCH_kernels.json`.
//!
//! Usage:
//! `cargo run --release -p ppfr_bench --features telemetry --bin exp_trace -- \
//!     [--smoke] [--scenario NAME] [--out FILE]`
//!
//! `NAME` defaults to `bench-small`; `FILE` defaults to `TRACE_events.json`
//! (load it in `chrome://tracing` or <https://ui.perfetto.dev>).  Without the
//! `telemetry` cargo feature every instrumentation site is compiled out, so
//! the binary still runs but reports nothing — it says so and exits non-zero
//! to keep CI honest.

use ppfr_core::ExperimentScale;
use ppfr_runner::{run_scenario, ArtifactCache, ScenarioRegistry};
use serde::{Serialize, Value};

/// Renders one merged span node (and its children) as a JSON object.
fn span_value(node: &ppfr_telemetry::SpanTree) -> Value {
    Value::Obj(vec![
        ("name".to_string(), node.name.to_value()),
        ("count".to_string(), node.count.to_value()),
        (
            "total_ms".to_string(),
            (node.total_ns as f64 / 1e6).to_value(),
        ),
        (
            "children".to_string(),
            Value::Arr(node.children.iter().map(span_value).collect()),
        ),
    ])
}

/// Renders the metric snapshot as a JSON object in its canonical sorted
/// order.
fn metrics_value(snapshot: &[(String, ppfr_telemetry::MetricValue)]) -> Value {
    use ppfr_telemetry::MetricValue;
    Value::Obj(
        snapshot
            .iter()
            .map(|(name, value)| {
                let v = match value {
                    MetricValue::Counter(n) => n.to_value(),
                    MetricValue::Gauge(g) => g.to_value(),
                    MetricValue::Histogram(h) => Value::Obj(vec![
                        ("count".to_string(), h.count.to_value()),
                        ("sum".to_string(), h.sum.to_value()),
                        (
                            "buckets".to_string(),
                            Value::Arr(
                                h.buckets
                                    .iter()
                                    .map(|&(le, n)| {
                                        Value::Obj(vec![
                                            ("le".to_string(), le.to_value()),
                                            ("n".to_string(), n.to_value()),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                };
                (name.clone(), v)
            })
            .collect(),
    )
}

fn pool_value(stats: &rayon::PoolStats) -> Value {
    Value::Obj(vec![
        ("dispatches".to_string(), stats.dispatches.to_value()),
        (
            "serial_fallbacks".to_string(),
            stats.serial_fallbacks.to_value(),
        ),
        ("joins".to_string(), stats.joins.to_value()),
        ("joins_inline".to_string(), stats.joins_inline.to_value()),
        ("steals".to_string(), stats.steals.to_value()),
        ("local_pops".to_string(), stats.local_pops.to_value()),
        ("parks".to_string(), stats.parks.to_value()),
    ])
}

fn main() {
    let scale = ppfr_bench::scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let name = arg_after("--scenario").unwrap_or("bench-small");
    let out_path = arg_after("--out").unwrap_or("TRACE_events.json");

    if !ppfr_telemetry::compiled() {
        eprintln!(
            "exp_trace: built without the `telemetry` feature — every span and \
             metric site is compiled out.  Re-run with `--features telemetry`."
        );
        std::process::exit(2);
    }
    ppfr_telemetry::set_enabled(true);
    ppfr_telemetry::set_trace_enabled(true);
    ppfr_telemetry::reset();
    rayon::set_pool_stats_enabled(true);
    rayon::reset_pool_stats();

    let Some(spec) = ScenarioRegistry::get(name, scale) else {
        eprintln!(
            "unknown scenario '{name}'; available: {}",
            ScenarioRegistry::NAMES.join(", ")
        );
        std::process::exit(2);
    };
    println!(
        "tracing scenario '{}' ({} runs) at {} thread(s)\n",
        spec.name,
        spec.n_runs(),
        ppfr_linalg::parallel::current_num_threads()
    );
    let cache = ArtifactCache::new();
    let report = ppfr_bench::report_or_exit(run_scenario(&spec, &cache));

    // Human-readable span tree + metrics, after the run quiesced.
    println!("{}", ppfr_telemetry::report());
    println!("{}", cache.stats().summary_line());
    let pool = rayon::pool_stats();
    println!(
        "pool: {} dispatches, {} serial fallbacks, {} steals, {} local pops, {} parks",
        pool.dispatches, pool.serial_fallbacks, pool.steals, pool.local_pops, pool.parks
    );

    // Chrome trace-event export (drains the captured events).
    let trace = ppfr_telemetry::chrome_trace_json();
    std::fs::write(out_path, &trace).expect("write trace-event JSON");
    println!("\nwrote {out_path} (chrome://tracing trace-event JSON)");

    // Merge the canonical aggregates into the shared bench artifact.
    let telemetry_section = Value::Obj(vec![
        ("scenario".to_string(), spec.name.to_value()),
        (
            "spans".to_string(),
            Value::Arr(ppfr_telemetry::span_tree().iter().map(span_value).collect()),
        ),
        (
            "metrics".to_string(),
            metrics_value(&ppfr_telemetry::snapshot()),
        ),
        ("pool".to_string(), pool_value(&pool)),
    ]);
    let existing = std::fs::read_to_string("BENCH_kernels.json").ok();
    let json = ppfr_bench::merge_bench_sections(
        existing.as_deref(),
        vec![("telemetry", telemetry_section)],
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("merged telemetry section into BENCH_kernels.json");

    // Keep the run honest: the report must still aggregate the full matrix.
    assert_eq!(
        report.runs.len(),
        spec.n_runs(),
        "scenario must aggregate every run"
    );
    let scale_label = match scale {
        ExperimentScale::Full => "full",
        ExperimentScale::Smoke => "smoke",
    };
    println!("done ({scale_label} scale)");
}
