//! Executes one named scenario through the multi-seed runner and prints the
//! aggregated `mean ± std` report (text + stable JSON).
//!
//! Usage:
//! `cargo run --release -p ppfr_bench --bin exp_runner -- [--smoke] [--scenario NAME]`
//!
//! `NAME` defaults to `bench-small` (the 2 datasets × 5 methods × 3 seeds
//! acceptance matrix); see `ScenarioRegistry::NAMES` for the stock list.
use ppfr_runner::{run_scenario, ArtifactCache, ScenarioRegistry};

fn main() {
    let scale = ppfr_bench::scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let name = args
        .iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
        .map_or("bench-small", String::as_str);
    let Some(spec) = ScenarioRegistry::get(name, scale) else {
        eprintln!(
            "unknown scenario '{name}'; available: {}",
            ScenarioRegistry::NAMES.join(", ")
        );
        std::process::exit(2);
    };
    println!(
        "scenario '{}': {} runs ({} datasets x {} models x {} methods x {} seeds)\n",
        spec.name,
        spec.n_runs(),
        spec.datasets.len(),
        spec.models.len(),
        spec.methods.len(),
        spec.seeds.len()
    );
    let cache = ArtifactCache::new();
    let report = ppfr_bench::report_or_exit(run_scenario(&spec, &cache));
    println!("{}", report.to_table_string_with_cache(&cache.stats()));
    println!("{}", report.to_json());
}
