//! Regenerates Fig. 7 (multi-seed): accuracy cost of the methods on
//! GraphSAGE, each bar `mean ± std` over the seed axis.
use ppfr_gnn::ModelKind;
use ppfr_runner::{accuracy_view, run_scenario, ArtifactCache, ScenarioRegistry};

fn main() {
    let scale = ppfr_bench::scale_from_args();
    let spec = ScenarioRegistry::get("tables-high-homophily", scale)
        .expect("stock scenario")
        .with_models(&[ModelKind::GraphSage]);
    let report = ppfr_bench::report_or_exit(run_scenario(&spec, &ArtifactCache::new()));
    println!("{}", accuracy_view(&report, &["GraphSage"], "Fig. 7"));
}
