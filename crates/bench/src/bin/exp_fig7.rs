//! Regenerates Fig. 7: accuracy cost of the methods on GraphSAGE.
fn main() {
    let scale = ppfr_bench::scale_from_args();
    let table4 = ppfr_core::experiments::table4(scale);
    let result = ppfr_core::experiments::fig7_from(&table4);
    println!("{}", result.to_table_string());
}
