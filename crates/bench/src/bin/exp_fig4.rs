//! Regenerates Fig. 4 (multi-seed): link-stealing attack AUC per distance
//! metric, before and after adding the fairness regulariser (GCN), each bar
//! `mean ± std` over the seed axis.
use ppfr_core::Method;
use ppfr_gnn::ModelKind;
use ppfr_runner::{fig4_view, run_scenario, ArtifactCache, ScenarioRegistry};

fn main() {
    let scale = ppfr_bench::scale_from_args();
    let spec = ScenarioRegistry::get("tables-high-homophily", scale)
        .expect("stock scenario")
        .with_models(&[ModelKind::Gcn])
        .with_methods(&[Method::Vanilla, Method::Reg]);
    let report = ppfr_bench::report_or_exit(run_scenario(&spec, &ArtifactCache::new()));
    println!("{}", fig4_view(&report));
}
