//! Regenerates Fig. 4: link-stealing attack AUC per distance metric, before
//! and after adding the fairness regulariser (GCN).
fn main() {
    let scale = ppfr_bench::scale_from_args();
    let result = ppfr_core::experiments::fig4(scale);
    println!("{}", result.to_table_string());
    println!(
        "risk increased (AUC(Reg) >= AUC(vanilla)) in {}/{} dataset-distance pairs",
        result.count_risk_increases(),
        result.rows.len()
    );
}
