//! Regenerates Table IV: Δbias / Δrisk / Δ of Reg, DPReg, DPFR and PPFR on the
//! three high-homophily datasets and all three GNN architectures.
fn main() {
    let scale = ppfr_bench::scale_from_args();
    let result = ppfr_core::experiments::table4(scale);
    println!("Table IV: effectiveness of the methods (high-homophily datasets)");
    println!("{}", result.to_table_string());
}
