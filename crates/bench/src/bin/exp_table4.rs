//! Regenerates Table IV (multi-seed): Δbias / Δrisk / Δ of Reg, DPReg, DPFR
//! and PPFR on the three high-homophily datasets and all three GNN
//! architectures, every number `mean ± std` over the seed axis.
use ppfr_runner::{run_scenario, ArtifactCache, ScenarioRegistry};

fn main() {
    let scale = ppfr_bench::scale_from_args();
    let spec = ScenarioRegistry::get("tables-high-homophily", scale).expect("stock scenario");
    let report = ppfr_bench::report_or_exit(run_scenario(&spec, &ArtifactCache::new()));
    println!("Table IV: effectiveness of the methods (high-homophily datasets)");
    println!("{}", report.to_table_string());
}
