//! Times the core kernels (dense matmul, CSR SpMM, Jaccard similarity,
//! Hessian-vector product) serial vs parallel and writes `BENCH_kernels.json`
//! so successive PRs accumulate a machine-readable performance trajectory.
//!
//! Usage: `cargo run --release -p ppfr_bench --bin exp_bench_json [--smoke]`
//! (`--smoke` shrinks the problem sizes for CI).

use ppfr_bench::legacy_average_attack_auc;
use ppfr_core::ExperimentScale;
use ppfr_datasets::{generate, two_block_synthetic, DatasetSpec};
use ppfr_gnn::{AnyModel, GnnModel, GraphContext, ModelKind};
use ppfr_graph::{jaccard_similarity, jaccard_similarity_serial};
use ppfr_influence::hessian_vector_product;
use ppfr_linalg::parallel::{current_num_threads, with_forced_threads};
use ppfr_linalg::{row_softmax, Matrix};
use ppfr_privacy::AttackEvaluator;
use ppfr_telemetry::Stopwatch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize, Value};

/// One kernel's serial-vs-parallel wall-clock comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelBench {
    /// Kernel name.
    pub kernel: String,
    /// Problem-size label.
    pub size: String,
    /// Best-of-reps single-thread time (milliseconds).
    pub serial_ms: f64,
    /// Best-of-reps parallel time (milliseconds).
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
}

/// One algorithmic-path replacement: the seed's implementation against the
/// rebuilt one (both single-threaded, so the ratio is purely algorithmic).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathBench {
    /// Path name.
    pub path: String,
    /// Problem-size label.
    pub size: String,
    /// Best-of-reps time of the seed's implementation (milliseconds).
    pub legacy_ms: f64,
    /// Best-of-reps time of the rebuilt implementation (milliseconds).
    pub rebuilt_ms: f64,
    /// `legacy_ms / rebuilt_ms`.
    pub speedup: f64,
}

/// One stage of the supervised attack subsystem (`ppfr_attacks`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackStageBench {
    /// Stage name (e.g. `feature_extract_parallel`, `classifier_train_logistic`).
    pub stage: String,
    /// Problem-size label.
    pub size: String,
    /// Best-of-reps wall time (milliseconds).
    pub ms: f64,
}

/// End-to-end training timing per architecture: the legacy allocating loop
/// against the zero-allocation `TrainWorkspace` fast path (bit-identical
/// results; the gap is pure allocator/bandwidth overhead).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingBench {
    /// Architecture name (GCN / GAT / GraphSage).
    pub model: String,
    /// Problem-size label.
    pub size: String,
    /// Best-of-reps per-epoch time of the legacy loop (milliseconds).
    pub legacy_epoch_ms: f64,
    /// Best-of-reps per-epoch time of the warm workspace path (milliseconds).
    pub workspace_epoch_ms: f64,
    /// `legacy_epoch_ms / workspace_epoch_ms`.
    pub speedup: f64,
    /// Epochs per second with a cold (freshly allocated) workspace.
    pub cold_epochs_per_s: f64,
    /// Epochs per second with a warm (reused) workspace.
    pub warm_epochs_per_s: f64,
}

/// Scenario-runner timing: one full run matrix, cold vs artifact-cache-warm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunnerBench {
    /// Matrix shape label.
    pub matrix: String,
    /// Number of runs in the matrix.
    pub runs: usize,
    /// Wall time of the cold execution (fresh artifact cache), milliseconds.
    pub cold_ms: f64,
    /// Wall time of the warm re-run (same cache), milliseconds.
    pub warm_ms: f64,
    /// `cold_ms / warm_ms` — what the artifact cache buys.
    pub speedup: f64,
    /// Artifact bundles cached after the cold run.
    pub cache_entries: usize,
}

/// Dispatch latency of the persistent work-stealing pool against the
/// pre-pool per-call scoped-thread spawn, same trivial task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolDispatchBench {
    /// Number of (near-empty) tasks dispatched per call.
    pub items: usize,
    /// Worker threads requested.
    pub threads: usize,
    /// Best-of-reps per-call time spawning scoped threads (milliseconds).
    pub scoped_spawn_ms: f64,
    /// Best-of-reps per-call time through the persistent pool (milliseconds).
    pub pool_ms: f64,
    /// `scoped_spawn_ms / pool_ms`.
    pub speedup: f64,
}

/// One kernel timed serial vs pool-parallel at an explicitly forced thread
/// count (the top-level `kernels` section records only the ambient count).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolKernelBench {
    /// Kernel name.
    pub kernel: String,
    /// Problem-size label.
    pub size: String,
    /// Forced `PPFR_NUM_THREADS` for the parallel run.
    pub threads: usize,
    /// Best-of-reps single-thread time (milliseconds).
    pub serial_ms: f64,
    /// Best-of-reps pooled time at `threads` (milliseconds).
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
}

/// Single-thread 4-wide microkernel against its pre-microkernel scalar
/// baseline (`ppfr_bench::baseline`); both sides allocate their output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MicrokernelBench {
    /// Kernel name.
    pub kernel: String,
    /// Problem-size label.
    pub size: String,
    /// Best-of-reps time of the scalar baseline (milliseconds).
    pub baseline_ms: f64,
    /// Best-of-reps time of the production microkernel (milliseconds).
    pub micro_ms: f64,
    /// `baseline_ms / micro_ms`.
    pub speedup: f64,
}

/// Best-of-`reps` wall time of `f`, in milliseconds — through the telemetry
/// [`Stopwatch`], the single wall-clock primitive of the workspace.
fn best_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let sw = Stopwatch::new();
        std::hint::black_box(f());
        best = best.min(sw.elapsed_ms());
    }
    best
}

fn compare<R>(
    kernel: &str,
    size: String,
    reps: usize,
    mut serial: impl FnMut() -> R,
    mut parallel: impl FnMut() -> R,
) -> KernelBench {
    let serial_ms = best_ms(reps, &mut serial);
    let parallel_ms = best_ms(reps, &mut parallel);
    let b = KernelBench {
        kernel: kernel.to_string(),
        size,
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms,
    };
    println!(
        "{:<24} {:<18} serial {:>9.3} ms   parallel {:>9.3} ms   speedup {:>5.2}x",
        b.kernel, b.size, b.serial_ms, b.parallel_ms, b.speedup
    );
    b
}

fn main() {
    let scale = ppfr_bench::scale_from_args();
    let (mm, mk, mn, reps) = match scale {
        ExperimentScale::Full => (512, 256, 128, 5),
        ExperimentScale::Smoke => (128, 64, 32, 3),
    };
    let threads = current_num_threads();
    println!("kernel benchmarks: {threads} worker thread(s), best of {reps}\n");

    let mut kernels = Vec::new();
    let mut rng = StdRng::seed_from_u64(7);

    // Dense matmul.
    let a = Matrix::gaussian(mm, mk, 0.0, 1.0, &mut rng);
    let b = Matrix::gaussian(mk, mn, 0.0, 1.0, &mut rng);
    kernels.push(compare(
        "matmul",
        format!("{mm}x{mk}*{mk}x{mn}"),
        reps,
        || a.matmul_serial(&b),
        || a.matmul(&b),
    ));

    // Graph kernels on an SBM large enough to show parallel structure.
    let spec = DatasetSpec {
        n_nodes: scale.scale_nodes(1200),
        ..two_block_synthetic()
    };
    let ds = generate(&spec, 7);
    let a_hat = ds.graph.normalized_adjacency();
    let feat_cols = ds.features.cols();
    kernels.push(compare(
        "spmm",
        format!(
            "{}x{} nnz={} * d={}",
            ds.n_nodes(),
            ds.n_nodes(),
            a_hat.nnz(),
            feat_cols
        ),
        reps,
        || a_hat.matmul_dense_serial(&ds.features),
        || a_hat.matmul_dense(&ds.features),
    ));
    kernels.push(compare(
        "jaccard",
        format!("n={} m={}", ds.n_nodes(), ds.graph.n_edges()),
        reps,
        || jaccard_similarity_serial(&ds.graph),
        || jaccard_similarity(&ds.graph),
    ));

    // Hessian-vector product (parallel = the two FD gradients via par_join
    // plus the parallel forward/backward kernels underneath).
    let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
    let model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 16, ds.n_classes, 1);
    let v = vec![0.01; model.n_params()];
    let hvp = || hessian_vector_product(&model, &ctx, &ds.labels, &ds.splits.train, &v, 1e-4, 0.01);
    kernels.push(compare(
        "hvp",
        format!("params={}", model.n_params()),
        reps,
        || with_forced_threads(1, hvp),
        hvp,
    ));

    // End-to-end GNN training: legacy allocating loop vs the TrainWorkspace
    // fast path, per architecture (bit-identical results).
    let training = {
        use ppfr_gnn::{train_legacy, train_with_workspace, TrainConfig, TrainWorkspace};
        let epochs = match scale {
            ExperimentScale::Full => 20,
            ExperimentScale::Smoke => 8,
        };
        let cfg = TrainConfig {
            epochs,
            lr: 0.01,
            weight_decay: 5e-4,
            seed: 1,
        };
        let weights = vec![1.0; ds.splits.train.len()];
        let size = format!("n={} d={} h=16 e={}", ds.n_nodes(), ctx.feat_dim(), epochs);
        let mut rows = Vec::new();
        for kind in ModelKind::ALL {
            let fresh = || AnyModel::new(kind, ctx.feat_dim(), 16, ds.n_classes, 1);
            let legacy_ms = best_ms(reps, || {
                let mut model = fresh();
                train_legacy(
                    &mut model,
                    &ctx,
                    &ds.labels,
                    &ds.splits.train,
                    &weights,
                    None,
                    &cfg,
                )
            });
            // Cold: a fresh workspace per run (first-call warm-up included).
            let cold_ms = best_ms(reps, || {
                let mut model = fresh();
                let mut ws = TrainWorkspace::new();
                train_with_workspace(
                    &mut model,
                    &ctx,
                    &ds.labels,
                    &ds.splits.train,
                    &weights,
                    None,
                    &cfg,
                    &mut ws,
                )
            });
            // Warm: one workspace reused across runs (the multi-seed pattern).
            let mut ws = TrainWorkspace::new();
            let warm_ms = best_ms(reps + 1, || {
                let mut model = fresh();
                train_with_workspace(
                    &mut model,
                    &ctx,
                    &ds.labels,
                    &ds.splits.train,
                    &weights,
                    None,
                    &cfg,
                    &mut ws,
                )
            });
            let row = TrainingBench {
                model: kind.name().to_string(),
                size: size.clone(),
                legacy_epoch_ms: legacy_ms / epochs as f64,
                workspace_epoch_ms: warm_ms / epochs as f64,
                speedup: legacy_ms / warm_ms,
                cold_epochs_per_s: epochs as f64 / (cold_ms / 1e3),
                warm_epochs_per_s: epochs as f64 / (warm_ms / 1e3),
            };
            println!(
                "{:<24} {:<18} legacy {:>7.3} ms/ep   workspace {:>7.3} ms/ep   speedup {:>5.2}x   ({:.0} -> {:.0} ep/s)",
                format!("training_{}", row.model),
                row.size,
                row.legacy_epoch_ms,
                row.workspace_epoch_ms,
                row.speedup,
                row.cold_epochs_per_s,
                row.warm_epochs_per_s
            );
            rows.push(row);
        }
        rows
    };

    // Link-stealing attack evaluation: serial-vs-parallel of the single-pass
    // multi-metric kernel, plus the old-vs-new AUC-path comparison.
    let mut rng = StdRng::seed_from_u64(17);
    let probs = row_softmax(&Matrix::gaussian(
        ds.n_nodes(),
        ds.n_classes,
        0.0,
        1.0,
        &mut rng,
    ));
    let mut rng = StdRng::seed_from_u64(5);
    let mut ev_serial = AttackEvaluator::from_graph(&ds.graph, &mut rng);
    let mut ev_parallel = ev_serial.clone();
    let (n_pos, n_neg) = ev_serial.sample().counts();
    let attack_size = format!("pairs={}", n_pos + n_neg);
    kernels.push(compare(
        "attack_multi_metric",
        attack_size.clone(),
        reps,
        || {
            ev_serial.distances_serial(&probs);
        },
        || {
            ev_parallel.distances(&probs);
        },
    ));

    let sample = ev_parallel.sample().clone();
    let legacy_ms = best_ms(reps, || legacy_average_attack_auc(&probs, &sample));
    let rebuilt_ms = best_ms(reps, || {
        with_forced_threads(1, || ev_parallel.evaluate(&probs).average_auc)
    });
    let path = PathBench {
        path: "attack_auc".to_string(),
        size: attack_size,
        legacy_ms,
        rebuilt_ms,
        speedup: legacy_ms / rebuilt_ms,
    };
    println!(
        "{:<24} {:<18} legacy {:>9.3} ms   rebuilt  {:>9.3} ms   speedup {:>5.2}x",
        path.path, path.size, path.legacy_ms, path.rebuilt_ms, path.speedup
    );

    // Supervised attack stages: batched pair-feature extraction (serial vs
    // parallel) and attack-classifier training (logistic and MLP).
    let mut attacks = Vec::new();
    {
        use ppfr_attacks::{AttackTrainConfig, ClassifierKind, PairFeatureTable, TrainedAttack};
        ev_parallel.distances(&probs);
        let features = &ds.features;
        let size = format!(
            "pairs={} ch=12",
            sample.positives.len() + sample.negatives.len()
        );
        let mut record = |stage: &str, size: &str, ms: f64| {
            println!("{stage:<32} {size:<18} {ms:>9.3} ms");
            attacks.push(AttackStageBench {
                stage: stage.to_string(),
                size: size.to_string(),
                ms,
            });
        };
        let extract = |parallel: bool| {
            PairFeatureTable::from_distances(
                ev_parallel.table(),
                &sample,
                &probs,
                Some(features),
                parallel,
            )
        };
        record(
            "attack_feature_extract_serial",
            &size,
            best_ms(reps, || extract(false)),
        );
        record(
            "attack_feature_extract_parallel",
            &size,
            best_ms(reps, || extract(true)),
        );
        let table = extract(true);
        let all: Vec<usize> = (0..table.n_pairs()).collect();
        record(
            "attack_classifier_train_logistic",
            &size,
            best_ms(reps, || {
                TrainedAttack::fit(&table, &all, &AttackTrainConfig::default())
            }),
        );
        let mlp = AttackTrainConfig {
            kind: ClassifierKind::Mlp { hidden: 8 },
            ..AttackTrainConfig::default()
        };
        record(
            "attack_classifier_train_mlp8",
            &size,
            best_ms(reps, || TrainedAttack::fit(&table, &all, &mlp)),
        );
    }

    // Scenario runner: one full (2 datasets × 5 methods × N seeds) matrix,
    // cold vs artifact-cache-warm, through the parallel executor.
    let runner = {
        use ppfr_runner::{run_scenario, ArtifactCache, ScenarioSpec};
        let spec = match scale {
            ExperimentScale::Full => ScenarioSpec::bench_small(),
            ExperimentScale::Smoke => ScenarioSpec::bench_small().with_seeds(&[7, 11]),
        };
        let cache = ArtifactCache::new();
        let (cold_report, cold_ms) =
            ppfr_telemetry::time_ms(|| ppfr_bench::report_or_exit(run_scenario(&spec, &cache)));
        let (warm_report, warm_ms) =
            ppfr_telemetry::time_ms(|| ppfr_bench::report_or_exit(run_scenario(&spec, &cache)));
        assert_eq!(
            cold_report.to_json(),
            warm_report.to_json(),
            "cache-warm runner matrix diverged from cold"
        );
        let b = RunnerBench {
            matrix: format!(
                "{} datasets x {} models x {} methods x {} seeds",
                spec.datasets.len(),
                spec.models.len(),
                spec.methods.len(),
                spec.seeds.len()
            ),
            runs: spec.n_runs(),
            cold_ms,
            warm_ms,
            speedup: cold_ms / warm_ms,
            cache_entries: cache.len(),
        };
        println!(
            "{:<24} {:<18} cold  {:>9.1} ms   warm     {:>9.1} ms   speedup {:>5.2}x",
            "runner_matrix", b.matrix, b.cold_ms, b.warm_ms, b.speedup
        );
        b
    };

    // Persistent pool: dispatch latency vs per-call scoped spawn, kernels at
    // explicitly forced thread counts, and the single-thread 4-wide
    // microkernels against their PR 5 scalar baselines.
    let pool_value = {
        use ppfr_bench::baseline;
        use std::sync::atomic::{AtomicU64, Ordering};

        let mut dispatch_rows = Vec::new();
        let items = 1024;
        let cells: Vec<AtomicU64> = (0..items).map(|_| AtomicU64::new(0)).collect();
        let touch = |i: usize| cells[i].store(i as u64 + 1, Ordering::Relaxed);
        for threads in [2usize, 8] {
            let scoped_spawn_ms = best_ms(50, || {
                baseline::scoped_spawn_dispatch(items, threads, touch)
            });
            let pool_ms = best_ms(50, || rayon::dispatch(items, threads, touch));
            let row = PoolDispatchBench {
                items,
                threads,
                scoped_spawn_ms,
                pool_ms,
                speedup: scoped_spawn_ms / pool_ms,
            };
            println!(
                "{:<24} {:<18} scoped {:>9.3} ms   pool     {:>9.3} ms   speedup {:>5.2}x",
                "pool_dispatch",
                format!("items={items} t={threads}"),
                row.scoped_spawn_ms,
                row.pool_ms,
                row.speedup
            );
            dispatch_rows.push(row);
        }

        let mut kernel_rows = Vec::new();
        for threads in [1usize, 2, 8] {
            let serial_ms = best_ms(reps, || a.matmul_serial(&b));
            let parallel_ms = best_ms(reps, || with_forced_threads(threads, || a.matmul(&b)));
            kernel_rows.push(PoolKernelBench {
                kernel: "matmul".to_string(),
                size: format!("{mm}x{mk}*{mk}x{mn}"),
                threads,
                serial_ms,
                parallel_ms,
                speedup: serial_ms / parallel_ms,
            });
            let serial_ms = best_ms(reps, || a_hat.matmul_dense_serial(&ds.features));
            let parallel_ms = best_ms(reps, || {
                with_forced_threads(threads, || a_hat.matmul_dense(&ds.features))
            });
            kernel_rows.push(PoolKernelBench {
                kernel: "spmm".to_string(),
                size: format!("{}x{} nnz={}", ds.n_nodes(), ds.n_nodes(), a_hat.nnz()),
                threads,
                serial_ms,
                parallel_ms,
                speedup: serial_ms / parallel_ms,
            });
        }
        for row in &kernel_rows {
            println!(
                "{:<24} {:<18} serial {:>9.3} ms   pool@{}   {:>9.3} ms   speedup {:>5.2}x",
                format!("pool_{}", row.kernel),
                row.size,
                row.serial_ms,
                row.threads,
                row.parallel_ms,
                row.speedup
            );
        }

        let mut rng = StdRng::seed_from_u64(23);
        let c = Matrix::gaussian(mm, mn, 0.0, 1.0, &mut rng);
        let d = Matrix::gaussian(mn, mk, 0.0, 1.0, &mut rng);
        let mut micro_rows = Vec::new();
        let mut micro = |kernel: &str, size: String, baseline_ms: f64, micro_ms: f64| {
            let row = MicrokernelBench {
                kernel: kernel.to_string(),
                size,
                baseline_ms,
                micro_ms,
                speedup: baseline_ms / micro_ms,
            };
            println!(
                "{:<24} {:<18} scalar {:>9.3} ms   micro    {:>9.3} ms   speedup {:>5.2}x",
                format!("micro_{}", row.kernel),
                row.size,
                row.baseline_ms,
                row.micro_ms,
                row.speedup
            );
            micro_rows.push(row);
        };
        micro(
            "gemm_a_b",
            format!("{mm}x{mk}*{mk}x{mn}"),
            best_ms(reps, || baseline::matmul_serial(&a, &b)),
            best_ms(reps, || a.matmul_serial(&b)),
        );
        micro(
            "gemm_at_b",
            format!("({mm}x{mk})T*{mm}x{mn}"),
            best_ms(reps, || baseline::matmul_at_b_serial(&a, &c)),
            best_ms(reps, || {
                let mut out = Matrix::zeros(0, 0);
                a.matmul_at_b_into_serial(&c, &mut out);
                out
            }),
        );
        micro(
            "gemm_a_bt",
            format!("{mm}x{mk}*({mn}x{mk})T"),
            best_ms(reps, || baseline::matmul_a_bt_serial(&a, &d)),
            best_ms(reps, || {
                let mut out = Matrix::zeros(0, 0);
                a.matmul_a_bt_into_serial(&d, &mut out);
                out
            }),
        );
        micro(
            "spmm",
            format!(
                "{}x{} nnz={} * d={}",
                ds.n_nodes(),
                ds.n_nodes(),
                a_hat.nnz(),
                feat_cols
            ),
            best_ms(reps, || baseline::spmm_serial(&a_hat, &ds.features)),
            best_ms(reps, || a_hat.matmul_dense_serial(&ds.features)),
        );

        Value::Obj(vec![
            ("dispatch".to_string(), dispatch_rows.to_value()),
            ("kernels".to_string(), kernel_rows.to_value()),
            ("microkernels".to_string(), micro_rows.to_value()),
        ])
    };

    // Static-analysis layer: lint runtime over the workspace plus the model
    // checker's exhaustive state-space sizes, so regressions in either (a
    // rule suddenly firing, a scenario losing exhaustiveness) show up in the
    // same artifact as the kernel numbers.
    let analysis = {
        let (scan, lint_ms) = ppfr_telemetry::time_ms(|| {
            ppfr_analysis::scan_workspace(std::path::Path::new("."))
                .expect("ppfr_lint scan (run from the repo root)")
        });
        println!(
            "\nppfr_lint                {:>4} file(s)         {:>4} violation(s)     {:>9.1} ms",
            scan.files_scanned,
            scan.violations.len(),
            lint_ms
        );
        // The panic-propagation scenario injects hundreds of caught panics;
        // silence the default hook's backtraces while the checker runs.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let scenarios = ppfr_analysis::loom_scenarios::all();
        std::panic::set_hook(prev_hook);
        let loom: Vec<Value> = scenarios
            .into_iter()
            .map(|(name, report)| {
                println!(
                    "loom {:<24} {:>7} interleaving(s)   complete={}",
                    name, report.interleavings, report.complete
                );
                Value::Obj(vec![
                    ("scenario".to_string(), name.to_value()),
                    ("interleavings".to_string(), report.interleavings.to_value()),
                    ("complete".to_string(), report.complete.to_value()),
                ])
            })
            .collect();
        Value::Obj(vec![
            (
                "lint".to_string(),
                Value::Obj(vec![
                    ("files_scanned".to_string(), scan.files_scanned.to_value()),
                    ("violations".to_string(), scan.violations.len().to_value()),
                    ("runtime_ms".to_string(), lint_ms.to_value()),
                ]),
            ),
            ("loom".to_string(), Value::Arr(loom)),
        ])
    };

    // Large-graph scaling scenario: sparse generation, streamed bias, capped
    // attack and neighbour-sampled training, with per-stage wall-clock
    // recovered from the telemetry spans (the scenario itself never reads a
    // clock).  Spans are compile-time gated: build with `--features telemetry`
    // or the `stages` list comes out empty (the report and total are always
    // recorded).
    let scaling = {
        use ppfr_runner::{run_scale_scenario, ScaleSpec};
        let spec = match scale {
            ExperimentScale::Full => ScaleSpec::million(),
            ExperimentScale::Smoke => ScaleSpec::smoke(),
        };
        let was_enabled = ppfr_telemetry::enabled();
        ppfr_telemetry::set_enabled(true);
        ppfr_telemetry::reset();
        let (report, total_ms) =
            ppfr_telemetry::time_ms(|| ppfr_bench::report_or_exit(run_scale_scenario(&spec)));
        let tree = ppfr_telemetry::span_tree();
        ppfr_telemetry::set_enabled(was_enabled);

        fn find<'a>(
            nodes: &'a [ppfr_telemetry::SpanTree],
            name: &str,
        ) -> Option<&'a ppfr_telemetry::SpanTree> {
            for node in nodes {
                if node.name == name {
                    return Some(node);
                }
                if let Some(found) = find(&node.children, name) {
                    return Some(found);
                }
            }
            None
        }
        let mut stages = Vec::new();
        if let Some(root) = find(&tree, "scale_scenario") {
            for child in &root.children {
                let ms = child.total_ns as f64 / 1e6;
                println!("{:<32} {:>9.1} ms", child.name, ms);
                stages.push(Value::Obj(vec![
                    ("stage".to_string(), child.name.to_value()),
                    ("ms".to_string(), ms.to_value()),
                ]));
            }
        }
        println!(
            "{:<24} n={} m={}     bias {:.4}   auc {:.3}   acc {:.3}   total {:>9.1} ms",
            "scaling",
            report.n_nodes,
            report.n_edges,
            report.bias,
            report.attack_auc,
            report.sampled_train_accuracy,
            total_ms
        );
        Value::Obj(vec![
            ("spec".to_string(), spec.to_value()),
            ("report".to_string(), report.to_value()),
            ("total_ms".to_string(), total_ms.to_value()),
            ("stages".to_string(), Value::Arr(stages)),
        ])
    };

    // Resilience layer: the disabled-gate fast path must cost ~nothing on the
    // hot paths, and a faulted run must surface its retry/degradation work in
    // the always-on counters.
    let resilience = {
        use ppfr_core::Method;
        use ppfr_resilience::{
            checkpoint, counters, fault_at, reset_counters, with_fault_plan, FaultKind, FaultPlan,
            FaultSpec,
        };
        use ppfr_runner::{run_scenario, ArtifactCache, ScenarioSpec};

        // Disabled gate: no plan installed, no ambient budget — `fault_at` is
        // one relaxed atomic load and `checkpoint` one thread-local probe.
        // Record the per-call cost so a regression on these (everywhere-run)
        // checks shows up in the trajectory.
        let gate_iters: u64 = match scale {
            ExperimentScale::Smoke => 200_000,
            ExperimentScale::Full => 2_000_000,
        };
        let gate_ms = best_ms(5, || {
            let mut alive = 0u64;
            for i in 0..gate_iters {
                if fault_at("bench_gate", "off").is_none() {
                    alive += 1;
                }
                if checkpoint(0) {
                    alive += 1;
                }
                std::hint::black_box(i);
            }
            alive
        });
        let gate_ns_per_call = gate_ms * 1e6 / (2 * gate_iters) as f64;

        // Counter exercise: a one-seed PPFR-only matrix under a 1-unit budget
        // and one transient injected cell error.  The run must complete with
        // no failed cells while the retry/degradation/budget tallies light up.
        reset_counters();
        let spec = ScenarioSpec::bench_small()
            .with_seeds(&[7])
            .with_methods(&[Method::Ppfr])
            .with_cell_budget(1);
        let plan = FaultPlan::empty(0xbe9c).with(FaultSpec::times("cell", "", FaultKind::Error, 1));
        let report = with_fault_plan(plan, || {
            ppfr_bench::report_or_exit(run_scenario(&spec, &ArtifactCache::new()))
        });
        let c = counters();
        assert!(
            report.failed_cells.is_empty(),
            "the injected transient fault must be retried away"
        );
        println!(
            "{:<24} gate {:>6.2} ns/call   retries {}   degradations {}   budget_stops {}   faults {}",
            "resilience", gate_ns_per_call, c.retries, c.degradations, c.budget_stops, c.faults_injected
        );
        Value::Obj(vec![
            ("gate_ns_per_call".to_string(), gate_ns_per_call.to_value()),
            (
                "degraded_cells".to_string(),
                (report.degraded.len() as f64).to_value(),
            ),
            ("retries".to_string(), (c.retries as f64).to_value()),
            (
                "degradations".to_string(),
                (c.degradations as f64).to_value(),
            ),
            ("cell_panics".to_string(), (c.cell_panics as f64).to_value()),
            (
                "faults_injected".to_string(),
                (c.faults_injected as f64).to_value(),
            ),
            (
                "budget_stops".to_string(),
                (c.budget_stops as f64).to_value(),
            ),
        ])
    };

    // Merge into any existing BENCH_kernels.json: only this binary's
    // sections are replaced, sections owned by other binaries survive.
    let existing = std::fs::read_to_string("BENCH_kernels.json").ok();
    let json = ppfr_bench::merge_bench_sections(
        existing.as_deref(),
        vec![
            ("threads", threads.to_value()),
            ("reps", reps.to_value()),
            ("kernels", kernels.to_value()),
            ("training", training.to_value()),
            ("paths", vec![path].to_value()),
            ("attacks", attacks.to_value()),
            ("runner", runner.to_value()),
            ("pool", pool_value),
            ("analysis", analysis),
            ("scaling", scaling),
            ("resilience", resilience),
        ],
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json (merged)");
}
