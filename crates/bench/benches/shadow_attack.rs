//! Benchmarks of the supervised shadow-attack subsystem.
//!
//! Three stages dominate a threat-grid audit and are timed separately:
//! batched pair-feature extraction (parallel over pair chunks), attack
//! classifier training (logistic and MLP via `ppfr_nn`), and the full
//! four-setting grid end-to-end through `ThreatAuditor`.

use criterion::{criterion_group, criterion_main, Criterion};
use ppfr_attacks::{
    AttackTrainConfig, ClassifierKind, PairFeatureTable, ThreatAuditor, TrainedAttack,
};
use ppfr_datasets::sparse_sbm_dataset;
use ppfr_linalg::{row_softmax, Matrix};
use ppfr_privacy::{AttackEvaluator, PairSample};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

struct Setup {
    probs: Matrix,
    features: Matrix,
    evaluator: AttackEvaluator,
    sample: PairSample,
    dataset: ppfr_datasets::Dataset,
}

fn setup() -> Setup {
    let dataset = sparse_sbm_dataset(2_000, 2, 7.0, 1.5, 24, 7);
    let mut logits = Matrix::zeros(dataset.n_nodes(), 2);
    for v in 0..dataset.n_nodes() {
        logits[(v, dataset.labels[v])] = 2.0 + (v % 19) as f64 * 0.02;
    }
    let probs = row_softmax(&logits);
    let mut rng = StdRng::seed_from_u64(5);
    let sample = PairSample::balanced(&dataset.graph, &mut rng);
    let mut evaluator = AttackEvaluator::new(sample.clone());
    evaluator.distances(&probs);
    Setup {
        features: dataset.features.clone(),
        probs,
        evaluator,
        sample,
        dataset,
    }
}

fn bench_feature_extraction(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("shadow_attack_features");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("extract_parallel", |b| {
        b.iter(|| {
            PairFeatureTable::from_distances(
                s.evaluator.table(),
                &s.sample,
                &s.probs,
                Some(&s.features),
                true,
            )
        })
    });
    group.bench_function("extract_serial", |b| {
        b.iter(|| {
            PairFeatureTable::from_distances(
                s.evaluator.table(),
                &s.sample,
                &s.probs,
                Some(&s.features),
                false,
            )
        })
    });
    group.finish();
}

fn bench_classifier_training(c: &mut Criterion) {
    let s = setup();
    let table =
        PairFeatureTable::from_distances(s.evaluator.table(), &s.sample, &s.probs, None, true);
    let all: Vec<usize> = (0..table.n_pairs()).collect();
    let mut group = c.benchmark_group("shadow_attack_training");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("train_logistic", |b| {
        b.iter(|| TrainedAttack::fit(&table, &all, &AttackTrainConfig::default()))
    });
    let mlp = AttackTrainConfig {
        kind: ClassifierKind::Mlp { hidden: 8 },
        ..AttackTrainConfig::default()
    };
    group.bench_function("train_mlp8", |b| {
        b.iter(|| TrainedAttack::fit(&table, &all, &mlp))
    });
    group.finish();
}

fn bench_full_grid(c: &mut Criterion) {
    let s = setup();
    let mut auditor = ThreatAuditor::for_dataset(
        &s.dataset,
        s.sample.clone(),
        AttackTrainConfig::default(),
        0xbe_ef,
    );
    let mut group = c.benchmark_group("shadow_attack_grid");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("four_threat_models", |b| b.iter(|| auditor.audit(&s.probs)));
    group.finish();
}

criterion_group!(
    shadow_attack,
    bench_feature_extraction,
    bench_classifier_training,
    bench_full_grid
);
criterion_main!(shadow_attack);
