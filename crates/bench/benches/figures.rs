//! End-to-end benchmarks, one group per figure of the paper, at smoke scale.

use criterion::{criterion_group, criterion_main, Criterion};
use ppfr_core::experiments::{fig6_ablation, scaled_spec};
use ppfr_core::{attack_sample, predictions, run_method, ExperimentScale, Method, PpfrConfig};
use ppfr_datasets::{cora, generate};
use ppfr_gnn::ModelKind;
use ppfr_privacy::auc_per_distance;
use std::time::Duration;

fn bench_fig4(c: &mut Criterion) {
    // Fig. 4 kernel: the eight-distance attack sweep against one model.
    let spec = scaled_spec(cora(), ExperimentScale::Smoke);
    let cfg = PpfrConfig::smoke();
    let dataset = generate(&spec, 7);
    let reg = run_method(&dataset, ModelKind::Gcn, Method::Reg, &cfg);
    let probs = predictions(&reg, &cfg);
    let sample = attack_sample(&dataset, &cfg);
    let mut group = c.benchmark_group("fig4_attack_auc");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("auc_per_distance_reg_gcn", |b| {
        b.iter(|| auc_per_distance(&probs, &sample))
    });
    group.finish();
}

fn bench_fig5_and_fig7(c: &mut Criterion) {
    // Figs. 5 & 7 kernels: the accuracy-cost extraction over a prepared
    // (small) Table IV plus the expensive cell they depend on (GAT PPFR).
    let spec = scaled_spec(cora(), ExperimentScale::Smoke);
    let cfg = PpfrConfig::smoke();
    let dataset = generate(&spec, 7);
    let mut group = c.benchmark_group("fig5_fig7_accuracy_cost");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("gat_ppfr_cell", |b| {
        b.iter(|| run_method(&dataset, ModelKind::Gat, Method::Ppfr, &cfg))
    });
    group.bench_function("sage_ppfr_cell", |b| {
        b.iter(|| run_method(&dataset, ModelKind::GraphSage, Method::Ppfr, &cfg))
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    // Fig. 6 kernel: the whole three-panel ablation at smoke scale.
    let mut group = c.benchmark_group("fig6_ablation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("three_panel_ablation_smoke", |b| {
        b.iter(|| fig6_ablation(ExperimentScale::Smoke))
    });
    group.finish();
}

criterion_group!(figures, bench_fig4, bench_fig5_and_fig7, bench_fig6);
criterion_main!(figures);
