//! Micro-benchmarks of the hot kernels: GCN/GAT/GraphSAGE forward+backward,
//! Jaccard similarity, link-stealing AUC, Hessian-vector products and the
//! QCLP solver.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ppfr_core::attack_sample;
use ppfr_core::PpfrConfig;
use ppfr_datasets::{cora, generate, two_block_synthetic};
use ppfr_gnn::{AnyModel, GnnModel, GraphContext, ModelKind};
use ppfr_graph::jaccard_similarity;
use ppfr_influence::hessian_vector_product;
use ppfr_linalg::{row_softmax, Matrix};
use ppfr_privacy::average_attack_auc;
use ppfr_qclp::{solve, QclpProblem, SolverOptions};
use std::time::Duration;

fn bench_model_passes(c: &mut Criterion) {
    let ds = generate(&cora(), 7);
    let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
    let mut group = c.benchmark_group("gnn_forward_backward");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for kind in ModelKind::ALL {
        let model = AnyModel::new(kind, ctx.feat_dim(), 16, ds.n_classes, 1);
        let d_logits = Matrix::filled(ds.n_nodes(), ds.n_classes, 1e-3);
        group.bench_function(format!("forward_{}", kind.name()), |b| {
            b.iter(|| model.forward(&ctx))
        });
        group.bench_function(format!("backward_{}", kind.name()), |b| {
            b.iter(|| model.backward(&ctx, &d_logits))
        });
    }
    group.finish();
}

fn bench_graph_kernels(c: &mut Criterion) {
    let ds = generate(&cora(), 7);
    let mut group = c.benchmark_group("graph_kernels");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("jaccard_similarity_cora", |b| {
        b.iter(|| jaccard_similarity(&ds.graph))
    });
    let a_hat = ds.graph.normalized_adjacency();
    group.bench_function("spmm_cora", |b| b.iter(|| a_hat.matmul_dense(&ds.features)));
    group.finish();
}

fn bench_attack(c: &mut Criterion) {
    let ds = generate(&cora(), 7);
    let cfg = PpfrConfig::smoke();
    let sample = attack_sample(&ds, &cfg);
    let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
    let model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 16, ds.n_classes, 1);
    let probs = row_softmax(&model.forward(&ctx));
    let mut group = c.benchmark_group("link_stealing_attack");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("average_auc_8_distances_cora", |b| {
        b.iter(|| average_attack_auc(&probs, &sample))
    });
    group.finish();
}

fn bench_influence_and_qclp(c: &mut Criterion) {
    let ds = generate(&two_block_synthetic(), 7);
    let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
    let model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 8, ds.n_classes, 1);
    let v = vec![0.01; model.n_params()];
    let mut group = c.benchmark_group("influence_and_qclp");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("hessian_vector_product", |b| {
        b.iter(|| {
            hessian_vector_product(&model, &ctx, &ds.labels, &ds.splits.train, &v, 1e-4, 0.01)
        })
    });
    let n = 200;
    let problem = QclpProblem {
        bias_influence: (0..n)
            .map(|i| ((i * 31 % 17) as f64 - 8.0) / 10.0)
            .collect(),
        util_influence: (0..n)
            .map(|i| ((i * 13 % 23) as f64 - 11.0) / 10.0)
            .collect(),
        alpha: 0.9,
        beta: 0.1,
    };
    group.bench_function("qclp_solve_200_vars", |b| {
        b.iter_batched(
            || problem.clone(),
            |p| solve(&p, &SolverOptions::default()),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_model_passes,
    bench_graph_kernels,
    bench_attack,
    bench_influence_and_qclp
);
criterion_main!(kernels);
