//! Benchmarks of the link-stealing attack evaluation paths.
//!
//! Compares the seed's evaluation shape (one pair traversal per distance
//! metric + the `O(|pos|·|neg|)` quadratic AUC) against the rebuilt
//! subsystem (single-pass multi-metric kernel + `O(m log m)` rank AUC behind
//! `AttackEvaluator`).

use criterion::{criterion_group, criterion_main, Criterion};
use ppfr_bench::legacy_average_attack_auc;
use ppfr_core::{attack_evaluator, attack_sample, PpfrConfig};
use ppfr_datasets::{generate, two_block_synthetic, DatasetSpec};
use ppfr_linalg::{row_softmax, Matrix};
use ppfr_privacy::{auc_from_distances, auc_from_distances_quadratic};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn setup() -> (
    Matrix,
    ppfr_privacy::PairSample,
    ppfr_privacy::AttackEvaluator,
) {
    let spec = DatasetSpec {
        n_nodes: 600,
        ..two_block_synthetic()
    };
    let ds = generate(&spec, 7);
    let cfg = PpfrConfig::smoke();
    let mut rng = StdRng::seed_from_u64(17);
    let probs = row_softmax(&Matrix::gaussian(
        ds.n_nodes(),
        ds.n_classes,
        0.0,
        1.0,
        &mut rng,
    ));
    let sample = attack_sample(&ds, &cfg);
    let evaluator = attack_evaluator(&ds, &cfg);
    (probs, sample, evaluator)
}

fn bench_attack_paths(c: &mut Criterion) {
    let (probs, sample, mut evaluator) = setup();
    let mut group = c.benchmark_group("attack_evaluation_path");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("legacy_8_pass_quadratic", |b| {
        b.iter(|| legacy_average_attack_auc(&probs, &sample))
    });
    group.bench_function("evaluator_single_pass_rank", |b| {
        b.iter(|| evaluator.evaluate(&probs).average_auc)
    });
    group.finish();
}

fn bench_auc_scaling(c: &mut Criterion) {
    // Pure AUC comparison on synthetic distance samples.
    let m = 2000;
    let pos: Vec<f64> = (0..m)
        .map(|i| ((i * 7919) % 104729) as f64 / 104729.0)
        .collect();
    let neg: Vec<f64> = (0..m)
        .map(|i| 0.2 + ((i * 6101) % 104729) as f64 / 104729.0)
        .collect();
    let mut group = c.benchmark_group("auc_from_distances");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("rank_2000x2000", |b| {
        b.iter(|| auc_from_distances(&pos, &neg))
    });
    group.bench_function("quadratic_2000x2000", |b| {
        b.iter(|| auc_from_distances_quadratic(&pos, &neg))
    });
    group.finish();
}

criterion_group!(attack, bench_attack_paths, bench_auc_scaling);
criterion_main!(attack);
