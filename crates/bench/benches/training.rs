//! End-to-end training benchmark: the legacy allocating loop against the
//! zero-allocation `TrainWorkspace` fast path, per architecture, plus the
//! per-epoch forward+backward building blocks (allocating vs workspace).
//!
//! The two paths are bit-identical (pinned by
//! `crates/gnn/tests/workspace_equivalence.rs`), so any gap measured here is
//! pure allocator/bandwidth overhead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ppfr_datasets::{cora, generate};
use ppfr_gnn::{
    train_legacy, train_with_workspace, AnyModel, GnnModel, GraphContext, ModelKind, TrainConfig,
    TrainWorkspace,
};
use ppfr_linalg::Matrix;
use std::time::Duration;

fn bench_epoch_passes(c: &mut Criterion) {
    let ds = generate(&cora(), 7);
    let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
    let mut group = c.benchmark_group("epoch_forward_backward");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for kind in ModelKind::ALL {
        let model = AnyModel::new(kind, ctx.feat_dim(), 16, ds.n_classes, 1);
        let d_logits = Matrix::filled(ds.n_nodes(), ds.n_classes, 1e-3);
        group.bench_function(format!("legacy_{}", kind.name()), |b| {
            b.iter(|| {
                let _logits = model.forward(&ctx);
                model.backward(&ctx, &d_logits)
            })
        });
        let mut ws = TrainWorkspace::new();
        group.bench_function(format!("workspace_{}", kind.name()), |b| {
            b.iter(|| {
                model.forward_ws(&ctx, &mut ws);
                ws.d_logits.copy_from(&d_logits);
                model.backward_ws(&ctx, &mut ws);
            })
        });
    }
    group.finish();
}

fn bench_full_training(c: &mut Criterion) {
    let ds = generate(&cora(), 7);
    let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
    let weights = vec![1.0; ds.splits.train.len()];
    let cfg = TrainConfig {
        epochs: 5,
        lr: 0.01,
        weight_decay: 5e-4,
        seed: 1,
    };
    let mut group = c.benchmark_group("train_5_epochs");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for kind in ModelKind::ALL {
        group.bench_function(format!("legacy_{}", kind.name()), |b| {
            b.iter_batched(
                || AnyModel::new(kind, ctx.feat_dim(), 16, ds.n_classes, 1),
                |mut model| {
                    train_legacy(
                        &mut model,
                        &ctx,
                        &ds.labels,
                        &ds.splits.train,
                        &weights,
                        None,
                        &cfg,
                    )
                },
                BatchSize::SmallInput,
            )
        });
        let mut ws = TrainWorkspace::new();
        group.bench_function(format!("workspace_{}", kind.name()), |b| {
            b.iter_batched(
                || AnyModel::new(kind, ctx.feat_dim(), 16, ds.n_classes, 1),
                |mut model| {
                    train_with_workspace(
                        &mut model,
                        &ctx,
                        &ds.labels,
                        &ds.splits.train,
                        &weights,
                        None,
                        &cfg,
                        &mut ws,
                    )
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(training, bench_epoch_passes, bench_full_training);
criterion_main!(training);
