//! Design-choice ablation benchmarks called out in DESIGN.md §5:
//! heterophilic PP noise vs edge-DP noise of the same magnitude, and the
//! QCLP re-weighting vs a naive top-k node-deletion scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use ppfr_core::{attack_sample, fairness_weights, heterophilic_perturbation, predictions};
use ppfr_core::{run_method, Method, PpfrConfig};
use ppfr_datasets::{generate, two_block_synthetic};
use ppfr_gnn::{train, GraphContext, ModelKind};
use ppfr_graph::{jaccard_similarity, similarity_laplacian};
use ppfr_privacy::{average_attack_auc, edge_rand, PairSample};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// PP vs DP: apply the same number of noisy edges via the heterophilic
/// strategy and via randomised response, fine-tune and compare the attack AUC.
fn bench_pp_vs_dp(c: &mut Criterion) {
    let dataset = generate(&two_block_synthetic(), 7);
    let cfg = PpfrConfig::smoke();
    let vanilla = run_method(&dataset, ModelKind::Gcn, Method::Vanilla, &cfg);
    let base_ctx = GraphContext::new(dataset.graph.clone(), dataset.features.clone());
    let sample = attack_sample(&dataset, &cfg);

    let finetune_and_attack = |graph: ppfr_graph::Graph| -> f64 {
        let ctx = base_ctx.with_graph(graph);
        let mut model = vanilla.model.clone();
        let w = vec![1.0; dataset.splits.train.len()];
        train(
            &mut model,
            &ctx,
            &dataset.labels,
            &dataset.splits.train,
            &w,
            None,
            &cfg.finetune_train_config(),
        );
        let outcome = ppfr_core::TrainedOutcome {
            model,
            deploy_ctx: ctx,
            method: Method::Ppfr,
            model_kind: ModelKind::Gcn,
            similarity_laplacian: vanilla.similarity_laplacian.clone(),
            fairness_loss_weights: None,
        };
        average_attack_auc(&predictions(&outcome, &cfg), &sample)
    };

    let mut group = c.benchmark_group("pp_vs_dp_noise");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("heterophilic_pp_finetune_attack", |b| {
        b.iter(|| {
            let delta = heterophilic_perturbation(&vanilla.model, &base_ctx, 1.0, cfg.seed);
            finetune_and_attack(delta.apply(&base_ctx.graph))
        })
    });
    group.bench_function("edge_rand_dp_finetune_attack", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            finetune_and_attack(edge_rand(&dataset.graph, cfg.dp_epsilon, &mut rng))
        })
    });
    group.finish();
}

/// QCLP re-weighting vs a plain top-k hard deletion of the most harmful nodes.
fn bench_qclp_vs_topk(c: &mut Criterion) {
    let dataset = generate(&two_block_synthetic(), 7);
    let cfg = PpfrConfig::smoke();
    let vanilla = run_method(&dataset, ModelKind::Gcn, Method::Vanilla, &cfg);
    let base_ctx = GraphContext::new(dataset.graph.clone(), dataset.features.clone());
    let l_s = similarity_laplacian(&jaccard_similarity(&dataset.graph));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sample = PairSample::balanced(&dataset.graph, &mut rng);

    let mut group = c.benchmark_group("qclp_vs_topk_reweighting");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("qclp_soft_reweighting", |b| {
        b.iter(|| {
            fairness_weights(
                &vanilla.model,
                &base_ctx,
                &dataset.labels,
                &dataset.splits.train,
                &l_s,
                &sample,
                &cfg,
            )
        })
    });
    group.bench_function("topk_hard_deletion", |b| {
        b.iter(|| {
            // Naive alternative: compute the same influences but zero out the
            // k most bias-increasing nodes instead of solving the QCLP.
            let fr = fairness_weights(
                &vanilla.model,
                &base_ctx,
                &dataset.labels,
                &dataset.splits.train,
                &l_s,
                &sample,
                &cfg,
            );
            let mut order: Vec<usize> = (0..fr.influences.bias.len()).collect();
            order.sort_by(|&a, &b| {
                fr.influences.bias[a]
                    .partial_cmp(&fr.influences.bias[b])
                    .unwrap()
            });
            let k = order.len() / 5;
            let mut weights = vec![1.0; order.len()];
            for &idx in order.iter().take(k) {
                weights[idx] = 0.0;
            }
            weights
        })
    });
    group.finish();
}

criterion_group!(ablations, bench_pp_vs_dp, bench_qclp_vs_topk);
criterion_main!(ablations);
