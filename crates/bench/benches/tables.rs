//! End-to-end benchmarks, one group per table of the paper, at smoke scale
//! (the full-scale numbers are produced by the `exp_table*` binaries and
//! recorded in EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use ppfr_core::experiments::scaled_spec;
use ppfr_core::{attack_sample, run_method, ExperimentScale, Method, PpfrConfig};
use ppfr_datasets::{cora, enzymes, generate};
use ppfr_gnn::ModelKind;
use ppfr_graph::{jaccard_similarity, similarity_laplacian};
use ppfr_influence::{compute_influences, pearson};
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    // Table II kernel: influence of every training node on bias and risk plus
    // their correlation, for one (dataset, model) cell at smoke scale.
    let spec = scaled_spec(cora(), ExperimentScale::Smoke);
    let cfg = PpfrConfig::smoke();
    let dataset = generate(&spec, 7);
    let vanilla = run_method(&dataset, ModelKind::Gcn, Method::Vanilla, &cfg);
    let l_s = similarity_laplacian(&jaccard_similarity(&dataset.graph));
    let sample = attack_sample(&dataset, &cfg);
    let mut group = c.benchmark_group("table2_correlation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("influences_and_pearson_cora_gcn", |b| {
        b.iter(|| {
            let inf = compute_influences(
                &vanilla.model,
                &vanilla.deploy_ctx,
                &dataset.labels,
                &dataset.splits.train,
                &l_s,
                &sample,
                &cfg.influence_config(),
            );
            pearson(&inf.bias, &inf.risk)
        })
    });
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    // Table III kernel: vanilla vs fairness-regularised training of a GCN.
    let spec = scaled_spec(cora(), ExperimentScale::Smoke);
    let cfg = PpfrConfig::smoke();
    let dataset = generate(&spec, 7);
    let mut group = c.benchmark_group("table3_reg_tradeoff");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("train_vanilla_gcn", |b| {
        b.iter(|| run_method(&dataset, ModelKind::Gcn, Method::Vanilla, &cfg))
    });
    group.bench_function("train_reg_gcn", |b| {
        b.iter(|| run_method(&dataset, ModelKind::Gcn, Method::Reg, &cfg))
    });
    group.finish();
}

fn bench_table4(c: &mut Criterion) {
    // Table IV kernel: one full PPFR cell (vanilla train + influence + QCLP +
    // PP + fine-tune) and one DPReg cell for comparison.
    let spec = scaled_spec(cora(), ExperimentScale::Smoke);
    let cfg = PpfrConfig::smoke();
    let dataset = generate(&spec, 7);
    let mut group = c.benchmark_group("table4_methods");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("ppfr_cell_cora_gcn", |b| {
        b.iter(|| run_method(&dataset, ModelKind::Gcn, Method::Ppfr, &cfg))
    });
    group.bench_function("dpreg_cell_cora_gcn", |b| {
        b.iter(|| run_method(&dataset, ModelKind::Gcn, Method::DpReg, &cfg))
    });
    group.finish();
}

fn bench_table5(c: &mut Criterion) {
    // Table V kernel: the PPFR cell on a weak-homophily dataset.
    let spec = scaled_spec(enzymes(), ExperimentScale::Smoke);
    let cfg = PpfrConfig::smoke();
    let dataset = generate(&spec, 7);
    let mut group = c.benchmark_group("table5_weak_homophily");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("ppfr_cell_enzymes_gcn", |b| {
        b.iter(|| run_method(&dataset, ModelKind::Gcn, Method::Ppfr, &cfg))
    });
    group.finish();
}

criterion_group!(
    tables,
    bench_table2,
    bench_table3,
    bench_table4,
    bench_table5
);
criterion_main!(tables);
