//! Criterion benchmarks for the 4-wide GEMM/SpMM microkernels and the
//! persistent work-stealing pool.
//!
//! Each GEMM/SpMM group times the production single-thread kernel against
//! its pre-microkernel scalar baseline (`ppfr_bench::baseline`), so the
//! microkernel win is isolated from threading.  The pool group times a
//! fixed-size trivial dispatch through the persistent pool against the
//! pre-pool per-call scoped-thread spawn.

use criterion::{criterion_group, criterion_main, Criterion};
use ppfr_bench::baseline;
use ppfr_datasets::{generate, two_block_synthetic};
use ppfr_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const M: usize = 256;
const K: usize = 128;
const N: usize = 64;

fn bench_gemm_microkernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let a = Matrix::gaussian(M, K, 0.0, 1.0, &mut rng);
    let b = Matrix::gaussian(K, N, 0.0, 1.0, &mut rng);
    let at_rhs = Matrix::gaussian(M, N, 0.0, 1.0, &mut rng);
    let bt_rhs = Matrix::gaussian(N, K, 0.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("gemm_microkernels");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    group.bench_function("a_b_scalar_baseline", |bench| {
        bench.iter(|| baseline::matmul_serial(&a, &b))
    });
    group.bench_function("a_b_micro", |bench| bench.iter(|| a.matmul_serial(&b)));

    group.bench_function("at_b_scalar_baseline", |bench| {
        bench.iter(|| baseline::matmul_at_b_serial(&a, &at_rhs))
    });
    group.bench_function("at_b_micro", |bench| {
        bench.iter(|| {
            let mut out = Matrix::zeros(0, 0);
            a.matmul_at_b_into_serial(&at_rhs, &mut out);
            out
        })
    });

    group.bench_function("a_bt_scalar_baseline", |bench| {
        bench.iter(|| baseline::matmul_a_bt_serial(&a, &bt_rhs))
    });
    group.bench_function("a_bt_micro", |bench| {
        bench.iter(|| {
            let mut out = Matrix::zeros(0, 0);
            a.matmul_a_bt_into_serial(&bt_rhs, &mut out);
            out
        })
    });
    group.finish();
}

fn bench_spmm_microkernel(c: &mut Criterion) {
    let ds = generate(&two_block_synthetic(), 7);
    let a_hat = ds.graph.normalized_adjacency();

    let mut group = c.benchmark_group("spmm_microkernel");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    group.bench_function("spmm_scalar_baseline", |bench| {
        bench.iter(|| baseline::spmm_serial(&a_hat, &ds.features))
    });
    group.bench_function("spmm_micro", |bench| {
        bench.iter(|| a_hat.matmul_dense_serial(&ds.features))
    });
    group.finish();
}

fn bench_pool_dispatch(c: &mut Criterion) {
    let items = 1024;
    let cells: Vec<AtomicU64> = (0..items).map(|_| AtomicU64::new(0)).collect();
    let touch = |i: usize| cells[i].store(i as u64 + 1, Ordering::Relaxed);

    let mut group = c.benchmark_group("pool_dispatch");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for threads in [2usize, 8] {
        group.bench_function(format!("scoped_spawn_t{threads}"), |bench| {
            bench.iter(|| baseline::scoped_spawn_dispatch(items, threads, touch))
        });
        group.bench_function(format!("persistent_pool_t{threads}"), |bench| {
            bench.iter(|| rayon::dispatch(items, threads, touch))
        });
    }
    group.finish();
}

criterion_group!(
    microkernels,
    bench_gemm_microkernels,
    bench_spmm_microkernel,
    bench_pool_dispatch
);
criterion_main!(microkernels);
