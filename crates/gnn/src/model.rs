//! The object-safe [`GnnModel`] trait and the [`AnyModel`] dispatcher.

use crate::{Gat, Gcn, GraphContext, GraphSage, TrainWorkspace};
use ppfr_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A graph neural network with hand-derived gradients.
///
/// The contract is deliberately small so that the training loop, the
/// influence-function machinery and the PPFR pipeline can stay model
/// agnostic (the paper's method is "plug-and-play" across GCN/GAT/SAGE):
///
/// * [`forward`](GnnModel::forward) maps a [`GraphContext`] to logits;
/// * [`backward`](GnnModel::backward) maps an upstream gradient w.r.t. the
///   logits to a flat gradient w.r.t. the parameters (recomputing the forward
///   pass internally, which keeps the trait object-safe and stateless);
/// * parameters are exposed as a flat `Vec<f64>` so optimisers, Hessian-vector
///   products and conjugate-gradient solvers can treat every model uniformly.
pub trait GnnModel {
    /// Forward pass producing one logit row per node.
    fn forward(&self, ctx: &GraphContext) -> Matrix;

    /// Gradient of `sum(d_logits ⊙ logits(θ))` w.r.t. the flat parameters.
    fn backward(&self, ctx: &GraphContext, d_logits: &Matrix) -> Vec<f64>;

    /// Flattened copy of all parameters.
    fn params(&self) -> Vec<f64>;

    /// Overwrites all parameters from a flat slice.
    fn set_params(&mut self, params: &[f64]);

    /// Number of parameters.
    fn n_params(&self) -> usize;

    /// Number of output classes.
    fn n_classes(&self) -> usize;

    /// Re-draws any stochastic structure (e.g. GraphSAGE neighbour sampling).
    /// Deterministic models ignore this.
    fn resample(&mut self, _ctx: &GraphContext, _seed: u64) {}

    /// Forward pass through a reusable [`TrainWorkspace`]: the logits land in
    /// `ws.logits` and every intermediate activation is cached in the
    /// workspace for the matching [`backward_ws`](GnnModel::backward_ws).
    ///
    /// The default delegates to the allocating [`forward`](GnnModel::forward);
    /// the in-tree models override it with buffer-reusing kernels that are
    /// **bit-identical** to the fallback.
    fn forward_ws(&self, ctx: &GraphContext, ws: &mut TrainWorkspace) {
        ws.logits = self.forward(ctx);
    }

    /// Backward pass through the workspace: reads the upstream logit gradient
    /// from `ws.d_logits` and leaves the flat parameter gradient in
    /// `ws.grads`.
    ///
    /// Contract: must be preceded by [`forward_ws`](GnnModel::forward_ws)
    /// with the same parameters, context and stochastic structure — the
    /// in-tree overrides reuse the cached forward activations instead of
    /// recomputing them (the allocating [`backward`](GnnModel::backward)
    /// recomputes the forward pass, producing the same values).
    fn backward_ws(&self, ctx: &GraphContext, ws: &mut TrainWorkspace) {
        let grads = self.backward(ctx, &ws.d_logits);
        ws.grads = grads;
    }
}

/// Which architecture to instantiate — used by experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModelKind {
    /// Graph convolutional network (Kipf & Welling 2017).
    Gcn,
    /// Graph attention network, single head (Veličković et al. 2018).
    Gat,
    /// GraphSAGE with mean aggregation (Hamilton et al. 2017).
    GraphSage,
}

impl ModelKind {
    /// All three architectures, in the order the paper's tables list them.
    pub const ALL: [ModelKind; 3] = [ModelKind::Gcn, ModelKind::Gat, ModelKind::GraphSage];

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::Gat => "GAT",
            ModelKind::GraphSage => "GraphSage",
        }
    }
}

/// Enum dispatcher over the three concrete models, so pipelines can hold a
/// single value regardless of architecture.
#[derive(Debug, Clone)]
pub enum AnyModel {
    /// GCN variant.
    Gcn(Gcn),
    /// GAT variant.
    Gat(Gat),
    /// GraphSAGE variant.
    GraphSage(GraphSage),
}

impl AnyModel {
    /// Builds a freshly initialised model of the requested kind.
    ///
    /// `hidden` is the hidden-layer width (the paper uses 16).
    pub fn new(kind: ModelKind, in_dim: usize, hidden: usize, n_classes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        match kind {
            ModelKind::Gcn => AnyModel::Gcn(Gcn::new(in_dim, hidden, n_classes, &mut rng)),
            ModelKind::Gat => AnyModel::Gat(Gat::new(in_dim, hidden, n_classes, &mut rng)),
            ModelKind::GraphSage => {
                AnyModel::GraphSage(GraphSage::new(in_dim, hidden, n_classes, &mut rng))
            }
        }
    }

    /// The architecture of this model.
    pub fn kind(&self) -> ModelKind {
        match self {
            AnyModel::Gcn(_) => ModelKind::Gcn,
            AnyModel::Gat(_) => ModelKind::Gat,
            AnyModel::GraphSage(_) => ModelKind::GraphSage,
        }
    }

    fn inner(&self) -> &dyn GnnModel {
        match self {
            AnyModel::Gcn(m) => m,
            AnyModel::Gat(m) => m,
            AnyModel::GraphSage(m) => m,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn GnnModel {
        match self {
            AnyModel::Gcn(m) => m,
            AnyModel::Gat(m) => m,
            AnyModel::GraphSage(m) => m,
        }
    }
}

impl GnnModel for AnyModel {
    fn forward(&self, ctx: &GraphContext) -> Matrix {
        self.inner().forward(ctx)
    }

    fn backward(&self, ctx: &GraphContext, d_logits: &Matrix) -> Vec<f64> {
        self.inner().backward(ctx, d_logits)
    }

    fn params(&self) -> Vec<f64> {
        self.inner().params()
    }

    fn set_params(&mut self, params: &[f64]) {
        self.inner_mut().set_params(params);
    }

    fn n_params(&self) -> usize {
        self.inner().n_params()
    }

    fn n_classes(&self) -> usize {
        self.inner().n_classes()
    }

    fn resample(&mut self, ctx: &GraphContext, seed: u64) {
        self.inner_mut().resample(ctx, seed);
    }

    fn forward_ws(&self, ctx: &GraphContext, ws: &mut TrainWorkspace) {
        self.inner().forward_ws(ctx, ws);
    }

    fn backward_ws(&self, ctx: &GraphContext, ws: &mut TrainWorkspace) {
        self.inner().backward_ws(ctx, ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_graph::Graph;

    fn tiny_ctx() -> GraphContext {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.5],
            vec![0.0, 1.0, 0.2],
            vec![1.0, 1.0, 0.0],
            vec![0.3, 0.0, 1.0],
            vec![0.0, 0.5, 0.5],
        ]);
        GraphContext::new(g, x)
    }

    #[test]
    fn any_model_roundtrips_parameters_for_every_kind() {
        let ctx = tiny_ctx();
        for kind in ModelKind::ALL {
            let mut model = AnyModel::new(kind, 3, 4, 2, 42);
            let p = model.params();
            assert_eq!(p.len(), model.n_params(), "{}", kind.name());
            let doubled: Vec<f64> = p.iter().map(|v| v * 2.0).collect();
            model.set_params(&doubled);
            assert_eq!(model.params(), doubled);
            let logits = model.forward(&ctx);
            assert_eq!(logits.shape(), (5, 2));
            assert!(!logits.has_non_finite());
        }
    }

    #[test]
    fn model_kind_names_match_paper_tables() {
        assert_eq!(ModelKind::Gcn.name(), "GCN");
        assert_eq!(ModelKind::Gat.name(), "GAT");
        assert_eq!(ModelKind::GraphSage.name(), "GraphSage");
    }

    #[test]
    fn same_seed_gives_same_initialisation() {
        let a = AnyModel::new(ModelKind::Gcn, 3, 4, 2, 7);
        let b = AnyModel::new(ModelKind::Gcn, 3, 4, 2, 7);
        assert_eq!(a.params(), b.params());
        let c = AnyModel::new(ModelKind::Gcn, 3, 4, 2, 8);
        assert_ne!(a.params(), c.params());
    }
}
