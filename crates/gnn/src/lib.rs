//! Graph neural networks for the PPFR stack.
//!
//! Three models with hand-derived forward and backward passes — [`Gcn`]
//! (Kipf & Welling), [`Gat`] (single-head Graph Attention Network) and
//! [`GraphSage`] (mean aggregator with optional neighbour sampling) — behind
//! the object-safe [`GnnModel`] trait, plus the weighted / fairness-regularised
//! training loop ([`train`]) used by vanilla training, the Reg baseline and
//! PPFR fine-tuning.
//!
//! All gradients are verified against central finite differences in the test
//! suites of the individual model modules.

#![forbid(unsafe_code)]

mod context;
mod gat;
mod gcn;
mod model;
mod sage;
mod sampling;
mod train;
mod workspace;

pub use context::GraphContext;
pub use gat::Gat;
pub use gcn::Gcn;
pub use model::{AnyModel, GnnModel, ModelKind};
pub use sage::GraphSage;
pub use sampling::{sample_subgraph, train_sampled, SampledContext};
pub use train::{train, train_legacy, train_with_workspace, FairnessReg, TrainConfig, TrainReport};
pub use workspace::{GatBufs, GatLayerBufs, GcnBufs, SageBufs, TrainWorkspace};
