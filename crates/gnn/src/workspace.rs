//! Reusable training workspaces.
//!
//! A [`TrainWorkspace`] owns every intermediate buffer the training loop and
//! the per-model forward/backward passes need, so that a full epoch performs
//! **zero heap allocations after warm-up**: buffers are resized on first use
//! (or when the problem shape changes) and fully overwritten by the in-place
//! kernels of `ppfr_linalg` / `ppfr_graph` on every subsequent epoch.
//!
//! The workspace fast path is **bit-identical** to the allocating reference
//! implementations ([`crate::train_legacy`], [`GnnModel::forward`] /
//! [`GnnModel::backward`](crate::GnnModel::backward)): every in-place kernel
//! accumulates its terms in the same order with the same sparse fast paths,
//! which is pinned by the equivalence tests in
//! `crates/gnn/tests/workspace_equivalence.rs`.
//!
//! One workspace serves one model at a time; the per-architecture buffer
//! groups ([`GcnBufs`], [`SageBufs`], [`GatBufs`]) stay empty for the
//! architectures that are not in use.
//!
//! [`GnnModel::forward`]: crate::GnnModel::forward

use ppfr_linalg::Matrix;

/// Resizes a scratch vector, leaving its contents unspecified (every user
/// fully overwrites).  Allocation-free once the length is stable.
pub(crate) fn ensure_len(v: &mut Vec<f64>, len: usize) {
    if v.len() != len {
        v.resize(len, 0.0);
    }
}

/// Preallocated buffers shared by the training loop and the per-model
/// forward/backward passes.  See the module docs for the reuse contract.
#[derive(Debug, Clone, Default)]
pub struct TrainWorkspace {
    /// Model output logits (one row per node), written by
    /// [`GnnModel::forward_ws`](crate::GnnModel::forward_ws).
    pub logits: Matrix,
    /// Softmax probabilities of `logits`.
    pub probs: Matrix,
    /// Gradient of the loss w.r.t. the logits; input of
    /// [`GnnModel::backward_ws`](crate::GnnModel::backward_ws).
    pub d_logits: Matrix,
    /// Gradient of the fairness regulariser w.r.t. the probabilities.
    pub d_probs: Matrix,
    /// `d_probs` back-propagated through the softmax.
    pub d_reg: Matrix,
    /// Flat parameter gradient, output of
    /// [`GnnModel::backward_ws`](crate::GnnModel::backward_ws).
    pub grads: Vec<f64>,
    /// All-one loss weights kept for the influence fast path.
    pub unit_weights: Vec<f64>,
    /// GCN-specific buffers.
    pub gcn: GcnBufs,
    /// GraphSAGE-specific buffers.
    pub sage: SageBufs,
    /// GAT-specific buffers.
    pub gat: GatBufs,
}

impl TrainWorkspace {
    /// A fresh workspace with every buffer empty; buffers are sized lazily by
    /// the first epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Makes `unit_weights` hold exactly `len` ones (used by the influence
    /// fast path, whose utility gradient is the unit-weight training loss).
    pub fn ensure_unit_weights(&mut self, len: usize) {
        if self.unit_weights.len() != len {
            self.unit_weights.clear();
            self.unit_weights.resize(len, 1.0);
        }
    }
}

/// Forward/backward intermediates of the two-layer GCN.
#[derive(Debug, Clone, Default)]
pub struct GcnBufs {
    /// `X W₁`.
    pub xw1: Matrix,
    /// `Â X W₁` (pre-activation).
    pub pre1: Matrix,
    /// `ReLU(pre1)`.
    pub h1: Matrix,
    /// `h1 W₂`.
    pub h1w2: Matrix,
    /// `Â · d_logits`.
    pub d_h1w2: Matrix,
    /// Gradient w.r.t. `W₂`.
    pub d_w2: Matrix,
    /// Gradient w.r.t. `h1`.
    pub d_h1: Matrix,
    /// Gradient w.r.t. `pre1`.
    pub d_pre1: Matrix,
    /// `Â · d_pre1`.
    pub d_xw1: Matrix,
    /// Gradient w.r.t. `W₁`.
    pub d_w1: Matrix,
}

/// Forward/backward intermediates of the two-layer GraphSAGE.
#[derive(Debug, Clone, Default)]
pub struct SageBufs {
    /// Aggregated input features `M X`.
    pub mx: Matrix,
    /// Layer-1 pre-activation.
    pub pre1: Matrix,
    /// `ReLU(pre1)`.
    pub h1: Matrix,
    /// Aggregated hidden state `M h1`.
    pub mh1: Matrix,
    /// `X W₁ˢᵉˡᶠ` temporary.
    pub t_self: Matrix,
    /// `(M X) W₁ⁿᵉⁱᵍʰ` temporary.
    pub t_neigh: Matrix,
    /// `h1 W₂ˢᵉˡᶠ` temporary.
    pub o_self: Matrix,
    /// `(M h1) W₂ⁿᵉⁱᵍʰ` temporary.
    pub o_neigh: Matrix,
    /// Gradient w.r.t. `W₂ˢᵉˡᶠ`.
    pub d_w2_self: Matrix,
    /// Gradient w.r.t. `W₂ⁿᵉⁱᵍʰ`.
    pub d_w2_neigh: Matrix,
    /// Direct (self) component of the gradient w.r.t. `h1`.
    pub d_h1_dir: Matrix,
    /// Gradient w.r.t. `M h1`.
    pub d_mh1: Matrix,
    /// Aggregated component `Mᵀ d_mh1` of the gradient w.r.t. `h1`.
    pub d_h1_agg: Matrix,
    /// Total gradient w.r.t. `h1`.
    pub d_h1: Matrix,
    /// Gradient w.r.t. `pre1`.
    pub d_pre1: Matrix,
    /// Gradient w.r.t. `W₁ˢᵉˡᶠ`.
    pub d_w1_self: Matrix,
    /// Gradient w.r.t. `W₁ⁿᵉⁱᵍʰ`.
    pub d_w1_neigh: Matrix,
}

/// Forward/backward intermediates of one GAT attention layer.
#[derive(Debug, Clone, Default)]
pub struct GatLayerBufs {
    /// Projected features `H = X W`.
    pub h: Matrix,
    /// Layer output `Σ_j α_ij H_j`.
    pub out: Matrix,
    /// Raw attention logits per directed edge.
    pub pre: Vec<f64>,
    /// Normalised attention coefficients per directed edge.
    pub alpha: Vec<f64>,
    /// Source scores `H a_src`.
    pub s: Vec<f64>,
    /// Destination scores `H a_dst`.
    pub t: Vec<f64>,
    /// Gradient w.r.t. `H`.
    pub d_h: Matrix,
    /// Gradient w.r.t. the layer input `X` (only filled when requested).
    pub d_x: Matrix,
    /// Gradient w.r.t. `W`.
    pub d_w: Matrix,
    /// Gradient w.r.t. the attention coefficients.
    pub d_alpha: Vec<f64>,
    /// Gradient w.r.t. the source scores.
    pub d_s: Vec<f64>,
    /// Gradient w.r.t. the destination scores.
    pub d_t: Vec<f64>,
    /// Gradient w.r.t. `a_src`.
    pub d_a_src: Vec<f64>,
    /// Gradient w.r.t. `a_dst`.
    pub d_a_dst: Vec<f64>,
}

/// Forward/backward intermediates of the two-layer GAT.
#[derive(Debug, Clone, Default)]
pub struct GatBufs {
    /// First attention layer.
    pub l1: GatLayerBufs,
    /// Second attention layer.
    pub l2: GatLayerBufs,
    /// `ReLU(l1.out)`.
    pub h1: Matrix,
    /// Gradient w.r.t. `l1.out`.
    pub d_pre1: Matrix,
}
