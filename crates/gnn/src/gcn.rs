//! Two-layer graph convolutional network (Kipf & Welling, ICLR 2017).
//!
//! Forward pass: `Z = Â · ReLU(Â X W₁) · W₂` with the symmetric normalisation
//! `Â = D̃^{-1/2}(A+I)D̃^{-1/2}` from the paper's preliminaries.

use crate::workspace::ensure_len;
use crate::{GnnModel, GraphContext, TrainWorkspace};
use ppfr_linalg::{relu, relu_grad, relu_grad_into, relu_into, Matrix};
use rand::Rng;

/// Two-layer GCN with hidden width `hidden`.
#[derive(Debug, Clone)]
pub struct Gcn {
    w1: Matrix,
    w2: Matrix,
    in_dim: usize,
    hidden: usize,
    n_classes: usize,
}

impl Gcn {
    /// Glorot-initialised GCN.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        hidden: usize,
        n_classes: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            w1: Matrix::glorot(in_dim, hidden, rng),
            w2: Matrix::glorot(hidden, n_classes, rng),
            in_dim,
            hidden,
            n_classes,
        }
    }

    fn forward_cached(&self, ctx: &GraphContext) -> (Matrix, Matrix, Matrix) {
        // pre1 = Â X W1 ; h1 = ReLU(pre1) ; logits = Â h1 W2
        let xw1 = ctx.features.matmul(&self.w1);
        let pre1 = ctx.a_hat.matmul_dense(&xw1);
        let h1 = relu(&pre1);
        let h1w2 = h1.matmul(&self.w2);
        let logits = ctx.a_hat.matmul_dense(&h1w2);
        (pre1, h1, logits)
    }
}

impl GnnModel for Gcn {
    fn forward(&self, ctx: &GraphContext) -> Matrix {
        self.forward_cached(ctx).2
    }

    fn backward(&self, ctx: &GraphContext, d_logits: &Matrix) -> Vec<f64> {
        let (pre1, h1, _) = self.forward_cached(ctx);
        // logits = Â (h1 W2): Â is symmetric, so d(h1 W2) = Â d_logits.
        let d_h1w2 = ctx.a_hat.matmul_dense(d_logits);
        let d_w2 = h1.transpose().matmul(&d_h1w2);
        let d_h1 = d_h1w2.matmul(&self.w2.transpose());
        let d_pre1 = relu_grad(&pre1, &d_h1);
        // pre1 = Â (X W1): d(X W1) = Â d_pre1.
        let d_xw1 = ctx.a_hat.matmul_dense(&d_pre1);
        let d_w1 = ctx.features_t.matmul(&d_xw1);
        let mut grads = d_w1.into_vec();
        grads.extend(d_w2.into_vec());
        grads
    }

    fn forward_ws(&self, ctx: &GraphContext, ws: &mut TrainWorkspace) {
        let b = &mut ws.gcn;
        ctx.features.matmul_into(&self.w1, &mut b.xw1);
        ctx.a_hat.matmul_dense_into(&b.xw1, &mut b.pre1);
        relu_into(&b.pre1, &mut b.h1);
        b.h1.matmul_into(&self.w2, &mut b.h1w2);
        ctx.a_hat.matmul_dense_into(&b.h1w2, &mut ws.logits);
    }

    fn backward_ws(&self, ctx: &GraphContext, ws: &mut TrainWorkspace) {
        // Reuses pre1/h1 cached by forward_ws; transpose-free kernels keep the
        // accumulation order of the allocating backward, so the gradient is
        // bit-identical.
        let b = &mut ws.gcn;
        ctx.a_hat.matmul_dense_into(&ws.d_logits, &mut b.d_h1w2);
        b.h1.matmul_at_b_into(&b.d_h1w2, &mut b.d_w2);
        b.d_h1w2.matmul_a_bt_into(&self.w2, &mut b.d_h1);
        relu_grad_into(&b.pre1, &b.d_h1, &mut b.d_pre1);
        ctx.a_hat.matmul_dense_into(&b.d_pre1, &mut b.d_xw1);
        ctx.features.matmul_at_b_into(&b.d_xw1, &mut b.d_w1);
        let (n1, n2) = (b.d_w1.as_slice().len(), b.d_w2.as_slice().len());
        ensure_len(&mut ws.grads, n1 + n2);
        ws.grads[..n1].copy_from_slice(b.d_w1.as_slice());
        ws.grads[n1..].copy_from_slice(b.d_w2.as_slice());
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.w1.as_slice().to_vec();
        p.extend_from_slice(self.w2.as_slice());
        p
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.n_params(), "parameter length mismatch");
        let split = self.in_dim * self.hidden;
        self.w1.as_mut_slice().copy_from_slice(&params[..split]);
        self.w2.as_mut_slice().copy_from_slice(&params[split..]);
    }

    fn n_params(&self) -> usize {
        self.in_dim * self.hidden + self.hidden * self.n_classes
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_graph::Graph;
    use ppfr_nn::{central_difference, max_relative_error};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_ctx() -> GraphContext {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Matrix::gaussian(6, 4, 0.0, 1.0, &mut rng);
        GraphContext::new(g, x)
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let gcn = Gcn::new(4, 5, 3, &mut rng);
        let z = gcn.forward(&ctx);
        assert_eq!(z.shape(), (6, 3));
        assert!(!z.has_non_finite());
    }

    #[test]
    fn backward_matches_finite_difference() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let gcn = Gcn::new(4, 5, 3, &mut rng);
        // Scalar objective: f(θ) = sum(C ⊙ logits) for a fixed coefficient matrix C.
        let coeff = Matrix::gaussian(6, 3, 0.0, 1.0, &mut rng);
        let analytic = gcn.backward(&ctx, &coeff);
        let f = |p: &[f64]| {
            let mut m = gcn.clone();
            m.set_params(p);
            let z = m.forward(&ctx);
            z.hadamard(&coeff).sum()
        };
        let numeric = central_difference(f, &gcn.params(), 1e-5);
        let err = max_relative_error(&analytic, &numeric, 1e-6);
        assert!(
            err < 1e-4,
            "gradient check failed: max relative error {err}"
        );
    }

    #[test]
    fn isolated_node_keeps_its_own_signal() {
        // Node 2 is isolated: its logits depend only on its own features
        // (through the self loop of Â), so changing node 0's features must
        // not change node 2's output.
        let g = Graph::from_edges(3, &[(0, 1)]);
        let mut x = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]]);
        let mut rng = StdRng::seed_from_u64(4);
        let gcn = Gcn::new(2, 3, 2, &mut rng);
        let z1 = gcn.forward(&GraphContext::new(g.clone(), x.clone()));
        x[(0, 0)] = 9.0;
        let z2 = gcn.forward(&GraphContext::new(g, x));
        for c in 0..2 {
            assert!((z1[(2, c)] - z2[(2, c)]).abs() < 1e-12);
        }
        assert!(
            (z1[(0, 0)] - z2[(0, 0)]).abs() > 1e-9,
            "node 0 must react to its own features"
        );
    }

    #[test]
    fn param_roundtrip_preserves_forward() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(5);
        let gcn = Gcn::new(4, 5, 3, &mut rng);
        let mut clone = gcn.clone();
        clone.set_params(&gcn.params());
        let a = gcn.forward(&ctx);
        let b = clone.forward(&ctx);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
