//! Two-layer single-head graph attention network (Veličković et al. 2018).
//!
//! Attention over the closed neighbourhood (self loop included):
//! `e_{ij} = LeakyReLU(a_srcᵀ W h_i + a_dstᵀ W h_j)`,
//! `α_{ij} = softmax_j(e_{ij})`, `h'_i = Σ_j α_{ij} W h_j`.

use crate::workspace::{ensure_len, GatLayerBufs};
use crate::{GnnModel, GraphContext, TrainWorkspace};
use ppfr_linalg::{
    leaky_relu, leaky_relu_grad, par_fill, par_rows, relu, relu_grad, relu_grad_into, relu_into,
    Matrix,
};
use rand::Rng;

const LEAKY_SLOPE: f64 = 0.2;

/// One single-head attention layer.
#[derive(Debug, Clone)]
struct GatLayer {
    w: Matrix,
    a_src: Vec<f64>,
    a_dst: Vec<f64>,
    in_dim: usize,
    out_dim: usize,
}

/// Per-layer forward cache used by the hand-derived backward pass.
struct LayerCache {
    h: Matrix,
    pre: Vec<f64>,
    alpha: Vec<f64>,
    out: Matrix,
}

impl GatLayer {
    fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let a = Matrix::glorot(2, out_dim, rng);
        Self {
            w: Matrix::glorot(in_dim, out_dim, rng),
            a_src: a.row(0).to_vec(),
            a_dst: a.row(1).to_vec(),
            in_dim,
            out_dim,
        }
    }

    fn n_params(&self) -> usize {
        self.in_dim * self.out_dim + 2 * self.out_dim
    }

    fn forward(&self, ctx: &GraphContext, x: &Matrix) -> LayerCache {
        let n = ctx.n_nodes();
        let h = x.matmul(&self.w);
        // s_i = h_i · a_src, t_j = h_j · a_dst — independent per node, so
        // computed through the shared parallel row idiom.
        let s: Vec<f64> = par_rows(n, |i| dot(h.row(i), &self.a_src));
        let t: Vec<f64> = par_rows(n, |j| dot(h.row(j), &self.a_dst));
        let m = ctx.att_edges.len();
        let mut pre = vec![0.0; m];
        for (e, &(dst, src)) in ctx.att_edges.iter().enumerate() {
            pre[e] = s[dst] + t[src];
        }
        // Softmax of LeakyReLU(pre) within each destination group.
        let mut alpha = vec![0.0; m];
        for v in 0..n {
            let range = ctx.att_ptr[v]..ctx.att_ptr[v + 1];
            let max = pre[range.clone()]
                .iter()
                .map(|&p| leaky_relu(p, LEAKY_SLOPE))
                // lint: allow(par-float-reduction) — serial per-destination
                // post-pass after the par_rows projections; forward is pinned
                // across thread counts by gnn/tests/workspace_equivalence.rs
                .fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for e in range.clone() {
                let a = (leaky_relu(pre[e], LEAKY_SLOPE) - max).exp();
                alpha[e] = a;
                sum += a;
            }
            for e in range {
                alpha[e] /= sum;
            }
        }
        // out_i = Σ_j α_ij h_j
        let mut out = Matrix::zeros(n, self.out_dim);
        for (e, &(dst, src)) in ctx.att_edges.iter().enumerate() {
            let a = alpha[e];
            let h_src = h.row(src).to_vec();
            let row = out.row_mut(dst);
            for (o, hv) in row.iter_mut().zip(h_src.iter()) {
                *o += a * hv;
            }
        }
        LayerCache { h, pre, alpha, out }
    }

    /// Backward pass; returns `(d_w, d_a_src, d_a_dst, d_x)`.
    fn backward(
        &self,
        ctx: &GraphContext,
        x: &Matrix,
        cache: &LayerCache,
        d_out: &Matrix,
    ) -> (Matrix, Vec<f64>, Vec<f64>, Matrix) {
        let n = ctx.n_nodes();
        let m = ctx.att_edges.len();
        let h = &cache.h;
        let mut d_h = Matrix::zeros(n, self.out_dim);
        // dα_e = d_out[dst] · h[src]; accumulate dH[src] += α_e d_out[dst].
        let mut d_alpha = vec![0.0; m];
        for (e, &(dst, src)) in ctx.att_edges.iter().enumerate() {
            d_alpha[e] = dot(d_out.row(dst), h.row(src));
            let a = cache.alpha[e];
            let d_row = d_out.row(dst).to_vec();
            let target = d_h.row_mut(src);
            for (t_v, d_v) in target.iter_mut().zip(d_row.iter()) {
                *t_v += a * d_v;
            }
        }
        // Softmax backward within each destination group, then LeakyReLU.
        let mut d_s = vec![0.0; n];
        let mut d_t = vec![0.0; n];
        for v in 0..n {
            let range = ctx.att_ptr[v]..ctx.att_ptr[v + 1];
            let inner: f64 = range.clone().map(|e| cache.alpha[e] * d_alpha[e]).sum();
            for e in range {
                let d_e = cache.alpha[e] * (d_alpha[e] - inner);
                let d_pre = d_e * leaky_relu_grad(cache.pre[e], LEAKY_SLOPE);
                let (dst, src) = ctx.att_edges[e];
                d_s[dst] += d_pre;
                d_t[src] += d_pre;
            }
        }
        // s_i = h_i · a_src, t_j = h_j · a_dst.
        let mut d_a_src = vec![0.0; self.out_dim];
        let mut d_a_dst = vec![0.0; self.out_dim];
        for i in 0..n {
            let h_row = h.row(i);
            for c in 0..self.out_dim {
                d_a_src[c] += d_s[i] * h_row[c];
                d_a_dst[c] += d_t[i] * h_row[c];
            }
            let row = d_h.row_mut(i);
            for (c, r) in row.iter_mut().enumerate() {
                *r += d_s[i] * self.a_src[c] + d_t[i] * self.a_dst[c];
            }
        }
        // h = x W.
        let d_w = x.transpose().matmul(&d_h);
        let d_x = d_h.matmul(&self.w.transpose());
        (d_w, d_a_src, d_a_dst, d_x)
    }

    /// Workspace twin of [`GatLayer::forward`]: every intermediate lands in
    /// `b`, fully overwritten, with the same per-element computation order as
    /// the allocating path (bit-identical results).
    fn forward_ws(&self, ctx: &GraphContext, x: &Matrix, b: &mut GatLayerBufs) {
        let n = ctx.n_nodes();
        x.matmul_into(&self.w, &mut b.h);
        ensure_len(&mut b.s, n);
        ensure_len(&mut b.t, n);
        par_fill(&mut b.s, |i| dot(b.h.row(i), &self.a_src));
        par_fill(&mut b.t, |j| dot(b.h.row(j), &self.a_dst));
        let m = ctx.att_edges.len();
        ensure_len(&mut b.pre, m);
        for (e, &(dst, src)) in ctx.att_edges.iter().enumerate() {
            b.pre[e] = b.s[dst] + b.t[src];
        }
        ensure_len(&mut b.alpha, m);
        for v in 0..n {
            let range = ctx.att_ptr[v]..ctx.att_ptr[v + 1];
            let max = b.pre[range.clone()]
                .iter()
                .map(|&p| leaky_relu(p, LEAKY_SLOPE))
                // lint: allow(par-float-reduction) — serial per-destination
                // post-pass after the par_fill projections; forward_ws is
                // pinned by gnn/tests/workspace_equivalence.rs
                .fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for e in range.clone() {
                let a = (leaky_relu(b.pre[e], LEAKY_SLOPE) - max).exp();
                b.alpha[e] = a;
                sum += a;
            }
            for e in range {
                b.alpha[e] /= sum;
            }
        }
        b.out.resize_to(n, self.out_dim);
        b.out.as_mut_slice().fill(0.0);
        for (e, &(dst, src)) in ctx.att_edges.iter().enumerate() {
            let a = b.alpha[e];
            for (o, &hv) in b.out.row_mut(dst).iter_mut().zip(b.h.row(src).iter()) {
                *o += a * hv;
            }
        }
    }

    /// Workspace twin of [`GatLayer::backward`], reusing the activations that
    /// [`GatLayer::forward_ws`] cached in `b`.  Leaves the parameter
    /// gradients in `b.d_w` / `b.d_a_src` / `b.d_a_dst`; the gradient w.r.t.
    /// the layer input is only materialised in `b.d_x` when `need_d_x` is set
    /// (the first layer's input gradient is never consumed).
    fn backward_ws(
        &self,
        ctx: &GraphContext,
        x: &Matrix,
        b: &mut GatLayerBufs,
        d_out: &Matrix,
        need_d_x: bool,
    ) {
        let n = ctx.n_nodes();
        let m = ctx.att_edges.len();
        b.d_h.resize_to(n, self.out_dim);
        b.d_h.as_mut_slice().fill(0.0);
        ensure_len(&mut b.d_alpha, m);
        // dα_e = d_out[dst] · h[src]; accumulate dH[src] += α_e d_out[dst].
        for (e, &(dst, src)) in ctx.att_edges.iter().enumerate() {
            b.d_alpha[e] = dot(d_out.row(dst), b.h.row(src));
            let a = b.alpha[e];
            for (t_v, &d_v) in b.d_h.row_mut(src).iter_mut().zip(d_out.row(dst).iter()) {
                *t_v += a * d_v;
            }
        }
        // Softmax backward within each destination group, then LeakyReLU.
        ensure_len(&mut b.d_s, n);
        ensure_len(&mut b.d_t, n);
        b.d_s.fill(0.0);
        b.d_t.fill(0.0);
        for v in 0..n {
            let range = ctx.att_ptr[v]..ctx.att_ptr[v + 1];
            let inner: f64 = range.clone().map(|e| b.alpha[e] * b.d_alpha[e]).sum();
            for e in range {
                let d_e = b.alpha[e] * (b.d_alpha[e] - inner);
                let d_pre = d_e * leaky_relu_grad(b.pre[e], LEAKY_SLOPE);
                let (dst, src) = ctx.att_edges[e];
                b.d_s[dst] += d_pre;
                b.d_t[src] += d_pre;
            }
        }
        // s_i = h_i · a_src, t_j = h_j · a_dst.
        ensure_len(&mut b.d_a_src, self.out_dim);
        ensure_len(&mut b.d_a_dst, self.out_dim);
        b.d_a_src.fill(0.0);
        b.d_a_dst.fill(0.0);
        for i in 0..n {
            let h_row = b.h.row(i);
            let (ds_i, dt_i) = (b.d_s[i], b.d_t[i]);
            for ((da_s, da_t), &hv) in b
                .d_a_src
                .iter_mut()
                .zip(b.d_a_dst.iter_mut())
                .zip(h_row.iter())
            {
                *da_s += ds_i * hv;
                *da_t += dt_i * hv;
            }
            for (c, r) in b.d_h.row_mut(i).iter_mut().enumerate() {
                *r += ds_i * self.a_src[c] + dt_i * self.a_dst[c];
            }
        }
        // h = x W.
        x.matmul_at_b_into(&b.d_h, &mut b.d_w);
        if need_d_x {
            b.d_h.matmul_a_bt_into(&self.w, &mut b.d_x);
        }
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Two-layer single-head GAT: attention layer → ReLU → attention layer.
#[derive(Debug, Clone)]
pub struct Gat {
    layer1: GatLayer,
    layer2: GatLayer,
    n_classes: usize,
}

impl Gat {
    /// Glorot-initialised GAT with hidden width `hidden`.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        hidden: usize,
        n_classes: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            layer1: GatLayer::new(in_dim, hidden, rng),
            layer2: GatLayer::new(hidden, n_classes, rng),
            n_classes,
        }
    }
}

impl GnnModel for Gat {
    fn forward(&self, ctx: &GraphContext) -> Matrix {
        let c1 = self.layer1.forward(ctx, &ctx.features);
        let h1 = relu(&c1.out);
        self.layer2.forward(ctx, &h1).out
    }

    fn backward(&self, ctx: &GraphContext, d_logits: &Matrix) -> Vec<f64> {
        let c1 = self.layer1.forward(ctx, &ctx.features);
        let h1 = relu(&c1.out);
        let c2 = self.layer2.forward(ctx, &h1);
        let (d_w2, d_a2s, d_a2d, d_h1) = self.layer2.backward(ctx, &h1, &c2, d_logits);
        let d_pre1 = relu_grad(&c1.out, &d_h1);
        let (d_w1, d_a1s, d_a1d, _d_x) = self.layer1.backward(ctx, &ctx.features, &c1, &d_pre1);
        let mut grads = d_w1.into_vec();
        grads.extend(d_a1s);
        grads.extend(d_a1d);
        grads.extend(d_w2.into_vec());
        grads.extend(d_a2s);
        grads.extend(d_a2d);
        grads
    }

    fn forward_ws(&self, ctx: &GraphContext, ws: &mut TrainWorkspace) {
        let g = &mut ws.gat;
        self.layer1.forward_ws(ctx, &ctx.features, &mut g.l1);
        relu_into(&g.l1.out, &mut g.h1);
        self.layer2.forward_ws(ctx, &g.h1, &mut g.l2);
        ws.logits.copy_from(&g.l2.out);
    }

    fn backward_ws(&self, ctx: &GraphContext, ws: &mut TrainWorkspace) {
        // Reuses both layer caches (h/pre/alpha/out) from forward_ws.
        let g = &mut ws.gat;
        self.layer2
            .backward_ws(ctx, &g.h1, &mut g.l2, &ws.d_logits, true);
        relu_grad_into(&g.l1.out, &g.l2.d_x, &mut g.d_pre1);
        self.layer1
            .backward_ws(ctx, &ctx.features, &mut g.l1, &g.d_pre1, false);

        // Flatten in parameter order: W₁, a₁ˢʳᶜ, a₁ᵈˢᵗ, W₂, a₂ˢʳᶜ, a₂ᵈˢᵗ.
        ensure_len(&mut ws.grads, self.n_params());
        let mut cursor = 0usize;
        for (d_w, d_a_src, d_a_dst) in [
            (&g.l1.d_w, &g.l1.d_a_src, &g.l1.d_a_dst),
            (&g.l2.d_w, &g.l2.d_a_src, &g.l2.d_a_dst),
        ] {
            let w_len = d_w.as_slice().len();
            ws.grads[cursor..cursor + w_len].copy_from_slice(d_w.as_slice());
            cursor += w_len;
            ws.grads[cursor..cursor + d_a_src.len()].copy_from_slice(d_a_src);
            cursor += d_a_src.len();
            ws.grads[cursor..cursor + d_a_dst.len()].copy_from_slice(d_a_dst);
            cursor += d_a_dst.len();
        }
        debug_assert_eq!(cursor, ws.grads.len());
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.layer1.w.as_slice().to_vec();
        p.extend_from_slice(&self.layer1.a_src);
        p.extend_from_slice(&self.layer1.a_dst);
        p.extend_from_slice(self.layer2.w.as_slice());
        p.extend_from_slice(&self.layer2.a_src);
        p.extend_from_slice(&self.layer2.a_dst);
        p
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.n_params(), "parameter length mismatch");
        let mut cursor = 0usize;
        for layer in [&mut self.layer1, &mut self.layer2] {
            let w_len = layer.in_dim * layer.out_dim;
            layer
                .w
                .as_mut_slice()
                .copy_from_slice(&params[cursor..cursor + w_len]);
            cursor += w_len;
            layer
                .a_src
                .copy_from_slice(&params[cursor..cursor + layer.out_dim]);
            cursor += layer.out_dim;
            layer
                .a_dst
                .copy_from_slice(&params[cursor..cursor + layer.out_dim]);
            cursor += layer.out_dim;
        }
        debug_assert_eq!(cursor, params.len());
    }

    fn n_params(&self) -> usize {
        self.layer1.n_params() + self.layer2.n_params()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_graph::Graph;
    use ppfr_nn::{central_difference, max_relative_error};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_ctx() -> GraphContext {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (2, 5)]);
        let mut rng = StdRng::seed_from_u64(13);
        let x = Matrix::gaussian(6, 4, 0.0, 1.0, &mut rng);
        GraphContext::new(g, x)
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let gat = Gat::new(4, 5, 3, &mut rng);
        let z = gat.forward(&ctx);
        assert_eq!(z.shape(), (6, 3));
        assert!(!z.has_non_finite());
    }

    #[test]
    fn attention_weights_sum_to_one_per_node() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let gat = Gat::new(4, 5, 3, &mut rng);
        let cache = gat.layer1.forward(&ctx, &ctx.features);
        for v in 0..ctx.n_nodes() {
            let sum: f64 = (ctx.att_ptr[v]..ctx.att_ptr[v + 1])
                .map(|e| cache.alpha[e])
                .sum();
            assert!(
                (sum - 1.0).abs() < 1e-12,
                "attention of node {v} sums to {sum}"
            );
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(3);
        let gat = Gat::new(4, 3, 2, &mut rng);
        let coeff = Matrix::gaussian(6, 2, 0.0, 1.0, &mut rng);
        let analytic = gat.backward(&ctx, &coeff);
        let f = |p: &[f64]| {
            let mut m = gat.clone();
            m.set_params(p);
            m.forward(&ctx).hadamard(&coeff).sum()
        };
        let numeric = central_difference(f, &gat.params(), 1e-5);
        let err = max_relative_error(&analytic, &numeric, 1e-5);
        assert!(
            err < 1e-3,
            "GAT gradient check failed: max relative error {err}"
        );
    }

    #[test]
    fn param_roundtrip_preserves_forward() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(4);
        let gat = Gat::new(4, 5, 3, &mut rng);
        let mut clone = gat.clone();
        clone.set_params(&gat.params());
        assert_eq!(gat.forward(&ctx).as_slice(), clone.forward(&ctx).as_slice());
    }
}
