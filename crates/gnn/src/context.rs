//! Pre-computed per-graph operators shared by every model.

use ppfr_graph::{Graph, SparseMatrix};
use ppfr_linalg::Matrix;

/// A graph plus its node features and the propagation operators the three
/// models need.  Built once per (graph, features) pair; rebuilt whenever the
/// graph structure is perturbed (edge DP, privacy-aware perturbations).
#[derive(Debug, Clone)]
pub struct GraphContext {
    /// The underlying graph.
    pub graph: Graph,
    /// Node features `X` (one row per node).  Treat as immutable: the cached
    /// operators below (including [`GraphContext::features_t`]) are derived
    /// from it at construction — build a new context to change features.
    pub features: Matrix,
    /// Cached transpose `Xᵀ`, computed once per context: the backward passes
    /// used to materialise it every epoch.  Kept coherent with
    /// [`GraphContext::features`] by the build-a-new-context convention.
    pub features_t: Matrix,
    /// Symmetrically normalised adjacency `Â = D̃^{-1/2}(A+I)D̃^{-1/2}` (GCN).
    pub a_hat: SparseMatrix,
    /// Row-normalised neighbour-mean operator (GraphSAGE).
    pub mean_agg: SparseMatrix,
    /// Directed attention edges `(dst, src)` including self loops, grouped by
    /// destination (GAT).
    pub att_edges: Vec<(usize, usize)>,
    /// `att_ptr[v]..att_ptr[v+1]` indexes the attention edges whose
    /// destination is `v`.
    pub att_ptr: Vec<usize>,
}

impl GraphContext {
    /// Builds the context, pre-computing every operator.
    pub fn new(graph: Graph, features: Matrix) -> Self {
        assert_eq!(graph.n_nodes(), features.rows(), "one feature row per node");
        let a_hat = graph.normalized_adjacency();
        let mean_agg = graph.mean_aggregation();
        let att_edges = graph.attention_edges();
        let mut att_ptr = Vec::with_capacity(graph.n_nodes() + 1);
        att_ptr.push(0);
        let mut cursor = 0usize;
        for v in 0..graph.n_nodes() {
            // attention_edges lists (v, v) then (v, each neighbour of v).
            cursor += 1 + graph.degree(v);
            att_ptr.push(cursor);
        }
        debug_assert_eq!(cursor, att_edges.len());
        let features_t = features.transpose();
        Self {
            graph,
            features,
            features_t,
            a_hat,
            mean_agg,
            att_edges,
            att_ptr,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.graph.n_nodes()
    }

    /// Feature dimensionality.
    pub fn feat_dim(&self) -> usize {
        self.features.cols()
    }

    /// Returns a new context with the same features over a perturbed graph.
    pub fn with_graph(&self, graph: Graph) -> Self {
        Self::new(graph, self.features.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_pointers_cover_every_edge() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let x = Matrix::zeros(4, 3);
        let ctx = GraphContext::new(g, x);
        assert_eq!(*ctx.att_ptr.last().unwrap(), ctx.att_edges.len());
        for v in 0..4 {
            let span = &ctx.att_edges[ctx.att_ptr[v]..ctx.att_ptr[v + 1]];
            assert!(
                span.iter().all(|&(dst, _)| dst == v),
                "edges grouped by destination"
            );
            assert!(
                span.iter().any(|&(_, src)| src == v),
                "self loop present for node {v}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one feature row per node")]
    fn rejects_mismatched_feature_rows() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let x = Matrix::zeros(2, 3);
        let _ = GraphContext::new(g, x);
    }

    #[test]
    fn cached_transpose_matches_features() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let ctx = GraphContext::new(g, x.clone());
        assert_eq!(ctx.features_t, x.transpose());
    }

    #[test]
    fn with_graph_keeps_features_and_updates_operators() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let x = Matrix::filled(3, 2, 1.0);
        let ctx = GraphContext::new(g, x);
        let g2 = ctx.graph.with_extra_edges(&[(1, 2)]);
        let ctx2 = ctx.with_graph(g2);
        assert_eq!(ctx2.features.as_slice(), ctx.features.as_slice());
        assert!(ctx2.graph.has_edge(1, 2));
        assert_ne!(ctx2.att_edges.len(), ctx.att_edges.len());
    }
}
