//! Two-layer GraphSAGE with mean aggregation (Hamilton et al., NeurIPS 2017).
//!
//! Layer: `h'_i = ReLU(W_self h_i + W_neigh · mean_{j∈N(i)} h_j)`.
//! The aggregation operator is either the full neighbour mean or, when
//! neighbour sampling is enabled (`sample_size`), a mean over a random subset
//! of at most `sample_size` neighbours — re-drawn by [`GnnModel::resample`].
//! Sampling matters for the paper's Table IV discussion: it dilutes the
//! effectiveness of edge-DP noise.

use crate::workspace::ensure_len;
use crate::{GnnModel, GraphContext, TrainWorkspace};
use ppfr_graph::SparseMatrix;
use ppfr_linalg::{relu, relu_grad, relu_grad_into, relu_into, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Two-layer GraphSAGE with mean aggregation.
#[derive(Debug, Clone)]
pub struct GraphSage {
    w1_self: Matrix,
    w1_neigh: Matrix,
    w2_self: Matrix,
    w2_neigh: Matrix,
    in_dim: usize,
    hidden: usize,
    n_classes: usize,
    /// Maximum number of neighbours aggregated per node; `None` = all.
    pub sample_size: Option<usize>,
    /// Sampled aggregation operator (present only when sampling is active).
    sampled_agg: Option<SparseMatrix>,
}

impl GraphSage {
    /// Glorot-initialised GraphSAGE (full-neighbourhood aggregation).
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        hidden: usize,
        n_classes: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            w1_self: Matrix::glorot(in_dim, hidden, rng),
            w1_neigh: Matrix::glorot(in_dim, hidden, rng),
            w2_self: Matrix::glorot(hidden, n_classes, rng),
            w2_neigh: Matrix::glorot(hidden, n_classes, rng),
            in_dim,
            hidden,
            n_classes,
            sample_size: None,
            sampled_agg: None,
        }
    }

    /// Enables neighbour sampling with the given fan-out.
    pub fn with_sampling(mut self, sample_size: usize) -> Self {
        self.sample_size = Some(sample_size);
        self
    }

    fn aggregator<'a>(&'a self, ctx: &'a GraphContext) -> &'a SparseMatrix {
        self.sampled_agg.as_ref().unwrap_or(&ctx.mean_agg)
    }

    fn forward_cached(&self, ctx: &GraphContext) -> (Matrix, Matrix, Matrix) {
        let agg = self.aggregator(ctx);
        let x = &ctx.features;
        let mx = agg.matmul_dense(x);
        let pre1 = x.matmul(&self.w1_self).add(&mx.matmul(&self.w1_neigh));
        let h1 = relu(&pre1);
        let mh1 = agg.matmul_dense(&h1);
        let logits = h1.matmul(&self.w2_self).add(&mh1.matmul(&self.w2_neigh));
        (pre1, h1, logits)
    }
}

impl GnnModel for GraphSage {
    fn forward(&self, ctx: &GraphContext) -> Matrix {
        self.forward_cached(ctx).2
    }

    fn backward(&self, ctx: &GraphContext, d_logits: &Matrix) -> Vec<f64> {
        let agg = self.aggregator(ctx);
        let x = &ctx.features;
        let (pre1, h1, _) = self.forward_cached(ctx);
        let mx = agg.matmul_dense(x);
        let mh1 = agg.matmul_dense(&h1);

        // logits = h1 W2_self + (M h1) W2_neigh
        let d_w2_self = h1.transpose().matmul(d_logits);
        let d_w2_neigh = mh1.transpose().matmul(d_logits);
        let d_h1_direct = d_logits.matmul(&self.w2_self.transpose());
        let d_mh1 = d_logits.matmul(&self.w2_neigh.transpose());
        let d_h1_agg = agg.transpose_matmul_dense(&d_mh1);
        let d_h1 = d_h1_direct.add(&d_h1_agg);
        let d_pre1 = relu_grad(&pre1, &d_h1);

        // pre1 = x W1_self + (M x) W1_neigh
        let d_w1_self = ctx.features_t.matmul(&d_pre1);
        let d_w1_neigh = mx.transpose().matmul(&d_pre1);

        let mut grads = d_w1_self.into_vec();
        grads.extend(d_w1_neigh.into_vec());
        grads.extend(d_w2_self.into_vec());
        grads.extend(d_w2_neigh.into_vec());
        grads
    }

    fn forward_ws(&self, ctx: &GraphContext, ws: &mut TrainWorkspace) {
        let agg = self.aggregator(ctx);
        let b = &mut ws.sage;
        agg.matmul_dense_into(&ctx.features, &mut b.mx);
        ctx.features.matmul_into(&self.w1_self, &mut b.t_self);
        b.mx.matmul_into(&self.w1_neigh, &mut b.t_neigh);
        b.t_self.zip_into(&b.t_neigh, &mut b.pre1, |a, bb| a + bb);
        relu_into(&b.pre1, &mut b.h1);
        agg.matmul_dense_into(&b.h1, &mut b.mh1);
        b.h1.matmul_into(&self.w2_self, &mut b.o_self);
        b.mh1.matmul_into(&self.w2_neigh, &mut b.o_neigh);
        b.o_self
            .zip_into(&b.o_neigh, &mut ws.logits, |a, bb| a + bb);
    }

    fn backward_ws(&self, ctx: &GraphContext, ws: &mut TrainWorkspace) {
        // Reuses mx/pre1/h1/mh1 cached by forward_ws; transpose-free kernels
        // keep the accumulation order of the allocating backward.
        let agg = self.aggregator(ctx);
        let b = &mut ws.sage;
        b.h1.matmul_at_b_into(&ws.d_logits, &mut b.d_w2_self);
        b.mh1.matmul_at_b_into(&ws.d_logits, &mut b.d_w2_neigh);
        ws.d_logits.matmul_a_bt_into(&self.w2_self, &mut b.d_h1_dir);
        ws.d_logits.matmul_a_bt_into(&self.w2_neigh, &mut b.d_mh1);
        agg.transpose_matmul_dense_into(&b.d_mh1, &mut b.d_h1_agg);
        b.d_h1_dir
            .zip_into(&b.d_h1_agg, &mut b.d_h1, |a, bb| a + bb);
        relu_grad_into(&b.pre1, &b.d_h1, &mut b.d_pre1);
        ctx.features.matmul_at_b_into(&b.d_pre1, &mut b.d_w1_self);
        b.mx.matmul_at_b_into(&b.d_pre1, &mut b.d_w1_neigh);

        let l1 = b.d_w1_self.as_slice().len();
        let l2 = b.d_w2_self.as_slice().len();
        ensure_len(&mut ws.grads, 2 * l1 + 2 * l2);
        ws.grads[..l1].copy_from_slice(b.d_w1_self.as_slice());
        ws.grads[l1..2 * l1].copy_from_slice(b.d_w1_neigh.as_slice());
        ws.grads[2 * l1..2 * l1 + l2].copy_from_slice(b.d_w2_self.as_slice());
        ws.grads[2 * l1 + l2..].copy_from_slice(b.d_w2_neigh.as_slice());
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.w1_self.as_slice().to_vec();
        p.extend_from_slice(self.w1_neigh.as_slice());
        p.extend_from_slice(self.w2_self.as_slice());
        p.extend_from_slice(self.w2_neigh.as_slice());
        p
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.n_params(), "parameter length mismatch");
        let l1 = self.in_dim * self.hidden;
        let l2 = self.hidden * self.n_classes;
        let mut cursor = 0usize;
        for w in [&mut self.w1_self, &mut self.w1_neigh] {
            w.as_mut_slice()
                .copy_from_slice(&params[cursor..cursor + l1]);
            cursor += l1;
        }
        for w in [&mut self.w2_self, &mut self.w2_neigh] {
            w.as_mut_slice()
                .copy_from_slice(&params[cursor..cursor + l2]);
            cursor += l2;
        }
    }

    fn n_params(&self) -> usize {
        2 * self.in_dim * self.hidden + 2 * self.hidden * self.n_classes
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn resample(&mut self, ctx: &GraphContext, seed: u64) {
        let Some(k) = self.sample_size else {
            self.sampled_agg = None;
            return;
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let n = ctx.n_nodes();
        let mut triplets = Vec::new();
        for v in 0..n {
            let neighbors = ctx.graph.neighbors(v);
            if neighbors.is_empty() {
                continue;
            }
            let mut pool: Vec<usize> = neighbors.to_vec();
            pool.shuffle(&mut rng);
            let take = pool.len().min(k);
            let inv = 1.0 / take as f64;
            for &u in pool.iter().take(take) {
                triplets.push((v, u, inv));
            }
        }
        self.sampled_agg = Some(SparseMatrix::from_triplets(n, n, &triplets));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_graph::Graph;
    use ppfr_nn::{central_difference, max_relative_error};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_ctx() -> GraphContext {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 3)]);
        let mut rng = StdRng::seed_from_u64(23);
        let x = Matrix::gaussian(6, 4, 0.0, 1.0, &mut rng);
        GraphContext::new(g, x)
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let sage = GraphSage::new(4, 5, 3, &mut rng);
        let z = sage.forward(&ctx);
        assert_eq!(z.shape(), (6, 3));
        assert!(!z.has_non_finite());
    }

    #[test]
    fn backward_matches_finite_difference() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let sage = GraphSage::new(4, 3, 2, &mut rng);
        let coeff = Matrix::gaussian(6, 2, 0.0, 1.0, &mut rng);
        let analytic = sage.backward(&ctx, &coeff);
        let f = |p: &[f64]| {
            let mut m = sage.clone();
            m.set_params(p);
            m.forward(&ctx).hadamard(&coeff).sum()
        };
        let numeric = central_difference(f, &sage.params(), 1e-5);
        let err = max_relative_error(&analytic, &numeric, 1e-6);
        assert!(
            err < 1e-4,
            "GraphSAGE gradient check failed: max relative error {err}"
        );
    }

    #[test]
    fn sampling_limits_fanout_and_is_resampled() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sage = GraphSage::new(4, 3, 2, &mut rng).with_sampling(1);
        sage.resample(&ctx, 100);
        let agg = sage
            .sampled_agg
            .as_ref()
            .expect("sampled operator must exist");
        for v in 0..ctx.n_nodes() {
            let nnz = agg.row(v).count();
            assert!(
                nnz <= 1,
                "node {v} aggregates {nnz} neighbours with fan-out 1"
            );
        }
        // A different seed may select different neighbours.
        let before = agg.clone();
        sage.resample(&ctx, 101);
        let after = sage.sampled_agg.as_ref().unwrap();
        // With fan-out 1 on nodes of degree >= 2 this is almost surely different;
        // if identical the test is still meaningful via the fan-out assertion above.
        let _ = before != *after;
    }

    #[test]
    fn full_aggregation_used_when_sampling_disabled() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(4);
        let mut sage = GraphSage::new(4, 3, 2, &mut rng);
        sage.resample(&ctx, 7);
        assert!(sage.sampled_agg.is_none());
        let z1 = sage.forward(&ctx);
        sage.resample(&ctx, 8);
        let z2 = sage.forward(&ctx);
        assert_eq!(
            z1.as_slice(),
            z2.as_slice(),
            "deterministic without sampling"
        );
    }
}
