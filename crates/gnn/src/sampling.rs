//! Neighbour-sampled mini-batch operators for large-graph training.
//!
//! GraphSAGE already re-draws a per-epoch sampled aggregation operator
//! ([`GnnModel::resample`]).  This module generalises that idea to the whole
//! [`GraphContext`]: a [`SampledContext`] keeps the full graph plus one
//! *sampled* context whose graph and propagation operators (`Â`, mean
//! aggregation, attention edges) are rebuilt from a per-`(seed, epoch)`
//! neighbour-sampled edge subset, so **all three** models — GCN, GAT and
//! GraphSAGE — train through the existing
//! [`GnnModel::forward_ws`]/[`GnnModel::backward_ws`] workspace path on
//! `O(n · fanout)` operators instead of `O(|E|)`.
//!
//! The sampled edge subset is symmetrised (an edge survives when either
//! endpoint draws it), which keeps `Â` symmetric — GCN's hand-derived
//! backward pass relies on that.  With `fanout ≥ max degree` the sampled
//! graph *is* the full graph, so [`train_sampled`] degenerates to a
//! bit-identical replay of [`train_with_workspace`](crate::train_with_workspace)
//! — the pinning tests lean on this.

use crate::{FairnessReg, GnnModel, GraphContext, TrainConfig, TrainReport, TrainWorkspace};
use ppfr_graph::Graph;
use ppfr_linalg::Matrix;
use ppfr_nn::{accuracy, weighted_cross_entropy_into, Adam, Optimizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Draws up to `fanout` neighbours per node (the GraphSAGE shuffle idiom,
/// deterministic in `seed`) and returns the symmetrised union as a graph over
/// the same node set.
pub fn sample_subgraph(base: &Graph, fanout: usize, seed: u64) -> Graph {
    assert!(fanout > 0, "fanout must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for v in 0..base.n_nodes() {
        let neighbors = base.neighbors(v);
        if neighbors.is_empty() {
            continue;
        }
        let mut pool: Vec<usize> = neighbors.to_vec();
        pool.shuffle(&mut rng);
        let take = pool.len().min(fanout);
        for &u in pool.iter().take(take) {
            edges.push((v, u));
        }
    }
    // `from_edges` dedups and symmetrises: (v,u) and (u,v) collapse into one
    // undirected edge, so an edge survives when either endpoint drew it.
    Graph::from_edges(base.n_nodes(), &edges)
}

/// A full graph plus a per-epoch neighbour-sampled [`GraphContext`] that any
/// [`GnnModel`] can train on.
///
/// Features (and the cached transpose) are built once and never touched by
/// resampling; only the graph and its operators are swapped in place.
#[derive(Debug, Clone)]
pub struct SampledContext {
    base: Graph,
    fanout: usize,
    ctx: GraphContext,
}

impl SampledContext {
    /// Builds the context over the full graph; call
    /// [`SampledContext::resample`] to switch to a sampled epoch operator.
    pub fn new(graph: Graph, features: Matrix, fanout: usize) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        let ctx = GraphContext::new(graph.clone(), features);
        Self {
            base: graph,
            fanout,
            ctx,
        }
    }

    /// The current (full or sampled) context.
    pub fn ctx(&self) -> &GraphContext {
        &self.ctx
    }

    /// The full graph the samples are drawn from.
    pub fn base_graph(&self) -> &Graph {
        &self.base
    }

    /// Per-node neighbour fan-out of the sampled operators.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Rebuilds the context's graph and operators from a fresh
    /// `(seed)`-keyed neighbour sample.  Deterministic: the same seed always
    /// installs the same operators.
    pub fn resample(&mut self, seed: u64) {
        let sampled = sample_subgraph(&self.base, self.fanout, seed);
        self.install(sampled);
    }

    /// Restores the full-graph operators (used for the final evaluation after
    /// sampled training).
    pub fn restore_full(&mut self) {
        self.install(self.base.clone());
    }

    /// Swaps `graph` and its derived operators into the held context without
    /// touching the feature matrices.
    fn install(&mut self, graph: Graph) {
        self.ctx.a_hat = graph.normalized_adjacency();
        self.ctx.mean_agg = graph.mean_aggregation();
        self.ctx.att_edges = graph.attention_edges();
        self.ctx.att_ptr.clear();
        self.ctx.att_ptr.push(0);
        let mut cursor = 0usize;
        for v in 0..graph.n_nodes() {
            cursor += 1 + graph.degree(v);
            self.ctx.att_ptr.push(cursor);
        }
        debug_assert_eq!(cursor, self.ctx.att_edges.len());
        self.ctx.graph = graph;
    }
}

/// [`train_with_workspace`](crate::train_with_workspace) over per-epoch
/// neighbour-sampled operators: every epoch re-draws the sampled context
/// (deterministic in `(cfg.seed, epoch)`), trains one step through the
/// workspace path, and the final report is evaluated on the **full** graph.
///
/// With `fanout ≥ max degree` this is bit-identical to the full-batch loop
/// for every model (the sampled graph equals the base graph each epoch).
#[allow(clippy::too_many_arguments)]
pub fn train_sampled(
    model: &mut dyn GnnModel,
    sctx: &mut SampledContext,
    labels: &[usize],
    train_ids: &[usize],
    weights: &[f64],
    fairness: Option<&FairnessReg>,
    cfg: &TrainConfig,
    ws: &mut TrainWorkspace,
) -> TrainReport {
    assert_eq!(
        train_ids.len(),
        weights.len(),
        "one weight per training node"
    );
    let _span = ppfr_telemetry::span!("train_sampled");
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut params = model.params();
    let mut loss_history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        // Cooperative deadline, mirroring `train`: stop early under an
        // exhausted ambient budget and report on what was learned so far.
        if !ppfr_resilience::checkpoint(1) {
            break;
        }
        let _epoch_span = ppfr_telemetry::span!("train_sampled_epoch");
        let epoch_seed = cfg.seed.wrapping_add(epoch as u64);
        sctx.resample(epoch_seed);
        model.resample(&sctx.ctx, epoch_seed);
        model.forward_ws(&sctx.ctx, ws);
        let loss = weighted_cross_entropy_into(
            &ws.logits,
            labels,
            train_ids,
            weights,
            &mut ws.probs,
            &mut ws.d_logits,
        );
        if let Some(reg) = fairness {
            reg.grad_wrt_probs_into(&ws.probs, &mut ws.d_probs);
            ppfr_linalg::row_softmax_backward_into(&ws.probs, &ws.d_probs, &mut ws.d_reg);
            ws.d_logits.add_inplace(&ws.d_reg);
        }
        model.backward_ws(&sctx.ctx, ws);
        opt.step(&mut params, &ws.grads);
        model.set_params(&params);
        loss_history.push(loss);
    }
    // Final report on the full graph, mirroring the full-batch loop's
    // warm-workspace evaluation.
    sctx.restore_full();
    model.forward_ws(&sctx.ctx, ws);
    let train_accuracy = accuracy(&ws.logits, labels, train_ids);
    let final_bias = fairness.map(|reg| {
        ppfr_linalg::row_softmax_into(&ws.logits, &mut ws.probs);
        reg.bias(&ws.probs)
    });
    TrainReport {
        loss_history,
        train_accuracy,
        final_bias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train_with_workspace, AnyModel, ModelKind};
    use ppfr_datasets::{generate, two_block_synthetic};

    fn setup() -> (Graph, Matrix, Vec<usize>, Vec<usize>) {
        let ds = generate(&two_block_synthetic(), 7);
        (
            ds.graph.clone(),
            ds.features.clone(),
            ds.labels.clone(),
            ds.splits.train.clone(),
        )
    }

    fn max_degree(g: &Graph) -> usize {
        (0..g.n_nodes()).map(|v| g.degree(v)).max().unwrap_or(0)
    }

    #[test]
    fn sampled_subgraph_is_a_symmetric_edge_subset() {
        let (g, _, _, _) = setup();
        let sampled = sample_subgraph(&g, 2, 42);
        assert_eq!(sampled.n_nodes(), g.n_nodes());
        assert!(sampled.n_edges() <= g.n_edges());
        assert!(sampled.n_edges() <= 2 * g.n_nodes());
        for (u, v) in sampled.edges() {
            assert!(g.has_edge(u, v), "sampled edge ({u},{v}) not in base");
            assert!(sampled.has_edge(v, u), "sampled graph must stay symmetric");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let (g, _, _, _) = setup();
        let a = sample_subgraph(&g, 3, 9);
        let b = sample_subgraph(&g, 3, 9);
        let c = sample_subgraph(&g, 3, 10);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        assert_ne!(
            a.edges().collect::<Vec<_>>(),
            c.edges().collect::<Vec<_>>(),
            "different seeds should draw different subsets"
        );
    }

    #[test]
    fn full_fanout_training_is_bit_identical_to_full_batch_for_every_model() {
        let (g, x, labels, train_ids) = setup();
        let fanout = max_degree(&g);
        let weights = vec![1.0; train_ids.len()];
        let cfg = TrainConfig {
            epochs: 25,
            lr: 0.02,
            weight_decay: 5e-4,
            seed: 3,
        };
        for kind in ModelKind::ALL {
            let full_ctx = GraphContext::new(g.clone(), x.clone());
            let mut full_model = AnyModel::new(kind, x.cols(), 8, 2, 1);
            let mut sampled_model = full_model.clone();
            let mut ws_full = TrainWorkspace::new();
            let mut ws_sampled = TrainWorkspace::new();
            let full = train_with_workspace(
                &mut full_model,
                &full_ctx,
                &labels,
                &train_ids,
                &weights,
                None,
                &cfg,
                &mut ws_full,
            );
            let mut sctx = SampledContext::new(g.clone(), x.clone(), fanout);
            let sampled = train_sampled(
                &mut sampled_model,
                &mut sctx,
                &labels,
                &train_ids,
                &weights,
                None,
                &cfg,
                &mut ws_sampled,
            );
            assert_eq!(
                full_model.params(),
                sampled_model.params(),
                "{}: params diverge at full fanout",
                kind.name()
            );
            assert_eq!(
                full.loss_history,
                sampled.loss_history,
                "{}: loss history diverges at full fanout",
                kind.name()
            );
            assert_eq!(
                full.train_accuracy,
                sampled.train_accuracy,
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn sampled_training_is_deterministic_and_learns() {
        let (g, x, labels, train_ids) = setup();
        let weights = vec![1.0; train_ids.len()];
        let cfg = TrainConfig {
            epochs: 80,
            lr: 0.02,
            weight_decay: 5e-4,
            seed: 5,
        };
        let run = || {
            let mut model = AnyModel::new(ModelKind::Gcn, x.cols(), 8, 2, 1);
            let mut sctx = SampledContext::new(g.clone(), x.clone(), 2);
            let mut ws = TrainWorkspace::new();
            let report = train_sampled(
                &mut model, &mut sctx, &labels, &train_ids, &weights, None, &cfg, &mut ws,
            );
            (model.params(), report)
        };
        let (params_a, report_a) = run();
        let (params_b, report_b) = run();
        assert_eq!(params_a, params_b, "sampled training must be deterministic");
        assert_eq!(report_a.loss_history, report_b.loss_history);
        assert!(
            report_a.train_accuracy > 0.8,
            "sampled training should still fit the train set, got {}",
            report_a.train_accuracy
        );
    }

    #[test]
    fn sampled_training_is_thread_count_invariant() {
        let (g, x, labels, train_ids) = setup();
        let weights = vec![1.0; train_ids.len()];
        let cfg = TrainConfig {
            epochs: 20,
            lr: 0.02,
            weight_decay: 5e-4,
            seed: 11,
        };
        let run = || {
            let mut model = AnyModel::new(ModelKind::Gat, x.cols(), 8, 2, 1);
            let mut sctx = SampledContext::new(g.clone(), x.clone(), 3);
            let mut ws = TrainWorkspace::new();
            train_sampled(
                &mut model, &mut sctx, &labels, &train_ids, &weights, None, &cfg, &mut ws,
            );
            model.params()
        };
        let p1 = ppfr_linalg::parallel::with_forced_threads(1, run);
        let p4 = ppfr_linalg::parallel::with_forced_threads(4, run);
        assert_eq!(p1, p4, "sampled training differs across thread counts");
    }

    #[test]
    fn restore_full_round_trips_the_operators() {
        let (g, x, _, _) = setup();
        let full_ctx = GraphContext::new(g.clone(), x.clone());
        let mut sctx = SampledContext::new(g, x, 2);
        sctx.resample(77);
        assert!(sctx.ctx().graph.n_edges() < full_ctx.graph.n_edges());
        sctx.restore_full();
        assert_eq!(sctx.ctx().graph.n_edges(), full_ctx.graph.n_edges());
        assert_eq!(sctx.ctx().a_hat, full_ctx.a_hat);
        assert_eq!(sctx.ctx().att_edges, full_ctx.att_edges);
        assert_eq!(sctx.ctx().att_ptr, full_ctx.att_ptr);
    }
}
