//! Weighted, optionally fairness-regularised GNN training.
//!
//! This single loop covers every training mode in the paper:
//! * vanilla training — all-one weights, no regulariser (Eq. 6);
//! * the Reg baseline — vanilla weights plus the InFoRM bias term in the loss;
//! * PPFR / DPFR fine-tuning — `(1 + w_v)` weights from the QCLP on a
//!   (possibly perturbed) graph (Eq. 7).

use crate::{GnnModel, GraphContext, TrainWorkspace};
use ppfr_graph::SparseMatrix;
use ppfr_linalg::{row_softmax_backward, row_softmax_backward_into, Matrix};
use ppfr_nn::{accuracy, weighted_cross_entropy, weighted_cross_entropy_into, Adam, Optimizer};

/// Individual-fairness regulariser configuration: the similarity Laplacian
/// `L_S` and the weight λ of `Tr(Pᵀ L_S P)` in the loss.
#[derive(Debug, Clone)]
pub struct FairnessReg {
    /// Laplacian of the Jaccard similarity matrix.
    pub laplacian: SparseMatrix,
    /// Regularisation strength λ.
    pub lambda: f64,
}

impl FairnessReg {
    /// Bias value `Tr(Pᵀ L_S P) / n` of the given probabilities.
    pub fn bias(&self, probs: &Matrix) -> f64 {
        let lp = self.laplacian.matmul_dense(probs);
        let mut tr = 0.0;
        for r in 0..probs.rows() {
            tr += probs.row_dot(r, &lp, r);
        }
        tr / probs.rows() as f64
    }

    /// Gradient of `λ · Tr(Pᵀ L_S P) / n` w.r.t. the probabilities.
    pub fn grad_wrt_probs(&self, probs: &Matrix) -> Matrix {
        // L_S is symmetric, so d/dP Tr(Pᵀ L P) = 2 L P.
        self.laplacian
            .matmul_dense(probs)
            .scale(2.0 * self.lambda / probs.rows() as f64)
    }

    /// [`FairnessReg::grad_wrt_probs`] writing into a caller-owned buffer;
    /// bit-identical to the allocating version.
    pub fn grad_wrt_probs_into(&self, probs: &Matrix, out: &mut Matrix) {
        self.laplacian.matmul_dense_into(probs, out);
        let s = 2.0 * self.lambda / probs.rows() as f64;
        out.map_inplace(|v| v * s);
    }
}

/// Hyper-parameters of one training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of epochs (full-batch gradient steps).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Seed for any stochastic structure (GraphSAGE sampling).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            lr: 0.01,
            weight_decay: 5e-4,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// Same configuration with a different number of epochs (used to derive
    /// the fine-tuning budget `e_re = s · e_va`).
    pub fn with_epochs(&self, epochs: usize) -> Self {
        Self {
            epochs,
            ..self.clone()
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Cross-entropy component of the loss per epoch.
    pub loss_history: Vec<f64>,
    /// Final training accuracy.
    pub train_accuracy: f64,
    /// Final bias value (only when a fairness regulariser was supplied).
    pub final_bias: Option<f64>,
}

/// Trains `model` in place and returns a [`TrainReport`].
///
/// * `train_ids` — the labelled nodes `V_l`;
/// * `weights` — the per-node loss weights (all ones for vanilla training,
///   `1 + w_v` for PPFR fine-tuning);
/// * `fairness` — optional InFoRM regulariser (the Reg baseline).
///
/// This is the workspace fast path: every epoch runs through a
/// [`TrainWorkspace`] of preallocated buffers (zero heap allocations per
/// epoch after warm-up, unless neighbour resampling is active) and the
/// backward pass reuses the cached forward activations.  The result is
/// **bit-identical** to the allocating reference loop [`train_legacy`],
/// pinned by `crates/gnn/tests/workspace_equivalence.rs`.
pub fn train(
    model: &mut dyn GnnModel,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    weights: &[f64],
    fairness: Option<&FairnessReg>,
    cfg: &TrainConfig,
) -> TrainReport {
    let mut ws = TrainWorkspace::new();
    train_with_workspace(
        model, ctx, labels, train_ids, weights, fairness, cfg, &mut ws,
    )
}

/// [`train`] reusing a caller-owned [`TrainWorkspace`], so repeated training
/// runs over same-shaped problems (multi-seed scenario matrices, fine-tuning
/// sweeps, HVP gradient evaluations) skip even the warm-up allocations.
#[allow(clippy::too_many_arguments)]
pub fn train_with_workspace(
    model: &mut dyn GnnModel,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    weights: &[f64],
    fairness: Option<&FairnessReg>,
    cfg: &TrainConfig,
    ws: &mut TrainWorkspace,
) -> TrainReport {
    assert_eq!(
        train_ids.len(),
        weights.len(),
        "one weight per training node"
    );
    let _span = ppfr_telemetry::span!("train");
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut params = model.params();
    let mut loss_history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        // Cooperative deadline: under an exhausted ambient budget the model
        // keeps whatever it has learned so far instead of panicking mid-run.
        if !ppfr_resilience::checkpoint(1) {
            break;
        }
        let _epoch_span = ppfr_telemetry::span!("train_epoch");
        model.resample(ctx, cfg.seed.wrapping_add(epoch as u64));
        model.forward_ws(ctx, ws);
        let loss = weighted_cross_entropy_into(
            &ws.logits,
            labels,
            train_ids,
            weights,
            &mut ws.probs,
            &mut ws.d_logits,
        );
        if let Some(reg) = fairness {
            reg.grad_wrt_probs_into(&ws.probs, &mut ws.d_probs);
            row_softmax_backward_into(&ws.probs, &ws.d_probs, &mut ws.d_reg);
            ws.d_logits.add_inplace(&ws.d_reg);
        }
        model.backward_ws(ctx, ws);
        opt.step(&mut params, &ws.grads);
        model.set_params(&params);
        loss_history.push(loss);
    }
    // Final report through the warm workspace too (bit-identical to the
    // allocating forward/softmax, per the pinned equivalence tests).
    model.forward_ws(ctx, ws);
    let train_accuracy = accuracy(&ws.logits, labels, train_ids);
    let final_bias = fairness.map(|reg| {
        ppfr_linalg::row_softmax_into(&ws.logits, &mut ws.probs);
        reg.bias(&ws.probs)
    });
    TrainReport {
        loss_history,
        train_accuracy,
        final_bias,
    }
}

/// The original allocating training loop, kept as the reference oracle for
/// the workspace fast path: every intermediate is a fresh matrix and the
/// backward pass recomputes the forward internally.  [`train`] must produce
/// bit-identical parameters and loss history.
pub fn train_legacy(
    model: &mut dyn GnnModel,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    weights: &[f64],
    fairness: Option<&FairnessReg>,
    cfg: &TrainConfig,
) -> TrainReport {
    assert_eq!(
        train_ids.len(),
        weights.len(),
        "one weight per training node"
    );
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut params = model.params();
    let mut loss_history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        // Same budget checkpoint as the workspace path, so the legacy oracle
        // stays bit-identical to `train` even under an exhausted budget.
        if !ppfr_resilience::checkpoint(1) {
            break;
        }
        model.resample(ctx, cfg.seed.wrapping_add(epoch as u64));
        let logits = model.forward(ctx);
        let ce = weighted_cross_entropy(&logits, labels, train_ids, weights);
        let mut d_logits = ce.d_logits;
        if let Some(reg) = fairness {
            let d_probs = reg.grad_wrt_probs(&ce.probs);
            let d_from_reg = row_softmax_backward(&ce.probs, &d_probs);
            d_logits = d_logits.add(&d_from_reg);
        }
        let grads = model.backward(ctx, &d_logits);
        opt.step(&mut params, &grads);
        model.set_params(&params);
        loss_history.push(ce.loss);
    }
    let logits = model.forward(ctx);
    let train_accuracy = accuracy(&logits, labels, train_ids);
    let final_bias = fairness.map(|reg| {
        let probs = ppfr_linalg::row_softmax(&logits);
        reg.bias(&probs)
    });
    TrainReport {
        loss_history,
        train_accuracy,
        final_bias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnyModel, ModelKind};
    use ppfr_datasets::{generate, two_block_synthetic};
    use ppfr_graph::{jaccard_similarity, similarity_laplacian};
    use ppfr_nn::accuracy;

    fn setup() -> (GraphContext, Vec<usize>, Vec<usize>, Vec<usize>) {
        let ds = generate(&two_block_synthetic(), 7);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        (
            ctx,
            ds.labels.clone(),
            ds.splits.train.clone(),
            ds.splits.test.clone(),
        )
    }

    #[test]
    fn training_reduces_loss_and_fits_train_set() {
        let (ctx, labels, train_ids, test_ids) = setup();
        for kind in ModelKind::ALL {
            let mut model = AnyModel::new(kind, ctx.feat_dim(), 8, 2, 1);
            let weights = vec![1.0; train_ids.len()];
            let cfg = TrainConfig {
                epochs: 120,
                lr: 0.02,
                weight_decay: 5e-4,
                seed: 3,
            };
            let report = train(&mut model, &ctx, &labels, &train_ids, &weights, None, &cfg);
            let first = report.loss_history.first().copied().unwrap();
            let last = report.loss_history.last().copied().unwrap();
            assert!(
                last < first * 0.7,
                "{}: loss did not drop ({first} -> {last})",
                kind.name()
            );
            assert!(
                report.train_accuracy > 0.8,
                "{}: train accuracy {}",
                kind.name(),
                report.train_accuracy
            );
            let logits = model.forward(&ctx);
            let test_acc = accuracy(&logits, &labels, &test_ids);
            assert!(test_acc > 0.7, "{}: test accuracy {test_acc}", kind.name());
        }
    }

    #[test]
    fn fairness_regularisation_reduces_bias() {
        let (ctx, labels, train_ids, _) = setup();
        let s = jaccard_similarity(&ctx.graph);
        let l = similarity_laplacian(&s);
        let weights = vec![1.0; train_ids.len()];
        let cfg = TrainConfig {
            epochs: 150,
            lr: 0.02,
            weight_decay: 5e-4,
            seed: 5,
        };

        let mut vanilla = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 8, 2, 11);
        train(
            &mut vanilla,
            &ctx,
            &labels,
            &train_ids,
            &weights,
            None,
            &cfg,
        );
        let reg_cfg = FairnessReg {
            laplacian: l.clone(),
            lambda: 2.0,
        };
        let vanilla_probs = ppfr_linalg::row_softmax(&vanilla.forward(&ctx));
        let vanilla_bias = reg_cfg.bias(&vanilla_probs);

        let mut fair = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 8, 2, 11);
        let report = train(
            &mut fair,
            &ctx,
            &labels,
            &train_ids,
            &weights,
            Some(&reg_cfg),
            &cfg,
        );
        let fair_bias = report.final_bias.expect("bias reported when regularised");

        assert!(
            fair_bias < vanilla_bias,
            "fairness regularisation must reduce bias: {fair_bias} vs vanilla {vanilla_bias}"
        );
    }

    #[test]
    fn reweighting_changes_the_learned_model() {
        let (ctx, labels, train_ids, _) = setup();
        let cfg = TrainConfig {
            epochs: 60,
            lr: 0.02,
            weight_decay: 5e-4,
            seed: 2,
        };
        let uniform = vec![1.0; train_ids.len()];
        let mut skewed = vec![0.2; train_ids.len()];
        for w in skewed.iter_mut().take(train_ids.len() / 2) {
            *w = 2.0;
        }
        let mut a = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 8, 2, 9);
        let mut b = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 8, 2, 9);
        train(&mut a, &ctx, &labels, &train_ids, &uniform, None, &cfg);
        train(&mut b, &ctx, &labels, &train_ids, &skewed, None, &cfg);
        assert_ne!(
            a.params(),
            b.params(),
            "different loss weights must lead to different parameters"
        );
    }

    #[test]
    #[should_panic(expected = "one weight per training node")]
    fn mismatched_weight_length_panics() {
        let (ctx, labels, train_ids, _) = setup();
        let mut model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 4, 2, 0);
        let cfg = TrainConfig::default();
        train(&mut model, &ctx, &labels, &train_ids, &[1.0], None, &cfg);
    }
}
