//! Pins the tentpole guarantee of the training fast path: a full `train()`
//! run through a [`TrainWorkspace`] is **bit-identical** to the allocating
//! reference loop `train_legacy()`, for every architecture, with and without
//! the fairness regulariser, across forced worker-thread counts — and
//! workspace reuse across runs leaks no state.

use ppfr_datasets::{generate, two_block_synthetic};
use ppfr_gnn::{
    train, train_legacy, train_with_workspace, AnyModel, FairnessReg, GnnModel, GraphContext,
    GraphSage, ModelKind, TrainConfig, TrainWorkspace,
};
use ppfr_graph::{jaccard_similarity, similarity_laplacian};
use ppfr_linalg::parallel::with_forced_threads;
use ppfr_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (GraphContext, Vec<usize>, Vec<usize>) {
    let ds = generate(&two_block_synthetic(), 7);
    let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
    (ctx, ds.labels.clone(), ds.splits.train.clone())
}

fn cfg() -> TrainConfig {
    TrainConfig {
        epochs: 25,
        lr: 0.02,
        weight_decay: 5e-4,
        seed: 3,
    }
}

#[test]
fn forward_and_backward_ws_match_allocating_paths_bitwise() {
    let (ctx, _, _) = setup();
    for kind in ModelKind::ALL {
        let model = AnyModel::new(kind, ctx.feat_dim(), 8, 2, 11);
        let mut ws = TrainWorkspace::new();
        for threads in [1, 4] {
            with_forced_threads(threads, || {
                let logits = model.forward(&ctx);
                model.forward_ws(&ctx, &mut ws);
                assert_eq!(
                    ws.logits.as_slice(),
                    logits.as_slice(),
                    "{} forward differs at {threads} threads",
                    kind.name()
                );
                // An arbitrary dense upstream gradient.
                ws.d_logits = Matrix::from_vec(
                    logits.rows(),
                    logits.cols(),
                    (0..logits.rows() * logits.cols())
                        .map(|i| ((i as f64) * 0.37).sin() * 1e-2)
                        .collect(),
                );
                let grads = model.backward(&ctx, &ws.d_logits);
                model.backward_ws(&ctx, &mut ws);
                assert_eq!(
                    ws.grads,
                    grads,
                    "{} backward differs at {threads} threads",
                    kind.name()
                );
            });
        }
    }
}

#[test]
fn full_train_is_bit_identical_to_legacy_across_thread_counts() {
    let (ctx, labels, train_ids) = setup();
    let weights = vec![1.0; train_ids.len()];
    for kind in ModelKind::ALL {
        let reference = with_forced_threads(1, || {
            let mut model = AnyModel::new(kind, ctx.feat_dim(), 8, 2, 5);
            let report = train_legacy(
                &mut model,
                &ctx,
                &labels,
                &train_ids,
                &weights,
                None,
                &cfg(),
            );
            (model.params(), report.loss_history)
        });
        for threads in [1, 4] {
            let fast = with_forced_threads(threads, || {
                let mut model = AnyModel::new(kind, ctx.feat_dim(), 8, 2, 5);
                let report = train(
                    &mut model,
                    &ctx,
                    &labels,
                    &train_ids,
                    &weights,
                    None,
                    &cfg(),
                );
                (model.params(), report.loss_history)
            });
            assert_eq!(
                fast.0,
                reference.0,
                "{} parameters diverge from legacy at {threads} threads",
                kind.name()
            );
            assert_eq!(
                fast.1,
                reference.1,
                "{} loss history diverges from legacy at {threads} threads",
                kind.name()
            );
        }
    }
}

#[test]
fn sampling_enabled_graphsage_train_is_bit_identical_to_legacy() {
    // The production pipeline trains GraphSAGE with neighbour sampling, so
    // the per-epoch resample() path (sampled_agg rebuilt every epoch) must be
    // pinned against the legacy loop too, not just the full-neighbourhood
    // aggregator.
    let (ctx, labels, train_ids) = setup();
    let weights = vec![1.0; train_ids.len()];
    let make = || {
        let mut rng = StdRng::seed_from_u64(17);
        AnyModel::GraphSage(GraphSage::new(ctx.feat_dim(), 8, 2, &mut rng).with_sampling(2))
    };
    let reference = with_forced_threads(1, || {
        let mut model = make();
        let report = train_legacy(
            &mut model,
            &ctx,
            &labels,
            &train_ids,
            &weights,
            None,
            &cfg(),
        );
        (model.params(), report.loss_history)
    });
    for threads in [1, 4] {
        let fast = with_forced_threads(threads, || {
            let mut model = make();
            let report = train(
                &mut model,
                &ctx,
                &labels,
                &train_ids,
                &weights,
                None,
                &cfg(),
            );
            (model.params(), report.loss_history)
        });
        assert_eq!(
            fast.0, reference.0,
            "sampled GraphSAGE parameters diverge from legacy at {threads} threads"
        );
        assert_eq!(
            fast.1, reference.1,
            "loss history diverges at {threads} threads"
        );
    }
}

#[test]
fn fairness_regularised_train_is_bit_identical_to_legacy() {
    let (ctx, labels, train_ids) = setup();
    let weights = vec![1.0; train_ids.len()];
    let s = jaccard_similarity(&ctx.graph);
    let reg = FairnessReg {
        laplacian: similarity_laplacian(&s),
        lambda: 2.0,
    };
    for kind in ModelKind::ALL {
        let mut legacy_model = AnyModel::new(kind, ctx.feat_dim(), 8, 2, 9);
        let legacy = train_legacy(
            &mut legacy_model,
            &ctx,
            &labels,
            &train_ids,
            &weights,
            Some(&reg),
            &cfg(),
        );
        let mut fast_model = AnyModel::new(kind, ctx.feat_dim(), 8, 2, 9);
        let fast = train(
            &mut fast_model,
            &ctx,
            &labels,
            &train_ids,
            &weights,
            Some(&reg),
            &cfg(),
        );
        assert_eq!(
            fast_model.params(),
            legacy_model.params(),
            "{} regularised parameters diverge",
            kind.name()
        );
        assert_eq!(fast.loss_history, legacy.loss_history);
        assert_eq!(
            fast.final_bias.map(f64::to_bits),
            legacy.final_bias.map(f64::to_bits),
            "{} final bias diverges",
            kind.name()
        );
    }
}

#[test]
fn workspace_reuse_across_runs_and_architectures_leaks_no_state() {
    let (ctx, labels, train_ids) = setup();
    let weights = vec![1.0; train_ids.len()];
    let mut ws = TrainWorkspace::new();
    // Same workspace reused across all three architectures and twice per
    // architecture: every run must equal a fresh-workspace run.
    for kind in ModelKind::ALL {
        let mut fresh_model = AnyModel::new(kind, ctx.feat_dim(), 8, 2, 13);
        let fresh = train(
            &mut fresh_model,
            &ctx,
            &labels,
            &train_ids,
            &weights,
            None,
            &cfg(),
        );
        for run in 0..2 {
            let mut model = AnyModel::new(kind, ctx.feat_dim(), 8, 2, 13);
            let report = train_with_workspace(
                &mut model,
                &ctx,
                &labels,
                &train_ids,
                &weights,
                None,
                &cfg(),
                &mut ws,
            );
            assert_eq!(
                model.params(),
                fresh_model.params(),
                "{} run {run} with a warm workspace diverges",
                kind.name()
            );
            assert_eq!(report.loss_history, fresh.loss_history);
        }
    }
}
