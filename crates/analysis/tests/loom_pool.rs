//! Exhaustive model checking of the work-stealing core under `loom_lite`.
//!
//! Every test demands `report.complete == true`: the *entire* schedule
//! space of the scenario was explored, not a sample.  The interleaving
//! counts are also floor-asserted so a regression that silently shrinks the
//! explored space (e.g. a scheduling point getting optimized away) fails
//! loudly.

use ppfr_analysis::loom_scenarios;

#[test]
fn steal_two_threads_all_schedules() {
    let report = loom_scenarios::steal_two_threads();
    assert!(report.complete, "exploration must be exhaustive");
    assert!(
        report.interleavings >= 10,
        "two racing participants cannot have only {} schedules",
        report.interleavings
    );
}

#[test]
fn lifo_owner_order_all_schedules() {
    let report = loom_scenarios::lifo_owner_order();
    assert!(report.complete);
}

#[test]
fn fifo_thief_order_all_schedules() {
    let report = loom_scenarios::fifo_thief_order();
    assert!(report.complete);
}

#[test]
fn panic_propagation_all_schedules() {
    let report = loom_scenarios::panic_propagation();
    assert!(report.complete, "exploration must be exhaustive");
    assert!(report.interleavings >= 10);
}

#[test]
fn three_thread_steal_all_schedules() {
    let report = loom_scenarios::three_thread_steal();
    assert!(report.complete, "exploration must be exhaustive");
    assert!(
        report.interleavings >= 10,
        "two racing thieves cannot have only {} schedules",
        report.interleavings
    );
}
