//! Fixture: an `unsafe` block whose preceding lines carry no safety
//! justification comment.  Trips `undocumented-unsafe` and nothing else.
//! (This header deliberately avoids the magic marker word itself, which
//! would count as documentation for the first block below.)

pub fn first(xs: &[f64]) -> f64 {
    unsafe { *xs.as_ptr() }
}
