//! Fixture: a parallel kernel with neither a `_serial` twin nor a
//! `with_forced_threads` test.  Trips `twin-kernel` and nothing else.

pub fn scale_rows(n: usize) {
    par_rows(n, |i| {
        let doubled = i * 2;
        let _ = doubled;
    });
}
