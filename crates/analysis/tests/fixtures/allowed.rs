//! Fixture: a violation suppressed by the justified escape hatch, plus one
//! that an *unjustified* allow fails to suppress.  Trips `wall-clock`
//! exactly once (the second site).

pub fn budget_guard() -> u128 {
    // lint: allow(wall-clock) — coarse test budget only, never serialized
    let started = std::time::Instant::now();
    started.elapsed().as_millis()
}

pub fn unjustified() -> u128 {
    // lint: allow(wall-clock)
    let started = std::time::Instant::now();
    started.elapsed().as_millis()
}
