//! Fixture: an unblessed float accumulation inside a parallel kernel.  The
//! `_serial` twin satisfies `twin-kernel`, so only `par-float-reduction`
//! trips.

pub fn row_total(n: usize) -> f64 {
    let mut acc = 0.0;
    par_rows(n, |i| {
        acc += i as f64;
    });
    acc
}

pub fn row_total_serial(n: usize) -> f64 {
    (0..n).map(|i| i as f64).product()
}
