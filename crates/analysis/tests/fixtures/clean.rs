//! Fixture: compliant code — parallel kernel with a `_serial` twin and no
//! reduction, ordered containers at the serialization site, documented
//! `unsafe`.  Trips nothing.

use std::collections::BTreeMap;

pub fn block_fill(n: usize) {
    par_rows(n, |i| {
        let _ = i;
    });
}

pub fn block_fill_serial(n: usize) {
    for i in 0..n {
        let _ = i;
    }
}

pub fn to_json(values: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{");
    for (k, v) in values {
        out.push_str(&format!("\"{k}\":{v},"));
    }
    out.push('}');
    out
}

pub fn first(xs: &[f64]) -> f64 {
    // SAFETY: callers guarantee `xs` is non-empty, so the pointer read stays
    // in bounds.
    unsafe { *xs.as_ptr() }
}
