//! Fixture: wall-clock time outside the sanctioned crates.  Trips
//! `wall-clock` twice (`Instant` and `SystemTime` once each) and nothing
//! else.

pub fn elapsed_ms() -> u128 {
    let started = std::time::Instant::now();
    started.elapsed().as_millis()
}

pub fn stamp_secs() -> u64 {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
