//! Fixture: wall-clock time outside `crates/bench`.  Trips `wall-clock`
//! (once: `Instant` appears on one line) and nothing else.

pub fn elapsed_ms() -> u128 {
    let started = std::time::Instant::now();
    started.elapsed().as_millis()
}
