//! Fixture: a hash container in a file that serializes a report.  Trips
//! `nondet-iteration` (once: the ident appears on one line) and nothing else.

use std::collections::HashMap;

pub fn to_json(values: &[(String, f64)]) -> String {
    let mut out = String::from("{");
    for (k, v) in values {
        out.push_str(&format!("\"{k}\":{v},"));
    }
    out.push('}');
    out
}
