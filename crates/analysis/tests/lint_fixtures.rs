//! Each fixture under `tests/fixtures/` trips exactly one rule (or none):
//! the fixtures are fed to [`Workspace::add_file`] under synthetic
//! `crates/fixture/src/` paths so every path-scoped rule applies, and are
//! excluded from real scans by `workspace_rs_files`.

use ppfr_analysis::rules::{Violation, Workspace};
use ppfr_analysis::{to_json, ScanResult};

/// Lints one fixture in isolation under a synthetic crate-src path.
fn lint_fixture(source: &str) -> Vec<Violation> {
    let mut ws = Workspace::new();
    ws.add_file("crates/fixture/src/lib.rs", source);
    ws.run()
}

/// Asserts every finding is `rule` and returns how many there were.
fn assert_only_rule(violations: &[Violation], rule: &str) -> usize {
    for v in violations {
        assert_eq!(
            v.rule, rule,
            "fixture tripped unexpected rule {} at line {}: {}",
            v.rule, v.line, v.message
        );
    }
    assert!(
        !violations.is_empty(),
        "fixture tripped nothing, want {rule}"
    );
    violations.len()
}

#[test]
fn twin_kernel_fixture_trips_exactly_that_rule() {
    let v = lint_fixture(include_str!("fixtures/twin_kernel.rs"));
    assert_eq!(assert_only_rule(&v, "twin-kernel"), 1);
    assert!(v[0].message.contains("scale_rows_serial"));
}

#[test]
fn nondet_iteration_fixture_trips_exactly_that_rule() {
    let v = lint_fixture(include_str!("fixtures/nondet_iteration.rs"));
    assert_eq!(assert_only_rule(&v, "nondet-iteration"), 1);
    assert!(v[0].message.contains("HashMap"));
}

#[test]
fn wall_clock_fixture_trips_exactly_that_rule() {
    let v = lint_fixture(include_str!("fixtures/wall_clock.rs"));
    assert_eq!(assert_only_rule(&v, "wall-clock"), 2);
    assert!(v[0].message.contains("Instant"));
    assert!(v[1].message.contains("SystemTime"));
}

#[test]
fn wall_clock_exempts_the_telemetry_crate() {
    // `crates/telemetry` is the sanctioned home of wall-clock reads: the
    // same source that trips the rule under a normal crate path is clean
    // there (and under `crates/bench/`, the other exemption).
    for path in ["crates/telemetry/src/lib.rs", "crates/bench/src/lib.rs"] {
        let mut ws = Workspace::new();
        ws.add_file(path, include_str!("fixtures/wall_clock.rs"));
        let v = ws.run();
        assert!(v.is_empty(), "{path} must be exempt, got {v:?}");
    }
}

#[test]
fn undocumented_unsafe_fixture_trips_exactly_that_rule() {
    let v = lint_fixture(include_str!("fixtures/undocumented_unsafe.rs"));
    assert_eq!(assert_only_rule(&v, "undocumented-unsafe"), 1);
}

#[test]
fn par_float_reduction_fixture_trips_exactly_that_rule() {
    // The `_serial` twin in the fixture satisfies twin-kernel, isolating the
    // reduction finding.
    let v = lint_fixture(include_str!("fixtures/par_float_reduction.rs"));
    assert_eq!(assert_only_rule(&v, "par-float-reduction"), 1);
    assert!(v[0].message.contains("row_total"));
}

#[test]
fn clean_fixture_trips_nothing() {
    let v = lint_fixture(include_str!("fixtures/clean.rs"));
    assert!(v.is_empty(), "clean fixture flagged: {v:?}");
}

#[test]
fn justified_allow_suppresses_but_unjustified_does_not() {
    let v = lint_fixture(include_str!("fixtures/allowed.rs"));
    assert_eq!(assert_only_rule(&v, "wall-clock"), 1);
    let unjustified_line = include_str!("fixtures/allowed.rs")
        .lines()
        .position(|l| l.contains("fn unjustified"))
        .expect("fixture defines fn unjustified")
        + 1;
    assert!(
        v[0].line > unjustified_line,
        "the surviving finding must be the unjustified-allow site \
         (line {} not after fn at line {unjustified_line})",
        v[0].line
    );
}

#[test]
fn json_output_is_stable_and_escaped() {
    let violations = lint_fixture(include_str!("fixtures/wall_clock.rs"));
    let result = ScanResult {
        files_scanned: 1,
        violations,
    };
    let json = to_json(&result);
    assert!(json.starts_with("{\"files_scanned\":1,\"violations\":[{"));
    assert!(json.contains("\"rule\":\"wall-clock\""));
    assert!(json.contains("\"file\":\"crates/fixture/src/lib.rs\""));
    // Messages quote identifiers with backticks, not raw quotes, so the
    // payload must round-trip without bare `"` inside string values.
    let inner = &json[1..json.len() - 1];
    assert!(!inner.replace("\\\"", "").contains("\":\"\""));
}

#[test]
fn fixtures_cover_every_rule_and_are_excluded_from_real_scans() {
    let all = [
        include_str!("fixtures/twin_kernel.rs"),
        include_str!("fixtures/nondet_iteration.rs"),
        include_str!("fixtures/wall_clock.rs"),
        include_str!("fixtures/undocumented_unsafe.rs"),
        include_str!("fixtures/par_float_reduction.rs"),
    ];
    let mut tripped: Vec<String> = all
        .iter()
        .flat_map(|src| lint_fixture(src))
        .map(|v| v.rule)
        .collect();
    tripped.sort();
    tripped.dedup();
    assert_eq!(tripped, {
        let mut rules: Vec<String> = ppfr_analysis::rules::RULES
            .iter()
            .map(|r| r.to_string())
            .collect();
        rules.sort();
        rules
    });

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("repo root");
    let files = ppfr_analysis::workspace_rs_files(root).expect("walk workspace");
    assert!(
        files
            .iter()
            .all(|f| !f.starts_with("crates/analysis/tests/fixtures/")),
        "fixtures leaked into the real scan set"
    );
    assert!(
        files.contains(&"crates/analysis/tests/lint_fixtures.rs".to_string()),
        "the harness itself must stay in scope"
    );
}
