//! A minimal hand-rolled Rust tokenizer — just enough fidelity for the lint
//! rules: identifiers and punctuation carry line numbers, comments are kept
//! as tokens (the `SAFETY:` and `lint: allow(...)` rules read them), and
//! string/char/lifetime literals are consumed correctly so their contents
//! can never masquerade as code.

/// Token classes the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, ...).
    Ident,
    /// Single punctuation character (`{`, `:`, `+`, ...).
    Punct,
    /// String literal, including raw and byte strings.
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a` — no closing quote).
    Lifetime,
    /// Numeric literal.
    Num,
    /// Line or block comment, text included (`//...` / `/*...*/`).
    Comment,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

/// Tokenizes `src`.  Unterminated constructs consume to end of input rather
/// than erroring: the linter must never crash on weird-but-compiling code.
pub fn tokenize(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        let start_line = line;
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            toks.push(tok(TokKind::Comment, &b[start..i], start_line));
        } else if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            toks.push(tok(TokKind::Comment, &b[start..i], start_line));
        } else if c == 'r' && is_raw_string_start(&b, i) {
            let (end, newlines) = consume_raw_string(&b, i + 1);
            toks.push(tok(TokKind::Str, &b[i..end], start_line));
            line += newlines;
            i = end;
        } else if c == 'b' && i + 1 < b.len() && (b[i + 1] == '"' || is_raw_string_start(&b, i + 1))
        {
            let (end, newlines) = if b[i + 1] == '"' {
                consume_string(&b, i + 2)
            } else {
                consume_raw_string(&b, i + 2)
            };
            toks.push(tok(TokKind::Str, &b[i..end], start_line));
            line += newlines;
            i = end;
        } else if c == '"' {
            let (end, newlines) = consume_string(&b, i + 1);
            toks.push(tok(TokKind::Str, &b[i..end], start_line));
            line += newlines;
            i = end;
        } else if c == '\'' {
            // Lifetime when an ident char follows and no closing quote does
            // (`'a`, `'static`); otherwise a char literal (`'a'`, `'\n'`).
            if is_lifetime(&b, i) {
                let start = i;
                i += 1;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
                toks.push(tok(TokKind::Lifetime, &b[start..i], start_line));
            } else {
                let start = i;
                i += 1;
                while i < b.len() && b[i] != '\'' {
                    if b[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(b.len());
                toks.push(tok(TokKind::Char, &b[start..i], start_line));
            }
        } else if is_ident_char(c) && !c.is_ascii_digit() {
            let start = i;
            while i < b.len() && is_ident_char(b[i]) {
                i += 1;
            }
            toks.push(tok(TokKind::Ident, &b[start..i], start_line));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (is_ident_char(b[i]) || b[i] == '.') {
                // A numeric literal followed by a method call (`1.max(x)`)
                // must not swallow the ident: stop at `.` + non-digit.
                if b[i] == '.' && (i + 1 >= b.len() || !b[i + 1].is_ascii_digit()) {
                    break;
                }
                i += 1;
            }
            toks.push(tok(TokKind::Num, &b[start..i], start_line));
        } else {
            toks.push(tok(TokKind::Punct, &b[i..i + 1], start_line));
            i += 1;
        }
    }
    toks
}

fn tok(kind: TokKind, text: &[char], line: usize) -> Token {
    Token {
        kind,
        text: text.iter().collect(),
        line,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// At `i` sits `r`; true when `r"` or `r#...#"` follows (raw string).
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    if b[i] != 'r' {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

/// True when the `'` at `i` starts a lifetime rather than a char literal.
fn is_lifetime(b: &[char], i: usize) -> bool {
    let Some(&next) = b.get(i + 1) else {
        return false;
    };
    if !is_ident_char(next) || next.is_ascii_digit() {
        return false;
    }
    // `'a'` is a char; `'a,` / `'a>` / `'a ` is a lifetime.  Scan the ident
    // run and check for a closing quote.
    let mut j = i + 1;
    while j < b.len() && is_ident_char(b[j]) {
        j += 1;
    }
    b.get(j) != Some(&'\'')
}

/// Consumes a `"..."` body starting *after* the opening quote; returns
/// (index past closing quote, newline count inside).
fn consume_string(b: &[char], mut i: usize) -> (usize, usize) {
    let mut newlines = 0;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return (i + 1, newlines),
            '\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, newlines)
}

/// Consumes a raw string starting at its `#` run or opening quote; returns
/// (index past the closing delimiter, newline count inside).
fn consume_raw_string(b: &[char], mut i: usize) -> (usize, usize) {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(b.get(i), Some(&'"'), "caller checked the raw-string shape");
    i += 1;
    let mut newlines = 0;
    while i < b.len() {
        if b[i] == '\n' {
            newlines += 1;
            i += 1;
        } else if b[i] == '"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return (i + 1 + hashes, newlines);
        } else {
            i += 1;
        }
    }
    (i, newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_strings_and_lifetimes_do_not_leak_idents() {
        let toks = kinds(r##"fn f<'a>(x: &'a str) { let _ = "HashMap 'q'"; } // HashSet"##);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["fn", "f", "x", "str", "let", "_"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Comment && t.contains("HashSet")));
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let toks = kinds("let c = 'x'; let nl = '\\n';");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Char).count(),
            2,
            "{toks:?}"
        );
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let toks = kinds("/* a /* b */ c */ r#\"un\"safe\"# ident");
        assert_eq!(toks[0].0, TokKind::Comment);
        assert_eq!(toks[1].0, TokKind::Str);
        assert_eq!(toks[2], (TokKind::Ident, "ident".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let toks = tokenize("a\n\"x\ny\"\nb");
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn float_method_calls_split_correctly() {
        let toks = kinds("1.5 + 2.max(3)");
        assert!(toks.contains(&(TokKind::Num, "1.5".to_string())));
        assert!(toks.contains(&(TokKind::Num, "2".to_string())));
        assert!(toks.contains(&(TokKind::Ident, "max".to_string())));
    }
}
