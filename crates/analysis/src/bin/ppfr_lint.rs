//! `ppfr_lint` — the workspace determinism linter (see `ppfr_analysis`
//! crate docs for the rules).  Exits nonzero when any violation survives
//! the justified `// lint: allow(<rule>) — why` escape hatches.
//!
//! ```text
//! ppfr_lint [--root <repo-root>] [--json]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--json" => json = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let result = match ppfr_analysis::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ppfr_lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if json {
        println!("{}", ppfr_analysis::to_json(&result));
    } else {
        for v in &result.violations {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        println!(
            "ppfr_lint: {} file(s) scanned, {} violation(s)",
            result.files_scanned,
            result.violations.len()
        );
    }
    if result.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("ppfr_lint: {err}\nusage: ppfr_lint [--root <repo-root>] [--json]");
    ExitCode::FAILURE
}
