//! `ppfr_analysis`: the workspace's static-analysis and verification layer.
//!
//! Two halves:
//!
//! * **`ppfr_lint`** (see [`rules`]) — a dependency-free token-level linter
//!   enforcing the determinism invariants the reproduction relies on
//!   (serial twins for parallel kernels, no hash-order in serialized
//!   artifacts, no wall-clock outside the bench crate, documented `unsafe`,
//!   allowlisted float reductions).  Run it from the repo root:
//!
//!   ```text
//!   cargo run -p ppfr_analysis --bin ppfr_lint -- --root . [--json]
//!   ```
//!
//! * **[`loom_scenarios`]** — exhaustive model checking of the
//!   work-stealing pool's steal protocol (`rayon::steal::StealCore`) over
//!   `loom_lite`'s virtual primitives.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod loom_scenarios;
pub mod rules;

use rules::{Violation, Workspace};
use std::fs;
use std::io;
use std::path::Path;

/// Outcome of a whole-workspace lint run.
pub struct ScanResult {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
}

/// Lints every first-party source tree plus `vendor/rayon` under `root`.
pub fn scan_workspace(root: &Path) -> io::Result<ScanResult> {
    let mut ws = Workspace::new();
    let files = workspace_rs_files(root)?;
    for rel in &files {
        let text = fs::read_to_string(root.join(rel))?;
        ws.add_file(rel, &text);
    }
    Ok(ScanResult {
        files_scanned: ws.files_scanned(),
        violations: ws.run(),
    })
}

/// The repo-relative `.rs` files in scope, sorted: `crates/*/{src,tests}`
/// and `vendor/rayon/src`.  Lint fixtures (deliberately-violating inputs of
/// the linter's own test suite) are excluded.
pub fn workspace_rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_names: Vec<String> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    crate_names.sort();
    for name in crate_names {
        for sub in ["src", "tests"] {
            let dir = crates_dir.join(&name).join(sub);
            if dir.is_dir() {
                walk_rs(&dir, &format!("crates/{name}/{sub}"), &mut out)?;
            }
        }
    }
    walk_rs(&root.join("vendor/rayon/src"), "vendor/rayon/src", &mut out)?;
    out.retain(|p| !p.starts_with("crates/analysis/tests/fixtures"));
    out.sort();
    Ok(out)
}

fn walk_rs(dir: &Path, rel: &str, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        if path.is_dir() {
            walk_rs(&path, &format!("{rel}/{name}"), out)?;
        } else if name.ends_with(".rs") {
            out.push(format!("{rel}/{name}"));
        }
    }
    Ok(())
}

/// Machine-readable form of a [`ScanResult`], stable across runs: the
/// violation list is already sorted by (file, line, rule).
pub fn to_json(result: &ScanResult) -> String {
    let mut s = String::new();
    s.push_str("{\"files_scanned\":");
    s.push_str(&result.files_scanned.to_string());
    s.push_str(",\"violations\":[");
    for (i, v) in result.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"file\":\"");
        s.push_str(&json_escape(&v.file));
        s.push_str("\",\"line\":");
        s.push_str(&v.line.to_string());
        s.push_str(",\"rule\":\"");
        s.push_str(&json_escape(&v.rule));
        s.push_str("\",\"message\":\"");
        s.push_str(&json_escape(&v.message));
        s.push_str("\"}");
    }
    s.push_str("]}");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
