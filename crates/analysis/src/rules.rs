//! The five determinism/soundness rules `ppfr_lint` enforces, over the
//! token streams produced by [`crate::lexer`].
//!
//! | rule | requirement |
//! |------|-------------|
//! | `twin-kernel` | every fn calling a `par_*` primitive has a `<name>_serial` twin in its crate, or a test exercising it under `with_forced_threads` |
//! | `nondet-iteration` | no `HashMap`/`HashSet` in files that serialize reports (iteration order would leak into artifacts) |
//! | `wall-clock` | no `std::thread::spawn` / `Instant` / `SystemTime` outside `crates/telemetry`, `vendor/rayon` and `crates/bench` |
//! | `undocumented-unsafe` | every `unsafe` is preceded by a `SAFETY:` (or `# Safety`) comment |
//! | `par-float-reduction` | float reductions inside parallel kernels only in the blessed allowlist (each blessed kernel has a bit-identity test) |
//!
//! Any finding can be suppressed in place with a justified escape hatch on
//! the line above it:
//!
//! ```text
//! // lint: allow(wall-clock) — coarse perf guard only, never in artifacts
//! ```
//!
//! The justification text is mandatory; an allow without one is ignored.

use crate::lexer::{tokenize, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// The rule identifiers, in the order they are documented.
pub const RULES: [&str; 5] = [
    "twin-kernel",
    "nondet-iteration",
    "wall-clock",
    "undocumented-unsafe",
    "par-float-reduction",
];

/// The pool-dispatching primitives of `ppfr_linalg::parallel`; calling one
/// makes a fn a "parallel kernel" for `twin-kernel`/`par-float-reduction`.
const PAR_PRIMITIVES: [&str; 5] = [
    "par_chunks",
    "par_row_blocks",
    "par_fill",
    "par_rows",
    "par_join",
];

/// Kernels blessed to reduce floats inside their parallel closures: each is
/// pinned bit-identical against its serial twin across thread counts (see
/// `crates/linalg/tests/kernel_properties.rs` and the in-module tests), so
/// the reduction order is fixed by construction — per-row/per-block serial
/// loops, never a cross-chunk accumulator.
const BLESSED_KERNELS: [&str; 9] = [
    "matmul",
    "matmul_into",
    "matmul_at_b",
    "matmul_at_b_into",
    "matmul_a_bt",
    "matmul_a_bt_into",
    "matmul_dense",
    "matmul_dense_into",
    // Row-local `.sum()` inside the per-row closure; pinned across thread
    // counts in crates/linalg/tests/kernel_properties.rs.
    "row_softmax_backward_into",
];

/// Identifiers that mark a file as a serialization site for
/// `nondet-iteration`: reports and JSON artifacts must not depend on hash
/// iteration order.
const SERIALIZATION_MARKS: [&str; 3] = ["MatrixReport", "to_json", "Serialize"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: String,
    pub message: String,
}

/// One `// lint: allow(rule) — justification` escape hatch.
struct Allow {
    line: usize,
    rule: String,
}

/// A fn item: its name, position, and body token range.
struct FnDef {
    name: String,
    file: usize,
    line: usize,
    is_pub: bool,
    is_test: bool,
    /// Token-index range of the `{ ... }` body (empty for bodyless decls).
    body: std::ops::Range<usize>,
}

struct SourceFile {
    path: String,
    tokens: Vec<Token>,
    /// Token index of the first `#[cfg(test)]`; tokens at or after it are
    /// test-only code (the workspace convention keeps test modules last).
    cfg_test_at: usize,
    allows: Vec<Allow>,
}

/// All scanned files plus the cross-file indexes the rules need.
#[derive(Default)]
pub struct Workspace {
    files: Vec<SourceFile>,
    fns: Vec<FnDef>,
}

impl Workspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one file.  `path` must be repo-relative with forward
    /// slashes (`crates/linalg/src/ops.rs`): rule scoping matches on it.
    pub fn add_file(&mut self, path: &str, source: &str) {
        let tokens = tokenize(source);
        let cfg_test_at = find_cfg_test(&tokens);
        let allows = extract_allows(&tokens);
        let file_idx = self.files.len();
        self.fns.extend(extract_fns(&tokens, file_idx));
        self.files.push(SourceFile {
            path: path.to_string(),
            tokens,
            cfg_test_at,
            allows,
        });
    }

    pub fn files_scanned(&self) -> usize {
        self.files.len()
    }

    /// Runs every rule and returns the unsuppressed findings, sorted by
    /// (file, line, rule) so output is reproducible.
    pub fn run(&self) -> Vec<Violation> {
        let mut all = Vec::new();
        all.extend(self.check_twin_kernel());
        all.extend(self.check_nondet_iteration());
        all.extend(self.check_wall_clock());
        all.extend(self.check_undocumented_unsafe());
        all.extend(self.check_par_float_reduction());
        all.retain(|v| !self.suppressed(v));
        all.sort();
        all.dedup();
        all
    }

    /// A violation is suppressed by a justified allow for the same rule in
    /// the same file within the three lines above it (or on its own line).
    fn suppressed(&self, v: &Violation) -> bool {
        let file = self
            .files
            .iter()
            .find(|f| f.path == v.file)
            .expect("violation points at a scanned file");
        file.allows
            .iter()
            .any(|a| a.rule == v.rule && v.line >= a.line && v.line <= a.line + 3)
    }

    /// `crates/<name>` / `vendor/<name>` prefix of a scanned path.
    fn crate_of(path: &str) -> &str {
        let mut parts = path.splitn(3, '/');
        let (a, b) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        &path[..a.len() + 1 + b.len()]
    }

    fn is_crate_src(path: &str) -> bool {
        path.starts_with("crates/") && path.contains("/src/")
    }

    // ---- rule: twin-kernel -------------------------------------------------

    fn check_twin_kernel(&self) -> Vec<Violation> {
        // Index: fn names per crate (src only), and per-test referenced
        // identifier sets (a test "references" a kernel if the kernel's name
        // appears anywhere in its body).
        let mut crate_fns: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        let mut forced_tests: Vec<BTreeSet<&str>> = Vec::new();
        for f in &self.fns {
            let file = &self.files[f.file];
            if Self::is_crate_src(&file.path) && !f.is_test {
                crate_fns
                    .entry(Self::crate_of(&file.path))
                    .or_default()
                    .insert(&f.name);
            }
            if f.is_test {
                let idents: BTreeSet<&str> = file.tokens[f.body.clone()]
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.as_str())
                    .collect();
                if idents.contains("with_forced_threads") {
                    forced_tests.push(idents);
                }
            }
        }
        let mut out = Vec::new();
        for f in &self.fns {
            let file = &self.files[f.file];
            if !Self::is_crate_src(&file.path)
                || f.is_test
                || f.body.start >= file.cfg_test_at
                || f.name.ends_with("_serial")
                || PAR_PRIMITIVES.contains(&f.name.as_str())
            {
                continue;
            }
            let calls_par = file.tokens[f.body.clone()]
                .iter()
                .any(|t| t.kind == TokKind::Ident && PAR_PRIMITIVES.contains(&t.text.as_str()));
            if !calls_par {
                continue;
            }
            let twin = format!("{}_serial", f.name);
            let has_twin = crate_fns
                .get(Self::crate_of(&file.path))
                .is_some_and(|names| names.contains(twin.as_str()));
            let has_forced_test = forced_tests.iter().any(|t| t.contains(f.name.as_str()));
            if !(has_twin || has_forced_test) {
                out.push(Violation {
                    file: file.path.clone(),
                    line: f.line,
                    rule: "twin-kernel".into(),
                    message: format!(
                        "parallel kernel `{}` has neither a `{twin}` twin in its crate \
                         nor a `with_forced_threads` test referencing it",
                        f.name
                    ),
                });
            }
        }
        // The primitives themselves: each pub par_* in ppfr_linalg::parallel
        // must be pinned bit-identical across thread counts by some test.
        for f in &self.fns {
            let file = &self.files[f.file];
            if file.path != "crates/linalg/src/parallel.rs"
                || !f.is_pub
                || !PAR_PRIMITIVES.contains(&f.name.as_str())
            {
                continue;
            }
            let mut tests_with_forced = self.fns.iter().filter(|t| t.is_test).filter(|t| {
                let tf = &self.files[t.file];
                let idents: BTreeSet<&str> = tf.tokens[t.body.clone()]
                    .iter()
                    .filter(|tok| tok.kind == TokKind::Ident)
                    .map(|tok| tok.text.as_str())
                    .collect();
                idents.contains("with_forced_threads") && idents.contains(f.name.as_str())
            });
            if tests_with_forced.next().is_none() {
                out.push(Violation {
                    file: file.path.clone(),
                    line: f.line,
                    rule: "twin-kernel".into(),
                    message: format!(
                        "pool primitive `{}` has no test pinning it across thread \
                         counts via `with_forced_threads`",
                        f.name
                    ),
                });
            }
        }
        out
    }

    // ---- rule: nondet-iteration -------------------------------------------

    fn check_nondet_iteration(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in &self.files {
            if !Self::is_crate_src(&file.path) {
                continue;
            }
            let serializes = file.tokens[..file.cfg_test_at].iter().any(|t| {
                t.kind == TokKind::Ident && SERIALIZATION_MARKS.contains(&t.text.as_str())
            });
            if !serializes {
                continue;
            }
            for t in &file.tokens[..file.cfg_test_at] {
                if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                    out.push(Violation {
                        file: file.path.clone(),
                        line: t.line,
                        rule: "nondet-iteration".into(),
                        message: format!(
                            "`{}` in a file that serializes reports: iteration order is \
                             nondeterministic, use BTreeMap/BTreeSet or an index-keyed Vec",
                            t.text
                        ),
                    });
                }
            }
        }
        out
    }

    // ---- rule: wall-clock --------------------------------------------------

    fn check_wall_clock(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in &self.files {
            if !file.path.starts_with("crates/")
                || file.path.starts_with("crates/bench/")
                || file.path.starts_with("crates/telemetry/")
            {
                continue;
            }
            let toks = &file.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokKind::Ident {
                    continue;
                }
                let flagged = match t.text.as_str() {
                    "Instant" | "SystemTime" => true,
                    // `thread::spawn` counts only when the path roots in std
                    // (or is bare); `loom_lite::thread::spawn` etc. is the
                    // model checker's virtual spawn, which is the point.
                    "spawn" => {
                        code_tok(toks, i, -1).is_some_and(|p| p.text == ":")
                            && code_tok(toks, i, -3).is_some_and(|p| p.text == "thread")
                            && match code_tok(toks, i, -4) {
                                Some(p) if p.text == ":" => {
                                    code_tok(toks, i, -6).is_some_and(|p| p.text == "std")
                                }
                                _ => true,
                            }
                    }
                    _ => false,
                };
                if flagged {
                    out.push(Violation {
                        file: file.path.clone(),
                        line: t.line,
                        rule: "wall-clock".into(),
                        message: format!(
                            "`{}` outside ppfr_telemetry, vendor/rayon and crates/bench: \
                             wall-clock and ad-hoc threads make runs unreproducible — time \
                             things through `ppfr_telemetry` instead",
                            t.text
                        ),
                    });
                }
            }
        }
        out
    }

    // ---- rule: undocumented-unsafe ----------------------------------------

    fn check_undocumented_unsafe(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in &self.files {
            for (i, t) in file.tokens.iter().enumerate() {
                if t.kind != TokKind::Ident || t.text != "unsafe" {
                    continue;
                }
                // `forbid(unsafe_code)` style mentions lex as `unsafe_code`,
                // a different ident, so every remaining `unsafe` is real.
                let documented = file.tokens[..i]
                    .iter()
                    .rev()
                    .take_while(|c| c.line + 8 >= t.line)
                    .any(|c| {
                        c.kind == TokKind::Comment
                            && (c.text.contains("SAFETY:") || c.text.contains("# Safety"))
                    });
                if !documented {
                    out.push(Violation {
                        file: file.path.clone(),
                        line: t.line,
                        rule: "undocumented-unsafe".into(),
                        message: "`unsafe` without a `// SAFETY:` (or `# Safety` doc) comment \
                                  in the preceding lines"
                            .into(),
                    });
                }
            }
        }
        out
    }

    // ---- rule: par-float-reduction ----------------------------------------

    fn check_par_float_reduction(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for f in &self.fns {
            let file = &self.files[f.file];
            if !Self::is_crate_src(&file.path)
                || f.is_test
                || f.body.start >= file.cfg_test_at
                || BLESSED_KERNELS.contains(&f.name.as_str())
            {
                continue;
            }
            let body = &file.tokens[f.body.clone()];
            let calls_par = body
                .iter()
                .any(|t| t.kind == TokKind::Ident && PAR_PRIMITIVES.contains(&t.text.as_str()));
            if !calls_par {
                continue;
            }
            let reduction_at = body.windows(2).find_map(|w| {
                let plus_eq = w[0].kind == TokKind::Punct
                    && w[0].text == "+"
                    && w[1].kind == TokKind::Punct
                    && w[1].text == "="
                    && w[0].line == w[1].line;
                let method = w[0].kind == TokKind::Punct
                    && w[0].text == "."
                    && w[1].kind == TokKind::Ident
                    && (w[1].text == "sum" || w[1].text == "fold");
                (plus_eq || method).then_some(w[1].line)
            });
            if let Some(line) = reduction_at {
                out.push(Violation {
                    file: file.path.clone(),
                    line,
                    rule: "par-float-reduction".into(),
                    message: format!(
                        "accumulation (`+=`/`.sum`/`.fold`) inside parallel kernel `{}` \
                         which is not in the blessed allowlist; reduction order must be \
                         pinned by a serial-twin bit-identity test before blessing",
                        f.name
                    ),
                });
            }
        }
        out
    }
}

/// The token `steps` code tokens away from `i` (negative = backwards),
/// skipping comments.
fn code_tok(toks: &[Token], i: usize, steps: isize) -> Option<&Token> {
    let mut remaining = steps.unsigned_abs();
    let mut j = i;
    while remaining > 0 {
        loop {
            j = if steps < 0 { j.checked_sub(1)? } else { j + 1 };
            if toks.get(j)?.kind != TokKind::Comment {
                break;
            }
        }
        remaining -= 1;
    }
    toks.get(j)
}

/// Token index of the first `cfg(test)` attribute, or `len` when absent.
fn find_cfg_test(toks: &[Token]) -> usize {
    toks.windows(4)
        .position(|w| {
            w[0].text == "cfg" && w[1].text == "(" && w[2].text == "test" && w[3].text == ")"
        })
        .unwrap_or(toks.len())
}

/// Parses every justified `lint: allow(<rule>)` comment.
fn extract_allows(toks: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in toks {
        if t.kind != TokKind::Comment {
            continue;
        }
        let Some(at) = t.text.find("lint: allow(") else {
            continue;
        };
        let rest = &t.text[at + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = &rest[..close];
        let justification = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
            .trim();
        if RULES.contains(&rule) && justification.len() >= 3 {
            out.push(Allow {
                line: t.line,
                rule: rule.to_string(),
            });
        }
    }
    out
}

/// Extracts every `fn` item with its body token range.
fn extract_fns(toks: &[Token], file_idx: usize) -> Vec<FnDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_fn_kw = toks[i].kind == TokKind::Ident && toks[i].text == "fn";
        let name_next = toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident);
        if !(is_fn_kw && name_next) {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        // Look back over qualifiers and attributes for `pub` / `#[test]`.
        let back = &toks[i.saturating_sub(12)..i];
        let is_pub = back
            .iter()
            .rev()
            .take_while(|t| {
                !(t.kind == TokKind::Punct && matches!(t.text.as_str(), "{" | "}" | ";"))
            })
            .any(|t| t.kind == TokKind::Ident && t.text == "pub");
        let is_test = back
            .windows(3)
            .any(|w| w[0].text == "#" && w[1].text == "[" && w[2].text == "test");
        // The body is the first brace-balanced `{...}` before any `;` at
        // signature level (a `;` first means a bodyless trait/extern decl).
        let mut j = i + 2;
        let mut body = 0..0;
        while let Some(t) = toks.get(j) {
            if t.kind == TokKind::Punct && t.text == ";" {
                break;
            }
            if t.kind == TokKind::Punct && t.text == "{" {
                let mut depth = 1usize;
                let start = j + 1;
                j += 1;
                while let Some(t) = toks.get(j) {
                    if t.kind == TokKind::Punct && t.text == "{" {
                        depth += 1;
                    } else if t.kind == TokKind::Punct && t.text == "}" {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                body = start..j.min(toks.len());
                break;
            }
            j += 1;
        }
        out.push(FnDef {
            name,
            file: file_idx,
            line,
            is_pub,
            is_test,
            body,
        });
        i += 2;
    }
    out
}
