//! Model-checked scenarios for the work-stealing core (`rayon::steal`),
//! instantiated over `loom_lite`'s virtual primitives via the `LoomSync`
//! facade.  Every scenario explores its *entire* schedule space — the
//! returned [`Report`] says how many interleavings that took and whether
//! exploration was exhaustive.
//!
//! The scenarios mirror `pool::dispatch`'s lifecycle: workers are attached
//! before they are spawned (in the pool this happens under the announcement
//! queue's lock, before the dispatcher could observe them absent), then
//! participate and detach; the dispatcher participates at seat 0 and blocks
//! in `wait_done`.

use loom_lite::{model, Report};
use rayon::steal::{Chunk, LoomSync, StealCore};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

fn chunk(start: usize, end: usize) -> Chunk {
    Chunk { start, end }
}

/// Two participants with one chunk each; each may finish its own chunk and
/// steal the other's.  Verifies: every index runs exactly once under every
/// schedule, the pending counter drains, the attach counter drains, and no
/// phantom panic is reported.
pub fn steal_two_threads() -> Report {
    model(|| {
        let core = Arc::new(StealCore::<LoomSync>::from_chunks(vec![
            VecDeque::from([chunk(0, 1)]),
            VecDeque::from([chunk(1, 2)]),
        ]));
        let runs: Arc<[AtomicUsize; 2]> = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        core.attach();
        let (c2, r2) = (Arc::clone(&core), Arc::clone(&runs));
        let worker = loom_lite::thread::spawn(move || {
            c2.participate(1, &|i| {
                r2[i].fetch_add(1, Ordering::SeqCst);
            });
            c2.detach();
        });
        core.participate(0, &|i| {
            runs[i].fetch_add(1, Ordering::SeqCst);
        });
        core.wait_done();
        worker.join();
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(
                r.load(Ordering::SeqCst),
                1,
                "index {i} must run exactly once"
            );
        }
        assert_eq!(core.pending(), 0);
        assert_eq!(core.attached_count(), 0);
        assert!(core.take_panic().is_none());
    })
}

/// A single owner over a three-chunk deque must pop LIFO (back first): the
/// most recently pushed chunk is the cache-warm one.
pub fn lifo_owner_order() -> Report {
    model(|| {
        let core = StealCore::<LoomSync>::from_chunks(vec![VecDeque::from([
            chunk(0, 1),
            chunk(1, 2),
            chunk(2, 3),
        ])]);
        let order = Mutex::new(Vec::new());
        core.participate(0, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), [2, 1, 0], "owner must pop LIFO");
        assert_eq!(core.pending(), 0);
    })
}

/// A pure thief (empty own deque) must steal FIFO (front first): the
/// coldest chunk, leaving the victim its warm tail.
pub fn fifo_thief_order() -> Report {
    model(|| {
        let core = StealCore::<LoomSync>::from_chunks(vec![
            VecDeque::from([chunk(0, 1), chunk(1, 2), chunk(2, 3)]),
            VecDeque::new(),
        ]);
        let order = Mutex::new(Vec::new());
        core.participate(1, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), [0, 1, 2], "thief must steal FIFO");
        assert_eq!(core.pending(), 0);
    })
}

/// A task panic under any schedule: the payload is captured exactly once,
/// the pending counter still drains (so `wait_done` cannot hang), and no
/// index runs twice.
pub fn panic_propagation() -> Report {
    model(|| {
        let core = Arc::new(StealCore::<LoomSync>::from_chunks(vec![
            VecDeque::from([chunk(0, 1)]),
            VecDeque::from([chunk(1, 2)]),
        ]));
        let runs: Arc<[AtomicUsize; 2]> = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        core.attach();
        let (c2, r2) = (Arc::clone(&core), Arc::clone(&runs));
        let worker = loom_lite::thread::spawn(move || {
            c2.participate(1, &|i| {
                r2[i].fetch_add(1, Ordering::SeqCst);
                if i == 0 {
                    panic!("injected task failure");
                }
            });
            c2.detach();
        });
        core.participate(0, &|i| {
            runs[i].fetch_add(1, Ordering::SeqCst);
            if i == 0 {
                panic!("injected task failure");
            }
        });
        core.wait_done();
        worker.join();
        assert_eq!(core.pending(), 0, "panic must not leak pending indices");
        assert_eq!(core.attached_count(), 0);
        assert!(core.take_panic().is_some(), "the payload must be captured");
        assert!(core.take_panic().is_none(), "and captured exactly once");
        assert_eq!(runs[0].load(Ordering::SeqCst), 1);
        assert!(
            runs[1].load(Ordering::SeqCst) <= 1,
            "index may be skipped, never re-run"
        );
    })
}

/// Three virtual threads: a dispatcher that only waits, and two pure
/// thieves racing FIFO-steals against a two-chunk victim deque.  Verifies
/// mutual exclusion of the steal (each chunk taken once) and that the
/// dispatcher's `wait_done` latch cannot miss the last detach.
pub fn three_thread_steal() -> Report {
    model(|| {
        let core = Arc::new(StealCore::<LoomSync>::from_chunks(vec![
            VecDeque::from([chunk(0, 1), chunk(1, 2)]),
            VecDeque::new(),
            VecDeque::new(),
        ]));
        let runs: Arc<[AtomicUsize; 2]> = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        core.attach();
        core.attach();
        let mut workers = Vec::new();
        for seat in [1usize, 2] {
            let (c2, r2) = (Arc::clone(&core), Arc::clone(&runs));
            workers.push(loom_lite::thread::spawn(move || {
                c2.participate(seat, &|i| {
                    r2[i].fetch_add(1, Ordering::SeqCst);
                });
                c2.detach();
            }));
        }
        core.wait_done();
        for w in workers {
            w.join();
        }
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(
                r.load(Ordering::SeqCst),
                1,
                "chunk {i} must be stolen exactly once"
            );
        }
        assert_eq!(core.pending(), 0);
        assert_eq!(core.attached_count(), 0);
    })
}

/// Runs every scenario; the name/report pairs feed both the loom test suite
/// and the `analysis` section of `BENCH_kernels.json`.
pub fn all() -> Vec<(&'static str, Report)> {
    vec![
        ("steal_two_threads", steal_two_threads()),
        ("lifo_owner_order", lifo_owner_order()),
        ("fifo_thief_order", fifo_thief_order()),
        ("panic_propagation", panic_propagation()),
        ("three_thread_steal", three_thread_steal()),
    ]
}
