//! Evaluation harness: accuracy, bias, privacy risk and the Δ metric (Eq. 22).
//!
//! Privacy risk is reported twice: the paper's headline number (mean
//! unsupervised attack AUC over the eight posterior distances) and the
//! worst case over the supervised threat-model grid of `ppfr_attacks`
//! (shadow-model / partial-knowledge adversaries), so defences are judged
//! against the strongest adversary, not only the weakest.

use crate::{PpfrConfig, TrainedOutcome};
use ppfr_attacks::{AttackTrainConfig, ThreatAuditor};
use ppfr_datasets::Dataset;
use ppfr_fairness::bias;
use ppfr_gnn::GnnModel;
use ppfr_linalg::{row_softmax, Matrix};
use ppfr_privacy::{AttackEvaluator, PairSample};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Trustworthiness evaluation of one trained model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evaluation {
    /// Test-set accuracy.
    pub accuracy: f64,
    /// InFoRM bias `Tr(Pᵀ L_S P)/n` w.r.t. the *original* graph's similarity.
    pub bias: f64,
    /// Link-stealing risk: mean attack AUC over the eight distances.
    pub risk_auc: f64,
    /// `f_risk` of Definition 2 (euclidean distance gap).
    pub risk_gap: f64,
    /// Attack AUC per distance metric (the Fig. 4 series).
    pub auc_per_distance: Vec<(String, f64)>,
    /// Worst-case attack AUC over the supervised threat-model grid (and the
    /// per-distance unsupervised thresholds available to every adversary).
    pub worst_risk_auc: f64,
    /// Supervised attack AUC per threat model, in registry order.
    pub auc_per_threat: Vec<(String, f64)>,
}

/// Relative changes of a method against the vanilla reference (Eq. 22).
/// `d_*` fields are fractional changes (multiply by 100 for the paper's %).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MethodDeltas {
    /// Relative accuracy change `Δacc`.
    pub d_acc: f64,
    /// Relative bias change `Δbias` (negative = fairer).
    pub d_bias: f64,
    /// Relative risk change `Δrisk` (negative = more private).
    pub d_risk: f64,
    /// Combined metric `Δ = Δbias · Δrisk / |Δacc|`.
    pub delta: f64,
}

/// Predictions (softmax probabilities) of a trained outcome on its deployment
/// graph.  GraphSAGE re-draws its sampling operator on the deployment graph
/// with the configured seed so evaluation is deterministic.
pub fn predictions(outcome: &TrainedOutcome, cfg: &PpfrConfig) -> Matrix {
    let mut model = outcome.model.clone();
    model.resample(&outcome.deploy_ctx, cfg.seed ^ 0x00c0_ffee);
    row_softmax(&model.forward(&outcome.deploy_ctx))
}

/// The attack's balanced pair sample over the *original* (confidential)
/// edges, deterministic in the configuration seed so every method is attacked
/// on exactly the same pairs.
pub fn attack_sample(dataset: &Dataset, cfg: &PpfrConfig) -> PairSample {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xa77a_c4e1);
    PairSample::balanced(&dataset.graph, &mut rng)
}

/// The attack evaluator over [`attack_sample`]'s pairs — the *unsupervised*
/// attack surface, kept for callers (benches, ablation internals) that do not
/// need the supervised grid.
pub fn attack_evaluator(dataset: &Dataset, cfg: &PpfrConfig) -> AttackEvaluator {
    AttackEvaluator::new(attack_sample(dataset, cfg))
}

/// The full threat auditor over [`attack_sample`]'s pairs: the unsupervised
/// evaluator plus the supervised threat-model grid of `ppfr_attacks`
/// (shadow dataset, feature knowledge, partial edge disclosure).  Build it
/// **once per (dataset, config)** and pass it to [`evaluate_with`] for every
/// method: the pair sample, the distance buffers, the shadow dataset and its
/// cached feature tables are all reused; posteriors are the only thing
/// recomputed per method.
pub fn threat_auditor(dataset: &Dataset, cfg: &PpfrConfig) -> ThreatAuditor {
    let base = AttackTrainConfig {
        seed: cfg.seed ^ 0x5ead_f00d,
        ..AttackTrainConfig::default()
    };
    ThreatAuditor::for_dataset(
        dataset,
        attack_sample(dataset, cfg),
        base,
        cfg.seed ^ 0x51ab,
    )
}

/// Evaluates a trained outcome: accuracy on the test split, InFoRM bias
/// against the original similarity, and link-stealing risk against the
/// original edges (both the mean-distance AUC and the worst-case supervised
/// threat-model AUC).
pub fn evaluate(outcome: &TrainedOutcome, dataset: &Dataset, cfg: &PpfrConfig) -> Evaluation {
    let mut auditor = threat_auditor(dataset, cfg);
    evaluate_with(outcome, dataset, cfg, &mut auditor)
}

/// [`evaluate`] against a shared [`ThreatAuditor`] — the cheap path when
/// several methods are scored on the same dataset and configuration.
pub fn evaluate_with(
    outcome: &TrainedOutcome,
    dataset: &Dataset,
    cfg: &PpfrConfig,
    auditor: &mut ThreatAuditor,
) -> Evaluation {
    let _span = ppfr_telemetry::span!("evaluate");
    let probs = {
        let _predict = ppfr_telemetry::span!("predict");
        predictions(outcome, cfg)
    };
    let accuracy = ppfr_nn::accuracy(&probs, &dataset.labels, &dataset.splits.test);
    let bias_value = {
        let _bias = ppfr_telemetry::span!("bias");
        bias(&probs, &outcome.similarity_laplacian)
    };
    let grid = auditor.audit(&probs);
    Evaluation {
        accuracy,
        bias: bias_value,
        risk_auc: grid.unsupervised.average_auc,
        risk_gap: grid.unsupervised.risk_gap,
        auc_per_distance: grid
            .unsupervised
            .auc_per_distance
            .iter()
            .map(|&(kind, auc)| (kind.name().to_string(), auc))
            .collect(),
        worst_risk_auc: grid.worst_case_auc,
        auc_per_threat: grid.auc_per_threat(),
    }
}

/// Relative change `(ours − reference) / reference`, guarding against a zero
/// reference.
fn relative_change(reference: f64, ours: f64) -> f64 {
    if reference.abs() <= 1e-12 {
        return 0.0;
    }
    (ours - reference) / reference
}

/// Computes the Δ metrics of Eq. (22) for a method against the vanilla
/// reference.
pub fn deltas(reference: &Evaluation, ours: &Evaluation) -> MethodDeltas {
    let d_acc = relative_change(reference.accuracy, ours.accuracy);
    let d_bias = relative_change(reference.bias, ours.bias);
    let d_risk = relative_change(reference.risk_auc, ours.risk_auc);
    let denom = d_acc.abs().max(1e-6);
    MethodDeltas {
        d_acc,
        d_bias,
        d_risk,
        delta: d_bias * d_risk / denom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_method, Method};
    use ppfr_datasets::{generate, two_block_synthetic};
    use ppfr_gnn::ModelKind;

    #[test]
    fn evaluation_fields_are_in_range() {
        let ds = generate(&two_block_synthetic(), 61);
        let cfg = PpfrConfig {
            vanilla_epochs: 60,
            ..PpfrConfig::smoke()
        };
        let outcome = run_method(&ds, ModelKind::Gcn, Method::Vanilla, &cfg);
        let eval = evaluate(&outcome, &ds, &cfg);
        assert!((0.0..=1.0).contains(&eval.accuracy));
        assert!(eval.bias >= 0.0);
        assert!((0.0..=1.0).contains(&eval.risk_auc));
        assert!(eval.risk_gap >= 0.0);
        assert_eq!(eval.auc_per_distance.len(), 8);
        assert_eq!(eval.auc_per_threat.len(), 4, "full threat grid");
        assert!((0.0..=1.0).contains(&eval.worst_risk_auc));
        let best_distance = eval
            .auc_per_distance
            .iter()
            .map(|&(_, a)| a)
            .fold(0.5, f64::max);
        assert!(
            eval.worst_risk_auc >= best_distance,
            "worst case {} cannot be below the best unsupervised distance {best_distance}",
            eval.worst_risk_auc
        );
        assert!(
            eval.accuracy > 0.7,
            "vanilla GCN should classify the easy synthetic graph, got {}",
            eval.accuracy
        );
        assert!(
            eval.risk_auc > 0.5,
            "a trained model leaks some edges, got AUC {}",
            eval.risk_auc
        );
    }

    #[test]
    fn deltas_match_hand_computation_and_sign_convention() {
        let reference = Evaluation {
            accuracy: 0.8,
            bias: 0.10,
            risk_auc: 0.90,
            risk_gap: 0.5,
            auc_per_distance: vec![],
            worst_risk_auc: 0.0,
            auc_per_threat: vec![],
        };
        let ours = Evaluation {
            accuracy: 0.76,
            bias: 0.05,
            risk_auc: 0.88,
            risk_gap: 0.4,
            auc_per_distance: vec![],
            worst_risk_auc: 0.0,
            auc_per_threat: vec![],
        };
        let d = deltas(&reference, &ours);
        assert!((d.d_acc + 0.05).abs() < 1e-12);
        assert!((d.d_bias + 0.5).abs() < 1e-12);
        assert!((d.d_risk + 0.0222222).abs() < 1e-6);
        // bias ↓ and risk ↓ together give a positive Δ.
        assert!(d.delta > 0.0);
        // bias ↓ but risk ↑ gives a negative Δ.
        let worse_risk = Evaluation {
            risk_auc: 0.95,
            ..ours
        };
        assert!(deltas(&reference, &worse_risk).delta < 0.0);
    }

    #[test]
    fn zero_reference_values_do_not_divide_by_zero() {
        let reference = Evaluation {
            accuracy: 0.0,
            bias: 0.0,
            risk_auc: 0.0,
            risk_gap: 0.0,
            auc_per_distance: vec![],
            worst_risk_auc: 0.0,
            auc_per_threat: vec![],
        };
        let ours = reference.clone();
        let d = deltas(&reference, &ours);
        assert!(d.d_acc == 0.0 && d.d_bias == 0.0 && d.d_risk == 0.0);
        assert!(d.delta.is_finite());
    }

    #[test]
    fn evaluation_serialises_for_experiment_reports() {
        let eval = Evaluation {
            accuracy: 0.85,
            bias: 0.07,
            risk_auc: 0.91,
            risk_gap: 0.4,
            auc_per_distance: vec![("cosine".into(), 0.9)],
            worst_risk_auc: 0.93,
            auc_per_threat: vec![("posteriors+shadow".into(), 0.93)],
        };
        let json = serde_json::to_string(&eval).expect("serialise");
        let back: Evaluation = serde_json::from_str(&json).expect("deserialise");
        assert!((back.accuracy - eval.accuracy).abs() < 1e-12);
        assert_eq!(back.auc_per_distance.len(), 1);
        assert!((back.worst_risk_auc - 0.93).abs() < 1e-12);
        assert_eq!(back.auc_per_threat.len(), 1);
    }
}
