//! # PPFR — Privacy-aware Perturbations and Fairness-aware Reweighting
//!
//! Reproduction of *"Unraveling Privacy Risks of Individual Fairness in Graph
//! Neural Networks"* (ICDE 2024).  This crate is the public entry point: it
//! wires the substrates (graphs, datasets, GNNs, fairness and privacy metrics,
//! influence functions, the QCLP solver) into
//!
//! * the **PPFR pipeline** ([`pipeline::run_method`] with [`Method::Ppfr`]):
//!   vanilla training, fairness-aware re-weighting via influence functions +
//!   QCLP, privacy-aware heterophilic edge perturbation, and fine-tuning;
//! * the **baselines** of the paper's evaluation: `Vanilla`, `Reg` (InFoRM
//!   regularisation), `DpReg` (edge DP + regularisation), `DpFr` (edge DP +
//!   fairness re-weighting);
//! * the **evaluation harness** ([`evaluate()`]) producing accuracy, InFoRM
//!   bias, link-stealing AUC (both the paper's mean-distance AUC and the
//!   worst case over `ppfr_attacks`' supervised threat-model grid) and the
//!   combined Δ metric of Eq. (22);
//! * the **experiment drivers** ([`experiments`]) that regenerate every table
//!   and figure of the paper.
//!
//! ```no_run
//! use ppfr_core::{ExperimentScale, Method, PpfrConfig, pipeline, evaluate};
//! use ppfr_datasets::{cora, generate};
//! use ppfr_gnn::ModelKind;
//!
//! let dataset = generate(&cora(), 7);
//! let cfg = PpfrConfig::default();
//! let vanilla = pipeline::run_method(&dataset, ModelKind::Gcn, Method::Vanilla, &cfg);
//! let ppfr = pipeline::run_method(&dataset, ModelKind::Gcn, Method::Ppfr, &cfg);
//! let base = evaluate::evaluate(&vanilla, &dataset, &cfg);
//! let ours = evaluate::evaluate(&ppfr, &dataset, &cfg);
//! println!("Δ = {:+.3}", evaluate::deltas(&base, &ours).delta);
//! let _ = ExperimentScale::smoke();
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod evaluate;
pub mod experiments;
pub mod perturb;
pub mod pipeline;
pub mod reweight;

pub use config::{ExperimentScale, PpfrConfig};
pub use evaluate::{
    attack_evaluator, attack_sample, deltas, evaluate, evaluate_with, predictions, threat_auditor,
    Evaluation, MethodDeltas,
};
pub use perturb::heterophilic_perturbation;
pub use pipeline::{run_method, run_method_from_vanilla, Method, TrainedOutcome};
pub use ppfr_attacks::{ThreatAuditor, ThreatGridReport, ThreatModel, ThreatOutcome};
pub use reweight::fairness_weights;
