//! Privacy-aware perturbation (PP): heterophilic noise edges (§VI-B2).

use ppfr_gnn::{AnyModel, GnnModel, GraphContext};
use ppfr_graph::{EdgePerturbation, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the privacy-aware perturbation `ΔA`: for every node `v_i`, sample
/// `γ · |N(i)|` unconnected partners whose *predicted* label (from the
/// vanilla-trained GNN) differs from `v_i`'s predicted label, and add those
/// heterophilic edges.
///
/// The strategy follows the two insights of §VI-B2: heterophilic edges shrink
/// `d₀` (unconnected pairs become closer in prediction space) and shrink the
/// class-mean separation `‖μ₁ − μ₀‖` of Eq. (20), both of which restrict the
/// privacy risk raised by the fairness fine-tuning.
pub fn heterophilic_perturbation(
    model: &AnyModel,
    ctx: &GraphContext,
    ratio: f64,
    seed: u64,
) -> EdgePerturbation {
    let logits = model.forward(ctx);
    let predicted = logits.row_argmax();
    let n = ctx.n_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    EdgePerturbation::per_node_sampled(&ctx.graph, ratio, &mut rng, |v| {
        let own = predicted[v];
        (0..n)
            .filter(|&u| u != v && predicted[u] != own && !ctx.graph.has_edge(u, v))
            .collect()
    })
}

/// Convenience wrapper: returns the perturbed graph `A' = A + ΔA` directly.
pub fn perturbed_graph(model: &AnyModel, ctx: &GraphContext, ratio: f64, seed: u64) -> Graph {
    heterophilic_perturbation(model, ctx, ratio, seed).apply(&ctx.graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_datasets::{generate, two_block_synthetic};
    use ppfr_gnn::{train, ModelKind, TrainConfig};
    use ppfr_graph::homophily;

    fn trained() -> (AnyModel, GraphContext, Vec<usize>) {
        let ds = generate(&two_block_synthetic(), 41);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let mut model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 8, ds.n_classes, 3);
        let w = vec![1.0; ds.splits.train.len()];
        let cfg = TrainConfig {
            epochs: 80,
            lr: 0.02,
            weight_decay: 5e-4,
            seed: 1,
        };
        train(
            &mut model,
            &ctx,
            &ds.labels,
            &ds.splits.train,
            &w,
            None,
            &cfg,
        );
        (model, ctx, ds.labels.clone())
    }

    #[test]
    fn perturbation_adds_only_new_heterophilic_edges() {
        let (model, ctx, _) = trained();
        let logits = model.forward(&ctx);
        let predicted = logits.row_argmax();
        let delta = heterophilic_perturbation(&model, &ctx, 1.0, 9);
        assert!(!delta.is_empty(), "with γ=1 some edges must be added");
        for &(u, v) in delta.edges() {
            assert!(!ctx.graph.has_edge(u, v), "({u},{v}) already existed");
            assert_ne!(
                predicted[u], predicted[v],
                "({u},{v}) is not heterophilic w.r.t. predictions"
            );
        }
    }

    #[test]
    fn perturbation_budget_scales_with_gamma() {
        let (model, ctx, _) = trained();
        let small = heterophilic_perturbation(&model, &ctx, 0.3, 9);
        let large = heterophilic_perturbation(&model, &ctx, 1.5, 9);
        assert!(
            large.len() > small.len(),
            "γ=1.5 ({}) must add more edges than γ=0.3 ({})",
            large.len(),
            small.len()
        );
    }

    #[test]
    fn perturbed_graph_has_lower_homophily() {
        let (model, ctx, labels) = trained();
        let before = homophily(&ctx.graph, &labels);
        let after_graph = perturbed_graph(&model, &ctx, 1.0, 9);
        let after = homophily(&after_graph, &labels);
        assert!(
            after < before,
            "heterophilic noise must reduce homophily: before {before}, after {after}"
        );
        assert!(after_graph.n_edges() > ctx.graph.n_edges());
    }

    #[test]
    fn zero_ratio_is_a_noop() {
        let (model, ctx, _) = trained();
        let delta = heterophilic_perturbation(&model, &ctx, 0.0, 9);
        assert!(delta.is_empty());
    }
}
