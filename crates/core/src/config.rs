//! Hyper-parameter configuration for the PPFR pipeline and the experiments.

use ppfr_gnn::TrainConfig;
use ppfr_influence::{InfluenceConfig, LissaConfig};
use serde::{Deserialize, Serialize};

/// All hyper-parameters of the PPFR pipeline and its baselines.
///
/// Defaults follow the paper's setup (§VII-B1): hidden width 16, Adam,
/// `α = 0.9`, `β = 0.1`, fine-tuning budget `e_re = s · e_va` with
/// `s ∈ [0.1, 0.25]`, and ε-edge-DP for the DP baselines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PpfrConfig {
    /// Hidden-layer width of every GNN.
    pub hidden: usize,
    /// Vanilla-training epochs `e_va`.
    pub vanilla_epochs: usize,
    /// Fine-tuning fraction `s` (`e_re = s · e_va`).
    pub finetune_fraction: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Strength λ of the InFoRM fairness regulariser (Reg / DPReg baselines).
    pub fairness_lambda: f64,
    /// Ratio γ of heterophilic noise edges per node (`|N(i)_Δ| = γ|N(i)|`).
    pub perturb_ratio: f64,
    /// Edge-DP budget ε for EdgeRand / LapGraph.
    pub dp_epsilon: f64,
    /// QCLP re-weighting budget α.
    pub qclp_alpha: f64,
    /// QCLP utility-cost budget β.
    pub qclp_beta: f64,
    /// Damping of the influence-function Hessian.
    pub influence_damping: f64,
    /// Conjugate-gradient iterations for influence solves.
    pub influence_cg_iters: usize,
    /// Per-node neighbour fanout for sampled training; `0` disables sampling
    /// and trains full-batch on the exact operators (the paper's protocol).
    pub train_sample_fanout: usize,
    /// Neumann truncation depth of the stochastic LiSSA influence estimator;
    /// `0` keeps the exact dense-CG engine (the paper's protocol).
    pub lissa_depth: usize,
    /// LiSSA spectral scale `c`; `0.0` selects it by power iteration.
    pub lissa_scale: f64,
    /// LiSSA mini-batch size per HVP; `0` uses the full training set.
    pub lissa_batch: usize,
    /// Independent LiSSA chains averaged into the estimate.
    pub lissa_samples: usize,
    /// Master RNG seed (models, DP noise, perturbation sampling, pair sampling).
    pub seed: u64,
}

impl Default for PpfrConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            vanilla_epochs: 200,
            finetune_fraction: 0.2,
            lr: 0.01,
            weight_decay: 5e-4,
            fairness_lambda: 4.0,
            perturb_ratio: 1.0,
            dp_epsilon: 4.0,
            qclp_alpha: 0.9,
            qclp_beta: 0.1,
            influence_damping: 0.01,
            influence_cg_iters: 25,
            train_sample_fanout: 0,
            lissa_depth: 0,
            lissa_scale: 0.0,
            lissa_batch: 0,
            lissa_samples: 1,
            seed: 7,
        }
    }
}

impl PpfrConfig {
    /// Number of fine-tuning epochs `e_re = max(1, s · e_va)`.
    pub fn finetune_epochs(&self) -> usize {
        ((self.finetune_fraction * self.vanilla_epochs as f64).round() as usize).max(1)
    }

    /// Training configuration for the vanilla phase.
    pub fn vanilla_train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.vanilla_epochs,
            lr: self.lr,
            weight_decay: self.weight_decay,
            seed: self.seed,
        }
    }

    /// Training configuration for the fine-tuning phase.
    pub fn finetune_train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.finetune_epochs(),
            lr: self.lr,
            weight_decay: self.weight_decay,
            seed: self.seed.wrapping_add(1),
        }
    }

    /// Influence-function configuration derived from this config.
    pub fn influence_config(&self) -> InfluenceConfig {
        InfluenceConfig {
            damping: self.influence_damping,
            cg_iters: self.influence_cg_iters,
            cg_tol: 1e-6,
            fd_step: 1e-4,
        }
    }

    /// Stochastic-estimator configuration derived from this config, used when
    /// [`PpfrConfig::lissa_depth`] is non-zero.  Shares the exact engine's
    /// damping and FD step so the two estimators solve the same damped system.
    pub fn lissa_config(&self) -> LissaConfig {
        LissaConfig {
            damping: self.influence_damping,
            fd_step: 1e-4,
            depth: self.lissa_depth.max(1),
            scale: self.lissa_scale,
            batch: self.lissa_batch,
            samples: self.lissa_samples.max(1),
            seed: self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// A cheaper configuration for smoke tests and Criterion benches: fewer
    /// epochs and CG iterations, same structure.
    pub fn smoke() -> Self {
        Self {
            vanilla_epochs: 60,
            influence_cg_iters: 10,
            ..Self::default()
        }
    }
}

/// Scale knob shared by the experiment drivers so the same code serves the
/// full reproduction (paper scale) and the fast benchmark/CI variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Full experiment scale used to produce EXPERIMENTS.md.
    Full,
    /// Reduced scale used by Criterion benches and smoke tests.
    Smoke,
}

impl ExperimentScale {
    /// Convenience constructor mirroring [`PpfrConfig::smoke`].
    pub fn smoke() -> Self {
        ExperimentScale::Smoke
    }

    /// The pipeline configuration matching this scale.
    pub fn config(self) -> PpfrConfig {
        match self {
            ExperimentScale::Full => PpfrConfig::default(),
            ExperimentScale::Smoke => PpfrConfig::smoke(),
        }
    }

    /// Scales a dataset node count: the smoke variant shrinks every dataset.
    pub fn scale_nodes(self, n: usize) -> usize {
        match self {
            ExperimentScale::Full => n,
            ExperimentScale::Smoke => (n / 4).max(120),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finetune_epochs_follow_the_fraction() {
        let cfg = PpfrConfig {
            vanilla_epochs: 200,
            finetune_fraction: 0.2,
            ..Default::default()
        };
        assert_eq!(cfg.finetune_epochs(), 40);
        let tiny = PpfrConfig {
            vanilla_epochs: 2,
            finetune_fraction: 0.1,
            ..Default::default()
        };
        assert_eq!(
            tiny.finetune_epochs(),
            1,
            "fine-tuning always runs at least one epoch"
        );
    }

    #[test]
    fn smoke_config_is_cheaper_than_full() {
        let full = PpfrConfig::default();
        let smoke = PpfrConfig::smoke();
        assert!(smoke.vanilla_epochs < full.vanilla_epochs);
        assert!(smoke.influence_cg_iters < full.influence_cg_iters);
    }

    #[test]
    fn scale_shrinks_nodes_only_in_smoke_mode() {
        assert_eq!(ExperimentScale::Full.scale_nodes(1400), 1400);
        assert!(ExperimentScale::Smoke.scale_nodes(1400) < 1400);
        assert!(ExperimentScale::Smoke.scale_nodes(100) >= 100);
    }

    #[test]
    fn config_serialises_roundtrip() {
        let cfg = PpfrConfig::default();
        let json = serde_json::to_string(&cfg).expect("serialise");
        let back: PpfrConfig = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back.hidden, cfg.hidden);
        assert_eq!(back.vanilla_epochs, cfg.vanilla_epochs);
        assert_eq!(back.train_sample_fanout, cfg.train_sample_fanout);
        assert_eq!(back.lissa_depth, cfg.lissa_depth);
    }

    #[test]
    fn defaults_keep_the_exact_full_batch_protocol() {
        let cfg = PpfrConfig::default();
        assert_eq!(cfg.train_sample_fanout, 0, "sampling must be opt-in");
        assert_eq!(cfg.lissa_depth, 0, "LiSSA must be opt-in");
    }

    #[test]
    fn lissa_config_shares_the_exact_engines_damped_system() {
        let cfg = PpfrConfig {
            lissa_depth: 150,
            lissa_batch: 8,
            lissa_samples: 3,
            ..Default::default()
        };
        let lissa = cfg.lissa_config();
        assert_eq!(lissa.damping, cfg.influence_config().damping);
        assert_eq!(lissa.fd_step, cfg.influence_config().fd_step);
        assert_eq!(lissa.depth, 150);
        assert_eq!(lissa.batch, 8);
        assert_eq!(lissa.samples, 3);
        // Degenerate values are clamped to runnable ones.
        let zero = PpfrConfig {
            lissa_samples: 0,
            ..Default::default()
        };
        assert_eq!(zero.lissa_config().depth, 1);
        assert_eq!(zero.lissa_config().samples, 1);
    }
}
