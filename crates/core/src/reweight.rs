//! Fairness-aware re-weighting (FR): influence functions + QCLP (Eq. 13).

use crate::PpfrConfig;
use ppfr_gnn::{AnyModel, GraphContext};
use ppfr_graph::SparseMatrix;
use ppfr_influence::{compute_influences, compute_influences_lissa, InfluenceSet, LissaConfig};
use ppfr_privacy::PairSample;
use ppfr_qclp::{solve, QclpProblem, SolverOptions};

/// LiSSA truncation depth of the budget-degraded influence estimator: deep
/// enough for a usable bias/utility ranking on the audit graphs, shallow
/// enough that its fixed cost is acceptable after the cell budget has run
/// out.
const DEGRADED_LISSA_DEPTH: usize = 8;

/// Outcome of the fairness-aware re-weighting step.
#[derive(Debug, Clone)]
pub struct ReweightOutcome {
    /// Optimal QCLP weights `w_v ∈ [−1, 1]`, aligned with the training nodes.
    pub weights: Vec<f64>,
    /// Fine-tuning loss weights `1 + w_v` ready for [`ppfr_gnn::train`].
    pub loss_weights: Vec<f64>,
    /// The per-node influences the QCLP was built from (kept for reporting,
    /// e.g. the Table II correlation analysis).
    pub influences: InfluenceSet,
    /// QCLP objective value (predicted first-order bias change).
    pub predicted_bias_change: f64,
}

/// Computes the fairness-aware loss weights for fine-tuning a vanilla-trained
/// model (§VI-B1):
///
/// 1. influence of every labelled node on utility and bias (Eqs. 11–12);
/// 2. QCLP of Eq. (13) solved by projected gradient descent;
/// 3. weights returned both raw (`w_v`) and as loss multipliers (`1 + w_v`).
pub fn fairness_weights(
    model: &AnyModel,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    l_s: &SparseMatrix,
    sample: &PairSample,
    cfg: &PpfrConfig,
) -> ReweightOutcome {
    // Estimator ladder: configured LiSSA (opt-in fast path) > budget-degraded
    // shallow LiSSA > exact dense CG (the paper's protocol).  The degraded
    // rung only engages when the ambient cell budget is already exhausted —
    // an exact solve would be truncated mid-CG anyway, so a shallow LiSSA
    // estimate is the better use of the remaining work; the downgrade is
    // recorded as a DegradationEvent so reports always flag approximation.
    let influences = if cfg.lissa_depth > 0 {
        compute_influences_lissa(
            model,
            ctx,
            labels,
            train_ids,
            l_s,
            sample,
            &cfg.lissa_config(),
        )
    } else if ppfr_resilience::budget_exhausted() {
        ppfr_resilience::note_degradation("influence", "cg", "lissa");
        let degraded = LissaConfig::from_influence(&cfg.influence_config(), DEGRADED_LISSA_DEPTH);
        // Run the fallback under a fresh unlimited budget: the exhausted
        // ambient budget would otherwise truncate the shallow estimator at
        // depth 0 via its own checkpoints.  Its cost is a small fixed
        // constant, which is the point of degrading in the first place.
        ppfr_resilience::with_budget(&ppfr_resilience::Budget::unlimited(), || {
            compute_influences_lissa(model, ctx, labels, train_ids, l_s, sample, &degraded)
        })
    } else {
        compute_influences(
            model,
            ctx,
            labels,
            train_ids,
            l_s,
            sample,
            &cfg.influence_config(),
        )
    };
    let problem = QclpProblem {
        bias_influence: influences.bias.clone(),
        util_influence: influences.util.clone(),
        alpha: cfg.qclp_alpha,
        beta: cfg.qclp_beta,
    };
    let solution = solve(&problem, &SolverOptions::default());
    let loss_weights: Vec<f64> = solution.weights.iter().map(|w| 1.0 + w).collect();
    ReweightOutcome {
        weights: solution.weights,
        loss_weights,
        influences,
        predicted_bias_change: solution.objective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_datasets::{generate, two_block_synthetic};
    use ppfr_gnn::{train, ModelKind};
    use ppfr_graph::{jaccard_similarity, similarity_laplacian};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_are_bounded_feasible_and_predict_bias_reduction() {
        let ds = generate(&two_block_synthetic(), 31);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let mut model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 8, ds.n_classes, 3);
        let cfg = PpfrConfig::smoke();
        let uniform = vec![1.0; ds.splits.train.len()];
        train(
            &mut model,
            &ctx,
            &ds.labels,
            &ds.splits.train,
            &uniform,
            None,
            &cfg.vanilla_train_config(),
        );
        let s = jaccard_similarity(&ds.graph);
        let l_s = similarity_laplacian(&s);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let sample = PairSample::balanced(&ds.graph, &mut rng);

        let outcome = fairness_weights(
            &model,
            &ctx,
            &ds.labels,
            &ds.splits.train,
            &l_s,
            &sample,
            &cfg,
        );
        assert_eq!(outcome.weights.len(), ds.splits.train.len());
        assert!(outcome
            .weights
            .iter()
            .all(|w| (-1.0 - 1e-6..=1.0 + 1e-6).contains(w)));
        assert!(outcome
            .loss_weights
            .iter()
            .zip(&outcome.weights)
            .all(|(&lw, &w)| (lw - (1.0 + w)).abs() < 1e-12));
        // The QCLP objective is the predicted first-order bias change; it must
        // not be positive (the zero vector is feasible with value 0).
        assert!(
            outcome.predicted_bias_change <= 1e-9,
            "predicted change {}",
            outcome.predicted_bias_change
        );
        // The weights must not be all zero (otherwise FR is a no-op).
        assert!(outcome.weights.iter().any(|&w| w.abs() > 1e-6));
        // The ℓ₂ budget of Eq. (13) holds.
        let norm_sq: f64 = outcome.weights.iter().map(|w| w * w).sum();
        assert!(norm_sq <= cfg.qclp_alpha * ds.splits.train.len() as f64 + 1e-6);
    }
}
