//! Drivers for Fig. 4 (attack AUC per distance), Fig. 5 and Fig. 7 (accuracy
//! cost per method).

use super::common::method_matrix_cells;
use super::high_homophily_specs;
use super::tables::Table4Result;
use crate::ExperimentScale;
use crate::Method;
use ppfr_gnn::ModelKind;
use serde::{Deserialize, Serialize};

const DATA_SEED: u64 = 7;

// ---------------------------------------------------------------------------
// Fig. 4 — privacy risk per distance, before and after the fairness regulariser
// ---------------------------------------------------------------------------

/// One bar pair of Fig. 4: attack AUC under one distance, vanilla vs Reg.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Dataset name.
    pub dataset: String,
    /// Distance metric name.
    pub distance: String,
    /// Attack AUC of the vanilla GCN.
    pub auc_vanilla: f64,
    /// Attack AUC of the fairness-regularised GCN.
    pub auc_reg: f64,
}

/// Full Fig. 4 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// One row per (dataset, distance).
    pub rows: Vec<Fig4Row>,
}

impl Fig4Result {
    /// Plain-text rendering of the figure's series.
    pub fn to_table_string(&self) -> String {
        let mut out =
            String::from("Fig. 4: link-stealing AUC per distance (Vanilla vs Reg, GCN)\n");
        out.push_str("dataset    distance      AUC(vanilla)  AUC(Reg)   change\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:<10} {:<13} {:>10.4} {:>10.4}  {:+.4}\n",
                row.dataset,
                row.distance,
                row.auc_vanilla,
                row.auc_reg,
                row.auc_reg - row.auc_vanilla
            ));
        }
        out
    }

    /// Number of (dataset, distance) pairs where the regularised model leaks
    /// at least as much as the vanilla model — the paper's RQ1 observation.
    pub fn count_risk_increases(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.auc_reg >= r.auc_vanilla)
            .count()
    }
}

/// Regenerates Fig. 4: attack AUC per distance metric for the vanilla GCN and
/// the fairness-regularised GCN on each high-homophily dataset.
pub fn fig4(scale: ExperimentScale) -> Fig4Result {
    let cfg = scale.config();
    let cells = method_matrix_cells(
        &high_homophily_specs(scale),
        &[ModelKind::Gcn],
        &[Method::Reg],
        &cfg,
        DATA_SEED,
    );
    let mut rows = Vec::new();
    for cell in &cells {
        for ((name_v, auc_v), (name_r, auc_r)) in cell
            .vanilla
            .evaluation
            .auc_per_distance
            .iter()
            .zip(cell.run.evaluation.auc_per_distance.iter())
        {
            debug_assert_eq!(name_v, name_r);
            rows.push(Fig4Row {
                dataset: cell.run.dataset.clone(),
                distance: name_v.clone(),
                auc_vanilla: *auc_v,
                auc_reg: *auc_r,
            });
        }
    }
    Fig4Result { rows }
}

// ---------------------------------------------------------------------------
// Figs. 5 & 7 — accuracy cost of the methods
// ---------------------------------------------------------------------------

/// One bar of Fig. 5 / Fig. 7: the accuracy cost of a method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigAccRow {
    /// Dataset name.
    pub dataset: String,
    /// Model architecture.
    pub model: String,
    /// Method name.
    pub method: String,
    /// Relative accuracy change vs vanilla (%).
    pub d_acc_pct: f64,
    /// Absolute accuracy (%) for context.
    pub accuracy_pct: f64,
}

/// Accuracy-cost figure (Fig. 5 for GCN & GAT, Fig. 7 for GraphSAGE).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigAccResult {
    /// Figure label ("Fig. 5" or "Fig. 7").
    pub label: String,
    /// One row per bar.
    pub rows: Vec<FigAccRow>,
}

impl FigAccResult {
    /// Plain-text rendering of the figure's bars.
    pub fn to_table_string(&self) -> String {
        let mut out = format!(
            "{}: accuracy cost of the methods (ΔAcc %, higher is better)\n",
            self.label
        );
        out.push_str("dataset    model      method    ΔAcc%     Acc%\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:<10} {:<10} {:<8} {:>8.2} {:>8.2}\n",
                row.dataset, row.model, row.method, row.d_acc_pct, row.accuracy_pct
            ));
        }
        out
    }
}

fn acc_rows_for_models(table4: &Table4Result, models: &[&str]) -> Vec<FigAccRow> {
    table4
        .rows
        .iter()
        .filter(|r| models.contains(&r.model.as_str()))
        .map(|r| FigAccRow {
            dataset: r.dataset.clone(),
            model: r.model.clone(),
            method: r.method.clone(),
            d_acc_pct: r.d_acc_pct,
            accuracy_pct: r.evaluation.evaluation.accuracy * 100.0,
        })
        .collect()
}

/// Derives Fig. 5 (accuracy cost on GCN and GAT) from a Table IV run.
pub fn fig5_from(table4: &Table4Result) -> FigAccResult {
    FigAccResult {
        label: "Fig. 5".to_string(),
        rows: acc_rows_for_models(table4, &["GCN", "GAT"]),
    }
}

/// Derives Fig. 7 (accuracy cost on GraphSAGE) from a Table IV run.
pub fn fig7_from(table4: &Table4Result) -> FigAccResult {
    FigAccResult {
        label: "Fig. 7".to_string(),
        rows: acc_rows_for_models(table4, &["GraphSage"]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tables::Table4Row;
    use crate::experiments::MethodRun;
    use crate::Evaluation;

    fn fake_table4() -> Table4Result {
        let eval = Evaluation {
            accuracy: 0.8,
            bias: 0.05,
            risk_auc: 0.9,
            risk_gap: 0.1,
            auc_per_distance: vec![],
            worst_risk_auc: 0.0,
            auc_per_threat: vec![],
        };
        let run = |model: &str, method: &str| MethodRun {
            dataset: "cora".into(),
            model: model.into(),
            method: method.into(),
            evaluation: eval.clone(),
        };
        let row = |model: &str, method: &str| Table4Row {
            dataset: "cora".into(),
            model: model.into(),
            method: method.into(),
            d_acc_pct: -2.0,
            d_bias_pct: -20.0,
            d_risk_pct: -1.0,
            delta: 0.1,
            evaluation: run(model, method),
            vanilla: run(model, "Vanilla"),
        };
        Table4Result {
            rows: vec![
                row("GCN", "Reg"),
                row("GAT", "PPFR"),
                row("GraphSage", "PPFR"),
            ],
        }
    }

    #[test]
    fn fig5_and_fig7_partition_the_models() {
        let t4 = fake_table4();
        let f5 = fig5_from(&t4);
        let f7 = fig7_from(&t4);
        assert_eq!(f5.rows.len(), 2);
        assert_eq!(f7.rows.len(), 1);
        assert!(f5.rows.iter().all(|r| r.model != "GraphSage"));
        assert!(f7.rows.iter().all(|r| r.model == "GraphSage"));
        assert!(f5.to_table_string().contains("Fig. 5"));
        assert!(f7.to_table_string().contains("Fig. 7"));
    }

    #[test]
    fn fig4_risk_increase_counter() {
        let result = Fig4Result {
            rows: vec![
                Fig4Row {
                    dataset: "cora".into(),
                    distance: "cosine".into(),
                    auc_vanilla: 0.8,
                    auc_reg: 0.85,
                },
                Fig4Row {
                    dataset: "cora".into(),
                    distance: "euclidean".into(),
                    auc_vanilla: 0.9,
                    auc_reg: 0.88,
                },
            ],
        };
        assert_eq!(result.count_risk_increases(), 1);
        assert!(result.to_table_string().contains("cosine"));
    }
}
