//! Driver for Fig. 6 — the ablation of the PP ratio and the FR fine-tuning
//! epochs (Cora, GAT in the paper; the dataset/model are parameters here so
//! the smoke scale can use a smaller pair).

use super::common::{scaled_spec, DatasetArtifacts};
use crate::{fairness_weights, heterophilic_perturbation, predictions};
use crate::{ExperimentScale, Method, PpfrConfig, TrainedOutcome};
use ppfr_attacks::ThreatAuditor;
use ppfr_datasets::{cora, two_block_synthetic, Dataset};
use ppfr_fairness::bias;
use ppfr_gnn::{train, GraphContext, ModelKind};
use ppfr_graph::{jaccard_similarity, similarity_laplacian};
use ppfr_nn::accuracy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

const DATA_SEED: u64 = 7;

/// One point of an ablation curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationPoint {
    /// The swept parameter value (fine-tuning epochs or perturbation ratio).
    pub x: f64,
    /// Test accuracy.
    pub accuracy: f64,
    /// InFoRM bias.
    pub bias: f64,
    /// Link-stealing risk (mean attack AUC).
    pub risk_auc: f64,
    /// Worst-case supervised threat-model attack AUC.
    pub worst_risk_auc: f64,
}

/// One panel of Fig. 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationCurve {
    /// Panel title ("FR only", "PP sweep + fixed FR", "fixed PP + FR sweep").
    pub title: String,
    /// Name of the swept parameter.
    pub x_label: String,
    /// The curve.
    pub points: Vec<AblationPoint>,
}

/// Full Fig. 6 result: the three panels plus the vanilla reference levels
/// (the dashed lines in the paper's figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Vanilla accuracy / bias / risk (the dashed reference lines).
    pub vanilla: AblationPoint,
    /// Left panel: FR only (zero perturbation), sweeping fine-tuning epochs.
    pub fr_only: AblationCurve,
    /// Middle panel: fixed FR epochs, sweeping the perturbation ratio γ.
    pub pp_sweep: AblationCurve,
    /// Right panel: fixed perturbation ratio, sweeping fine-tuning epochs.
    pub pp_fixed_fr_sweep: AblationCurve,
}

impl Fig6Result {
    /// Plain-text rendering of the three panels.
    pub fn to_table_string(&self) -> String {
        let mut out = String::from("Fig. 6: PPFR ablation (accuracy / bias / risk)\n");
        out.push_str(&format!(
            "vanilla reference: acc {:.4}  bias {:.4}  risk {:.4}  worst {:.4}\n",
            self.vanilla.accuracy,
            self.vanilla.bias,
            self.vanilla.risk_auc,
            self.vanilla.worst_risk_auc
        ));
        for curve in [&self.fr_only, &self.pp_sweep, &self.pp_fixed_fr_sweep] {
            out.push_str(&format!("\n[{}] (x = {})\n", curve.title, curve.x_label));
            out.push_str("x        acc      bias     risk     worst\n");
            for p in &curve.points {
                out.push_str(&format!(
                    "{:<8.2} {:.4}  {:.4}  {:.4}  {:.4}\n",
                    p.x, p.accuracy, p.bias, p.risk_auc, p.worst_risk_auc
                ));
            }
        }
        out
    }
}

struct AblationContext {
    dataset: Dataset,
    base_ctx: GraphContext,
    vanilla: TrainedOutcome,
    loss_weights: Vec<f64>,
    cfg: PpfrConfig,
}

fn evaluate_point(
    ab: &AblationContext,
    auditor: &mut ThreatAuditor,
    outcome: &TrainedOutcome,
    x: f64,
) -> AblationPoint {
    let probs = predictions(outcome, &ab.cfg);
    let grid = auditor.audit(&probs);
    AblationPoint {
        x,
        accuracy: accuracy(&probs, &ab.dataset.labels, &ab.dataset.splits.test),
        bias: bias(&probs, &outcome.similarity_laplacian),
        risk_auc: grid.unsupervised.average_auc,
        worst_risk_auc: grid.worst_case_auc,
    }
}

fn finetuned_outcome(ab: &AblationContext, gamma: f64, finetune_epochs: usize) -> TrainedOutcome {
    let mut model = ab.vanilla.model.clone();
    let deploy_ctx = if gamma > 0.0 {
        let delta =
            heterophilic_perturbation(&model, &ab.base_ctx, gamma, ab.cfg.seed ^ 0x7f4a_7c15);
        ab.base_ctx.with_graph(delta.apply(&ab.base_ctx.graph))
    } else {
        ab.base_ctx.clone()
    };
    if finetune_epochs > 0 {
        let mut cfg = ab.cfg.finetune_train_config();
        cfg.epochs = finetune_epochs;
        train(
            &mut model,
            &deploy_ctx,
            &ab.dataset.labels,
            &ab.dataset.splits.train,
            &ab.loss_weights,
            None,
            &cfg,
        );
    }
    TrainedOutcome {
        model,
        deploy_ctx,
        method: Method::Ppfr,
        model_kind: ab.vanilla.model_kind,
        similarity_laplacian: ab.vanilla.similarity_laplacian.clone(),
        fairness_loss_weights: Some(ab.loss_weights.clone()),
    }
}

/// Regenerates the three ablation panels of Fig. 6.
///
/// * Full scale uses Cora + GAT (as in the paper).
/// * Smoke scale uses the small two-block synthetic graph + GCN so benches
///   finish in seconds.
pub fn fig6_ablation(scale: ExperimentScale) -> Fig6Result {
    fig6_ablation_seeded(scale, DATA_SEED)
}

/// [`fig6_ablation`] with an explicit run seed, so the multi-seed scenario
/// runner can aggregate the ablation curves over repeated runs.  Like the
/// runner's scenarios, the seed drives both dataset generation and the
/// pipeline RNG streams, so repetitions differ in graph *and*
/// initialisation.
pub fn fig6_ablation_seeded(scale: ExperimentScale, data_seed: u64) -> Fig6Result {
    let (spec, kind) = match scale {
        ExperimentScale::Full => (scaled_spec(cora(), scale), ModelKind::Gat),
        ExperimentScale::Smoke => (two_block_synthetic(), ModelKind::Gcn),
    };
    let cfg = PpfrConfig {
        seed: data_seed,
        ..scale.config()
    };
    // Shared artifacts: the generated dataset, the vanilla checkpoint and
    // one auditor for the whole figure — every ablation point is attacked
    // on the same cached pair sample and shadow dataset.
    let mut artifacts = DatasetArtifacts::build(&spec, data_seed, &cfg);
    let (vanilla_outcome, vanilla_run) = artifacts.vanilla(kind, &cfg);
    let vanilla = vanilla_outcome.clone();
    let vanilla_point = AblationPoint {
        x: 0.0,
        accuracy: vanilla_run.evaluation.accuracy,
        bias: vanilla_run.evaluation.bias,
        risk_auc: vanilla_run.evaluation.risk_auc,
        worst_risk_auc: vanilla_run.evaluation.worst_risk_auc,
    };
    let dataset = artifacts.dataset.clone();
    let base_ctx = GraphContext::new(dataset.graph.clone(), dataset.features.clone());

    // Fairness-aware re-weighting computed once from the vanilla model.
    let s = jaccard_similarity(&dataset.graph);
    let l_s = similarity_laplacian(&s);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xb492_b66f);
    let sample = ppfr_privacy::PairSample::balanced(&dataset.graph, &mut rng);
    let fr = fairness_weights(
        &vanilla.model,
        &base_ctx,
        &dataset.labels,
        &dataset.splits.train,
        &l_s,
        &sample,
        &cfg,
    );

    let ab = AblationContext {
        dataset,
        base_ctx,
        vanilla,
        loss_weights: fr.loss_weights,
        cfg: cfg.clone(),
    };
    let auditor = artifacts.auditor_mut();
    let max_epochs = cfg.finetune_epochs().max(4);
    let epoch_grid: Vec<usize> = (0..=4).map(|i| i * max_epochs / 4).collect();
    let gamma_grid = [0.0, 0.5, 1.0, 1.5, 2.0];
    let fixed_gamma = cfg.perturb_ratio;
    let fixed_epochs = max_epochs;

    let fr_only = AblationCurve {
        title: "Only FR (zero edge perturbations)".to_string(),
        x_label: "# fine-tuning epochs".to_string(),
        points: epoch_grid
            .iter()
            .map(|&e| {
                let outcome = finetuned_outcome(&ab, 0.0, e);
                evaluate_point(&ab, auditor, &outcome, e as f64)
            })
            .collect(),
    };
    let pp_sweep = AblationCurve {
        title: "PP + fixed FR".to_string(),
        x_label: "ratio of edge perturbations γ".to_string(),
        points: gamma_grid
            .iter()
            .map(|&g| {
                let outcome = finetuned_outcome(&ab, g, fixed_epochs);
                evaluate_point(&ab, auditor, &outcome, g)
            })
            .collect(),
    };
    let pp_fixed_fr_sweep = AblationCurve {
        title: "Fixed PP + FR".to_string(),
        x_label: "# fine-tuning epochs".to_string(),
        points: epoch_grid
            .iter()
            .map(|&e| {
                let outcome = finetuned_outcome(&ab, fixed_gamma, e);
                evaluate_point(&ab, auditor, &outcome, e as f64)
            })
            .collect(),
    };

    Fig6Result {
        vanilla: vanilla_point,
        fr_only,
        pp_sweep,
        pp_fixed_fr_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ablation_produces_all_panels_with_monotone_x() {
        let result = fig6_ablation(ExperimentScale::Smoke);
        for curve in [&result.fr_only, &result.pp_sweep, &result.pp_fixed_fr_sweep] {
            assert!(
                curve.points.len() >= 4,
                "{} has too few points",
                curve.title
            );
            for w in curve.points.windows(2) {
                assert!(w[1].x >= w[0].x, "{}: x values must be sorted", curve.title);
            }
            for p in &curve.points {
                assert!((0.0..=1.0).contains(&p.accuracy));
                assert!((0.0..=1.0).contains(&p.risk_auc));
                assert!(p.bias.is_finite() && p.bias >= 0.0);
            }
        }
        // The first point of the FR-only panel (zero fine-tuning) must match
        // the vanilla reference exactly: it is the same model.
        let first = &result.fr_only.points[0];
        assert!((first.accuracy - result.vanilla.accuracy).abs() < 1e-9);
        assert!((first.bias - result.vanilla.bias).abs() < 1e-9);
        let text = result.to_table_string();
        assert!(text.contains("Only FR") && text.contains("Fixed PP"));
    }
}
