//! Drivers for Tables II, III, IV and V.

use super::common::{
    high_homophily_specs, method_matrix_cells, pct, weak_homophily_specs, MethodRun,
};
use crate::{attack_evaluator, attack_sample, predictions, ExperimentScale, Method, PpfrConfig};
use ppfr_datasets::generate;
use ppfr_fairness::bias;
use ppfr_gnn::ModelKind;
use ppfr_graph::{jaccard_similarity, similarity_laplacian};
use ppfr_influence::{compute_influences, pearson};
use serde::{Deserialize, Serialize};

/// Dataset generation seed shared by every experiment so all tables describe
/// the same graphs.
const DATA_SEED: u64 = 7;

// ---------------------------------------------------------------------------
// Table II — correlation between I_fbias and I_frisk
// ---------------------------------------------------------------------------

/// One cell of Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Model architecture.
    pub model: String,
    /// Pearson correlation between the bias and risk influence vectors.
    pub r: f64,
}

/// Full Table II result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// One row per (dataset, model).
    pub rows: Vec<Table2Row>,
}

impl Table2Result {
    /// Plain-text rendering matching the paper's layout.
    pub fn to_table_string(&self) -> String {
        let mut out = String::from("Table II: Pearson r between I_fbias and I_frisk\n");
        out.push_str("dataset    model      r\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:<10} {:<10} {:+.2}\n",
                row.dataset, row.model, row.r
            ));
        }
        out
    }
}

/// Regenerates Table II: train each model vanilla, compute the influence of
/// every labelled node on `f_bias` and `f_risk`, report their Pearson
/// correlation.
pub fn table2(scale: ExperimentScale) -> Table2Result {
    let cfg = scale.config();
    let mut rows = Vec::new();
    for spec in high_homophily_specs(scale) {
        let dataset = generate(&spec, DATA_SEED);
        let s = jaccard_similarity(&dataset.graph);
        let l_s = similarity_laplacian(&s);
        for kind in ModelKind::ALL {
            let outcome = crate::run_method(&dataset, kind, Method::Vanilla, &cfg);
            let sample = attack_sample(&dataset, &cfg);
            let influences = compute_influences(
                &outcome.model,
                &outcome.deploy_ctx,
                &dataset.labels,
                &dataset.splits.train,
                &l_s,
                &sample,
                &cfg.influence_config(),
            );
            rows.push(Table2Row {
                dataset: spec.name.to_string(),
                model: kind.name().to_string(),
                r: pearson(&influences.bias, &influences.risk),
            });
        }
    }
    Table2Result { rows }
}

// ---------------------------------------------------------------------------
// Table III — accuracy and bias of GCN, vanilla vs Reg
// ---------------------------------------------------------------------------

/// One row of Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: String,
    /// Vanilla test accuracy (%).
    pub vanilla_acc: f64,
    /// Vanilla InFoRM bias.
    pub vanilla_bias: f64,
    /// Regularised test accuracy (%).
    pub reg_acc: f64,
    /// Regularised InFoRM bias.
    pub reg_bias: f64,
}

/// Full Table III result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Result {
    /// One row per dataset.
    pub rows: Vec<Table3Row>,
}

impl Table3Result {
    /// Plain-text rendering matching the paper's layout.
    pub fn to_table_string(&self) -> String {
        let mut out = String::from("Table III: accuracy and bias of GCN (Vanilla vs Reg)\n");
        out.push_str("dataset    method   acc(%)   bias\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:<10} Vanilla  {:6.2}  {:.4}\n{:<10} Reg      {:6.2}  {:.4}\n",
                row.dataset,
                row.vanilla_acc,
                row.vanilla_bias,
                row.dataset,
                row.reg_acc,
                row.reg_bias
            ));
        }
        out
    }
}

/// Regenerates Table III.
pub fn table3(scale: ExperimentScale) -> Table3Result {
    let cfg = scale.config();
    let cells = method_matrix_cells(
        &high_homophily_specs(scale),
        &[ModelKind::Gcn],
        &[Method::Reg],
        &cfg,
        DATA_SEED,
    );
    let rows = cells
        .iter()
        .map(|cell| Table3Row {
            dataset: cell.run.dataset.clone(),
            vanilla_acc: cell.vanilla.evaluation.accuracy * 100.0,
            vanilla_bias: cell.vanilla.evaluation.bias,
            reg_acc: cell.run.evaluation.accuracy * 100.0,
            reg_bias: cell.run.evaluation.bias,
        })
        .collect();
    Table3Result { rows }
}

// ---------------------------------------------------------------------------
// Tables IV & V — method comparison (Δbias, Δrisk, Δ, Δacc)
// ---------------------------------------------------------------------------

/// One (dataset, model, method) cell of Table IV / Table V.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Dataset name.
    pub dataset: String,
    /// Model architecture.
    pub model: String,
    /// Method name.
    pub method: String,
    /// Relative accuracy change vs vanilla (%).
    pub d_acc_pct: f64,
    /// Relative bias change vs vanilla (%).
    pub d_bias_pct: f64,
    /// Relative risk change vs vanilla (%).
    pub d_risk_pct: f64,
    /// Combined metric Δ of Eq. (22) (fractional form, as in the paper).
    pub delta: f64,
    /// Absolute evaluation of this cell (kept for the figures).
    pub evaluation: MethodRun,
    /// Absolute evaluation of the vanilla reference for this (dataset, model).
    pub vanilla: MethodRun,
}

/// Full Table IV result (also reused for Table V and Figs. 5 & 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Result {
    /// One row per (dataset, model, method).
    pub rows: Vec<Table4Row>,
}

/// Table V is structurally identical to Table IV (different datasets, GCN only).
pub type Table5Result = Table4Result;

impl Table4Result {
    /// Plain-text rendering matching the paper's layout, extended with the
    /// absolute mean-distance AUC and the worst-case threat-model AUC so the
    /// weakest- and strongest-adversary risk are visible side by side.
    pub fn to_table_string(&self) -> String {
        let mut out = String::from(
            "dataset    model      method   Δacc%    Δbias%   Δrisk%   Δ       meanAUC  worstAUC\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<10} {:<10} {:<8} {:>8} {:>8} {:>8} {:+.3}  {:.4}   {:.4}\n",
                row.dataset,
                row.model,
                row.method,
                pct(row.d_acc_pct / 100.0),
                pct(row.d_bias_pct / 100.0),
                pct(row.d_risk_pct / 100.0),
                row.delta,
                row.evaluation.evaluation.risk_auc,
                row.evaluation.evaluation.worst_risk_auc
            ));
        }
        out
    }

    /// Rows for a particular model architecture (used by Figs. 5 and 7).
    pub fn rows_for_model(&self, model: &str) -> Vec<&Table4Row> {
        self.rows.iter().filter(|r| r.model == model).collect()
    }
}

fn method_matrix(
    specs: Vec<ppfr_datasets::DatasetSpec>,
    models: &[ModelKind],
    cfg: &PpfrConfig,
) -> Table4Result {
    let cells = method_matrix_cells(&specs, models, &Method::COMPARED, cfg, DATA_SEED);
    let rows = cells
        .into_iter()
        .map(|cell| {
            let d = cell.deltas();
            Table4Row {
                dataset: cell.run.dataset.clone(),
                model: cell.run.model.clone(),
                method: cell.run.method.clone(),
                d_acc_pct: d.d_acc * 100.0,
                d_bias_pct: d.d_bias * 100.0,
                d_risk_pct: d.d_risk * 100.0,
                delta: d.delta,
                evaluation: cell.run,
                vanilla: cell.vanilla,
            }
        })
        .collect();
    Table4Result { rows }
}

/// Regenerates Table IV: the Reg/DPReg/DPFR/PPFR comparison on the three
/// high-homophily datasets and all three architectures.
pub fn table4(scale: ExperimentScale) -> Table4Result {
    method_matrix(
        high_homophily_specs(scale),
        &ModelKind::ALL,
        &scale.config(),
    )
}

/// Regenerates Table V: the same comparison on the weak-homophily datasets
/// (Enzymes, Credit) with the GCN model.
pub fn table5(scale: ExperimentScale) -> Table5Result {
    method_matrix(
        weak_homophily_specs(scale),
        &[ModelKind::Gcn],
        &scale.config(),
    )
}

/// Convenience used by tests and the supporting §VII-A experiment: evaluates
/// vanilla vs Reg bias/risk on one dataset so RQ1 can be checked quickly.
pub fn vanilla_vs_reg_bias_risk(
    spec: &ppfr_datasets::DatasetSpec,
    cfg: &PpfrConfig,
) -> ((f64, f64), (f64, f64)) {
    let dataset = generate(spec, DATA_SEED);
    let s = jaccard_similarity(&dataset.graph);
    let l_s = similarity_laplacian(&s);
    let vanilla = crate::run_method(&dataset, ModelKind::Gcn, Method::Vanilla, cfg);
    let reg = crate::run_method(&dataset, ModelKind::Gcn, Method::Reg, cfg);
    let mut evaluator = attack_evaluator(&dataset, cfg);
    let p_vanilla = predictions(&vanilla, cfg);
    let p_reg = predictions(&reg, cfg);
    (
        (
            bias(&p_vanilla, &l_s),
            evaluator.evaluate(&p_vanilla).average_auc,
        ),
        (bias(&p_reg, &l_s), evaluator.evaluate(&p_reg).average_auc),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renderers_produce_one_line_per_row() {
        let result = Table2Result {
            rows: vec![
                Table2Row {
                    dataset: "cora".into(),
                    model: "GCN".into(),
                    r: -0.5,
                },
                Table2Row {
                    dataset: "cora".into(),
                    model: "GAT".into(),
                    r: 0.2,
                },
            ],
        };
        let text = result.to_table_string();
        assert_eq!(text.lines().count(), 2 + 2, "header + rows");
        assert!(text.contains("-0.50"));

        let t3 = Table3Result {
            rows: vec![Table3Row {
                dataset: "cora".into(),
                vanilla_acc: 86.1,
                vanilla_bias: 0.076,
                reg_acc: 85.4,
                reg_bias: 0.049,
            }],
        };
        assert!(t3.to_table_string().contains("Vanilla"));
    }

    #[test]
    fn table4_row_filter_by_model() {
        let mk_run = |m: &str| MethodRun {
            dataset: "cora".into(),
            model: m.into(),
            method: "Reg".into(),
            evaluation: crate::Evaluation {
                accuracy: 0.8,
                bias: 0.1,
                risk_auc: 0.9,
                risk_gap: 0.1,
                auc_per_distance: vec![],
                worst_risk_auc: 0.0,
                auc_per_threat: vec![],
            },
        };
        let row = |m: &str| Table4Row {
            dataset: "cora".into(),
            model: m.into(),
            method: "Reg".into(),
            d_acc_pct: -1.0,
            d_bias_pct: -30.0,
            d_risk_pct: 1.0,
            delta: -0.3,
            evaluation: mk_run(m),
            vanilla: mk_run(m),
        };
        let result = Table4Result {
            rows: vec![row("GCN"), row("GAT"), row("GCN")],
        };
        assert_eq!(result.rows_for_model("GCN").len(), 2);
        assert_eq!(result.rows_for_model("GraphSage").len(), 0);
        assert!(result.to_table_string().contains("GAT"));
    }
}
