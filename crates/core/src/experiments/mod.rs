//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each driver takes an [`ExperimentScale`](crate::ExperimentScale) so the
//! same code serves the full reproduction (the numbers recorded in
//! EXPERIMENTS.md) and the fast smoke variant used by Criterion benches and
//! integration tests.  Every result type serialises to JSON and renders a
//! plain-text table through its `to_table_string` method, which is what the
//! `exp_*` binaries in `ppfr-bench` print.

mod ablation;
mod common;
mod figures;
mod tables;

pub use ablation::{fig6_ablation, fig6_ablation_seeded, AblationCurve, AblationPoint, Fig6Result};
pub use common::{
    high_homophily_specs, method_matrix_cells, scaled_spec, weak_homophily_specs, DatasetArtifacts,
    MethodCell, MethodRun,
};
pub use figures::{fig4, fig5_from, fig7_from, Fig4Result, Fig4Row, FigAccResult, FigAccRow};
pub use tables::{
    table2, table3, table4, table5, vanilla_vs_reg_bias_risk, Table2Result, Table2Row,
    Table3Result, Table3Row, Table4Result, Table4Row, Table5Result,
};
