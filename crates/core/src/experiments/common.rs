//! Shared helpers for the experiment drivers.
//!
//! The heart of this module is [`DatasetArtifacts`]: one bundle per
//! `(dataset spec, data seed, config)` holding everything the five methods
//! share — the generated graph, the [`ThreatAuditor`] (pair sample, distance
//! buffers, shadow bundle) and the trained vanilla checkpoints per
//! architecture.  Every experiment driver (and the multi-seed scenario
//! runner in `ppfr_runner`) funnels its per-cell work through
//! [`DatasetArtifacts::cell`] instead of hand-rolling the
//! dataset × model × method loop.

use crate::{
    deltas, evaluate_with, run_method, run_method_from_vanilla, threat_auditor, Evaluation,
    ExperimentScale, Method, MethodDeltas, PpfrConfig, TrainedOutcome,
};
use ppfr_attacks::ThreatAuditor;
use ppfr_datasets::{citeseer, cora, credit, enzymes, generate, pubmed, Dataset, DatasetSpec};
use ppfr_gnn::ModelKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Scales a dataset spec for the requested experiment scale: the smoke
/// variant shrinks node counts and splits proportionally so every experiment
/// runs in seconds.
pub fn scaled_spec(mut spec: DatasetSpec, scale: ExperimentScale) -> DatasetSpec {
    let scaled_nodes = scale.scale_nodes(spec.n_nodes);
    if scaled_nodes != spec.n_nodes {
        let ratio = scaled_nodes as f64 / spec.n_nodes as f64;
        spec.n_val = ((spec.n_val as f64 * ratio).round() as usize).max(20);
        spec.n_test = ((spec.n_test as f64 * ratio).round() as usize).max(40);
        spec.n_nodes = scaled_nodes;
    }
    spec
}

/// The three high-homophily datasets of Tables II–IV (Cora, Citeseer, Pubmed).
pub fn high_homophily_specs(scale: ExperimentScale) -> Vec<DatasetSpec> {
    vec![
        scaled_spec(cora(), scale),
        scaled_spec(citeseer(), scale),
        scaled_spec(pubmed(), scale),
    ]
}

/// The two weak-homophily datasets of Table V (Enzymes, Credit).
pub fn weak_homophily_specs(scale: ExperimentScale) -> Vec<DatasetSpec> {
    vec![scaled_spec(enzymes(), scale), scaled_spec(credit(), scale)]
}

/// One trained-and-evaluated method, cached so several tables/figures can be
/// derived from a single set of runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodRun {
    /// Dataset name.
    pub dataset: String,
    /// Model architecture name.
    pub model: String,
    /// Method name.
    pub method: String,
    /// Evaluation of the trained model.
    pub evaluation: Evaluation,
}

/// One evaluated `(dataset, model, method)` cell together with its vanilla
/// reference for the same `(dataset, model)` — everything Tables III–V and
/// Figs. 4–7 need per entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodCell {
    /// The method's run.
    pub run: MethodRun,
    /// The vanilla reference run (same dataset, model and seed).
    pub vanilla: MethodRun,
}

impl MethodCell {
    /// The Δ metrics of Eq. (22) of this cell against its vanilla reference.
    pub fn deltas(&self) -> MethodDeltas {
        deltas(&self.vanilla.evaluation, &self.run.evaluation)
    }
}

/// Shared per-`(dataset spec, data seed, config)` artifacts: the generated
/// dataset, the threat auditor (pair sample + distance buffers + shadow
/// bundle + lazily fitted shadow attacks) and the trained vanilla
/// checkpoints per architecture.  Build once, then run as many
/// `(model, method)` cells as needed — only the method-specific training is
/// re-paid per cell.
#[derive(Debug, Clone)]
pub struct DatasetArtifacts {
    /// The generated dataset every run in this group shares.
    pub dataset: Dataset,
    auditor: ThreatAuditor,
    // Keyed lookups only today, but BTreeMap keeps any future iteration
    // deterministic — this cache sits on the path to serialized reports.
    vanilla: BTreeMap<ModelKind, (TrainedOutcome, MethodRun)>,
}

impl DatasetArtifacts {
    /// Generates the dataset and builds the shared threat auditor.
    pub fn build(spec: &DatasetSpec, data_seed: u64, cfg: &PpfrConfig) -> Self {
        let dataset = generate(spec, data_seed);
        let auditor = threat_auditor(&dataset, cfg);
        Self {
            dataset,
            auditor,
            vanilla: BTreeMap::new(),
        }
    }

    /// The shared threat auditor (e.g. to subset its registry before the
    /// first audit).
    pub fn auditor_mut(&mut self) -> &mut ThreatAuditor {
        &mut self.auditor
    }

    /// FNV-1a digest of the *immutable* part of the bundle — the generated
    /// dataset (features, labels, edges, split sizes).  The auditor and the
    /// vanilla checkpoint cache legitimately mutate as cells run, but the
    /// dataset must never change once built; the runner's artifact cache
    /// stores this digest at build time and revalidates on every hit so a
    /// corrupted bundle is detected and rebuilt instead of silently skewing
    /// every downstream metric.
    pub fn content_checksum(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.dataset.graph.n_nodes() as u64);
        for (u, v) in self.dataset.graph.edges() {
            eat(u as u64);
            eat(v as u64);
        }
        for &x in self.dataset.features.as_slice() {
            eat(x.to_bits());
        }
        for &l in &self.dataset.labels {
            eat(l as u64);
        }
        eat(self.dataset.n_classes as u64);
        eat(self.dataset.splits.train.len() as u64);
        eat(self.dataset.splits.val.len() as u64);
        eat(self.dataset.splits.test.len() as u64);
        h
    }

    /// Trained + audited vanilla checkpoints currently cached.
    pub fn n_vanilla_checkpoints(&self) -> usize {
        self.vanilla.len()
    }

    /// Trains and audits the vanilla checkpoint for `kind` unless it is
    /// already cached.
    fn ensure_vanilla(&mut self, kind: ModelKind, cfg: &PpfrConfig) {
        if self.vanilla.contains_key(&kind) {
            return;
        }
        let outcome = run_method(&self.dataset, kind, Method::Vanilla, cfg);
        let evaluation = evaluate_with(&outcome, &self.dataset, cfg, &mut self.auditor);
        let run = MethodRun {
            dataset: self.dataset.name.to_string(),
            model: kind.name().to_string(),
            method: Method::Vanilla.name().to_string(),
            evaluation,
        };
        self.vanilla.insert(kind, (outcome, run));
    }

    /// The trained vanilla checkpoint and its evaluated run for `kind`,
    /// training and auditing it on first use.
    pub fn vanilla(&mut self, kind: ModelKind, cfg: &PpfrConfig) -> (&TrainedOutcome, &MethodRun) {
        self.ensure_vanilla(kind, cfg);
        let (outcome, run) = self.vanilla.get(&kind).expect("just ensured");
        (outcome, run)
    }

    /// Runs one `(model, method)` cell against the cached artifacts: the
    /// vanilla checkpoint seeds the fine-tuning methods (see
    /// [`run_method_from_vanilla`]) and the shared auditor scores every
    /// method on the same pairs.
    pub fn cell(&mut self, kind: ModelKind, method: Method, cfg: &PpfrConfig) -> MethodCell {
        self.ensure_vanilla(kind, cfg);
        let (vanilla_outcome, vanilla_run) = self.vanilla.get(&kind).expect("just ensured");
        if method == Method::Vanilla {
            return MethodCell {
                run: vanilla_run.clone(),
                vanilla: vanilla_run.clone(),
            };
        }
        let outcome =
            run_method_from_vanilla(&self.dataset, kind, method, cfg, Some(vanilla_outcome));
        let evaluation = evaluate_with(&outcome, &self.dataset, cfg, &mut self.auditor);
        MethodCell {
            run: MethodRun {
                dataset: self.dataset.name.to_string(),
                model: kind.name().to_string(),
                method: method.name().to_string(),
                evaluation,
            },
            vanilla: vanilla_run.clone(),
        }
    }
}

/// The shared dataset × model × method loop behind Tables III–V and
/// Figs. 4–7: one [`DatasetArtifacts`] per spec, every requested cell run
/// against it, in `specs × models × methods` order.
pub fn method_matrix_cells(
    specs: &[DatasetSpec],
    models: &[ModelKind],
    methods: &[Method],
    cfg: &PpfrConfig,
    data_seed: u64,
) -> Vec<MethodCell> {
    let mut cells = Vec::new();
    for spec in specs {
        let mut artifacts = DatasetArtifacts::build(spec, data_seed, cfg);
        for &kind in models {
            for &method in methods {
                cells.push(artifacts.cell(kind, method, cfg));
            }
        }
    }
    cells
}

/// Formats a fractional change as the percentage string used in the paper's
/// tables (e.g. `-35.51`).
pub fn pct(value: f64) -> String {
    format!("{:+.2}", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scaling_shrinks_every_preset() {
        for spec in high_homophily_specs(ExperimentScale::Smoke)
            .into_iter()
            .chain(weak_homophily_specs(ExperimentScale::Smoke))
        {
            let full = match spec.name {
                "cora" => cora(),
                "citeseer" => citeseer(),
                "pubmed" => pubmed(),
                "enzymes" => enzymes(),
                "credit" => credit(),
                other => panic!("unexpected preset {other}"),
            };
            assert!(spec.n_nodes < full.n_nodes, "{} not scaled", spec.name);
            assert!(spec.n_val >= 20 && spec.n_test >= 40);
        }
    }

    #[test]
    fn full_scaling_is_identity() {
        let spec = scaled_spec(cora(), ExperimentScale::Full);
        assert_eq!(spec.n_nodes, cora().n_nodes);
        assert_eq!(spec.n_test, cora().n_test);
    }

    #[test]
    fn pct_formats_with_sign() {
        assert_eq!(pct(-0.3551), "-35.51");
        assert_eq!(pct(0.018), "+1.80");
    }

    #[test]
    fn artifacts_cache_the_vanilla_checkpoint_across_cells() {
        let spec = ppfr_datasets::two_block_synthetic();
        let cfg = PpfrConfig {
            vanilla_epochs: 20,
            influence_cg_iters: 4,
            ..PpfrConfig::smoke()
        };
        let mut artifacts = DatasetArtifacts::build(&spec, 7, &cfg);
        assert_eq!(artifacts.n_vanilla_checkpoints(), 0);
        let vanilla_cell = artifacts.cell(ModelKind::Gcn, Method::Vanilla, &cfg);
        assert_eq!(artifacts.n_vanilla_checkpoints(), 1);
        let reg_cell = artifacts.cell(ModelKind::Gcn, Method::Reg, &cfg);
        // Still one checkpoint: Reg reused the cached vanilla reference.
        assert_eq!(artifacts.n_vanilla_checkpoints(), 1);
        assert_eq!(vanilla_cell.run.method, "Vanilla");
        assert_eq!(reg_cell.run.method, "Reg");
        // The vanilla reference is identical in both cells.
        assert_eq!(
            vanilla_cell.run.evaluation.accuracy,
            reg_cell.vanilla.evaluation.accuracy
        );
        assert_eq!(
            vanilla_cell.run.evaluation.risk_auc,
            reg_cell.vanilla.evaluation.risk_auc
        );
        // A vanilla cell is its own reference, so its deltas vanish.
        let d = vanilla_cell.deltas();
        assert_eq!(d.d_acc, 0.0);
        assert_eq!(d.d_bias, 0.0);
        assert_eq!(d.d_risk, 0.0);
    }
}
