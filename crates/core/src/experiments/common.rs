//! Shared helpers for the experiment drivers.

use crate::{
    evaluate_with, run_method, Evaluation, ExperimentScale, Method, PpfrConfig, TrainedOutcome,
};
use ppfr_attacks::ThreatAuditor;
use ppfr_datasets::{citeseer, cora, credit, enzymes, pubmed, Dataset, DatasetSpec};
use ppfr_gnn::ModelKind;
use serde::{Deserialize, Serialize};

/// Scales a dataset spec for the requested experiment scale: the smoke
/// variant shrinks node counts and splits proportionally so every experiment
/// runs in seconds.
pub fn scaled_spec(mut spec: DatasetSpec, scale: ExperimentScale) -> DatasetSpec {
    let scaled_nodes = scale.scale_nodes(spec.n_nodes);
    if scaled_nodes != spec.n_nodes {
        let ratio = scaled_nodes as f64 / spec.n_nodes as f64;
        spec.n_val = ((spec.n_val as f64 * ratio).round() as usize).max(20);
        spec.n_test = ((spec.n_test as f64 * ratio).round() as usize).max(40);
        spec.n_nodes = scaled_nodes;
    }
    spec
}

/// The three high-homophily datasets of Tables II–IV (Cora, Citeseer, Pubmed).
pub fn high_homophily_specs(scale: ExperimentScale) -> Vec<DatasetSpec> {
    vec![
        scaled_spec(cora(), scale),
        scaled_spec(citeseer(), scale),
        scaled_spec(pubmed(), scale),
    ]
}

/// The two weak-homophily datasets of Table V (Enzymes, Credit).
pub fn weak_homophily_specs(scale: ExperimentScale) -> Vec<DatasetSpec> {
    vec![scaled_spec(enzymes(), scale), scaled_spec(credit(), scale)]
}

/// One trained-and-evaluated method, cached so several tables/figures can be
/// derived from a single set of runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodRun {
    /// Dataset name.
    pub dataset: String,
    /// Model architecture name.
    pub model: String,
    /// Method name.
    pub method: String,
    /// Evaluation of the trained model.
    pub evaluation: Evaluation,
}

/// Runs one `(dataset, model, method)` cell and evaluates it against the
/// dataset's shared [`ThreatAuditor`] (built once per dataset via
/// [`crate::threat_auditor`] so the pair sample, distance buffers and shadow
/// dataset are reused across the five methods).
pub fn run_and_evaluate(
    dataset: &Dataset,
    kind: ModelKind,
    method: Method,
    cfg: &PpfrConfig,
    auditor: &mut ThreatAuditor,
) -> (TrainedOutcome, MethodRun) {
    let outcome = run_method(dataset, kind, method, cfg);
    let evaluation = evaluate_with(&outcome, dataset, cfg, auditor);
    let run = MethodRun {
        dataset: dataset.name.to_string(),
        model: kind.name().to_string(),
        method: method.name().to_string(),
        evaluation,
    };
    (outcome, run)
}

/// Formats a fractional change as the percentage string used in the paper's
/// tables (e.g. `-35.51`).
pub fn pct(value: f64) -> String {
    format!("{:+.2}", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scaling_shrinks_every_preset() {
        for spec in high_homophily_specs(ExperimentScale::Smoke)
            .into_iter()
            .chain(weak_homophily_specs(ExperimentScale::Smoke))
        {
            let full = match spec.name {
                "cora" => cora(),
                "citeseer" => citeseer(),
                "pubmed" => pubmed(),
                "enzymes" => enzymes(),
                "credit" => credit(),
                other => panic!("unexpected preset {other}"),
            };
            assert!(spec.n_nodes < full.n_nodes, "{} not scaled", spec.name);
            assert!(spec.n_val >= 20 && spec.n_test >= 40);
        }
    }

    #[test]
    fn full_scaling_is_identity() {
        let spec = scaled_spec(cora(), ExperimentScale::Full);
        assert_eq!(spec.n_nodes, cora().n_nodes);
        assert_eq!(spec.n_test, cora().n_test);
    }

    #[test]
    fn pct_formats_with_sign() {
        assert_eq!(pct(-0.3551), "-35.51");
        assert_eq!(pct(0.018), "+1.80");
    }
}
