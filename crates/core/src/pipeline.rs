//! The training pipelines: vanilla training, the paper's baselines and PPFR.

use crate::{fairness_weights, heterophilic_perturbation, PpfrConfig};
use ppfr_datasets::Dataset;
use ppfr_gnn::{train, AnyModel, FairnessReg, GraphContext, ModelKind};
use ppfr_graph::{jaccard_similarity, similarity_laplacian, Graph, SparseMatrix};
use ppfr_privacy::{edge_rand, lap_graph, PairSample};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Positive-pair cap of the budget-degraded audit sample: large enough to
/// keep the QCLP risk term informative, small enough that the risk-gradient
/// pass stays cheap once the cell budget has run out.
const DEGRADED_PAIR_CAP: usize = 256;

/// The balanced audit [`PairSample`] of the paper's protocol — or, when the
/// ambient cell budget is already exhausted, a capped sample over at most
/// [`DEGRADED_PAIR_CAP`] positive pairs.  The downgrade is recorded as a
/// `pair_sample: balanced → capped` [`ppfr_resilience::DegradationEvent`], so
/// reports always flag the deviation from the exact protocol.
fn audit_pair_sample(graph: &Graph, rng: &mut StdRng) -> PairSample {
    if ppfr_resilience::budget_exhausted() {
        ppfr_resilience::note_degradation("pair_sample", "balanced", "capped");
        PairSample::capped(graph, DEGRADED_PAIR_CAP, rng)
    } else {
        PairSample::balanced(graph, rng)
    }
}

/// The training strategies compared in Tables IV and V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Plain training on the original graph (the `w/o` reference of Eq. 22).
    Vanilla,
    /// Vanilla training plus the InFoRM fairness regulariser (Reg).
    Reg,
    /// ε-edge-DP perturbed graph plus the fairness regulariser, trained from
    /// scratch (DPReg).
    DpReg,
    /// Vanilla training, then fine-tuning with fairness-aware re-weighting on
    /// an ε-edge-DP perturbed graph (DPFR).
    DpFr,
    /// The paper's method: vanilla training, then fine-tuning with
    /// fairness-aware re-weighting on the heterophilic privacy-aware
    /// perturbation (PPFR).
    Ppfr,
}

impl Method {
    /// The four non-reference methods, in the order of Table IV.
    pub const COMPARED: [Method; 4] = [Method::Reg, Method::DpReg, Method::DpFr, Method::Ppfr];

    /// All five strategies: the vanilla reference followed by the compared
    /// methods, in the order the scenario runner reports them.
    pub const ALL: [Method; 5] = [
        Method::Vanilla,
        Method::Reg,
        Method::DpReg,
        Method::DpFr,
        Method::Ppfr,
    ];

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Method::Vanilla => "Vanilla",
            Method::Reg => "Reg",
            Method::DpReg => "DPReg",
            Method::DpFr => "DPFR",
            Method::Ppfr => "PPFR",
        }
    }
}

/// A trained model together with the graph context it is deployed on and the
/// artefacts needed for evaluation.
#[derive(Debug, Clone)]
pub struct TrainedOutcome {
    /// The trained model.
    pub model: AnyModel,
    /// The graph context the model is deployed (and evaluated) on — the
    /// perturbed graph for DP/PP methods, the original graph otherwise.
    pub deploy_ctx: GraphContext,
    /// Which method produced this model.
    pub method: Method,
    /// Which architecture was trained.
    pub model_kind: ModelKind,
    /// Laplacian of the Jaccard similarity of the *original* graph, used by
    /// every fairness evaluation so methods are compared on the same notion
    /// of similarity.
    pub similarity_laplacian: SparseMatrix,
    /// Fine-tuning loss weights (`1 + w_v`), when the method used FR.
    pub fairness_loss_weights: Option<Vec<f64>>,
}

/// Chooses the edge-DP mechanism the paper uses per dataset: EdgeRand on the
/// smaller graphs (Cora, Citeseer), LapGraph on larger ones (Pubmed) where it
/// is the more efficient mechanism.
fn dp_perturb(dataset: &Dataset, epsilon: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
    if dataset.graph.n_nodes() >= 2500 {
        lap_graph(&dataset.graph, epsilon, &mut rng)
    } else {
        edge_rand(&dataset.graph, epsilon, &mut rng)
    }
}

fn build_model(
    kind: ModelKind,
    ctx: &GraphContext,
    dataset: &Dataset,
    cfg: &PpfrConfig,
) -> AnyModel {
    let mut model = AnyModel::new(
        kind,
        ctx.feat_dim(),
        cfg.hidden,
        dataset.n_classes,
        cfg.seed,
    );
    // GraphSAGE uses neighbour sampling, mirroring the paper's observation
    // that sampling dilutes edge-DP noise (Table IV discussion).
    if let AnyModel::GraphSage(sage) = &mut model {
        sage.sample_size = Some(10);
    }
    model
}

/// Runs one training strategy end to end and returns the trained outcome.
pub fn run_method(
    dataset: &Dataset,
    kind: ModelKind,
    method: Method,
    cfg: &PpfrConfig,
) -> TrainedOutcome {
    run_method_from_vanilla(dataset, kind, method, cfg, None)
}

/// [`run_method`] with an optional pre-trained vanilla checkpoint.
///
/// The strategies that begin with plain vanilla training (`Vanilla`, `DPFR`,
/// `PPFR`) reuse the checkpoint's model instead of re-running the vanilla
/// phase, and every strategy reuses its similarity Laplacian.  Vanilla
/// training is deterministic in `(dataset, kind, cfg)` and each later phase
/// draws from its own freshly seeded RNG stream, so the result is
/// bit-identical to [`run_method`] — the scenario runner's artifact cache
/// relies on this to stop the five methods from re-paying setup.
///
/// # Panics
/// Panics when the checkpoint is not a `Vanilla` outcome of the same
/// architecture.
pub fn run_method_from_vanilla(
    dataset: &Dataset,
    kind: ModelKind,
    method: Method,
    cfg: &PpfrConfig,
    vanilla: Option<&TrainedOutcome>,
) -> TrainedOutcome {
    let _span = ppfr_telemetry::span!("run_method");
    if let Some(checkpoint) = vanilla {
        assert_eq!(
            checkpoint.method,
            Method::Vanilla,
            "checkpoint must be a Vanilla outcome"
        );
        assert_eq!(
            checkpoint.model_kind, kind,
            "checkpoint architecture mismatch"
        );
    }
    let base_ctx = GraphContext::new(dataset.graph.clone(), dataset.features.clone());
    let l_s = match vanilla {
        Some(checkpoint) => checkpoint.similarity_laplacian.clone(),
        None => similarity_laplacian(&jaccard_similarity(&dataset.graph)),
    };
    let labels = &dataset.labels;
    let train_ids = &dataset.splits.train;
    let uniform = vec![1.0; train_ids.len()];
    let reg = FairnessReg {
        laplacian: l_s.clone(),
        lambda: cfg.fairness_lambda,
    };

    // The trained vanilla model: taken from the checkpoint when one is given,
    // trained from scratch otherwise.
    let vanilla_model = || match vanilla {
        Some(checkpoint) => checkpoint.model.clone(),
        None => {
            let mut model = build_model(kind, &base_ctx, dataset, cfg);
            train(
                &mut model,
                &base_ctx,
                labels,
                train_ids,
                &uniform,
                None,
                &cfg.vanilla_train_config(),
            );
            model
        }
    };

    let (model, deploy_ctx, fairness_loss_weights) = match method {
        Method::Vanilla => (vanilla_model(), base_ctx.clone(), None),
        Method::Reg => {
            let mut model = build_model(kind, &base_ctx, dataset, cfg);
            train(
                &mut model,
                &base_ctx,
                labels,
                train_ids,
                &uniform,
                Some(&reg),
                &cfg.vanilla_train_config(),
            );
            (model, base_ctx.clone(), None)
        }
        Method::DpReg => {
            let mut model = build_model(kind, &base_ctx, dataset, cfg);
            let dp_graph = dp_perturb(dataset, cfg.dp_epsilon, cfg.seed);
            let dp_ctx = base_ctx.with_graph(dp_graph);
            train(
                &mut model,
                &dp_ctx,
                labels,
                train_ids,
                &uniform,
                Some(&reg),
                &cfg.vanilla_train_config(),
            );
            (model, dp_ctx, None)
        }
        Method::DpFr => {
            let mut model = vanilla_model();
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xb492_b66f);
            let sample = audit_pair_sample(&dataset.graph, &mut rng);
            let fr = fairness_weights(&model, &base_ctx, labels, train_ids, &l_s, &sample, cfg);
            let dp_graph = dp_perturb(dataset, cfg.dp_epsilon, cfg.seed);
            let dp_ctx = base_ctx.with_graph(dp_graph);
            train(
                &mut model,
                &dp_ctx,
                labels,
                train_ids,
                &fr.loss_weights,
                None,
                &cfg.finetune_train_config(),
            );
            (model, dp_ctx, Some(fr.loss_weights))
        }
        Method::Ppfr => {
            let mut model = vanilla_model();
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xb492_b66f);
            let sample = audit_pair_sample(&dataset.graph, &mut rng);
            let fr = fairness_weights(&model, &base_ctx, labels, train_ids, &l_s, &sample, cfg);
            let delta = heterophilic_perturbation(
                &model,
                &base_ctx,
                cfg.perturb_ratio,
                cfg.seed ^ 0x7f4a_7c15,
            );
            let pp_ctx = base_ctx.with_graph(delta.apply(&base_ctx.graph));
            train(
                &mut model,
                &pp_ctx,
                labels,
                train_ids,
                &fr.loss_weights,
                None,
                &cfg.finetune_train_config(),
            );
            (model, pp_ctx, Some(fr.loss_weights))
        }
    };

    TrainedOutcome {
        model,
        deploy_ctx,
        method,
        model_kind: kind,
        similarity_laplacian: l_s,
        fairness_loss_weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_datasets::{generate, two_block_synthetic};

    fn tiny_dataset() -> Dataset {
        generate(&two_block_synthetic(), 51)
    }

    #[test]
    fn every_method_produces_a_deployable_model() {
        let ds = tiny_dataset();
        let cfg = PpfrConfig {
            vanilla_epochs: 40,
            influence_cg_iters: 8,
            ..PpfrConfig::smoke()
        };
        for method in [
            Method::Vanilla,
            Method::Reg,
            Method::DpReg,
            Method::DpFr,
            Method::Ppfr,
        ] {
            let outcome = run_method(&ds, ModelKind::Gcn, method, &cfg);
            assert_eq!(outcome.method, method);
            let logits = ppfr_gnn::GnnModel::forward(&outcome.model, &outcome.deploy_ctx);
            assert_eq!(logits.rows(), ds.n_nodes());
            assert!(
                !logits.has_non_finite(),
                "{} produced non-finite logits",
                method.name()
            );
        }
    }

    #[test]
    fn ppfr_deploys_on_a_perturbed_graph_and_carries_weights() {
        let ds = tiny_dataset();
        let cfg = PpfrConfig {
            vanilla_epochs: 40,
            influence_cg_iters: 8,
            ..PpfrConfig::smoke()
        };
        let outcome = run_method(&ds, ModelKind::Gcn, Method::Ppfr, &cfg);
        assert!(
            outcome.deploy_ctx.graph.n_edges() > ds.graph.n_edges(),
            "PP must add edges"
        );
        let weights = outcome.fairness_loss_weights.expect("PPFR uses FR weights");
        assert_eq!(weights.len(), ds.splits.train.len());
        assert!(
            weights.iter().all(|&w| (0.0..=2.0).contains(&w)),
            "loss weights are 1 + w with w in [-1,1]"
        );
    }

    #[test]
    fn vanilla_and_reg_deploy_on_the_original_graph() {
        let ds = tiny_dataset();
        let cfg = PpfrConfig {
            vanilla_epochs: 30,
            ..PpfrConfig::smoke()
        };
        for method in [Method::Vanilla, Method::Reg] {
            let outcome = run_method(&ds, ModelKind::Gcn, method, &cfg);
            assert_eq!(outcome.deploy_ctx.graph.n_edges(), ds.graph.n_edges());
            assert!(outcome.fairness_loss_weights.is_none());
        }
    }

    #[test]
    fn checkpoint_reuse_is_bit_identical_to_from_scratch() {
        let ds = tiny_dataset();
        let cfg = PpfrConfig {
            vanilla_epochs: 30,
            influence_cg_iters: 6,
            ..PpfrConfig::smoke()
        };
        let vanilla = run_method(&ds, ModelKind::Gcn, Method::Vanilla, &cfg);
        for method in [Method::Vanilla, Method::Reg, Method::DpFr, Method::Ppfr] {
            let scratch = run_method(&ds, ModelKind::Gcn, method, &cfg);
            let reused = run_method_from_vanilla(&ds, ModelKind::Gcn, method, &cfg, Some(&vanilla));
            let a = ppfr_gnn::GnnModel::forward(&scratch.model, &scratch.deploy_ctx);
            let b = ppfr_gnn::GnnModel::forward(&reused.model, &reused.deploy_ctx);
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "{} diverges when reusing the vanilla checkpoint",
                method.name()
            );
            assert_eq!(
                scratch.deploy_ctx.graph.n_edges(),
                reused.deploy_ctx.graph.n_edges()
            );
        }
    }

    #[test]
    #[should_panic(expected = "checkpoint must be a Vanilla outcome")]
    fn checkpoint_must_be_vanilla() {
        let ds = tiny_dataset();
        let cfg = PpfrConfig {
            vanilla_epochs: 10,
            influence_cg_iters: 4,
            ..PpfrConfig::smoke()
        };
        let reg = run_method(&ds, ModelKind::Gcn, Method::Reg, &cfg);
        let _ = run_method_from_vanilla(&ds, ModelKind::Gcn, Method::Ppfr, &cfg, Some(&reg));
    }

    #[test]
    fn method_names_match_the_paper() {
        assert_eq!(Method::Vanilla.name(), "Vanilla");
        assert_eq!(Method::Reg.name(), "Reg");
        assert_eq!(Method::DpReg.name(), "DPReg");
        assert_eq!(Method::DpFr.name(), "DPFR");
        assert_eq!(Method::Ppfr.name(), "PPFR");
        assert_eq!(Method::COMPARED.len(), 4);
    }
}
