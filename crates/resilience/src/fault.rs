//! Seeded, deterministic fault injection behind a zero-overhead gate.
//!
//! A [`FaultPlan`] names the faults to fire — worker/group panics, cell
//! errors, artifact corruption, simulated budget exhaustion — by *site* and
//! *key*, optionally limited to the first `times` occurrences and thinned by
//! a seeded probability.  The harness mirrors `PPFR_TELEMETRY`'s gating
//! discipline: with no plan installed (the production state), every query is
//! the single relaxed atomic load in [`armed`] — no lock, no allocation, no
//! branch beyond the load, so the chaos machinery costs nothing when off.
//!
//! Determinism: a probability draw hashes `(plan seed, site, key,
//! occurrence index)` with SplitMix64 — no RNG state, no clock — so the same
//! plan always fires the same faults in the same places, which is what lets
//! the chaos suite pin "surviving cells are bit-identical" across thread
//! counts.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;

/// What an injected fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Panic at the site (exercises quarantine + poison recovery).
    Panic,
    /// Return a typed error from the site (exercises retry).
    Error,
    /// Corrupt the cached artifact bundle (exercises checksum validation).
    CorruptArtifact,
    /// Exhaust the cell's budget up-front (exercises the degradation ladder).
    ExhaustBudget,
}

/// One fault to inject: `kind` fires at `site` when the site's key matches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Injection site, e.g. `cell`, `group`, `artifact`, `budget`.
    pub site: String,
    /// Exact key to match (e.g. `cora:s7:GCN:PPFR`); empty matches every key
    /// at the site.
    pub key: String,
    /// What to do when the fault fires.
    pub kind: FaultKind,
    /// Fire at most this many times; `0` means unlimited.
    pub times: u32,
    /// Probability of firing per occurrence, drawn deterministically from
    /// the plan seed; `1.0` always fires.
    pub probability: f64,
}

impl FaultSpec {
    /// A fault that always fires at `site` for the exact `key`.
    pub fn always(site: &str, key: &str, kind: FaultKind) -> Self {
        Self {
            site: site.to_string(),
            key: key.to_string(),
            kind,
            times: 0,
            probability: 1.0,
        }
    }

    /// [`FaultSpec::always`] limited to the first `times` occurrences —
    /// `times: 1` makes a transient fault that a retry survives.
    pub fn times(site: &str, key: &str, kind: FaultKind, times: u32) -> Self {
        Self {
            times,
            ..Self::always(site, key, kind)
        }
    }
}

/// A seeded set of faults to inject into a run.  Serialisable so chaos
/// configurations can be stored beside scenario specs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the deterministic probability draws.
    pub seed: u64,
    /// The faults to inject.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (arms the gate but never fires — for overhead tests).
    pub fn empty(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault to the plan.
    pub fn with(mut self, fault: FaultSpec) -> Self {
        self.faults.push(fault);
        self
    }
}

/// An installed plan plus per-fault occurrence counters.
struct InstalledPlan {
    plan: FaultPlan,
    /// Occurrences seen per fault (for `times` limits and probability
    /// stream indices).
    seen: Vec<AtomicU32>,
}

/// The zero-overhead gate: `false` (a single relaxed load) whenever no plan
/// is installed.
static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<InstalledPlan>> = Mutex::new(None);

/// `true` while a [`FaultPlan`] is installed.  The only cost fault injection
/// adds to a production run is this relaxed load returning `false`.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Installs `plan` process-wide (replacing any previous plan) and arms the
/// gate.  Prefer [`with_fault_plan`] in tests — it serialises access to the
/// global plan across threads.
pub fn install(plan: FaultPlan) {
    let seen = (0..plan.faults.len()).map(|_| AtomicU32::new(0)).collect();
    *PLAN.lock().unwrap_or_else(|p| p.into_inner()) = Some(InstalledPlan { plan, seen });
    ARMED.store(true, Ordering::Relaxed);
}

/// Removes the installed plan and disarms the gate.
pub fn clear() {
    ARMED.store(false, Ordering::Relaxed);
    *PLAN.lock().unwrap_or_else(|p| p.into_inner()) = None;
}

/// SplitMix64 — the deterministic hash behind probability draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Queries the installed plan: does a fault fire at `(site, key)` right now?
/// Returns the fault's kind when it fires, bumping its occurrence counter.
/// Disarmed ([`armed`] = `false`) this returns `None` after one relaxed
/// atomic load.
pub fn fault_at(site: &str, key: &str) -> Option<FaultKind> {
    if !armed() {
        return None;
    }
    let guard = PLAN.lock().unwrap_or_else(|p| p.into_inner());
    let installed = guard.as_ref()?;
    for (spec, seen) in installed.plan.faults.iter().zip(&installed.seen) {
        if spec.site != site || (!spec.key.is_empty() && spec.key != key) {
            continue;
        }
        // Occurrence index is per (fault, site, key) stream; bumped even
        // when the probability draw declines so the stream advances
        // deterministically.
        let occurrence = seen.fetch_add(1, Ordering::Relaxed);
        if spec.times != 0 && occurrence >= spec.times {
            continue;
        }
        if spec.probability < 1.0 {
            let stream = installed.plan.seed
                ^ fnv1a(site.as_bytes())
                ^ fnv1a(key.as_bytes()).rotate_left(17)
                ^ u64::from(occurrence).wrapping_mul(0xd1b5_4a32_d192_ed03);
            let draw = splitmix64(stream) as f64 / u64::MAX as f64;
            if draw >= spec.probability {
                continue;
            }
        }
        static INJECTED: ppfr_telemetry::Counter =
            ppfr_telemetry::Counter::new("resilience.faults_injected");
        INJECTED.incr();
        crate::FAULTS_INJECTED.fetch_add(1, Ordering::Relaxed);
        return Some(spec.kind);
    }
    None
}

/// Installs `plan`, runs `f`, then clears the plan — serialised process-wide
/// so concurrent tests cannot interleave their plans.  This is the API the
/// chaos suite uses.
pub fn with_fault_plan<T>(plan: FaultPlan, f: impl FnOnce() -> T) -> T {
    static SCOPE: Mutex<()> = Mutex::new(());
    let _scope = SCOPE.lock().unwrap_or_else(|p| p.into_inner());
    struct ClearOnDrop;
    impl Drop for ClearOnDrop {
        fn drop(&mut self) {
            clear();
        }
    }
    install(plan);
    let _clear = ClearOnDrop;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_gate_fires_nothing() {
        clear();
        assert!(!armed());
        assert_eq!(fault_at("cell", "anything"), None);
    }

    #[test]
    fn plan_fires_on_exact_and_wildcard_keys() {
        with_fault_plan(
            FaultPlan::empty(7)
                .with(FaultSpec::always("cell", "a:s7:GCN:PPFR", FaultKind::Panic))
                .with(FaultSpec::always("budget", "", FaultKind::ExhaustBudget)),
            || {
                assert!(armed());
                assert_eq!(fault_at("cell", "a:s7:GCN:PPFR"), Some(FaultKind::Panic));
                assert_eq!(fault_at("cell", "a:s7:GCN:Reg"), None, "key mismatch");
                assert_eq!(fault_at("group", "a:s7"), None, "site mismatch");
                assert_eq!(
                    fault_at("budget", "whatever"),
                    Some(FaultKind::ExhaustBudget),
                    "empty key matches every key"
                );
            },
        );
        assert!(!armed(), "scope clears the plan");
    }

    #[test]
    fn times_limit_makes_transient_faults() {
        with_fault_plan(
            FaultPlan::empty(7).with(FaultSpec::times("cell", "k", FaultKind::Error, 2)),
            || {
                assert_eq!(fault_at("cell", "k"), Some(FaultKind::Error));
                assert_eq!(fault_at("cell", "k"), Some(FaultKind::Error));
                assert_eq!(fault_at("cell", "k"), None, "third occurrence passes");
            },
        );
    }

    #[test]
    fn probability_draws_are_deterministic_in_the_seed() {
        let run = |seed: u64| {
            with_fault_plan(
                FaultPlan {
                    seed,
                    faults: vec![FaultSpec {
                        probability: 0.5,
                        ..FaultSpec::always("cell", "", FaultKind::Error)
                    }],
                },
                || {
                    (0..32)
                        .map(|i| fault_at("cell", &format!("k{i}")).is_some())
                        .collect::<Vec<bool>>()
                },
            )
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same firing pattern");
        assert_ne!(a, run(43), "different seed, different pattern");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(
            (4..=28).contains(&fired),
            "p=0.5 fires roughly half: {fired}"
        );
    }

    #[test]
    fn plans_roundtrip_through_json() {
        let plan = FaultPlan::empty(9).with(FaultSpec::times(
            "cell",
            "a:s7:GCN:PPFR",
            FaultKind::Panic,
            1,
        ));
        let json = serde_json::to_string(&plan).expect("plan serialises");
        let back: FaultPlan = serde_json::from_str(&json).expect("plan parses");
        assert_eq!(back.seed, 9);
        assert_eq!(back.faults.len(), 1);
        assert_eq!(back.faults[0].kind, FaultKind::Panic);
        assert_eq!(back.faults[0].times, 1);
    }
}
