//! The typed error of every fallible runner path.

use std::any::Any;
use std::fmt;

/// Why a scenario, group or cell could not produce its result.  The runner
/// converts panics and injected faults into these variants instead of
/// aborting the matrix; a cell-scoped error lands in the report's
/// `failed_cells` section, a scenario-scoped one is returned to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The scenario spec failed validation (empty axis, duplicate seeds…).
    InvalidSpec(String),
    /// A cell's computation panicked and was quarantined.
    CellPanic {
        /// `dataset:s<seed>:<model>:<method>` identity of the cell.
        cell: String,
        /// The panic payload rendered as text.
        message: String,
    },
    /// A cell returned a (possibly transient) error.
    CellError {
        /// `dataset:s<seed>:<model>:<method>` identity of the cell.
        cell: String,
        /// What went wrong.
        message: String,
    },
    /// A whole `(dataset, seed)` group panicked before its cells could be
    /// quarantined individually (e.g. during artifact construction).
    GroupPanic {
        /// `dataset:s<seed>` identity of the group.
        group: String,
        /// The panic payload rendered as text.
        message: String,
    },
    /// A cached artifact bundle failed its checksum validation.
    ArtifactCorrupt {
        /// The artifact cache key.
        key: String,
    },
    /// A cooperative budget ran out at the named site.
    BudgetExhausted {
        /// Which checkpoint site observed the exhaustion.
        site: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidSpec(msg) => write!(f, "invalid scenario spec: {msg}"),
            RunError::CellPanic { cell, message } => {
                write!(f, "cell {cell} panicked: {message}")
            }
            RunError::CellError { cell, message } => write!(f, "cell {cell} failed: {message}"),
            RunError::GroupPanic { group, message } => {
                write!(f, "group {group} panicked: {message}")
            }
            RunError::ArtifactCorrupt { key } => {
                write!(f, "artifact bundle {key} failed checksum validation")
            }
            RunError::BudgetExhausted { site } => write!(f, "budget exhausted at {site}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Renders a caught panic payload (`Box<dyn Any + Send>`) as text: the
/// `&str` / `String` payloads real panics carry, or a placeholder for
/// anything else.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_unit() {
        let e = RunError::CellPanic {
            cell: "cora:s7:GCN:PPFR".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "cell cora:s7:GCN:PPFR panicked: boom");
        assert!(RunError::InvalidSpec("empty axis".into())
            .to_string()
            .contains("empty axis"));
        assert!(RunError::ArtifactCorrupt { key: "k".into() }
            .to_string()
            .contains("checksum"));
    }

    #[test]
    fn panic_message_extracts_str_and_string_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("static message")).expect_err("must panic");
        assert_eq!(panic_message(caught.as_ref()), "static message");
        let caught =
            std::panic::catch_unwind(|| panic!("{} {}", "formatted", 7)).expect_err("must panic");
        assert_eq!(panic_message(caught.as_ref()), "formatted 7");
        let opaque: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(opaque.as_ref()), "non-string panic payload");
    }
}
