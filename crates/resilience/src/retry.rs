//! Bounded, deterministic retry for transient cell failures.
//!
//! There is deliberately **no sleeping and no clock** here: the runner's
//! failures are compute failures (a poisoned lock, an injected transient, a
//! corrupted artifact), not network timeouts, so waiting buys nothing and
//! wall-clock backoff would violate both determinism and `ppfr_lint`'s
//! wall-clock rule.  "Backoff" is *attempt-count-based*: the closure
//! receives the attempt number (1-based) and may itself degrade — rebuild an
//! artifact, shrink an estimator — on later attempts.

use std::sync::atomic::Ordering;

/// How many times a failing operation is attempted in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// A policy of `max_attempts` total attempts (clamped to ≥ 1).
    pub fn attempts(max_attempts: u32) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
        }
    }

    /// The no-retry policy: one attempt only.
    pub fn none() -> Self {
        Self::attempts(1)
    }
}

impl Default for RetryPolicy {
    /// Two attempts: one retry absorbs any single transient fault.
    fn default() -> Self {
        Self::attempts(2)
    }
}

/// Runs `f(attempt)` (attempt is 1-based) until it succeeds or the policy's
/// attempts are spent; returns the first success or the *last* error.  Each
/// re-run bumps the `resilience.retries` counter.
pub fn run_with_retry<T, E>(
    policy: RetryPolicy,
    mut f: impl FnMut(u32) -> Result<T, E>,
) -> Result<T, E> {
    let mut attempt = 1;
    loop {
        match f(attempt) {
            Ok(value) => return Ok(value),
            Err(err) => {
                if attempt >= policy.max_attempts {
                    return Err(err);
                }
                static RETRIES: ppfr_telemetry::Counter =
                    ppfr_telemetry::Counter::new("resilience.retries");
                RETRIES.incr();
                crate::RETRIES.fetch_add(1, Ordering::Relaxed);
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_returns_immediately() {
        let mut calls = 0;
        let out: Result<i32, &str> = run_with_retry(RetryPolicy::attempts(3), |_| {
            calls += 1;
            Ok(5)
        });
        assert_eq!(out, Ok(5));
        assert_eq!(calls, 1);
    }

    #[test]
    fn transient_failure_is_absorbed_by_a_retry() {
        let out: Result<&str, String> = run_with_retry(RetryPolicy::default(), |attempt| {
            if attempt == 1 {
                Err("transient".to_string())
            } else {
                Ok("recovered")
            }
        });
        assert_eq!(out, Ok("recovered"));
    }

    #[test]
    fn attempts_are_bounded_and_the_last_error_is_returned() {
        let mut calls = 0;
        let out: Result<(), u32> = run_with_retry(RetryPolicy::attempts(3), |attempt| {
            calls += 1;
            Err(attempt)
        });
        assert_eq!(out, Err(3), "last attempt's error surfaces");
        assert_eq!(calls, 3);
        let zero_clamped = RetryPolicy::attempts(0);
        assert_eq!(zero_clamped.max_attempts, 1);
    }
}
