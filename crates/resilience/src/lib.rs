//! # `ppfr_resilience` — failure semantics for the audit engine
//!
//! The scenario runner executes long `(dataset, model, method, seed)`
//! matrices; before this crate, a single panic anywhere in a group aborted
//! the whole matrix and lost every completed cell.  This crate provides the
//! service-grade failure vocabulary the runner (and, later, the resident
//! `AuditService`) builds on:
//!
//! * [`RunError`] — the typed error of every fallible runner path, replacing
//!   panics; carries enough identity (cell key, fault site) to land in a
//!   report's `failed_cells` section.
//! * [`Budget`] — a cooperative, *deterministic* work budget measured in
//!   logical units (epochs, solver iterations), never wall-clock time: the
//!   same budget always stops at the same iteration, so degraded runs are
//!   reproducible and thread-count-invariant.  Installed ambiently per cell
//!   via [`with_budget`]; long loops poll [`checkpoint`].
//! * [`RetryPolicy`] / [`run_with_retry`] — bounded attempt-count retry for
//!   transient cell failures.  "Backoff" is attempt-count-based (the closure
//!   receives the attempt number and may degrade per attempt); there is no
//!   sleeping and no clock, by design and by `ppfr_lint`'s wall-clock rule.
//! * [`FaultPlan`] — a seeded, serialisable fault-injection harness (worker
//!   panic, cell error, artifact corruption, budget exhaustion) behind a
//!   zero-overhead gate: when no plan is installed, every query is a single
//!   relaxed atomic load ([`armed`]), mirroring `PPFR_TELEMETRY`'s gating.
//! * [`note_degradation`] / [`collect_degradations`] — the ambient event log
//!   that carries graceful-degradation decisions (dense CG → LiSSA, full
//!   pair sample → capped) from deep library code into the runner's report.
//!
//! Everything is deterministic: budgets count units, retries count attempts,
//! fault probability draws hash `(plan seed, site, key, occurrence)`.  No
//! call in this crate reads a clock or ambient randomness.

#![forbid(unsafe_code)]

mod budget;
mod error;
mod fault;
mod retry;

pub use budget::{
    budget_exhausted, checkpoint, collect_degradations, note_degradation, with_budget, Budget,
    DegradationEvent,
};
pub use error::{panic_message, RunError};
pub use fault::{
    armed, clear, fault_at, install, with_fault_plan, FaultKind, FaultPlan, FaultSpec,
};
pub use retry::{run_with_retry, RetryPolicy};

use std::sync::atomic::{AtomicU64, Ordering};

/// Always-on relaxed tallies of resilience events, independent of the
/// telemetry feature gate so benches and chaos tests can read them in every
/// build.  All increments sit on failure/degradation paths, never on the
/// fault-free hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceCounters {
    /// Cell attempts re-run after a transient failure.
    pub retries: u64,
    /// Graceful-degradation events recorded via [`note_degradation`].
    pub degradations: u64,
    /// Cell or group panics quarantined by the runner.
    pub cell_panics: u64,
    /// Faults fired by an installed [`FaultPlan`].
    pub faults_injected: u64,
    /// Checkpoints that stopped a loop on an exhausted/cancelled budget.
    pub budget_stops: u64,
}

pub(crate) static RETRIES: AtomicU64 = AtomicU64::new(0);
pub(crate) static DEGRADATIONS: AtomicU64 = AtomicU64::new(0);
pub(crate) static CELL_PANICS: AtomicU64 = AtomicU64::new(0);
pub(crate) static FAULTS_INJECTED: AtomicU64 = AtomicU64::new(0);
pub(crate) static BUDGET_STOPS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide resilience tallies.  Relaxed statistics:
/// read them at quiescence, like the runner's cache stats.
pub fn counters() -> ResilienceCounters {
    ResilienceCounters {
        retries: RETRIES.load(Ordering::Relaxed),
        degradations: DEGRADATIONS.load(Ordering::Relaxed),
        cell_panics: CELL_PANICS.load(Ordering::Relaxed),
        faults_injected: FAULTS_INJECTED.load(Ordering::Relaxed),
        budget_stops: BUDGET_STOPS.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide tallies (for benches that measure one section).
pub fn reset_counters() {
    RETRIES.store(0, Ordering::Relaxed);
    DEGRADATIONS.store(0, Ordering::Relaxed);
    CELL_PANICS.store(0, Ordering::Relaxed);
    FAULTS_INJECTED.store(0, Ordering::Relaxed);
    BUDGET_STOPS.store(0, Ordering::Relaxed);
}

/// Records one quarantined panic (runner-side bookkeeping).
pub fn note_cell_panic() {
    static PANICS: ppfr_telemetry::Counter = ppfr_telemetry::Counter::new("resilience.cell_panics");
    PANICS.incr();
    CELL_PANICS.fetch_add(1, Ordering::Relaxed);
}
