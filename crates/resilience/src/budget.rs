//! Cooperative, deterministic work budgets and the ambient degradation log.
//!
//! A [`Budget`] counts **logical work units** — training epochs, CG/LiSSA
//! iterations — never wall-clock time.  Determinism is the point: the same
//! budget always stops the same loop at the same iteration, so a degraded
//! run is bit-reproducible at any thread count, and `ppfr_lint`'s wall-clock
//! rule stays clean.
//!
//! Budgets are installed *ambiently* per cell ([`with_budget`]): the runner
//! wraps each `(model, method)` cell, and the deep library loops (the
//! training epoch loop, the CG and LiSSA iterations) poll [`checkpoint`]
//! without any signature change.  A cell runs synchronously on one thread,
//! so a scoped thread-local carries the budget exactly as far as it should —
//! inner data-parallel kernels on other worker threads never observe it
//! (they contain no checkpoints).
//!
//! The same scoped-thread-local pattern carries the **degradation log**:
//! when library code steps down an estimator under budget pressure, it calls
//! [`note_degradation`]; the runner drains the events per cell via
//! [`collect_degradations`] and records them in the report, so every
//! deviation from the exact protocol is flagged.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel limit meaning "no limit".
const UNLIMITED: u64 = u64::MAX;

struct BudgetInner {
    /// Total units this budget may spend; [`UNLIMITED`] for no limit.
    limit: u64,
    /// Units spent so far.
    spent: AtomicU64,
    /// Cooperative cancellation flag: once set, every checkpoint stops.
    cancelled: AtomicBool,
}

/// A shareable work budget + cancellation token.  Cloning shares the same
/// underlying counter.
#[derive(Clone)]
pub struct Budget {
    inner: Arc<BudgetInner>,
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Budget")
            .field("limit", &self.inner.limit)
            .field("spent", &self.spent())
            .field("cancelled", &self.cancelled())
            .finish()
    }
}

impl Budget {
    /// A budget of `units` logical work units.
    pub fn units(units: u64) -> Self {
        Self {
            inner: Arc::new(BudgetInner {
                limit: units,
                spent: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// A budget that never exhausts (but can still be cancelled).
    pub fn unlimited() -> Self {
        Self::units(UNLIMITED)
    }

    /// Spends `units` against the budget.  Returns `true` while the total
    /// stays within the limit and the budget is not cancelled.
    pub fn spend(&self, units: u64) -> bool {
        if self.cancelled() {
            return false;
        }
        if self.inner.limit == UNLIMITED {
            return true;
        }
        // Relaxed: a budget is polled from the one thread running its cell;
        // the counter never orders access to other data.
        let before = self.inner.spent.fetch_add(units, Ordering::Relaxed);
        before.saturating_add(units) <= self.inner.limit
    }

    /// Units spent so far.
    pub fn spent(&self) -> u64 {
        self.inner.spent.load(Ordering::Relaxed)
    }

    /// `true` once more units were spent than the limit allows, or the
    /// budget was cancelled.
    pub fn exhausted(&self) -> bool {
        self.cancelled() || (self.inner.limit != UNLIMITED && self.spent() > self.inner.limit)
    }

    /// Spends the entire remaining budget (used by the fault harness to
    /// simulate exhaustion deterministically).
    pub fn exhaust(&self) {
        if self.inner.limit == UNLIMITED {
            self.cancel();
        } else {
            self.inner
                .spent
                .store(self.inner.limit.saturating_add(1), Ordering::Relaxed);
        }
    }

    /// Requests cooperative cancellation: every later [`Budget::spend`] and
    /// ambient [`checkpoint`] returns `false`.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` once [`Budget::cancel`] was called.
    pub fn cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }
}

thread_local! {
    static AMBIENT: RefCell<Option<Budget>> = const { RefCell::new(None) };
    static DEGRADATIONS: RefCell<Option<Vec<DegradationEvent>>> = const { RefCell::new(None) };
}

/// Runs `f` with `budget` installed as the thread's ambient budget; restores
/// the previous ambient budget (if any) on exit, including on unwind.
pub fn with_budget<T>(budget: &Budget, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Budget>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            AMBIENT.with(|slot| *slot.borrow_mut() = prev);
        }
    }
    let prev = AMBIENT.with(|slot| slot.borrow_mut().replace(budget.clone()));
    let _restore = Restore(prev);
    f()
}

/// Polls the ambient budget, spending `units`: returns `true` to keep
/// working, `false` when the budget is exhausted or cancelled.  Without an
/// ambient budget this is always `true` — library loops can poll
/// unconditionally with no behaviour change in unbudgeted runs.
pub fn checkpoint(units: u64) -> bool {
    let ok = AMBIENT.with(|slot| match slot.borrow().as_ref() {
        Some(budget) => budget.spend(units),
        None => true,
    });
    if !ok {
        static STOPS: ppfr_telemetry::Counter =
            ppfr_telemetry::Counter::new("resilience.budget_stops");
        STOPS.incr();
        crate::BUDGET_STOPS.fetch_add(1, Ordering::Relaxed);
    }
    ok
}

/// `true` when an ambient budget is installed and already exhausted — the
/// trigger for the graceful-degradation ladder (dense CG → LiSSA, full pair
/// sample → capped).  `false` when no budget is installed.
pub fn budget_exhausted() -> bool {
    AMBIENT.with(|slot| {
        slot.borrow()
            .as_ref()
            .is_some_and(|budget| budget.exhausted())
    })
}

/// One graceful-degradation decision: at `site`, the exact `from` path was
/// replaced by the cheaper `to` path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationEvent {
    /// Where the ladder stepped down (e.g. `influence`, `pair_sample`).
    pub site: String,
    /// The exact estimator that was skipped.
    pub from: String,
    /// The degraded estimator that ran instead.
    pub to: String,
}

/// Records one degradation event into the ambient log (when a collector is
/// installed) and the `resilience.degradations` telemetry counter.  Library
/// code calls this at every ladder step so no downgrade goes unflagged.
pub fn note_degradation(site: &str, from: &str, to: &str) {
    static DEGRADED: ppfr_telemetry::Counter =
        ppfr_telemetry::Counter::new("resilience.degradations");
    DEGRADED.incr();
    crate::DEGRADATIONS.fetch_add(1, Ordering::Relaxed);
    DEGRADATIONS.with(|slot| {
        if let Some(log) = slot.borrow_mut().as_mut() {
            log.push(DegradationEvent {
                site: site.to_string(),
                from: from.to_string(),
                to: to.to_string(),
            });
        }
    });
}

/// Runs `f` with a fresh ambient degradation log and returns its result
/// together with the events recorded during the call.  Nested collectors
/// save and restore the outer log, including on unwind.
pub fn collect_degradations<T>(f: impl FnOnce() -> T) -> (T, Vec<DegradationEvent>) {
    struct Restore(Option<Vec<DegradationEvent>>, bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            if !self.1 {
                let prev = self.0.take();
                DEGRADATIONS.with(|slot| *slot.borrow_mut() = prev);
            }
        }
    }
    let prev = DEGRADATIONS.with(|slot| slot.borrow_mut().replace(Vec::new()));
    let mut restore = Restore(prev, false);
    let out = f();
    let events = DEGRADATIONS
        .with(|slot| slot.borrow_mut().take())
        .unwrap_or_default();
    DEGRADATIONS.with(|slot| *slot.borrow_mut() = restore.0.take());
    restore.1 = true;
    (out, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_spends_to_the_limit_then_stops() {
        let b = Budget::units(3);
        assert!(b.spend(1) && b.spend(1) && b.spend(1));
        assert!(!b.exhausted(), "limit itself is still within budget");
        assert!(!b.spend(1), "fourth unit exceeds the limit");
        assert!(b.exhausted());
        assert_eq!(b.spent(), 4);
    }

    #[test]
    fn unlimited_budget_never_exhausts_but_cancels() {
        let b = Budget::unlimited();
        assert!(b.spend(1_000_000));
        assert!(!b.exhausted());
        b.cancel();
        assert!(!b.spend(1));
        assert!(b.exhausted());
    }

    #[test]
    fn exhaust_forces_immediate_stop() {
        let b = Budget::units(100);
        b.exhaust();
        assert!(b.exhausted());
        assert!(!b.spend(1));
    }

    #[test]
    fn ambient_checkpoint_counts_against_the_installed_budget() {
        assert!(checkpoint(1), "no ambient budget means no limit");
        assert!(!budget_exhausted());
        let budget = Budget::units(2);
        let stopped_at = with_budget(&budget, || {
            let mut iters = 0;
            for _ in 0..10 {
                if !checkpoint(1) {
                    break;
                }
                iters += 1;
            }
            assert!(budget_exhausted());
            iters
        });
        assert_eq!(stopped_at, 2, "budget of 2 permits exactly two iterations");
        assert!(checkpoint(1), "ambient budget restored to none after scope");
    }

    #[test]
    fn with_budget_restores_the_previous_budget_on_nesting_and_unwind() {
        let outer = Budget::units(100);
        with_budget(&outer, || {
            let inner = Budget::units(1);
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                with_budget(&inner, || panic!("unwind through the scope"))
            }));
            assert!(checkpoint(1), "outer budget is back after the unwind");
            assert_eq!(outer.spent(), 1);
        });
    }

    #[test]
    fn degradation_events_are_collected_per_scope() {
        let ((), outer) = collect_degradations(|| {
            note_degradation("influence", "cg", "lissa");
            let ((), inner) = collect_degradations(|| {
                note_degradation("pair_sample", "balanced", "capped");
            });
            assert_eq!(inner.len(), 1);
            assert_eq!(inner[0].site, "pair_sample");
        });
        assert_eq!(
            outer.len(),
            1,
            "inner events do not leak into the outer log"
        );
        assert_eq!(outer[0].from, "cg");
        // Without a collector, noting is a no-op (counter only).
        note_degradation("nowhere", "a", "b");
    }
}
