//! Exporters: human-readable text report and chrome trace-event JSON.
//!
//! Both render the *canonical* merged forms ([`crate::span_tree`],
//! [`crate::snapshot`]), so structure and counts are identical across thread
//! counts; only measured durations differ run to run.  The JSON is
//! hand-rolled (this crate is dependency-free) against the trace-event
//! format's "complete event" shape — load the file in `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use crate::metrics::{snapshot, MetricValue};
use crate::spans::{span_tree, take_trace_events, SpanTree};
use std::fmt::Write as _;

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

fn render_node(out: &mut String, node: &SpanTree, depth: usize) {
    let indent = "  ".repeat(depth);
    let mean_ns = node.total_ns.checked_div(node.count).unwrap_or(0);
    let _ = writeln!(
        out,
        "{indent}{name}  count={count}  total_ms={total}  mean_ms={mean}",
        name = node.name,
        count = node.count,
        total = fmt_ms(node.total_ns),
        mean = fmt_ms(mean_ns),
    );
    for child in &node.children {
        render_node(out, child, depth + 1);
    }
}

/// Renders the merged span tree and metric snapshot as an indented text
/// report (the `exp_trace` stdout format).
pub fn report() -> String {
    let mut out = String::new();
    out.push_str("== spans ==\n");
    let roots = span_tree();
    if roots.is_empty() {
        out.push_str("(no spans recorded)\n");
    }
    for root in &roots {
        render_node(&mut out, root, 0);
    }
    out.push_str("== metrics ==\n");
    let metrics = snapshot();
    if metrics.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    for (name, value) in &metrics {
        match value {
            MetricValue::Counter(n) => {
                let _ = writeln!(out, "{name} = {n}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name} = {v}");
            }
            MetricValue::Histogram(h) => {
                let mean = if h.count > 0 {
                    h.sum as f64 / h.count as f64
                } else {
                    0.0
                };
                let _ = write!(
                    out,
                    "{name}: count={count} sum={sum} mean={mean:.3} buckets=[",
                    count = h.count,
                    sum = h.sum,
                );
                for (i, (le, n)) in h.buckets.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "le {le}: {n}");
                }
                out.push_str("]\n");
            }
        }
    }
    out
}

/// Escapes a string for inclusion in a JSON string literal.  Span and metric
/// names are static identifiers, but escape defensively anyway.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Drains the captured trace events (see [`crate::set_trace_enabled`]) and
/// renders them as a chrome://tracing trace-event JSON document of
/// "complete" (`"ph":"X"`) events, timestamps in microseconds.
pub fn chrome_trace_json() -> String {
    let events = take_trace_events();
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"name\":\"{name}\",\"cat\":\"ppfr\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":1,\"tid\":{tid}}}",
            name = json_escape(e.name),
            ts = e.ts_ns as f64 / 1e3,
            dur = e.dur_ns as f64 / 1e3,
            tid = e.tid,
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}
