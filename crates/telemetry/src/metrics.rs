//! The lock-free sharded metrics registry.
//!
//! Metric handles ([`Counter`], [`Gauge`], [`Histogram`]) are const-
//! constructible so instrumented crates declare them as statics:
//!
//! ```
//! use ppfr_telemetry::Counter;
//! static STEALS: Counter = Counter::new("pool.steals");
//! STEALS.incr();
//! ```
//!
//! On first use a handle interns its name in the global registry (one mutex
//! lock per metric per process) and caches the assigned slot range in a
//! `OnceLock`.  After that the hot path is lock-free: a branch on the
//! telemetry gate, a thread-local shard lookup and a `Relaxed` atomic add
//! into the calling thread's own slots.  `Relaxed` is deliberate and safe
//! here: the slots are pure statistics, never used to order access to other
//! data, and [`snapshot`] is meant to run at quiescence (after the measured
//! workload returns).
//!
//! Shards are merged in canonical sorted-name order, and counters/histograms
//! merge by commutative addition — so a snapshot of a deterministic workload
//! is identical no matter how many pool threads recorded into it (pinned by
//! the forced-`PPFR_NUM_THREADS` tests in `tests/metrics_core.rs`).

use std::cell::OnceCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Total atomic slots per thread shard; metric registration panics past it.
const MAX_SLOTS: usize = 4096;

/// Power-of-two histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i)`, the last bucket clamps everything above.
const HIST_BUCKETS: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    /// Slots a metric of this kind occupies in a shard.
    fn width(self) -> usize {
        match self {
            Kind::Counter => 1,
            // Value bits + last-write sequence number.
            Kind::Gauge => 2,
            // Buckets + count + sum.
            Kind::Histogram => HIST_BUCKETS + 2,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    name: &'static str,
    kind: Kind,
    base: usize,
}

#[derive(Debug, Default)]
struct Registry {
    entries: Vec<Entry>,
    next_slot: usize,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    entries: Vec::new(),
    next_slot: 0,
});

/// Interns `name`, returning its base slot.  Re-registering an existing name
/// returns the existing slots (two statics may share a metric) but panics on
/// a kind mismatch — that is always an instrumentation bug.
fn register(name: &'static str, kind: Kind) -> usize {
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(e) = reg.entries.iter().find(|e| e.name == name) {
        assert_eq!(
            e.kind, kind,
            "metric `{name}` registered twice with different kinds"
        );
        return e.base;
    }
    let base = reg.next_slot;
    assert!(
        base + kind.width() <= MAX_SLOTS,
        "metric registry overflow at `{name}`: raise MAX_SLOTS"
    );
    reg.next_slot = base + kind.width();
    reg.entries.push(Entry { name, kind, base });
    base
}

/// One thread's slot array.  Only the owning thread writes; the snapshotter
/// reads concurrently, which the atomics make well-defined.
struct Shard {
    slots: Box<[AtomicU64]>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            slots: (0..MAX_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Every shard ever created, kept alive past thread exit so late snapshots
/// still see a finished worker's contributions.
static SHARDS: Mutex<Vec<Arc<Shard>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: OnceCell<Arc<Shard>> = const { OnceCell::new() };
}

/// Runs `f` against the calling thread's slots, creating + globally
/// registering the shard on first use.
fn with_slots<T>(f: impl FnOnce(&[AtomicU64]) -> T) -> T {
    LOCAL.with(|cell| {
        let shard = cell.get_or_init(|| {
            let shard = Arc::new(Shard::new());
            SHARDS
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(Arc::clone(&shard));
            shard
        });
        f(&shard.slots)
    })
}

/// Monotone stamp for gauge writes, so the merge can pick the latest.
static GAUGE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Resolves a handle's slot, interning on first use.
fn slot_of(cache: &OnceLock<usize>, name: &'static str, kind: Kind) -> usize {
    *cache.get_or_init(|| register(name, kind))
}

/// A monotonically increasing sum, merged across threads by addition.
pub struct Counter {
    name: &'static str,
    slot: OnceLock<usize>,
}

impl Counter {
    /// Const constructor, for `static` declarations at the call site.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            slot: OnceLock::new(),
        }
    }

    /// Adds `n`.  No-op (one static branch) when telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        let base = slot_of(&self.slot, self.name, Kind::Counter);
        with_slots(|slots| slots[base].fetch_add(n, Ordering::Relaxed));
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A last-write-wins float value.  Single-writer by convention: set it from
/// one (serial) context per workload — concurrent setters race benignly but
/// make "last" meaningless.
pub struct Gauge {
    name: &'static str,
    slot: OnceLock<usize>,
}

impl Gauge {
    /// Const constructor, for `static` declarations at the call site.
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            slot: OnceLock::new(),
        }
    }

    /// Sets the value.  No-op (one static branch) when telemetry is disabled.
    #[inline]
    pub fn set(&self, value: f64) {
        if !crate::enabled() {
            return;
        }
        let base = slot_of(&self.slot, self.name, Kind::Gauge);
        let seq = GAUGE_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
        with_slots(|slots| {
            slots[base].store(value.to_bits(), Ordering::Relaxed);
            slots[base + 1].store(seq, Ordering::Relaxed);
        });
    }
}

/// A fixed log-bucket (powers of two) histogram of `u64` samples.
pub struct Histogram {
    name: &'static str,
    slot: OnceLock<usize>,
}

impl Histogram {
    /// Const constructor, for `static` declarations at the call site.
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            slot: OnceLock::new(),
        }
    }

    /// Records one sample.  No-op (one static branch) when disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        let base = slot_of(&self.slot, self.name, Kind::Histogram);
        let bucket = bucket_index(value);
        with_slots(|slots| {
            slots[base + bucket].fetch_add(1, Ordering::Relaxed);
            slots[base + HIST_BUCKETS].fetch_add(1, Ordering::Relaxed);
            slots[base + HIST_BUCKETS + 1].fetch_add(value, Ordering::Relaxed);
        });
    }
}

/// Bucket of a sample: 0 for zero, else `64 − leading_zeros` clamped into
/// the last bucket, i.e. bucket `i ≥ 1` covers `[2^(i-1), 2^i)`.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket, for reporting.
fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= HIST_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A merged histogram in a [`snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramValue {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// `(inclusive upper bound, count)` per non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// One merged metric value in a [`snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Sum over all thread shards.
    Counter(u64),
    /// Latest value written (by global write sequence) across shards.
    Gauge(f64),
    /// Bucket-wise sum over all thread shards.
    Histogram(HistogramValue),
}

/// Merges every thread shard and returns `(name, value)` pairs in sorted
/// name order — the canonical, thread-count-independent form.  Intended to
/// run at quiescence (after the measured workload returned).
pub fn snapshot() -> Vec<(String, MetricValue)> {
    let mut entries = REGISTRY
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .entries
        .clone();
    entries.sort_by_key(|e| e.name);
    let shards: Vec<Arc<Shard>> = SHARDS.lock().unwrap_or_else(|p| p.into_inner()).clone();
    entries
        .into_iter()
        .map(|e| {
            let value = match e.kind {
                Kind::Counter => MetricValue::Counter(
                    shards
                        .iter()
                        .map(|s| s.slots[e.base].load(Ordering::Relaxed))
                        .fold(0u64, u64::wrapping_add),
                ),
                Kind::Gauge => {
                    let (mut bits, mut best_seq) = (0u64, 0u64);
                    for s in &shards {
                        let seq = s.slots[e.base + 1].load(Ordering::Relaxed);
                        if seq >= best_seq && seq > 0 {
                            best_seq = seq;
                            bits = s.slots[e.base].load(Ordering::Relaxed);
                        }
                    }
                    MetricValue::Gauge(if best_seq == 0 {
                        0.0
                    } else {
                        f64::from_bits(bits)
                    })
                }
                Kind::Histogram => {
                    let mut buckets = Vec::new();
                    for b in 0..HIST_BUCKETS {
                        let n = shards
                            .iter()
                            .map(|s| s.slots[e.base + b].load(Ordering::Relaxed))
                            .fold(0u64, u64::wrapping_add);
                        if n > 0 {
                            buckets.push((bucket_upper_bound(b), n));
                        }
                    }
                    let count = shards
                        .iter()
                        .map(|s| s.slots[e.base + HIST_BUCKETS].load(Ordering::Relaxed))
                        .fold(0u64, u64::wrapping_add);
                    let sum = shards
                        .iter()
                        .map(|s| s.slots[e.base + HIST_BUCKETS + 1].load(Ordering::Relaxed))
                        .fold(0u64, u64::wrapping_add);
                    MetricValue::Histogram(HistogramValue {
                        count,
                        sum,
                        buckets,
                    })
                }
            };
            (e.name.to_string(), value)
        })
        .collect()
}

/// Zeroes every slot of every shard; registered names keep their slots.
pub(crate) fn reset() {
    let shards: Vec<Arc<Shard>> = SHARDS.lock().unwrap_or_else(|p| p.into_inner()).clone();
    for shard in shards {
        for slot in shard.slots.iter() {
            slot.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_close_each_range() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(HIST_BUCKETS - 1), u64::MAX);
        // Every value lands in the bucket whose upper bound covers it.
        for v in [0u64, 1, 2, 3, 4, 5, 127, 128, 129, 1 << 40] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper_bound(b), "{v} above its bucket bound");
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1), "{v} below its bucket");
            }
        }
    }
}
