//! Hierarchical wall-time spans, aggregated per thread and merged by name.
//!
//! Each thread owns a tree of *aggregation nodes* keyed by span name: the
//! first `span!("x")` under a parent allocates a node, every later one under
//! the same parent just bumps its count and total time.  The hot path is a
//! gate branch, one uncontended mutex lock on the thread's own shard and a
//! linear scan of the current node's children (span trees are shallow and
//! narrow — pipeline stages, not per-element work).
//!
//! [`span_tree`] merges the per-thread trees recursively by name in sorted
//! (BTreeMap) order.  Counts and structure therefore do not depend on which
//! thread ran a span or on registration order; only the measured durations
//! vary between runs.  Spans opened on pool workers root that worker's tree —
//! the instrumented call sites only open spans on the orchestrating thread,
//! so aggregated structure stays identical across `PPFR_NUM_THREADS`.
//!
//! When the trace gate is on (see [`crate::set_trace_enabled`]) every span
//! exit additionally appends a timestamped event for the chrome exporter.

use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Process-wide time zero for trace timestamps, fixed at first use.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// One aggregation node in a thread's span tree.
#[derive(Debug)]
struct Node {
    name: &'static str,
    children: Vec<usize>,
    count: u64,
    total_ns: u64,
}

/// A timestamped complete event for the chrome exporter.
#[derive(Debug, Clone)]
pub(crate) struct TraceEvent {
    pub name: &'static str,
    pub ts_ns: u64,
    pub dur_ns: u64,
    pub tid: u32,
}

/// One thread's span state.  Only the owning thread mutates it (guard
/// enter/exit); [`span_tree`] and `reset` lock it briefly from outside.
#[derive(Debug, Default)]
struct ThreadSpans {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    /// Indices of the currently open spans, innermost last.
    stack: Vec<usize>,
    trace: Vec<TraceEvent>,
}

impl ThreadSpans {
    /// Finds or creates the child named `name` under the innermost open span
    /// (or among the roots), returning its node index.
    fn child_named(&mut self, name: &'static str) -> usize {
        let siblings: &Vec<usize> = match self.stack.last() {
            Some(&parent) => &self.nodes[parent].children,
            None => &self.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name,
            children: Vec::new(),
            count: 0,
            total_ns: 0,
        });
        match self.stack.last() {
            Some(&parent) => self.nodes[parent].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    fn close(&mut self, idx: usize, dur_ns: u64) {
        self.nodes[idx].count += 1;
        self.nodes[idx].total_ns = self.nodes[idx].total_ns.wrapping_add(dur_ns);
    }
}

/// Every thread's span shard, kept alive past thread exit so flushes still
/// see finished workers.
static THREADS: Mutex<Vec<Arc<Mutex<ThreadSpans>>>> = Mutex::new(Vec::new());

/// Display-only thread ids for trace events, in shard-creation order.
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static LOCAL: OnceCell<(Arc<Mutex<ThreadSpans>>, u32)> = const { OnceCell::new() };
}

fn with_local<T>(f: impl FnOnce(&mut ThreadSpans, u32) -> T) -> T {
    LOCAL.with(|cell| {
        let (shard, tid) = cell.get_or_init(|| {
            let shard = Arc::new(Mutex::new(ThreadSpans::default()));
            THREADS
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(Arc::clone(&shard));
            (shard, NEXT_TID.fetch_add(1, Ordering::Relaxed))
        });
        f(&mut shard.lock().unwrap_or_else(|p| p.into_inner()), *tid)
    })
}

/// An open span; closes (records duration, pops the stack) on drop.  Create
/// via [`crate::span!`] or [`SpanGuard::enter`] and **bind it to a local**.
#[must_use = "an unbound span guard drops immediately and records nothing"]
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

struct GuardInner {
    name: &'static str,
    node: usize,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span named `name` nested under the calling thread's innermost
    /// open span.  When telemetry is disabled this is a branch on a static:
    /// no clock read, no lock, no allocation.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { inner: None };
        }
        let node = with_local(|spans, _| {
            let idx = spans.child_named(name);
            spans.stack.push(idx);
            idx
        });
        SpanGuard {
            inner: Some(GuardInner {
                name,
                node,
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end = Instant::now();
        let dur_ns = u64::try_from(end.duration_since(inner.start).as_nanos()).unwrap_or(u64::MAX);
        let trace = crate::trace_enabled();
        with_local(|spans, tid| {
            // Validate the stack entry before touching it: a `reset()` (or a
            // guard dropped out of order) may have invalidated our index.
            let pos = spans.stack.iter().rposition(|&i| {
                i == inner.node && spans.nodes.get(i).is_some_and(|n| n.name == inner.name)
            });
            let Some(pos) = pos else { return };
            spans.stack.truncate(pos);
            spans.close(inner.node, dur_ns);
            if trace {
                let ts_ns =
                    u64::try_from(inner.start.saturating_duration_since(epoch()).as_nanos())
                        .unwrap_or(u64::MAX);
                spans.trace.push(TraceEvent {
                    name: inner.name,
                    ts_ns,
                    dur_ns,
                    tid,
                });
            }
        });
    }
}

/// Records an already-measured `[start, end]` interval as a closed span named
/// `name` under the calling thread's innermost open span — the span-side half
/// of [`crate::time_span_ms`].  Caller must have checked [`crate::enabled`].
pub(crate) fn record_closed_span(name: &'static str, start: Instant, end: Instant) {
    let dur_ns = u64::try_from(end.duration_since(start).as_nanos()).unwrap_or(u64::MAX);
    let trace = crate::trace_enabled();
    with_local(|spans, tid| {
        let idx = spans.child_named(name);
        spans.close(idx, dur_ns);
        if trace {
            let ts_ns = u64::try_from(start.saturating_duration_since(epoch()).as_nanos())
                .unwrap_or(u64::MAX);
            spans.trace.push(TraceEvent {
                name,
                ts_ns,
                dur_ns,
                tid,
            });
        }
    });
}

/// One aggregated node of the merged span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    /// Span name as passed to [`crate::span!`].
    pub name: String,
    /// Times this span was entered (summed over all threads).
    pub count: u64,
    /// Total wall time spent inside, nanoseconds (summed over all threads).
    pub total_ns: u64,
    /// Child spans, sorted by name.
    pub children: Vec<SpanTree>,
}

#[derive(Default)]
struct MergeNode {
    count: u64,
    total_ns: u64,
    children: BTreeMap<&'static str, MergeNode>,
}

fn merge_into(dst: &mut BTreeMap<&'static str, MergeNode>, spans: &ThreadSpans, indices: &[usize]) {
    for &i in indices {
        let node = &spans.nodes[i];
        let entry = dst.entry(node.name).or_default();
        entry.count += node.count;
        entry.total_ns = entry.total_ns.wrapping_add(node.total_ns);
        merge_into(&mut entry.children, spans, &node.children);
    }
}

fn to_tree(map: BTreeMap<&'static str, MergeNode>) -> Vec<SpanTree> {
    map.into_iter()
        .map(|(name, n)| SpanTree {
            name: name.to_string(),
            count: n.count,
            total_ns: n.total_ns,
            children: to_tree(n.children),
        })
        .collect()
}

/// Merges every thread's span tree by name, recursively, in sorted order and
/// returns the roots.  Counts and structure are independent of thread count
/// and merge order; only measured times vary run to run.
pub fn span_tree() -> Vec<SpanTree> {
    let shards: Vec<Arc<Mutex<ThreadSpans>>> =
        THREADS.lock().unwrap_or_else(|p| p.into_inner()).clone();
    let mut merged = BTreeMap::new();
    for shard in shards {
        let spans = shard.lock().unwrap_or_else(|p| p.into_inner());
        merge_into(&mut merged, &spans, &spans.roots.clone());
    }
    to_tree(merged)
}

/// Drains and returns every thread's trace events (chrome exporter input),
/// sorted by `(tid, ts_ns, name)` for stable output.
pub(crate) fn take_trace_events() -> Vec<TraceEvent> {
    let shards: Vec<Arc<Mutex<ThreadSpans>>> =
        THREADS.lock().unwrap_or_else(|p| p.into_inner()).clone();
    let mut events = Vec::new();
    for shard in shards {
        events.append(&mut shard.lock().unwrap_or_else(|p| p.into_inner()).trace);
    }
    events.sort_by(|a, b| (a.tid, a.ts_ns, a.name).cmp(&(b.tid, b.ts_ns, b.name)));
    events
}

/// Clears every thread's nodes, roots, open-span stack and trace events.
/// Guards still alive across a reset detect the invalidation on drop and
/// record nothing.
pub(crate) fn reset() {
    let shards: Vec<Arc<Mutex<ThreadSpans>>> =
        THREADS.lock().unwrap_or_else(|p| p.into_inner()).clone();
    for shard in shards {
        let mut spans = shard.lock().unwrap_or_else(|p| p.into_inner());
        *spans = ThreadSpans::default();
    }
}
