//! Zero-overhead observability for the PPFR stack.
//!
//! Three facilities, all std-only and dependency-free:
//!
//! * **Spans** ([`span!`], [`SpanGuard`]) — RAII wall-time regions that nest
//!   into a per-thread span tree; [`span_tree`] merges the per-thread trees
//!   by name in canonical (sorted) order, so the aggregated structure and
//!   counts are bit-stable across thread counts even when spans run inside
//!   pool workers (only the measured times vary).
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) — a lock-free
//!   registry accumulated in per-thread shards of atomic slots; [`snapshot`]
//!   merges the shards in sorted-key order.
//! * **Exporters** ([`report`], [`chrome_trace_json`]) — a human-readable
//!   span-tree/metrics text report and a chrome://tracing trace-event JSON
//!   document (load via `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! # Gating — why instrumentation can live on hot paths
//!
//! Everything funnels through [`enabled`]:
//!
//! * Without the `telemetry` **cargo feature** (the default), `enabled()` is
//!   `cfg!(feature = "telemetry") && …` — a compile-time `false`, so every
//!   instrumentation site in the workspace folds to a dead branch.
//! * With the feature, `enabled()` is a single branch on a static atomic,
//!   initialised once from the `PPFR_TELEMETRY` env var (`0`/`false`/`off`
//!   disable; anything else, or unset, enables) and overridable via
//!   [`set_enabled`].
//!
//! Recording never influences computation: telemetry only reads clocks and
//! bumps counters, so the golden-metric suite and every bit-identity twin
//! test pass unchanged with telemetry on or off (pinned in CI's `obs-layer`).
//!
//! Trace-event capture (per-span timestamps, for the chrome exporter) is a
//! second, off-by-default gate ([`set_trace_enabled`] /
//! `PPFR_TELEMETRY_TRACE=1`) because it allocates per span exit.
//!
//! [`Stopwatch`] and [`time_ms`] are always available (no feature needed):
//! they are the one wall-clock primitive the bench binaries time with, so
//! bench timings and trace spans come from the same code path
//! ([`time_span_ms`]).

#![forbid(unsafe_code)]

mod export;
mod metrics;
mod spans;

pub use export::{chrome_trace_json, report};
pub use metrics::{snapshot, Counter, Gauge, Histogram, HistogramValue, MetricValue};
pub use spans::{span_tree, SpanGuard, SpanTree};

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

/// Whether the `telemetry` cargo feature was compiled in.
pub const fn compiled() -> bool {
    cfg!(feature = "telemetry")
}

/// Tri-state runtime gate: 0 = not yet read from the env, 1 = off, 2 = on.
static RUNTIME_GATE: AtomicU8 = AtomicU8::new(0);

fn runtime_enabled() -> bool {
    // Relaxed everywhere: the gate value never orders access to other data;
    // shards and registry entries are published by their own locks.
    match RUNTIME_GATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = match std::env::var("PPFR_TELEMETRY") {
                Ok(v) => !matches!(v.trim(), "0" | "false" | "off"),
                Err(_) => true,
            };
            RUNTIME_GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// True when telemetry is recording: the `telemetry` feature is compiled in
/// **and** the runtime gate (env `PPFR_TELEMETRY`, [`set_enabled`]) is on.
///
/// With the feature off this is a compile-time `false`; with it on, a single
/// branch on a static after the first call.
#[inline]
pub fn enabled() -> bool {
    compiled() && runtime_enabled()
}

/// Forces the runtime gate, overriding the `PPFR_TELEMETRY` env var.  A
/// no-op effect-wise when the `telemetry` feature is not compiled in
/// ([`enabled`] stays `false`).
pub fn set_enabled(on: bool) {
    RUNTIME_GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Tri-state trace gate, same encoding as [`RUNTIME_GATE`].
static TRACE_GATE: AtomicU8 = AtomicU8::new(0);

pub(crate) fn trace_enabled() -> bool {
    if !enabled() {
        return false;
    }
    match TRACE_GATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var("PPFR_TELEMETRY_TRACE")
                .map(|v| matches!(v.trim(), "1" | "true" | "on"))
                .unwrap_or(false);
            TRACE_GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns per-span trace-event capture (for [`chrome_trace_json`]) on or off;
/// overrides the `PPFR_TELEMETRY_TRACE` env var.  Off by default — events
/// allocate per span exit, which general metric collection must not.
pub fn set_trace_enabled(on: bool) {
    TRACE_GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Clears every recorded metric, span and trace event (the metric registry's
/// name→slot assignments survive, so handles stay valid).  Intended for
/// tests and for exporters that measure one workload at a time.
pub fn reset() {
    metrics::reset();
    spans::reset();
}

/// Opens a hierarchical wall-time span; returns a [`SpanGuard`] that closes
/// it on drop.  **Bind the guard** (`let _span = span!("train");`) — an
/// unbound guard drops immediately and records an empty span.
///
/// When telemetry is disabled this is a branch on a static and no clock read.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

/// A started wall-clock timer.  Always available — this is the single
/// timing primitive of the workspace (the `wall-clock` lint rule bans raw
/// `Instant` outside this crate and bench code).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed nanoseconds since start (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed milliseconds since start.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

/// Times `f`, returning its result and the elapsed milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let sw = Stopwatch::new();
    let out = f();
    (out, sw.elapsed_ms())
}

/// Times `f` and, when telemetry is enabled, also records the measurement as
/// a closed span named `name` under the current span (one clock pair feeds
/// both the returned milliseconds and the span tree — bench timings and
/// trace spans share this code path).
pub fn time_span_ms<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    let end = Instant::now();
    if enabled() {
        spans::record_closed_span(name, start, end);
    }
    (out, end.duration_since(start).as_secs_f64() * 1e3)
}
