//! Feature-gated span suite: RAII nesting, canonical name-merge across
//! threads (property-tested over random thread assignments), reset safety
//! and the chrome trace-event capture.
#![cfg(feature = "telemetry")]

use ppfr_telemetry as tel;
use proptest::prelude::*;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// The thread-count-invariant part of a span tree: names, counts and
/// structure, with the measured times stripped.
#[derive(Debug, PartialEq, Eq)]
struct Shape {
    name: String,
    count: u64,
    children: Vec<Shape>,
}

fn shape(nodes: &[tel::SpanTree]) -> Vec<Shape> {
    nodes
        .iter()
        .map(|n| Shape {
            name: n.name.clone(),
            count: n.count,
            children: shape(&n.children),
        })
        .collect()
}

#[test]
fn spans_nest_and_aggregate_by_name() {
    let _l = lock();
    tel::set_enabled(true);
    tel::reset();
    {
        let _a = tel::span!("s1_outer");
        for _ in 0..3 {
            let _b = tel::span!("s1_inner");
        }
        let _c = tel::span!("s1_other");
    }
    let roots = shape(&tel::span_tree());
    assert_eq!(
        roots,
        vec![Shape {
            name: "s1_outer".into(),
            count: 1,
            children: vec![
                // Children come back in sorted-name order.
                Shape {
                    name: "s1_inner".into(),
                    count: 3,
                    children: vec![],
                },
                Shape {
                    name: "s1_other".into(),
                    count: 1,
                    children: vec![],
                },
            ],
        }]
    );
    let total = tel::span_tree()[0].total_ns;
    assert!(total > 0, "outer span must accumulate wall time");
}

#[test]
fn time_span_ms_records_under_the_open_span() {
    let _l = lock();
    tel::set_enabled(true);
    tel::reset();
    let ms = {
        let _outer = tel::span!("s2_outer");
        let (out, ms) = tel::time_span_ms("s2_timed", || 7);
        assert_eq!(out, 7);
        ms
    };
    assert!(ms >= 0.0);
    let roots = shape(&tel::span_tree());
    assert_eq!(roots.len(), 1);
    assert_eq!(roots[0].children.len(), 1);
    assert_eq!(roots[0].children[0].name, "s2_timed");
    assert_eq!(roots[0].children[0].count, 1);
}

#[test]
fn reset_while_a_span_is_open_is_safe() {
    let _l = lock();
    tel::set_enabled(true);
    tel::reset();
    let guard = tel::span!("s3_orphan");
    tel::reset();
    drop(guard); // must detect the invalidation and record nothing
    assert!(tel::span_tree().is_empty());
}

#[test]
fn trace_events_capture_and_drain() {
    let _l = lock();
    tel::set_enabled(true);
    tel::set_trace_enabled(true);
    tel::reset();
    {
        let _a = tel::span!("s4_outer");
        let _b = tel::span!("s4_inner");
    }
    tel::set_trace_enabled(false);
    let json = tel::chrome_trace_json();
    assert!(json.contains("\"name\":\"s4_outer\""), "{json}");
    assert!(json.contains("\"name\":\"s4_inner\""), "{json}");
    assert!(json.contains("\"ph\":\"X\""));
    // The export drains the buffer: a second export is empty.
    assert!(!tel::chrome_trace_json().contains("s4_outer"));
    // The aggregated tree is unaffected by draining the trace.
    assert_eq!(tel::span_tree().len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Merging is invariant to which thread recorded which span: any
    /// assignment of root spans to 3 threads yields the same aggregated
    /// shape as recording them all on one thread.
    #[test]
    fn span_tree_merge_is_thread_assignment_invariant(
        items in proptest::collection::vec((0usize..4, 0usize..3), 1..40),
    ) {
        const NAMES: [&str; 4] = ["s5_a", "s5_b", "s5_c", "s5_d"];
        let _l = lock();
        tel::set_enabled(true);

        // Baseline: every span recorded on the calling thread.
        tel::reset();
        for &(name, _) in &items {
            let _g = tel::SpanGuard::enter(NAMES[name]);
        }
        let baseline = shape(&tel::span_tree());

        // Same spans, scattered across threads per the random assignment.
        tel::reset();
        let mut per_thread: Vec<Vec<usize>> = vec![Vec::new(); 3];
        for &(name, thread) in &items {
            per_thread[thread].push(name);
        }
        let mut handles = Vec::new();
        for names in per_thread.split_off(1) {
            // lint: allow(wall-clock) — test-only worker threads driving the
            // per-thread span shards; no timing enters any assertion
            handles.push(std::thread::spawn(move || {
                for name in names {
                    let _g = tel::SpanGuard::enter(NAMES[name]);
                }
            }));
        }
        for name in &per_thread[0] {
            let _g = tel::SpanGuard::enter(NAMES[*name]);
        }
        for h in handles {
            h.join().expect("span worker");
        }
        prop_assert_eq!(shape(&tel::span_tree()), baseline);
    }
}
