//! The zero-overhead contract: without the `telemetry` cargo feature the
//! gate is a compile-time `false` and every recording site is a dead branch.
//! This suite runs in both configurations (CI's `obs-layer` builds it with
//! and without the feature) and asserts the behaviour of whichever gate is
//! active; the always-available stopwatch API is covered here too.

use ppfr_telemetry as tel;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn stopwatch_and_time_ms_are_always_available() {
    let sw = tel::Stopwatch::new();
    let mut acc = 0u64;
    for i in 0..1000u64 {
        acc = acc.wrapping_add(i * i);
    }
    assert!(std::hint::black_box(acc) > 0);
    assert!(sw.elapsed_ms() >= 0.0);
    let first = sw.elapsed_ns();
    assert!(sw.elapsed_ns() >= first, "elapsed must be monotone");

    let (out, ms) = tel::time_ms(|| 21 * 2);
    assert_eq!(out, 42);
    assert!(ms >= 0.0);
    let (out, ms) = tel::time_span_ms("gate_timed", || "x");
    assert_eq!(out, "x");
    assert!(ms >= 0.0);
}

#[test]
fn gate_reflects_feature_and_runtime_switch() {
    let _l = lock();
    if tel::compiled() {
        tel::set_enabled(false);
        assert!(!tel::enabled(), "runtime off must win");
        tel::set_enabled(true);
        assert!(tel::enabled(), "feature + runtime on must enable");
    } else {
        tel::set_enabled(true);
        assert!(
            !tel::enabled(),
            "without the feature the gate must stay hard-off"
        );
    }
}

#[test]
fn disabled_recording_is_a_no_op() {
    let _l = lock();
    if tel::compiled() {
        // The enabled semantics are covered by the feature-gated suites.
        return;
    }
    tel::set_enabled(true); // must have no effect without the feature
    static COUNTER: tel::Counter = tel::Counter::new("gate.counter");
    static GAUGE: tel::Gauge = tel::Gauge::new("gate.gauge");
    static HIST: tel::Histogram = tel::Histogram::new("gate.hist");
    COUNTER.add(5);
    GAUGE.set(1.0);
    HIST.record(7);
    {
        let _span = tel::span!("gate_span");
    }
    assert!(tel::snapshot().is_empty(), "nothing may register when off");
    assert!(tel::span_tree().is_empty(), "no spans may record when off");
    let report = tel::report();
    assert!(report.contains("(no spans recorded)"), "{report}");
    assert!(report.contains("(no metrics recorded)"), "{report}");
    assert!(tel::chrome_trace_json().contains("\"traceEvents\":["));
}
