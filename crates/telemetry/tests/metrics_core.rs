//! Feature-gated metrics-core suite: recording semantics, histogram bucket
//! boundaries, and the canonical-merge determinism contract — the snapshot
//! of a deterministic workload must be identical no matter how many pool
//! threads recorded into the per-thread shards.
#![cfg(feature = "telemetry")]

use ppfr_telemetry as tel;
use ppfr_telemetry::MetricValue;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Snapshot entries whose name starts with `prefix` (other suites and the
/// instrumented linalg dispatch counters share the global registry).
fn snapshot_with_prefix(prefix: &str) -> Vec<(String, MetricValue)> {
    tel::snapshot()
        .into_iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .collect()
}

#[test]
fn counter_gauge_histogram_roundtrip() {
    let _l = lock();
    tel::set_enabled(true);
    tel::reset();
    static COUNTER: tel::Counter = tel::Counter::new("m1.counter");
    static GAUGE: tel::Gauge = tel::Gauge::new("m1.gauge");
    static HIST: tel::Histogram = tel::Histogram::new("m1.hist");
    COUNTER.add(3);
    COUNTER.incr();
    GAUGE.set(1.5);
    GAUGE.set(2.5); // last write wins
    for v in [0, 1, 1, 5] {
        HIST.record(v);
    }
    let got = snapshot_with_prefix("m1.");
    assert_eq!(got.len(), 3, "{got:?}");
    // Sorted-name order is part of the contract.
    assert_eq!(got[0].0, "m1.counter");
    assert_eq!(got[0].1, MetricValue::Counter(4));
    assert_eq!(got[1].0, "m1.gauge");
    assert_eq!(got[1].1, MetricValue::Gauge(2.5));
    assert_eq!(got[2].0, "m1.hist");
    let MetricValue::Histogram(h) = &got[2].1 else {
        panic!("m1.hist must be a histogram: {got:?}");
    };
    assert_eq!(h.count, 4);
    assert_eq!(h.sum, 7);
    // 0 → zero bucket; 1 → [1,1]; 5 → [4,7].
    assert_eq!(h.buckets, vec![(0, 1), (1, 2), (7, 1)]);
}

#[test]
fn histogram_buckets_split_at_powers_of_two() {
    let _l = lock();
    tel::set_enabled(true);
    tel::reset();
    static HIST: tel::Histogram = tel::Histogram::new("m2.bounds");
    // One sample on each side of the 2^10 boundary, plus the extremes.
    for v in [0, 1023, 1024, u64::MAX] {
        HIST.record(v);
    }
    let got = snapshot_with_prefix("m2.");
    let MetricValue::Histogram(h) = &got[0].1 else {
        panic!("m2.bounds must be a histogram: {got:?}");
    };
    assert_eq!(
        h.buckets,
        vec![(0, 1), (1023, 1), (2047, 1), (u64::MAX, 1)],
        "1023 and 1024 must land in adjacent buckets"
    );
    assert_eq!(h.count, 4);
    assert_eq!(h.sum, 0u64.wrapping_add(1023 + 1024).wrapping_add(u64::MAX));
}

#[test]
fn shard_merge_is_identical_across_forced_thread_counts() {
    let _l = lock();
    tel::set_enabled(true);
    static COUNTER: tel::Counter = tel::Counter::new("m3.counter");
    static HIST: tel::Histogram = tel::Histogram::new("m3.hist");
    let run = |threads: usize| {
        tel::reset();
        ppfr_linalg::parallel::with_forced_threads(threads, || {
            ppfr_linalg::parallel::par_rows(64, |i| {
                COUNTER.add(1);
                HIST.record((i % 7) as u64);
                i
            })
        });
        snapshot_with_prefix("m3.")
    };
    let baseline = run(1);
    assert_eq!(
        baseline[0].1,
        MetricValue::Counter(64),
        "sanity: {baseline:?}"
    );
    for threads in [2, 4] {
        let merged = run(threads);
        assert_eq!(
            merged, baseline,
            "snapshot differs at {threads} forced threads"
        );
    }
}

#[test]
fn reset_zeroes_values_but_keeps_handles_usable() {
    let _l = lock();
    tel::set_enabled(true);
    tel::reset();
    static COUNTER: tel::Counter = tel::Counter::new("m4.counter");
    COUNTER.add(9);
    tel::reset();
    let got = snapshot_with_prefix("m4.");
    assert_eq!(got[0].1, MetricValue::Counter(0), "reset must zero values");
    COUNTER.add(2);
    let got = snapshot_with_prefix("m4.");
    assert_eq!(got[0].1, MetricValue::Counter(2), "handle survives reset");
}

#[test]
fn runtime_gate_stops_recording() {
    let _l = lock();
    tel::set_enabled(true);
    tel::reset();
    static COUNTER: tel::Counter = tel::Counter::new("m5.counter");
    COUNTER.incr();
    tel::set_enabled(false);
    COUNTER.incr(); // must not count
    tel::set_enabled(true);
    let got = snapshot_with_prefix("m5.");
    assert_eq!(got[0].1, MetricValue::Counter(1));
}
