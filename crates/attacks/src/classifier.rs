//! The supervised attack classifier: logistic regression or a one-hidden-layer
//! MLP over per-pair feature rows, trained full-batch with `ppfr_nn`'s
//! weighted cross-entropy and Adam.
//!
//! Channels are z-scored with statistics fitted on the *training* rows (the
//! shadow pairs, for shadow adversaries) and the same scaler is applied at
//! transfer time.  After training, the adversary performs model selection on
//! its own training data: if a single (sign-oriented) channel separates the
//! training pairs better than the learned classifier, the attack scores with
//! that channel instead — a shadow adversary tunes on data it fully controls,
//! so the deployed attack is never weaker than the best distance threshold it
//! could have used unsupervised.

use crate::features::{channel_names, PairFeatureTable};
use ppfr_linalg::Matrix;
use ppfr_nn::{weighted_cross_entropy, Adam, Optimizer};
use ppfr_privacy::auc_from_distances;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Attack-classifier architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifierKind {
    /// Linear (softmax) logistic regression — the LSA default.
    Logistic,
    /// One tanh hidden layer of the given width.
    Mlp {
        /// Hidden width.
        hidden: usize,
    },
}

/// Hyper-parameters of one supervised attack training run.
#[derive(Debug, Clone)]
pub struct AttackTrainConfig {
    /// Architecture.
    pub kind: ClassifierKind,
    /// Full-batch Adam epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Cap on the number of training pairs; larger training sets are thinned
    /// by a deterministic stride subsample that preserves the pos:neg ratio.
    pub max_train_pairs: usize,
    /// RNG seed for parameter initialisation.
    pub seed: u64,
}

impl Default for AttackTrainConfig {
    fn default() -> Self {
        Self {
            kind: ClassifierKind::Logistic,
            epochs: 60,
            lr: 0.05,
            weight_decay: 1e-4,
            max_train_pairs: 4000,
            seed: 17,
        }
    }
}

/// Per-channel z-scoring fitted on training rows.
#[derive(Debug, Clone)]
struct ChannelScaler {
    means: Vec<f64>,
    inv_stds: Vec<f64>,
}

impl ChannelScaler {
    fn fit(table: &PairFeatureTable, indices: &[usize]) -> Self {
        let d = table.n_channels();
        let n = indices.len().max(1) as f64;
        let mut means = vec![0.0; d];
        for &i in indices {
            for (m, &v) in means.iter_mut().zip(table.pair(i)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for &i in indices {
            for (c, &v) in table.pair(i).iter().enumerate() {
                let centered = v - means[c];
                vars[c] += centered * centered;
            }
        }
        let inv_stds = vars
            .iter()
            .map(|&v| {
                let std = (v / n).sqrt();
                // A constant (or NaN-poisoned) channel contributes nothing.
                if std.is_finite() && std > 1e-12 {
                    1.0 / std
                } else {
                    0.0
                }
            })
            .collect();
        Self { means, inv_stds }
    }

    /// Standardised design matrix of the selected rows.  Non-finite inputs
    /// (a NaN posterior upstream) are zeroed so one bad pair degrades the
    /// attack instead of poisoning the whole fit.
    fn design(&self, table: &PairFeatureTable, indices: &[usize]) -> Matrix {
        let d = table.n_channels();
        let mut x = Matrix::zeros(indices.len(), d);
        for (r, &i) in indices.iter().enumerate() {
            let row = table.pair(i);
            let out = x.row_mut(r);
            for c in 0..d {
                let z = (row[c] - self.means[c]) * self.inv_stds[c];
                out[c] = if z.is_finite() { z } else { 0.0 };
            }
        }
        x
    }
}

/// What the trained adversary actually scores with (chosen on training data).
#[derive(Debug, Clone, PartialEq)]
pub enum AttackScorer {
    /// The learned classifier's connected-class margin.
    Classifier,
    /// A single sign-oriented channel beat the classifier on training data.
    SingleChannel {
        /// Channel index into the feature-row layout.
        channel: usize,
        /// `+1` when larger values indicate "connected", `−1` otherwise.
        sign: f64,
    },
}

/// A trained supervised link-stealing attack, ready to transfer.
#[derive(Debug, Clone)]
pub struct TrainedAttack {
    kind: ClassifierKind,
    scaler: ChannelScaler,
    w1: Matrix,
    b1: Vec<f64>,
    w2: Matrix,
    b2: Vec<f64>,
    /// The scorer model selection picked on the training rows.
    pub scorer: AttackScorer,
    /// Training-set AUC of the picked scorer.
    pub train_auc: f64,
    /// Number of training pairs actually used (after the cap).
    pub n_train: usize,
}

/// AUC of `P(score_pos > score_neg)` — scores are "connectedness", so they
/// are negated into the distance convention of [`auc_from_distances`].
pub fn auc_from_scores(pos: &[f64], neg: &[f64]) -> f64 {
    let pos_d: Vec<f64> = pos.iter().map(|&s| -s).collect();
    let neg_d: Vec<f64> = neg.iter().map(|&s| -s).collect();
    auc_from_distances(&pos_d, &neg_d)
}

/// Deterministic stride subsample of `indices` down to at most `cap`
/// elements, preserving order.
fn stride_subsample(indices: Vec<usize>, cap: usize) -> Vec<usize> {
    if indices.len() <= cap || cap == 0 {
        return indices;
    }
    let stride = indices.len() as f64 / cap as f64;
    (0..cap)
        .map(|k| indices[((k as f64 * stride) as usize).min(indices.len() - 1)])
        .collect()
}

impl TrainedAttack {
    /// Trains the attack on the rows of `table` selected by `train_indices`
    /// (their connected/unconnected label comes from
    /// [`PairFeatureTable::is_positive`]).  Degenerate training sets (one
    /// class or empty) yield a chance-level scorer instead of panicking.
    pub fn fit(table: &PairFeatureTable, train_indices: &[usize], cfg: &AttackTrainConfig) -> Self {
        let _span = ppfr_telemetry::span!("attack_classifier");
        let d = table.n_channels();
        let pos: Vec<usize> = train_indices
            .iter()
            .copied()
            .filter(|&i| table.is_positive(i))
            .collect();
        let neg: Vec<usize> = train_indices
            .iter()
            .copied()
            .filter(|&i| !table.is_positive(i))
            .collect();
        // Cap positives and negatives *proportionally* so the training set
        // keeps the caller's pos:neg ratio (imbalanced threat models stay
        // imbalanced after thinning).
        let total = pos.len() + neg.len();
        let cap = cfg.max_train_pairs.min(total.max(1));
        let cap_pos = if total == 0 {
            0
        } else {
            ((cap * pos.len()) as f64 / total as f64).round() as usize
        };
        let cap_neg = cap - cap_pos.min(cap);
        let mut indices = stride_subsample(pos, cap_pos.max(1));
        let n_pos = indices.len();
        indices.extend(stride_subsample(neg, cap_neg.max(1)));
        let n_train = indices.len();

        let scaler = ChannelScaler::fit(table, &indices);
        let hidden = match cfg.kind {
            ClassifierKind::Logistic => 0,
            ClassifierKind::Mlp { hidden } => hidden.max(1),
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xa77a_c0de);
        let (mut w1, mut b1, mut w2, mut b2) = if hidden == 0 {
            (
                Matrix::zeros(d, 2),
                vec![0.0; 2],
                Matrix::zeros(0, 0),
                vec![],
            )
        } else {
            (
                Matrix::gaussian(d, hidden, 0.0, 0.3, &mut rng),
                vec![0.0; hidden],
                Matrix::gaussian(hidden, 2, 0.0, 0.3, &mut rng),
                vec![0.0; 2],
            )
        };

        let degenerate = n_pos == 0 || n_pos == n_train;
        if !degenerate {
            let x = scaler.design(table, &indices);
            let labels: Vec<usize> = (0..n_train).map(|i| usize::from(i < n_pos)).collect();
            let ids: Vec<usize> = (0..n_train).collect();
            let weights = vec![1.0; n_train];
            let mut adam = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
            let mut params = pack(&w1, &b1, &w2, &b2);
            for _ in 0..cfg.epochs {
                unpack(&params, &mut w1, &mut b1, &mut w2, &mut b2);
                let grads = if hidden == 0 {
                    let mut logits = x.matmul(&w1);
                    logits.add_row_broadcast_inplace(&b1);
                    let ce = weighted_cross_entropy(&logits, &labels, &ids, &weights);
                    let g_w1 = x.matmul_at_b(&ce.d_logits);
                    let g_b1 = ce.d_logits.col_sums();
                    pack(&g_w1, &g_b1, &w2, &b2)
                } else {
                    let mut pre = x.matmul(&w1);
                    pre.add_row_broadcast_inplace(&b1);
                    let h = pre.map(f64::tanh);
                    let mut logits = h.matmul(&w2);
                    logits.add_row_broadcast_inplace(&b2);
                    let ce = weighted_cross_entropy(&logits, &labels, &ids, &weights);
                    let g_w2 = h.matmul_at_b(&ce.d_logits);
                    let g_b2 = ce.d_logits.col_sums();
                    let d_h = ce.d_logits.matmul_a_bt(&w2);
                    let d_pre = d_h.zip_with(&h, |g, t| g * (1.0 - t * t));
                    let g_w1 = x.matmul_at_b(&d_pre);
                    let g_b1 = d_pre.col_sums();
                    pack(&g_w1, &g_b1, &g_w2, &g_b2)
                };
                adam.step(&mut params, &grads);
            }
            unpack(&params, &mut w1, &mut b1, &mut w2, &mut b2);
        }

        let mut attack = Self {
            kind: cfg.kind,
            scaler,
            w1,
            b1,
            w2,
            b2,
            scorer: AttackScorer::Classifier,
            train_auc: 0.5,
            n_train,
        };
        attack.select_scorer(table, &indices, n_pos, degenerate);
        attack
    }

    /// Adversarial model selection on the training rows: the classifier
    /// competes against every single sign-oriented channel.
    fn select_scorer(
        &mut self,
        table: &PairFeatureTable,
        indices: &[usize],
        n_pos: usize,
        degenerate: bool,
    ) {
        if degenerate {
            return;
        }
        let (pos_idx, neg_idx) = (&indices[..n_pos], &indices[n_pos..]);
        let margin = |idx: &[usize]| -> Vec<f64> { self.classifier_scores(table, idx) };
        let mut best_auc = auc_from_scores(&margin(pos_idx), &margin(neg_idx));
        let mut best = AttackScorer::Classifier;
        for channel in 0..table.n_channels() {
            let auc_up = auc_from_scores(
                &table.column(channel, pos_idx),
                &table.column(channel, neg_idx),
            );
            // Midrank AUC obeys the mirror identity, so the flipped
            // orientation is 1 − auc_up exactly.
            let (auc, sign) = if auc_up >= 1.0 - auc_up {
                (auc_up, 1.0)
            } else {
                (1.0 - auc_up, -1.0)
            };
            if auc > best_auc {
                best_auc = auc;
                best = AttackScorer::SingleChannel { channel, sign };
            }
        }
        self.train_auc = best_auc;
        self.scorer = best;
    }

    /// Raw classifier margins (connected minus unconnected logit).
    fn classifier_scores(&self, table: &PairFeatureTable, indices: &[usize]) -> Vec<f64> {
        let x = self.scaler.design(table, indices);
        let logits = match self.kind {
            ClassifierKind::Logistic => {
                let mut logits = x.matmul(&self.w1);
                logits.add_row_broadcast_inplace(&self.b1);
                logits
            }
            ClassifierKind::Mlp { .. } => {
                let mut h = x.matmul(&self.w1);
                h.add_row_broadcast_inplace(&self.b1);
                h.map_inplace(f64::tanh);
                let mut logits = h.matmul(&self.w2);
                logits.add_row_broadcast_inplace(&self.b2);
                logits
            }
        };
        (0..logits.rows())
            .map(|r| logits[(r, 1)] - logits[(r, 0)])
            .collect()
    }

    /// Connectedness scores of the selected rows under the picked scorer
    /// (higher ⇒ more likely connected).
    pub fn scores(&self, table: &PairFeatureTable, indices: &[usize]) -> Vec<f64> {
        match self.scorer {
            AttackScorer::Classifier => self.classifier_scores(table, indices),
            AttackScorer::SingleChannel { channel, sign } => table
                .column(channel, indices)
                .iter()
                .map(|&v| sign * v)
                .collect(),
        }
    }

    /// AUC of the attack on an eval split given as `(positives, negatives)`
    /// index lists.
    pub fn evaluate(&self, table: &PairFeatureTable, pos: &[usize], neg: &[usize]) -> f64 {
        auc_from_scores(&self.scores(table, pos), &self.scores(table, neg))
    }

    /// Human-readable description of the picked scorer.
    pub fn scorer_name(&self) -> String {
        match self.scorer {
            AttackScorer::Classifier => match self.kind {
                ClassifierKind::Logistic => "logistic".to_string(),
                ClassifierKind::Mlp { hidden } => format!("mlp[{hidden}]"),
            },
            AttackScorer::SingleChannel { channel, sign } => {
                let names = channel_names(true);
                let name = names.get(channel).copied().unwrap_or("channel");
                format!("{}{}", if sign > 0.0 { "+" } else { "-" }, name)
            }
        }
    }
}

fn pack(w1: &Matrix, b1: &[f64], w2: &Matrix, b2: &[f64]) -> Vec<f64> {
    let mut flat =
        Vec::with_capacity(w1.as_slice().len() + b1.len() + w2.as_slice().len() + b2.len());
    flat.extend_from_slice(w1.as_slice());
    flat.extend_from_slice(b1);
    flat.extend_from_slice(w2.as_slice());
    flat.extend_from_slice(b2);
    flat
}

fn unpack(flat: &[f64], w1: &mut Matrix, b1: &mut [f64], w2: &mut Matrix, b2: &mut [f64]) {
    let (n1, nb1, n2) = (w1.as_slice().len(), b1.len(), w2.as_slice().len());
    w1.as_mut_slice().copy_from_slice(&flat[..n1]);
    b1.copy_from_slice(&flat[n1..n1 + nb1]);
    w2.as_mut_slice()
        .copy_from_slice(&flat[n1 + nb1..n1 + nb1 + n2]);
    b2.copy_from_slice(&flat[n1 + nb1 + n2..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_linalg::row_softmax;
    use ppfr_privacy::{AttackEvaluator, PairSample};
    use rand::Rng;

    /// A table whose positives have visibly smaller distances.
    fn separable_table() -> PairFeatureTable {
        let n = 60;
        let mut edges = Vec::new();
        for block in 0..2 {
            let base = block * (n / 2);
            for i in 0..(n / 2) {
                edges.push((base + i, base + (i + 1) % (n / 2)));
                edges.push((base + i, base + (i + 7) % (n / 2)));
            }
        }
        let g = ppfr_graph::Graph::from_edges(n, &edges);
        let mut rng = StdRng::seed_from_u64(2);
        let mut logits = Matrix::gaussian(n, 3, 0.0, 0.05, &mut rng);
        for v in 0..n {
            logits[(v, usize::from(v >= n / 2))] += 3.0;
        }
        let probs = row_softmax(&logits);
        let mut rng = StdRng::seed_from_u64(5);
        let sample = PairSample::balanced(&g, &mut rng);
        let mut ev = AttackEvaluator::new(sample.clone());
        ev.distances(&probs);
        PairFeatureTable::from_distances(ev.table(), &sample, &probs, None, true)
    }

    #[test]
    fn logistic_attack_separates_an_easy_table() {
        let table = separable_table();
        let all: Vec<usize> = (0..table.n_pairs()).collect();
        let attack = TrainedAttack::fit(&table, &all, &AttackTrainConfig::default());
        assert!(
            attack.train_auc > 0.8,
            "separable training pairs must be separable, got {}",
            attack.train_auc
        );
        let pos: Vec<usize> = (0..table.n_pos()).collect();
        let neg: Vec<usize> = (table.n_pos()..table.n_pairs()).collect();
        assert!(attack.evaluate(&table, &pos, &neg) > 0.8);
    }

    #[test]
    fn mlp_attack_also_learns_and_reports_its_name() {
        let table = separable_table();
        let all: Vec<usize> = (0..table.n_pairs()).collect();
        let cfg = AttackTrainConfig {
            kind: ClassifierKind::Mlp { hidden: 8 },
            epochs: 80,
            ..AttackTrainConfig::default()
        };
        let attack = TrainedAttack::fit(&table, &all, &cfg);
        assert!(attack.train_auc > 0.75, "MLP AUC {}", attack.train_auc);
        assert!(!attack.scorer_name().is_empty());
    }

    #[test]
    fn model_selection_never_loses_to_a_single_channel_on_training_data() {
        let table = separable_table();
        let all: Vec<usize> = (0..table.n_pairs()).collect();
        let attack = TrainedAttack::fit(&table, &all, &AttackTrainConfig::default());
        let pos: Vec<usize> = (0..table.n_pos()).collect();
        let neg: Vec<usize> = (table.n_pos()..table.n_pairs()).collect();
        for channel in 0..table.n_channels() {
            let auc = auc_from_scores(&table.column(channel, &pos), &table.column(channel, &neg));
            let oriented = auc.max(1.0 - auc);
            assert!(
                attack.train_auc >= oriented - 1e-12,
                "channel {channel} ({oriented}) beats the selected scorer ({})",
                attack.train_auc
            );
        }
    }

    #[test]
    fn degenerate_training_sets_score_chance_level() {
        let table = separable_table();
        let only_pos: Vec<usize> = (0..table.n_pos()).collect();
        let attack = TrainedAttack::fit(&table, &only_pos, &AttackTrainConfig::default());
        assert_eq!(attack.train_auc, 0.5);
        assert_eq!(attack.scorer, AttackScorer::Classifier);
        let empty = TrainedAttack::fit(&table, &[], &AttackTrainConfig::default());
        assert_eq!(empty.train_auc, 0.5);
    }

    #[test]
    fn training_cap_subsamples_deterministically() {
        let table = separable_table();
        let all: Vec<usize> = (0..table.n_pairs()).collect();
        let cfg = AttackTrainConfig {
            max_train_pairs: 20,
            ..AttackTrainConfig::default()
        };
        let a = TrainedAttack::fit(&table, &all, &cfg);
        let b = TrainedAttack::fit(&table, &all, &cfg);
        assert_eq!(a.n_train, 20);
        assert_eq!(a.train_auc, b.train_auc, "same inputs ⇒ same attack");
    }

    #[test]
    fn stride_subsample_preserves_order_and_cap() {
        let picked = stride_subsample((0..100).collect(), 10);
        assert_eq!(picked.len(), 10);
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
        let untouched = stride_subsample(vec![3, 1, 2], 10);
        assert_eq!(untouched, vec![3, 1, 2]);
    }

    #[test]
    fn auc_from_scores_mirrors_distance_auc() {
        let mut rng = StdRng::seed_from_u64(1);
        let pos: Vec<f64> = (0..20).map(|_| rng.gen_range(0.0..1.0)).collect();
        let neg: Vec<f64> = (0..30).map(|_| rng.gen_range(0.0..1.0)).collect();
        let s = auc_from_scores(&pos, &neg);
        let d = auc_from_distances(&pos, &neg);
        assert!((s + d - 1.0).abs() < 1e-12);
    }
}
