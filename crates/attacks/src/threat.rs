//! The threat-model registry: which knowledge the adversary holds.
//!
//! The paper's privacy measurement assumes the weakest black-box adversary
//! (target posteriors only, unsupervised thresholding).  Stronger LSA-style
//! adversaries (He et al., USENIX Security'21; Surma et al.) additionally
//! hold node features and/or a shadow dataset and train a supervised attack.
//! The registry enumerates these knowledge settings along the two optional
//! axes — target posteriors are always known — and carries per-setting
//! training hyper-parameters, so the audit grid is one loop over entries.

use crate::classifier::AttackTrainConfig;
use ppfr_privacy::AttackReport;

/// One adversary-knowledge setting.  Target posteriors are always known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreatModel {
    /// The adversary also knows every node's input feature vector.
    pub node_features: bool,
    /// The adversary holds a shadow dataset (a look-alike graph with known
    /// edges) to train on; without one it must supervise on a disclosed half
    /// of the target pairs and is scored on the held-out half.
    pub shadow_dataset: bool,
}

impl ThreatModel {
    /// The four standard settings of the grid, weakest knowledge first.
    pub const ALL: [ThreatModel; 4] = [
        ThreatModel {
            node_features: false,
            shadow_dataset: false,
        },
        ThreatModel {
            node_features: true,
            shadow_dataset: false,
        },
        ThreatModel {
            node_features: false,
            shadow_dataset: true,
        },
        ThreatModel {
            node_features: true,
            shadow_dataset: true,
        },
    ];

    /// Stable name used in reports and experiment output.
    pub fn name(self) -> &'static str {
        match (self.node_features, self.shadow_dataset) {
            (false, false) => "posteriors",
            (true, false) => "posteriors+features",
            (false, true) => "posteriors+shadow",
            (true, true) => "posteriors+features+shadow",
        }
    }
}

/// Registry of adversary settings, each with its training configuration.
#[derive(Debug, Clone)]
pub struct ThreatModelRegistry {
    entries: Vec<(ThreatModel, AttackTrainConfig)>,
}

impl ThreatModelRegistry {
    /// The standard four-setting grid; every entry shares `base` except for a
    /// per-entry seed offset, so classifier initialisations are independent.
    pub fn standard(base: AttackTrainConfig) -> Self {
        let entries = ThreatModel::ALL
            .iter()
            .enumerate()
            .map(|(i, &model)| {
                let cfg = AttackTrainConfig {
                    seed: base.seed.wrapping_add(i as u64),
                    ..base.clone()
                };
                (model, cfg)
            })
            .collect();
        Self { entries }
    }

    /// Registers an extra setting (e.g. an MLP variant of an existing one).
    pub fn register(&mut self, model: ThreatModel, cfg: AttackTrainConfig) {
        self.entries.push((model, cfg));
    }

    /// Number of registered settings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no setting is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the registered settings.
    pub fn iter(&self) -> impl Iterator<Item = &(ThreatModel, AttackTrainConfig)> {
        self.entries.iter()
    }

    /// Keeps only the settings whose threat model satisfies `keep` — the
    /// scenario runner uses this to audit against a named subset of the
    /// grid.  (Reaching the registry through
    /// [`ThreatAuditor::registry_mut`](crate::ThreatAuditor::registry_mut)
    /// invalidates the auditor's position-indexed shadow-attack cache, so
    /// subsetting is safe at any time.)
    pub fn retain(&mut self, mut keep: impl FnMut(&ThreatModel) -> bool) {
        self.entries.retain(|(model, _)| keep(model));
    }
}

/// Outcome of one threat model's supervised attack against one posterior
/// matrix.
#[derive(Debug, Clone)]
pub struct ThreatOutcome {
    /// Registry name of the setting.
    pub name: String,
    /// The adversary-knowledge setting.
    pub model: ThreatModel,
    /// Attack AUC on the eval pairs.
    pub auc: f64,
    /// AUC the adversary measured on its own training data.
    pub train_auc: f64,
    /// Scorer the adversary deployed (classifier or a single channel).
    pub scorer: String,
    /// Training pairs used.
    pub n_train: usize,
    /// Eval pairs scored.
    pub n_eval: usize,
}

/// The full audit of one posterior matrix: the unsupervised baseline plus
/// every registered supervised threat model.
#[derive(Debug, Clone)]
pub struct ThreatGridReport {
    /// The unsupervised 8-distance evaluation (the paper's baseline attack).
    pub unsupervised: AttackReport,
    /// One outcome per registry entry, in registry order.
    pub outcomes: Vec<ThreatOutcome>,
    /// Worst-case attack AUC over the whole grid: the maximum of every
    /// supervised outcome *and* every unsupervised per-distance threshold —
    /// target posteriors are known in every setting, so the unsupervised
    /// attacks are available to every adversary and bound the grid from
    /// below.
    pub worst_case_auc: f64,
}

impl ThreatGridReport {
    /// `(name, AUC)` pairs for serialisation into `Evaluation`.
    pub fn auc_per_threat(&self) -> Vec<(String, f64)> {
        self.outcomes
            .iter()
            .map(|o| (o.name.clone(), o.auc))
            .collect()
    }

    /// Best unsupervised single-distance AUC — the strongest attack the
    /// weakest adversary could mount.
    pub fn best_unsupervised_auc(&self) -> f64 {
        self.unsupervised
            .auc_per_distance
            .iter()
            .map(|&(_, auc)| auc)
            .fold(0.5, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierKind;

    #[test]
    fn standard_registry_covers_the_four_knowledge_settings() {
        let reg = ThreatModelRegistry::standard(AttackTrainConfig::default());
        assert_eq!(reg.len(), 4);
        assert!(!reg.is_empty());
        let names: Vec<&str> = reg.iter().map(|(m, _)| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "posteriors",
                "posteriors+features",
                "posteriors+shadow",
                "posteriors+features+shadow"
            ]
        );
        // Per-entry seeds differ so initialisations are independent.
        let seeds: std::collections::HashSet<u64> = reg.iter().map(|(_, c)| c.seed).collect();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn extra_settings_can_be_registered() {
        let mut reg = ThreatModelRegistry::standard(AttackTrainConfig::default());
        reg.register(
            ThreatModel {
                node_features: true,
                shadow_dataset: true,
            },
            AttackTrainConfig {
                kind: ClassifierKind::Mlp { hidden: 8 },
                ..AttackTrainConfig::default()
            },
        );
        assert_eq!(reg.len(), 5);
    }
}
