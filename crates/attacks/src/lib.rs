//! # `ppfr_attacks` — supervised link-stealing attacks under a threat-model
//! # registry
//!
//! The paper measures edge-privacy risk with the *weakest* adversary: an
//! unsupervised threshold on one of eight posterior distances
//! ([`ppfr_privacy::AttackEvaluator`]).  Stronger LSA-style adversaries
//! (He et al., USENIX Security'21; Surma et al., *Fairness and/or Privacy on
//! Social Graphs*) hold extra knowledge and train a supervised attack, and
//! achieve materially higher AUC — so PPFR's privacy claims must be
//! stress-tested against them.  This crate provides:
//!
//! * [`ThreatModel`] / [`ThreatModelRegistry`] — the adversary-knowledge grid
//!   along two optional axes (node features, shadow dataset; target
//!   posteriors are always known), with per-setting training configs;
//! * [`features`] — batched per-pair feature extraction (eight posterior
//!   distances reused from the evaluator's
//!   [`DistanceTable`](ppfr_privacy::DistanceTable), posterior-entropy
//!   channels, optional input-feature distance channels), parallel over pair
//!   chunks with a bit-identical serial twin;
//! * [`classifier`] — the logistic-regression / MLP attack trained with
//!   `ppfr_nn`'s cross-entropy and Adam, z-scored channels, and adversarial
//!   model selection (the deployed scorer is never weaker on training data
//!   than the best single distance threshold);
//! * [`shadow`] — shadow-dataset construction ([`ppfr_datasets::shadow_of`])
//!   plus an SGC-style posterior surrogate, cached per dataset;
//! * [`ThreatAuditor`] — one object per (dataset, config) auditing arbitrary
//!   many posterior matrices against the whole grid and reporting the
//!   worst-case supervised AUC next to the paper's mean-distance AUC.

#![forbid(unsafe_code)]

pub mod auditor;
pub mod classifier;
pub mod features;
pub mod shadow;
pub mod threat;

pub use auditor::ThreatAuditor;
pub use classifier::{
    auc_from_scores, AttackScorer, AttackTrainConfig, ClassifierKind, TrainedAttack,
};
pub use features::{
    channel_names, n_channels, node_entropies, pair_feature_row, row_entropy, PairFeatureTable,
    N_ENTROPY_CHANNELS, N_FEATURE_CHANNELS,
};
pub use shadow::{surrogate_posteriors, ShadowBundle};
pub use threat::{ThreatGridReport, ThreatModel, ThreatModelRegistry, ThreatOutcome};
