//! The shadow side of the supervised attacks: a look-alike dataset with a
//! posterior surrogate, its own pair sample and cached feature tables.
//!
//! The shadow victim does not have to be a fully trained GNN — the attack
//! transfers as long as the shadow posteriors carry the same *structural*
//! signal a trained victim leaks (nodes of the same block have close,
//! confident rows; cross-block pairs do not).  A two-hop label-smoothing
//! surrogate (an SGC-style propagation of the shadow's one-hot labels through
//! the symmetric normalised adjacency) reproduces exactly that signal at
//! `O(nnz · c)` cost, which keeps shadow construction affordable inside the
//! 20k-node scenarios.

use crate::features::PairFeatureTable;
use ppfr_datasets::{shadow_of, Dataset};
use ppfr_graph::Graph;
use ppfr_linalg::Matrix;
use ppfr_privacy::{AttackEvaluator, PairSample};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SGC-style posterior surrogate: two propagation hops of the one-hot labels
/// through `Â = D^{-1/2}(A + I)D^{-1/2}`, mixed half-and-half with the
/// one-hop result and row-normalised into probabilities.  Deterministic, no
/// RNG, no training.
pub fn surrogate_posteriors(graph: &Graph, labels: &[usize], n_classes: usize) -> Matrix {
    assert_eq!(graph.n_nodes(), labels.len(), "one label per node");
    let n = graph.n_nodes();
    let mut one_hot = Matrix::zeros(n, n_classes.max(1));
    for (i, &l) in labels.iter().enumerate() {
        one_hot[(i, l.min(n_classes.saturating_sub(1)))] = 1.0;
    }
    let a_hat = graph.normalized_adjacency();
    let hop1 = a_hat.matmul_dense(&one_hot);
    let hop2 = a_hat.matmul_dense(&hop1);
    let mixed = hop1.add(&hop2);
    // Row-normalise with a small floor so isolated nodes get uniform rows.
    let mut probs = mixed.map(|v| v.max(0.0) + 1e-3);
    for r in 0..n {
        let row = probs.row_mut(r);
        let total: f64 = row.iter().sum();
        for v in row {
            *v /= total;
        }
    }
    probs
}

/// Everything the shadow adversary trains on, built once per target dataset
/// and reused across every audited posterior matrix.
#[derive(Debug, Clone)]
pub struct ShadowBundle {
    /// The look-alike dataset (fresh SBM draw mirroring the target moments).
    pub data: Dataset,
    /// Shadow posteriors from the surrogate victim.
    pub probs: Matrix,
    evaluator: AttackEvaluator,
    plain_table: Option<PairFeatureTable>,
    feature_table: Option<PairFeatureTable>,
}

impl ShadowBundle {
    /// Samples the shadow of `target` and prepares its pair sample with the
    /// given negative:positive ratio.  Fully deterministic in `seed`.
    pub fn new(target: &Dataset, neg_per_pos: f64, seed: u64) -> Self {
        let data = shadow_of(target, seed);
        let probs = surrogate_posteriors(&data.graph, &data.labels, data.n_classes);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7e11_5ead);
        let sample = PairSample::with_ratio(&data.graph, neg_per_pos, &mut rng);
        Self {
            data,
            probs,
            evaluator: AttackEvaluator::new(sample),
            plain_table: None,
            feature_table: None,
        }
    }

    /// The shadow pair sample.
    pub fn sample(&self) -> &PairSample {
        self.evaluator.sample()
    }

    /// The shadow feature table for the requested channel set, extracted on
    /// first use and cached (shadow posteriors never change).
    pub fn table(&mut self, with_features: bool) -> &PairFeatureTable {
        let slot = if with_features {
            &mut self.feature_table
        } else {
            &mut self.plain_table
        };
        if slot.is_none() {
            self.evaluator.distances(&self.probs);
            let features = with_features.then_some(&self.data.features);
            *slot = Some(PairFeatureTable::from_distances(
                self.evaluator.table(),
                self.evaluator.sample(),
                &self.probs,
                features,
                true,
            ));
        }
        slot.as_ref().expect("just filled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_datasets::sparse_sbm_dataset;
    use ppfr_privacy::DistanceKind;

    #[test]
    fn surrogate_posteriors_are_probability_rows_and_block_separated() {
        let ds = sparse_sbm_dataset(400, 3, 8.0, 1.0, 24, 5);
        let probs = surrogate_posteriors(&ds.graph, &ds.labels, ds.n_classes);
        assert_eq!(probs.shape(), (400, 3));
        for r in 0..probs.rows() {
            let row = probs.row(r);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9, "row {r} sum");
            assert!(row.iter().all(|&v| v > 0.0));
        }
        // Same-block rows are closer than cross-block rows on average.
        let d = |u: usize, v: usize| {
            ppfr_privacy::pairwise_distance(DistanceKind::Euclidean, probs.row(u), probs.row(v))
        };
        let (mut same, mut cross, mut n_same, mut n_cross) = (0.0, 0.0, 0usize, 0usize);
        for u in (0..400).step_by(7) {
            for v in (1..400).step_by(11) {
                if u == v {
                    continue;
                }
                if ds.labels[u] == ds.labels[v] {
                    same += d(u, v);
                    n_same += 1;
                } else {
                    cross += d(u, v);
                    n_cross += 1;
                }
            }
        }
        assert!(same / n_same as f64 + 0.05 < cross / n_cross as f64);
    }

    #[test]
    fn surrogate_handles_isolated_nodes() {
        let g = Graph::from_edges(5, &[(0, 1)]);
        let probs = surrogate_posteriors(&g, &[0, 1, 0, 1, 0], 2);
        assert!(probs.as_slice().iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn bundle_caches_both_channel_sets() {
        let target = sparse_sbm_dataset(300, 2, 6.0, 1.5, 16, 9);
        let mut bundle = ShadowBundle::new(&target, 1.0, 21);
        let plain_channels = bundle.table(false).n_channels();
        let feat_channels = bundle.table(true).n_channels();
        assert_eq!(feat_channels, plain_channels + 2);
        // Cached: a second call returns the same allocation contents.
        let first = bundle.table(false).as_slice().to_vec();
        assert_eq!(bundle.table(false).as_slice(), &first[..]);
        // The shadow is not the target.
        assert_eq!(bundle.data.n_nodes(), target.n_nodes());
        let shared = target
            .graph
            .edges()
            .filter(|&(u, v)| bundle.data.graph.has_edge(u, v))
            .count();
        assert!(shared < target.graph.n_edges());
    }
}
