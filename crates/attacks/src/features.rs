//! Per-pair attack feature extraction.
//!
//! Every supervised attack consumes one row per node pair.  The channel
//! layout is fixed so classifiers trained on a shadow graph transfer to the
//! target without any bookkeeping:
//!
//! * channels `0..8` — the eight posterior distances of
//!   [`DistanceKind::ALL`], produced by the single-pass
//!   [`ppfr_privacy::multi_distance`] kernel (reused from the
//!   [`DistanceTable`] the unsupervised evaluator already computed);
//! * channel `8` — mean posterior entropy `(H(p_u) + H(p_v)) / 2`;
//! * channel `9` — entropy gap `|H(p_u) − H(p_v)|`;
//! * channels `10..12` (feature-aware threat models only) — cosine and
//!   cityblock distance between the two nodes' *input feature* rows.
//!
//! All channels are symmetric in the pair order, so `(u, v)` and `(v, u)`
//! extract bit-identical rows — pinned by the vendored-proptest property
//! tests.  Batched extraction is parallel over pair chunks via
//! [`ppfr_linalg::parallel::par_chunks`] with a bit-identical serial twin.

use ppfr_linalg::parallel::{par_chunks, par_rows};
use ppfr_linalg::Matrix;
use ppfr_privacy::{
    multi_distance, pairwise_distance, DistanceKind, DistanceTable, PairSample, N_DISTANCE_KINDS,
};

/// Entropy channels appended after the eight distances.
pub const N_ENTROPY_CHANNELS: usize = 2;
/// Input-feature distance channels appended for feature-aware threat models.
pub const N_FEATURE_CHANNELS: usize = 2;

/// Number of channels a threat model's feature rows carry.
pub fn n_channels(with_features: bool) -> usize {
    N_DISTANCE_KINDS + N_ENTROPY_CHANNELS + if with_features { N_FEATURE_CHANNELS } else { 0 }
}

/// Human-readable channel names, in row order.
pub fn channel_names(with_features: bool) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = DistanceKind::ALL.iter().map(|k| k.name()).collect();
    names.push("entropy_mean");
    names.push("entropy_gap");
    if with_features {
        names.push("feat_cosine");
        names.push("feat_cityblock");
    }
    names
}

/// Shannon entropy (nats) of one posterior row; zero probabilities contribute
/// zero, so degraded posteriors stay finite.
pub fn row_entropy(p: &[f64]) -> f64 {
    p.iter()
        .map(|&v| if v > 0.0 { -v * v.ln() } else { 0.0 })
        .sum()
}

/// Entropy of every posterior row; parallel over rows when requested (the
/// serial path keeps serial-vs-parallel timings honest — results are
/// bit-identical either way).
pub fn node_entropies(probs: &Matrix, parallel: bool) -> Vec<f64> {
    if parallel {
        par_rows(probs.rows(), |r| row_entropy(probs.row(r)))
    } else {
        (0..probs.rows())
            .map(|r| row_entropy(probs.row(r)))
            .collect()
    }
}

/// Reference single-pair extraction (also the property-test subject): fills
/// `out` (length [`n_channels`]) for the pair `(u, v)`.
///
/// # Panics
/// Panics when `out` does not match `n_channels(features.is_some())`.
pub fn pair_feature_row(
    probs: &Matrix,
    features: Option<&Matrix>,
    u: usize,
    v: usize,
    out: &mut [f64],
) {
    assert_eq!(
        out.len(),
        n_channels(features.is_some()),
        "output row length must match the channel layout"
    );
    multi_distance(probs.row(u), probs.row(v), &mut out[..N_DISTANCE_KINDS]);
    let (h_u, h_v) = (row_entropy(probs.row(u)), row_entropy(probs.row(v)));
    out[N_DISTANCE_KINDS] = 0.5 * (h_u + h_v);
    out[N_DISTANCE_KINDS + 1] = (h_u - h_v).abs();
    if let Some(x) = features {
        out[N_DISTANCE_KINDS + 2] = pairwise_distance(DistanceKind::Cosine, x.row(u), x.row(v));
        out[N_DISTANCE_KINDS + 3] = pairwise_distance(DistanceKind::Cityblock, x.row(u), x.row(v));
    }
}

/// The extracted feature rows of every sampled pair, positives first —
/// row-major `n_pairs × n_channels`, mirroring [`DistanceTable`]'s layout.
#[derive(Debug, Clone)]
pub struct PairFeatureTable {
    values: Vec<f64>,
    n_channels: usize,
    n_pos: usize,
    n_neg: usize,
}

impl PairFeatureTable {
    /// Batched extraction reusing the distances the unsupervised evaluator
    /// already computed: `table` must be the [`DistanceTable`] of `sample`
    /// under the same posterior matrix `probs`.  Entropy channels read the
    /// precomputed per-node entropies; feature channels (when `features` is
    /// given) are computed per pair.  Parallel over pair chunks; the
    /// `parallel = false` twin is bit-identical.
    pub fn from_distances(
        table: &DistanceTable,
        sample: &PairSample,
        probs: &Matrix,
        features: Option<&Matrix>,
        parallel: bool,
    ) -> Self {
        let _span = ppfr_telemetry::span!("attack_features");
        let n_pos = sample.positives.len();
        let n_neg = sample.negatives.len();
        assert_eq!(
            table.n_pairs(),
            n_pos + n_neg,
            "distance table and sample disagree on the pair count"
        );
        let n_channels = n_channels(features.is_some());
        let entropies = node_entropies(probs, parallel);
        let mut values = vec![0.0; (n_pos + n_neg) * n_channels];
        let fill = |i: usize, out: &mut [f64]| {
            let (u, v) = if i < n_pos {
                sample.positives[i]
            } else {
                sample.negatives[i - n_pos]
            };
            out[..N_DISTANCE_KINDS].copy_from_slice(table.pair(i));
            let (h_u, h_v) = (entropies[u], entropies[v]);
            out[N_DISTANCE_KINDS] = 0.5 * (h_u + h_v);
            out[N_DISTANCE_KINDS + 1] = (h_u - h_v).abs();
            if let Some(x) = features {
                out[N_DISTANCE_KINDS + 2] =
                    pairwise_distance(DistanceKind::Cosine, x.row(u), x.row(v));
                out[N_DISTANCE_KINDS + 3] =
                    pairwise_distance(DistanceKind::Cityblock, x.row(u), x.row(v));
            }
        };
        if values.is_empty() {
            // par_chunks rejects empty buffers; nothing to fill anyway.
        } else if parallel {
            par_chunks(&mut values, n_channels, fill);
        } else {
            for (i, out) in values.chunks_mut(n_channels).enumerate() {
                fill(i, out);
            }
        }
        Self {
            values,
            n_channels,
            n_pos,
            n_neg,
        }
    }

    /// Number of positive (connected) pairs.
    pub fn n_pos(&self) -> usize {
        self.n_pos
    }

    /// Number of negative (unconnected) pairs.
    pub fn n_neg(&self) -> usize {
        self.n_neg
    }

    /// Total number of pairs.
    pub fn n_pairs(&self) -> usize {
        self.n_pos + self.n_neg
    }

    /// Channels per row.
    pub fn n_channels(&self) -> usize {
        self.n_channels
    }

    /// True when pair `i` is a connected (positive) pair.
    pub fn is_positive(&self, i: usize) -> bool {
        i < self.n_pos
    }

    /// Feature row of pair `i`.
    pub fn pair(&self, i: usize) -> &[f64] {
        &self.values[i * self.n_channels..(i + 1) * self.n_channels]
    }

    /// Raw row-major buffer, for the equivalence tests.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// One channel's value for every pair in `indices`.
    pub fn column(&self, channel: usize, indices: &[usize]) -> Vec<f64> {
        indices
            .iter()
            .map(|&i| self.values[i * self.n_channels + channel])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_graph::Graph;
    use ppfr_linalg::parallel::with_forced_threads;
    use ppfr_linalg::row_softmax;
    use ppfr_privacy::AttackEvaluator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Matrix, Matrix, AttackEvaluator) {
        let edges: Vec<(usize, usize)> = (0..12).map(|i| (i, (i + 1) % 12)).collect();
        let g = Graph::from_edges(12, &edges);
        let mut rng = StdRng::seed_from_u64(3);
        let probs = row_softmax(&Matrix::gaussian(12, 3, 0.0, 1.0, &mut rng));
        let features = Matrix::gaussian(12, 5, 0.0, 1.0, &mut rng).map(|v| f64::from(v > 0.0));
        let mut rng = StdRng::seed_from_u64(8);
        let ev = AttackEvaluator::from_graph(&g, &mut rng);
        (probs, features, ev)
    }

    #[test]
    fn batched_extraction_matches_the_reference_row() {
        let (probs, features, mut ev) = setup();
        ev.distances(&probs);
        let sample = ev.sample().clone();
        let table =
            PairFeatureTable::from_distances(ev.table(), &sample, &probs, Some(&features), true);
        assert_eq!(table.n_channels(), n_channels(true));
        let mut reference = vec![0.0; n_channels(true)];
        for (i, &(u, v)) in sample
            .positives
            .iter()
            .chain(sample.negatives.iter())
            .enumerate()
        {
            pair_feature_row(&probs, Some(&features), u, v, &mut reference);
            assert_eq!(table.pair(i), &reference[..], "pair {i} ({u},{v}) differs");
        }
    }

    #[test]
    fn parallel_and_serial_extraction_are_bit_identical() {
        let (probs, features, mut ev) = setup();
        ev.distances(&probs);
        let sample = ev.sample().clone();
        let serial =
            PairFeatureTable::from_distances(ev.table(), &sample, &probs, Some(&features), false);
        for threads in [1, 2, 4] {
            let parallel = with_forced_threads(threads, || {
                PairFeatureTable::from_distances(ev.table(), &sample, &probs, Some(&features), true)
            });
            assert_eq!(
                parallel.as_slice(),
                serial.as_slice(),
                "extraction differs at {threads} threads"
            );
        }
    }

    #[test]
    fn node_entropies_parallel_matches_serial_across_thread_counts() {
        let (probs, _, _) = setup();
        let serial = node_entropies(&probs, false);
        for threads in [1, 2, 4] {
            let parallel = with_forced_threads(threads, || node_entropies(&probs, true));
            assert_eq!(
                parallel, serial,
                "node_entropies differs at {threads} threads"
            );
        }
    }

    #[test]
    fn channel_names_match_the_layout() {
        assert_eq!(channel_names(false).len(), n_channels(false));
        assert_eq!(channel_names(true).len(), n_channels(true));
        assert_eq!(channel_names(true)[0], "cosine");
        assert_eq!(channel_names(true)[N_DISTANCE_KINDS], "entropy_mean");
        assert_eq!(channel_names(true)[N_DISTANCE_KINDS + 2], "feat_cosine");
    }

    #[test]
    fn entropy_is_maximal_for_uniform_rows() {
        let uniform = [0.25; 4];
        let peaked = [1.0, 0.0, 0.0, 0.0];
        assert!((row_entropy(&uniform) - 4.0_f64.ln()).abs() < 1e-12);
        assert_eq!(row_entropy(&peaked), 0.0);
    }
}
