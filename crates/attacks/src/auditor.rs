//! [`ThreatAuditor`]: one object per (dataset, config) that audits arbitrary
//! many posterior matrices against the whole threat-model grid.
//!
//! It owns the unsupervised [`AttackEvaluator`] (pair sample + distance
//! buffers, exactly the object `ppfr_core` already built once per dataset),
//! the target node features, and a cached [`ShadowBundle`].  One
//! [`ThreatAuditor::audit`] call:
//!
//! 1. runs the unsupervised 8-distance evaluation (filling the shared
//!    [`DistanceTable`](ppfr_privacy::DistanceTable) once);
//! 2. extracts the target pair-feature tables (with and without the feature
//!    channels) from that table — batched, parallel over pair chunks;
//! 3. for every registry entry, trains the supervised attack on the shadow
//!    pairs (shadow settings) or on a disclosed half of the target pairs
//!    (partial-knowledge settings) and scores the held-out target pairs with
//!    the rank AUC.
//!
//! Everything is deterministic in the seeds and independent of the worker
//! thread count.

use crate::classifier::{AttackTrainConfig, TrainedAttack};
use crate::features::PairFeatureTable;
use crate::shadow::ShadowBundle;
use crate::threat::{ThreatGridReport, ThreatModelRegistry, ThreatOutcome};
use ppfr_datasets::Dataset;
use ppfr_linalg::Matrix;
use ppfr_privacy::{AttackEvaluator, PairSample};

/// Deterministic even/odd halves of a pair table, split separately inside
/// positives and negatives so both halves keep the sample's ratio.
fn half_split(n_pos: usize, n_pairs: usize) -> (Vec<usize>, Vec<usize>) {
    let mut train = Vec::with_capacity(n_pairs / 2 + 1);
    let mut eval = Vec::with_capacity(n_pairs / 2 + 1);
    for i in 0..n_pairs {
        let within = if i < n_pos { i } else { i - n_pos };
        if within % 2 == 0 {
            train.push(i);
        } else {
            eval.push(i);
        }
    }
    (train, eval)
}

/// Supervised link-stealing auditor with a fixed target pair sample, target
/// features, shadow bundle and threat-model registry.
#[derive(Debug, Clone)]
pub struct ThreatAuditor {
    evaluator: AttackEvaluator,
    features: Matrix,
    shadow: ShadowBundle,
    registry: ThreatModelRegistry,
    /// Shadow-trained attacks per registry index: they depend only on the
    /// (fixed) shadow table and the entry's config, never on the audited
    /// posteriors, so they are fitted once and reused across audits.
    shadow_attacks: Vec<Option<TrainedAttack>>,
}

impl ThreatAuditor {
    /// Wraps pre-built parts.  `features` are the target's node features
    /// (the feature-aware threat models' extra knowledge).
    pub fn new(
        evaluator: AttackEvaluator,
        features: Matrix,
        shadow: ShadowBundle,
        registry: ThreatModelRegistry,
    ) -> Self {
        Self {
            evaluator,
            features,
            shadow,
            registry,
            shadow_attacks: Vec::new(),
        }
    }

    /// Builds the auditor for a target dataset: the given pair `sample` over
    /// the target's confidential edges, the standard four-setting registry
    /// from `base`, and a shadow of the dataset drawn with `shadow_seed`.
    pub fn for_dataset(
        dataset: &Dataset,
        sample: PairSample,
        base: AttackTrainConfig,
        shadow_seed: u64,
    ) -> Self {
        let shadow = ShadowBundle::new(dataset, 1.0, shadow_seed);
        Self::new(
            AttackEvaluator::new(sample),
            dataset.features.clone(),
            shadow,
            ThreatModelRegistry::standard(base),
        )
    }

    /// The underlying unsupervised evaluator (e.g. for the clustering attack
    /// or direct distance access).
    pub fn evaluator(&self) -> &AttackEvaluator {
        &self.evaluator
    }

    /// Mutable access to the unsupervised evaluator.
    pub fn evaluator_mut(&mut self) -> &mut AttackEvaluator {
        &mut self.evaluator
    }

    /// The target pair sample every audit scores against.
    pub fn sample(&self) -> &PairSample {
        self.evaluator.sample()
    }

    /// The threat-model registry driving the grid.
    pub fn registry(&self) -> &ThreatModelRegistry {
        &self.registry
    }

    /// Registers extra threat settings before auditing.  Invalidates the
    /// cached shadow-trained attacks, since entries (and their configs) may
    /// change under the caller.
    pub fn registry_mut(&mut self) -> &mut ThreatModelRegistry {
        self.shadow_attacks.clear();
        &mut self.registry
    }

    /// Audits one posterior matrix against the unsupervised baseline and the
    /// full supervised threat-model grid.
    pub fn audit(&mut self, probs: &Matrix) -> ThreatGridReport {
        let _span = ppfr_telemetry::span!("attack_grid");
        // One distance pass feeds both the unsupervised report and the
        // supervised feature extraction.
        let unsupervised = self.evaluator.evaluate(probs);
        let sample = self.evaluator.sample();
        let n_pos = sample.positives.len();
        let n_pairs = sample.positives.len() + sample.negatives.len();
        let target_plain =
            PairFeatureTable::from_distances(self.evaluator.table(), sample, probs, None, true);
        let target_feat = PairFeatureTable::from_distances(
            self.evaluator.table(),
            sample,
            probs,
            Some(&self.features),
            true,
        );
        let (half_train, half_eval) = half_split(n_pos, n_pairs);
        let all: Vec<usize> = (0..n_pairs).collect();

        // The entries are cloned so the shadow cache can be borrowed mutably
        // inside the loop; configs are a handful of scalars.
        let entries: Vec<_> = self.registry.iter().cloned().collect();
        self.shadow_attacks.resize(entries.len(), None);
        let mut outcomes = Vec::with_capacity(entries.len());
        for (index, (model, cfg)) in entries.into_iter().enumerate() {
            let target_table = if model.node_features {
                &target_feat
            } else {
                &target_plain
            };
            // Holds a per-audit partial-knowledge fit for the borrow below.
            let partial: Option<TrainedAttack>;
            let (attack, eval_indices): (&TrainedAttack, &[usize]) = if model.shadow_dataset {
                // Train on every shadow pair (the cap thins it) — once per
                // registry entry, since neither the shadow table nor the
                // config depends on the audited posteriors — and score every
                // target pair.
                if self.shadow_attacks[index].is_none() {
                    let shadow_table = self.shadow.table(model.node_features);
                    let shadow_all: Vec<usize> = (0..shadow_table.n_pairs()).collect();
                    self.shadow_attacks[index] =
                        Some(TrainedAttack::fit(shadow_table, &shadow_all, &cfg));
                }
                (
                    self.shadow_attacks[index].as_ref().expect("just fitted"),
                    &all[..],
                )
            } else {
                // Partial knowledge: half the target pairs are disclosed for
                // training, the other half is attacked.  These genuinely
                // depend on the audited posteriors, so they refit per audit.
                partial = Some(TrainedAttack::fit(target_table, &half_train, &cfg));
                (partial.as_ref().expect("just fitted"), &half_eval[..])
            };
            let (pos_idx, neg_idx): (Vec<usize>, Vec<usize>) =
                eval_indices.iter().partition(|&&i| i < n_pos);
            let auc = attack.evaluate(target_table, &pos_idx, &neg_idx);
            outcomes.push(ThreatOutcome {
                name: model.name().to_string(),
                model,
                auc,
                train_auc: attack.train_auc,
                scorer: attack.scorer_name(),
                n_train: attack.n_train,
                n_eval: eval_indices.len(),
            });
        }
        // Posteriors are known to every adversary, so the unsupervised
        // per-distance thresholds are always available: the worst case is the
        // max over supervised outcomes *and* those baselines.
        let worst_case_auc = outcomes
            .iter()
            .map(|o| o.auc)
            .chain(unsupervised.auc_per_distance.iter().map(|&(_, auc)| auc))
            .fold(0.5, f64::max);
        ThreatGridReport {
            unsupervised,
            outcomes,
            worst_case_auc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_datasets::sparse_sbm_dataset;
    use ppfr_linalg::row_softmax;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn block_posteriors(labels: &[usize], n_classes: usize, confidence: f64) -> Matrix {
        let mut logits = Matrix::zeros(labels.len(), n_classes);
        for (v, &l) in labels.iter().enumerate() {
            logits[(v, l)] = confidence + (v % 13) as f64 * 0.01;
        }
        row_softmax(&logits)
    }

    fn auditor_for(dataset: &Dataset, seed: u64) -> ThreatAuditor {
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = PairSample::balanced(&dataset.graph, &mut rng);
        ThreatAuditor::for_dataset(dataset, sample, AttackTrainConfig::default(), seed ^ 0x51ab)
    }

    #[test]
    fn audit_runs_the_full_grid_and_reports_worst_case() {
        let ds = sparse_sbm_dataset(500, 2, 7.0, 1.0, 16, 3);
        let mut auditor = auditor_for(&ds, 5);
        let probs = block_posteriors(&ds.labels, 2, 2.5);
        let report = auditor.audit(&probs);
        assert_eq!(report.outcomes.len(), 4);
        for o in &report.outcomes {
            assert!((0.0..=1.0).contains(&o.auc), "{}: AUC {}", o.name, o.auc);
            assert!(o.n_train > 0 && o.n_eval > 0);
        }
        let max = report
            .outcomes
            .iter()
            .map(|o| o.auc)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(
            report.worst_case_auc,
            max.max(report.best_unsupervised_auc()).max(0.5)
        );
        // Block posteriors leak: the worst case clears chance comfortably.
        assert!(report.worst_case_auc > 0.6, "{}", report.worst_case_auc);
        assert_eq!(report.auc_per_threat().len(), 4);
    }

    #[test]
    fn uniform_posteriors_stay_near_chance_for_every_adversary() {
        let ds = sparse_sbm_dataset(400, 2, 6.0, 1.5, 16, 4);
        let mut auditor = auditor_for(&ds, 6);
        let uniform = Matrix::filled(ds.n_nodes(), 2, 0.5);
        let report = auditor.audit(&uniform);
        for o in &report.outcomes {
            // Feature-aware adversaries retain a little signal from the
            // feature channels alone; posterior-only ones are blind.
            let cap = if o.model.node_features { 0.75 } else { 0.56 };
            assert!(
                o.auc < cap,
                "{}: uniform posteriors should cap the attack at {cap}, got {}",
                o.name,
                o.auc
            );
        }
    }

    #[test]
    fn half_split_is_disjoint_ratio_preserving_and_deterministic() {
        let (train, eval) = half_split(10, 25);
        assert_eq!(train.len() + eval.len(), 25);
        let overlap: Vec<_> = train.iter().filter(|i| eval.contains(i)).collect();
        assert!(overlap.is_empty());
        let train_pos = train.iter().filter(|&&i| i < 10).count();
        let eval_pos = eval.iter().filter(|&&i| i < 10).count();
        assert_eq!(train_pos, 5);
        assert_eq!(eval_pos, 5);
        assert_eq!(half_split(10, 25), (train, eval));
    }
}
