//! Shadow-transfer sanity: on a homophilous SBM whose posteriors carry the
//! usual block signal, a supervised adversary must be at least as strong as
//! the best unsupervised single-distance attack — that ordering is the whole
//! reason the threat grid exists.

use ppfr_attacks::{AttackTrainConfig, ThreatAuditor};
use ppfr_datasets::sparse_sbm_dataset;
use ppfr_linalg::{row_softmax, Matrix};
use ppfr_privacy::PairSample;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn supervised_attack_beats_the_best_unsupervised_distance() {
    // Strongly homophilous: ~7 intra-block vs ~1 cross-block expected degree.
    let ds = sparse_sbm_dataset(1_200, 2, 7.0, 1.0, 24, 13);
    let mut rng = StdRng::seed_from_u64(3);
    let sample = PairSample::balanced(&ds.graph, &mut rng);
    let cfg = AttackTrainConfig {
        epochs: 80,
        ..AttackTrainConfig::default()
    };
    let mut auditor = ThreatAuditor::for_dataset(&ds, sample, cfg, 0x5eed);

    // A trained victim's posteriors: confident block predictions with a
    // deterministic wiggle so pairs stay distinguishable.
    let mut logits = Matrix::zeros(ds.n_nodes(), 2);
    for v in 0..ds.n_nodes() {
        logits[(v, ds.labels[v])] = 2.5 - (v % 23) as f64 * 0.03;
    }
    let probs = row_softmax(&logits);

    let report = auditor.audit(&probs);
    let best_unsupervised = report.best_unsupervised_auc();
    assert!(
        best_unsupervised > 0.55,
        "the scenario must leak in the first place, got {best_unsupervised}"
    );
    // Every shadow adversary clears the unsupervised bar (small slack for
    // the train→target transfer gap of rank statistics).
    for o in report.outcomes.iter().filter(|o| o.model.shadow_dataset) {
        assert!(
            o.auc >= best_unsupervised - 0.02,
            "{}: supervised AUC {} below unsupervised best {}",
            o.name,
            o.auc,
            best_unsupervised
        );
    }
    // And the grid's worst case dominates it outright.
    assert!(
        report.worst_case_auc >= best_unsupervised,
        "worst-case {} must dominate the unsupervised best {}",
        report.worst_case_auc,
        best_unsupervised
    );
    assert!(
        report.worst_case_auc >= report.unsupervised.average_auc,
        "worst-case must dominate the mean-distance AUC"
    );
}
