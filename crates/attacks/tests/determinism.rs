//! Determinism of the supervised attack grid: the same seed must produce
//! identical attack AUCs across repeated runs and across forced worker-thread
//! counts (the parallel kernels underneath are pinned bit-identical to their
//! serial twins, so nothing in the grid may depend on scheduling).

use ppfr_attacks::{AttackTrainConfig, ThreatAuditor};
use ppfr_datasets::sparse_sbm_dataset;
use ppfr_linalg::parallel::with_forced_threads;
use ppfr_linalg::{row_softmax, Matrix};
use ppfr_privacy::PairSample;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn grid_aucs(seed: u64) -> Vec<f64> {
    let ds = sparse_sbm_dataset(600, 2, 7.0, 1.5, 16, 31);
    let mut rng = StdRng::seed_from_u64(seed);
    let sample = PairSample::balanced(&ds.graph, &mut rng);
    let mut auditor =
        ThreatAuditor::for_dataset(&ds, sample, AttackTrainConfig::default(), seed ^ 0xbeef);
    let mut logits = Matrix::zeros(ds.n_nodes(), 2);
    for v in 0..ds.n_nodes() {
        logits[(v, ds.labels[v])] = 2.0 + (v % 17) as f64 * 0.02;
    }
    let probs = row_softmax(&logits);
    let report = auditor.audit(&probs);
    let mut aucs: Vec<f64> = report.outcomes.iter().map(|o| o.auc).collect();
    aucs.push(report.worst_case_auc);
    aucs.push(report.unsupervised.average_auc);
    aucs
}

#[test]
fn same_seed_means_identical_attack_aucs_across_runs() {
    let first = grid_aucs(7);
    let second = grid_aucs(7);
    assert_eq!(first, second, "repeated runs drifted");
    let other_seed = grid_aucs(8);
    assert_ne!(
        first, other_seed,
        "different seeds should draw different samples"
    );
}

#[test]
fn attack_aucs_are_independent_of_the_worker_thread_count() {
    let baseline = with_forced_threads(1, || grid_aucs(7));
    for threads in [2, 4, 7] {
        let parallel = with_forced_threads(threads, || grid_aucs(7));
        assert_eq!(
            parallel, baseline,
            "attack AUCs differ at {threads} threads"
        );
    }
}
