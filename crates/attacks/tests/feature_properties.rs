//! Property tests for the pair-feature extraction: every extracted channel is
//! finite on probability-vector inputs, and the whole row is symmetric in the
//! pair order — `(u, v)` and `(v, u)` must extract the *same* feature vector,
//! or a classifier could learn the sampling order instead of the structure.

use ppfr_attacks::{n_channels, pair_feature_row};
use ppfr_linalg::{row_softmax, Matrix};
use proptest::prelude::*;

const N: usize = 8;

/// Random probability rows (softmaxed logits).
fn arb_probs() -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-4.0f64..4.0, N * 4)
        .prop_map(|logits| row_softmax(&Matrix::from_vec(N, 4, logits)))
}

/// Random sparse binary feature rows.
fn arb_features() -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(0u32..2, N * 6)
        .prop_map(|bits| Matrix::from_vec(N, 6, bits.into_iter().map(f64::from).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pair_features_are_finite_and_symmetric_in_the_pair_order(
        probs in arb_probs(),
        features in arb_features(),
        u in 0usize..N,
        v in 0usize..N,
    ) {
        for with_features in [false, true] {
            let feat = with_features.then_some(&features);
            let d = n_channels(with_features);
            let mut uv = vec![0.0; d];
            let mut vu = vec![0.0; d];
            pair_feature_row(&probs, feat, u, v, &mut uv);
            pair_feature_row(&probs, feat, v, u, &mut vu);
            for (c, (&a, &b)) in uv.iter().zip(vu.iter()).enumerate() {
                prop_assert!(a.is_finite(), "channel {c} not finite: {a}");
                prop_assert!(
                    a == b,
                    "channel {c} asymmetric: ({u},{v}) -> {a} vs ({v},{u}) -> {b}"
                );
            }
        }
    }

    #[test]
    fn identical_nodes_extract_zero_distance_channels(
        probs in arb_probs(),
        features in arb_features(),
        u in 0usize..N,
    ) {
        let d = n_channels(true);
        let mut row = vec![0.0; d];
        pair_feature_row(&probs, Some(&features), u, u, &mut row);
        // The eight distances and the feature distances are 0 for (u, u);
        // the entropy-gap channel too.  Only entropy_mean may be non-zero.
        for (c, &value) in row.iter().enumerate() {
            if c == ppfr_privacy::N_DISTANCE_KINDS {
                prop_assert!(value >= 0.0);
            } else {
                prop_assert!(value.abs() < 1e-12, "channel {c} = {value} for (u,u)");
            }
        }
    }
}
