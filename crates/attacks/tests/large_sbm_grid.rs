//! Scaling scenario: the full threat-model grid (unsupervised baseline + all
//! four supervised adversary settings, including shadow construction) must
//! run end-to-end on a 20k-node sparse SBM well inside a debug-build test
//! budget.  Everything downstream of the `O(n·d̄)` generators is linear in
//! the number of sampled pairs, so ~190k pairs × 12 channels stays cheap.

use ppfr_attacks::{AttackTrainConfig, ThreatAuditor};
use ppfr_datasets::sparse_sbm_dataset;
use ppfr_linalg::Matrix;
use ppfr_privacy::PairSample;
use rand::rngs::StdRng;
use rand::SeedableRng;
// lint: allow(wall-clock) — coarse per-test runtime budget assertion only;
// the measured time never reaches any artifact or metric
use std::time::Instant;

#[test]
fn twenty_thousand_node_threat_grid_completes_quickly() {
    // lint: allow(wall-clock) — see the import note: budget guard only
    let started = Instant::now();
    let n = 20_000;
    let ds = sparse_sbm_dataset(n, 2, 9.0, 1.0, 16, 99);
    assert!(
        ds.graph.n_edges() > 80_000,
        "scenario needs ≥80k positive pairs, got {}",
        ds.graph.n_edges()
    );

    // Block-separated posteriors with a deterministic wiggle (a trained
    // victim's signal), as in the privacy crate's large-SBM scenario.
    let mut probs = Matrix::zeros(n, 2);
    for v in 0..n {
        let wiggle = (v % 97) as f64 * 1e-3;
        let hi = 0.85 - wiggle;
        if ds.labels[v] == 0 {
            probs[(v, 0)] = hi;
            probs[(v, 1)] = 1.0 - hi;
        } else {
            probs[(v, 0)] = 1.0 - hi;
            probs[(v, 1)] = hi;
        }
    }

    let mut rng = StdRng::seed_from_u64(7);
    let sample = PairSample::balanced(&ds.graph, &mut rng);
    let mut auditor = ThreatAuditor::for_dataset(&ds, sample, AttackTrainConfig::default(), 0xfade);
    let report = auditor.audit(&probs);

    assert_eq!(report.outcomes.len(), 4, "the full grid must run");
    for o in &report.outcomes {
        assert!(
            (0.0..=1.0).contains(&o.auc),
            "{}: AUC {} out of range",
            o.name,
            o.auc
        );
        assert!(o.n_train > 0 && o.n_eval > 0);
    }
    assert!(
        report.unsupervised.average_auc > 0.6,
        "block posteriors must leak, got {}",
        report.unsupervised.average_auc
    );
    assert!(
        report.worst_case_auc >= report.best_unsupervised_auc() - 0.02,
        "worst case {} below unsupervised best {}",
        report.worst_case_auc,
        report.best_unsupervised_auc()
    );

    // Re-auditing new posteriors reuses the sample, shadow and buffers.
    let uniform = Matrix::filled(n, 2, 0.5);
    let blind = auditor.audit(&uniform);
    assert!(
        (blind.unsupervised.average_auc - 0.5).abs() < 0.02,
        "uniform posteriors must not leak"
    );

    let elapsed = started.elapsed();
    println!("20k-node threat grid (two audits): {elapsed:?}");
    assert!(
        elapsed.as_secs() < 60,
        "grid took {elapsed:?}, far beyond the ~30 s debug budget"
    );
}
