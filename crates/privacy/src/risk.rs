//! Privacy-risk metrics on prediction distances (Definition 2 and §VI-B1).

use crate::{pairwise_distance, DistanceKind, PairSample};
use ppfr_linalg::{mean, variance, Matrix};

/// `f_risk = ‖ E[d₀] − E[d₁] ‖` of Definition 2: the gap between the mean
/// prediction distance of unconnected pairs (`d₀`) and connected pairs (`d₁`).
/// Larger values mean connected pairs are easier to distinguish, i.e. higher
/// edge-privacy risk.
pub fn prediction_distance_gap(probs: &Matrix, sample: &PairSample, kind: DistanceKind) -> f64 {
    let d1: Vec<f64> = sample
        .positives
        .iter()
        .map(|&(u, v)| pairwise_distance(kind, probs.row(u), probs.row(v)))
        .collect();
    let d0: Vec<f64> = sample
        .negatives
        .iter()
        .map(|&(u, v)| pairwise_distance(kind, probs.row(u), probs.row(v)))
        .collect();
    (mean(&d0) - mean(&d1)).abs()
}

/// The normalised instantiation used for influence estimation in §VI-B1:
/// `f_risk(θ) = 2‖d̄₀ − d̄₁‖ / (var(d₀) + var(d₁))`.
///
/// The variance denominator makes the score comparable across models whose
/// prediction scales differ, which the paper reports gives better estimation
/// accuracy for the influence computation.
pub fn risk_score(probs: &Matrix, sample: &PairSample, kind: DistanceKind) -> f64 {
    let d1: Vec<f64> = sample
        .positives
        .iter()
        .map(|&(u, v)| pairwise_distance(kind, probs.row(u), probs.row(v)))
        .collect();
    let d0: Vec<f64> = sample
        .negatives
        .iter()
        .map(|&(u, v)| pairwise_distance(kind, probs.row(u), probs.row(v)))
        .collect();
    let gap = (mean(&d0) - mean(&d1)).abs();
    let denom = variance(&d0) + variance(&d1);
    if denom <= 1e-12 {
        // Degenerate distributions: fall back to the raw gap so the score
        // stays finite and monotone in the separation.
        return 2.0 * gap;
    }
    2.0 * gap / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(separation: f64) -> (Matrix, PairSample) {
        // Two 3-cliques; predictions separated by `separation`.
        let edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)];
        let g = Graph::from_edges(6, &edges);
        let mut probs = Matrix::zeros(6, 2);
        for v in 0..6 {
            let wiggle = v as f64 * 0.01;
            let p = if v < 3 {
                0.5 + separation / 2.0
            } else {
                0.5 - separation / 2.0
            };
            probs[(v, 0)] = p - wiggle;
            probs[(v, 1)] = 1.0 - p + wiggle;
        }
        let mut rng = StdRng::seed_from_u64(3);
        let sample = PairSample::balanced(&g, &mut rng);
        (probs, sample)
    }

    #[test]
    fn larger_separation_means_larger_risk() {
        let (p_small, s_small) = setup(0.1);
        let (p_large, s_large) = setup(0.8);
        for kind in [
            DistanceKind::Euclidean,
            DistanceKind::Cityblock,
            DistanceKind::Cosine,
        ] {
            let small = prediction_distance_gap(&p_small, &s_small, kind);
            let large = prediction_distance_gap(&p_large, &s_large, kind);
            assert!(
                large > small,
                "{}: gap {large} should exceed {small}",
                kind.name()
            );
        }
    }

    #[test]
    fn identical_predictions_have_zero_gap() {
        let (_, sample) = setup(0.5);
        let probs = Matrix::filled(6, 2, 0.5);
        assert!(prediction_distance_gap(&probs, &sample, DistanceKind::Euclidean).abs() < 1e-12);
        // Degenerate distribution path of risk_score must stay finite.
        let score = risk_score(&probs, &sample, DistanceKind::Euclidean);
        assert!(score.is_finite());
        assert!(score.abs() < 1e-9);
    }

    #[test]
    fn risk_score_is_finite_and_positive_when_separated() {
        let (probs, sample) = setup(0.6);
        let score = risk_score(&probs, &sample, DistanceKind::Euclidean);
        assert!(score.is_finite() && score > 0.0, "risk score {score}");
    }
}
