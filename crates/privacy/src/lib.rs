//! Edge-privacy attacks, risk metrics and defences.
//!
//! * [`distance`] — the eight pairwise distances the paper's attack evaluation
//!   uses (cosine, euclidean, correlation, chebyshev, braycurtis, canberra,
//!   cityblock, sqeuclidean);
//! * [`attack`] — the black-box link-stealing attack (Attack-0 of He et al.)
//!   scored by rank-based AUC, plus the unsupervised 2-means clustering
//!   variant;
//! * [`evaluator`] — the scalable [`AttackEvaluator`]: a single-pass
//!   multi-metric distance kernel (all eight metrics per pair in one
//!   traversal, parallel over pair chunks) feeding `O(m log m)` Mann–Whitney
//!   AUCs, with sample and buffers cached across posterior matrices;
//! * [`risk`] — `f_risk` of Definition 2 and its normalised form from §VI-B1;
//! * [`dp`] — the edge differential-privacy defences EdgeRand and LapGraph
//!   (Wu et al., IEEE S&P 2022) used by the DPReg / DPFR baselines;
//! * [`risk_model`] — the closed-form edge-sensitivity model of Eq. (20).

#![forbid(unsafe_code)]

pub mod attack;
pub mod distance;
pub mod dp;
pub mod evaluator;
pub mod risk;
pub mod risk_model;

pub use attack::{
    attack_auc, auc_from_distances, auc_from_distances_quadratic, auc_per_distance,
    average_attack_auc, cluster_attack, ClusterAttackOutcome, PairSample,
};
pub use distance::{multi_distance, pairwise_distance, DistanceKind, N_DISTANCE_KINDS};
pub use dp::{edge_rand, lap_graph};
pub use evaluator::{AttackEvaluator, AttackReport, DistanceTable};
pub use risk::{prediction_distance_gap, risk_score};
pub use risk_model::{edge_sensitivity, EdgeSensitivityInputs};
