//! The eight pairwise distances used by the link-stealing attack evaluation.

/// Distance functions between two prediction (probability) vectors, matching
/// the set used by He et al. and by the paper's Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistanceKind {
    /// `1 − cos(a, b)`.
    Cosine,
    /// `‖a − b‖₂`.
    Euclidean,
    /// `1 − corr(a, b)` (Pearson correlation distance).
    Correlation,
    /// `max_i |a_i − b_i|`.
    Chebyshev,
    /// `Σ|a_i − b_i| / Σ|a_i + b_i|`.
    Braycurtis,
    /// `Σ |a_i − b_i| / (|a_i| + |b_i|)`.
    Canberra,
    /// `Σ |a_i − b_i|` (Manhattan).
    Cityblock,
    /// `‖a − b‖₂²`.
    Sqeuclidean,
}

/// Number of distance metrics ([`DistanceKind::ALL`]'s length).
pub const N_DISTANCE_KINDS: usize = 8;

impl DistanceKind {
    /// The eight distances, in the order the paper lists them.
    pub const ALL: [DistanceKind; N_DISTANCE_KINDS] = [
        DistanceKind::Cosine,
        DistanceKind::Euclidean,
        DistanceKind::Correlation,
        DistanceKind::Chebyshev,
        DistanceKind::Braycurtis,
        DistanceKind::Canberra,
        DistanceKind::Cityblock,
        DistanceKind::Sqeuclidean,
    ];

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            DistanceKind::Cosine => "cosine",
            DistanceKind::Euclidean => "euclidean",
            DistanceKind::Correlation => "correlation",
            DistanceKind::Chebyshev => "chebyshev",
            DistanceKind::Braycurtis => "braycurtis",
            DistanceKind::Canberra => "canberra",
            DistanceKind::Cityblock => "cityblock",
            DistanceKind::Sqeuclidean => "sqeuclidean",
        }
    }

    /// Index of this metric inside [`DistanceKind::ALL`] (the column order of
    /// the multi-metric kernel and of `DistanceTable`).
    pub fn index(self) -> usize {
        match self {
            DistanceKind::Cosine => 0,
            DistanceKind::Euclidean => 1,
            DistanceKind::Correlation => 2,
            DistanceKind::Chebyshev => 3,
            DistanceKind::Braycurtis => 4,
            DistanceKind::Canberra => 5,
            DistanceKind::Cityblock => 6,
            DistanceKind::Sqeuclidean => 7,
        }
    }
}

/// Correlation distance is undefined when either vector has (numerically)
/// zero variance.  The threshold is relative to the vector length because the
/// single-pass kernel derives the variance from raw moments, whose
/// cancellation error for probability-scale values is ~`len · 2e-16`: below
/// `len · 1e-15` the kernel cannot tell real variance from rounding noise,
/// so both implementations must treat that band as degenerate (per-element
/// deviations under ~3e-8 — far below anything a real posterior produces).
fn correlation_is_degenerate(centered_variance_sum: f64, len: usize) -> bool {
    centered_variance_sum <= len as f64 * 1e-15
}

/// Distance between two vectors under the chosen metric.
///
/// All metrics return 0 for identical vectors and grow as the vectors become
/// less alike, so "smaller distance ⇒ more likely connected" holds uniformly.
pub fn pairwise_distance(kind: DistanceKind, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal-length vectors");
    match kind {
        DistanceKind::Cosine => {
            // The ratio form cannot represent d(a, a) = 0 exactly (and is
            // undefined for a zero vector), so the contract's identical-vector
            // case is pinned up front.
            if a == b {
                return 0.0;
            }
            let dot: f64 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
            let na: f64 = a.iter().map(|&x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|&x| x * x).sum::<f64>().sqrt();
            if na == 0.0 || nb == 0.0 {
                return 1.0;
            }
            1.0 - dot / (na * nb)
        }
        DistanceKind::Euclidean => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt(),
        DistanceKind::Correlation => {
            // As for Cosine: identical vectors (including constant ones,
            // where the correlation is undefined) are pinned to 0 up front.
            if a == b {
                return 0.0;
            }
            let ma = a.iter().sum::<f64>() / a.len() as f64;
            let mb = b.iter().sum::<f64>() / b.len() as f64;
            let mut cov = 0.0;
            let mut va = 0.0;
            let mut vb = 0.0;
            for (&x, &y) in a.iter().zip(b) {
                cov += (x - ma) * (y - mb);
                va += (x - ma) * (x - ma);
                vb += (y - mb) * (y - mb);
            }
            if correlation_is_degenerate(va, a.len()) || correlation_is_degenerate(vb, b.len()) {
                return 1.0;
            }
            1.0 - cov / (va.sqrt() * vb.sqrt())
        }
        DistanceKind::Chebyshev => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0, f64::max),
        DistanceKind::Braycurtis => {
            let num: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum();
            let den: f64 = a.iter().zip(b).map(|(&x, &y)| (x + y).abs()).sum();
            if den == 0.0 {
                0.0
            } else {
                num / den
            }
        }
        DistanceKind::Canberra => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                let den = x.abs() + y.abs();
                if den == 0.0 {
                    0.0
                } else {
                    (x - y).abs() / den
                }
            })
            .sum(),
        DistanceKind::Cityblock => a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum(),
        DistanceKind::Sqeuclidean => a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum(),
    }
}

/// All eight distances between `a` and `b` computed in **one traversal** of
/// the two vectors, written to `out` in [`DistanceKind::ALL`] order.
///
/// This is the hot kernel of the link-stealing attack evaluation: the naive
/// path walks every node pair once per metric (8 traversals); this one
/// accumulates the raw moments every metric needs (`Σab`, `Σa²`, `Σb²`, `Σa`,
/// `Σb`, `Σ|a−b|`, `max|a−b|`, `Σ(a−b)²`, `Σ|a+b|`, the Canberra sum) in a
/// single loop and derives each distance from them.  Per-metric accumulation
/// order matches the corresponding single-metric loop in
/// [`pairwise_distance`], so all metrics except `Correlation` (which here
/// uses raw instead of centered moments) are bit-identical to the reference;
/// `Correlation` agrees to ~1e-9 on probability vectors.
///
/// # Panics
/// Panics when `a` and `b` differ in length or `out` is not
/// [`N_DISTANCE_KINDS`] long.
pub fn multi_distance(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "distance requires equal-length vectors");
    assert_eq!(
        out.len(),
        N_DISTANCE_KINDS,
        "output slice must hold 8 values"
    );
    let mut dot = 0.0;
    let mut na2 = 0.0;
    let mut nb2 = 0.0;
    let mut sum_a = 0.0;
    let mut sum_b = 0.0;
    let mut abs_diff = 0.0;
    let mut max_diff = 0.0_f64;
    let mut sq_diff = 0.0;
    let mut abs_sum = 0.0;
    let mut canberra = 0.0;
    let mut identical = true;
    // 4-wide microkernel: every accumulator takes its four per-element terms
    // as one left-associative expression, which is bit-identical to the four
    // sequential adds of the scalar loop while exposing four independent
    // multiplies per accumulator to the autovectoriser.  The Canberra skip
    // becomes an add of +0.0, which is exact here because the accumulator is
    // a sum of non-negative terms and can never hold -0.0.
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        let (x0, x1, x2, x3) = (ca[0], ca[1], ca[2], ca[3]);
        let (y0, y1, y2, y3) = (cb[0], cb[1], cb[2], cb[3]);
        identical &= x0 == y0 && x1 == y1 && x2 == y2 && x3 == y3;
        dot = dot + x0 * y0 + x1 * y1 + x2 * y2 + x3 * y3;
        na2 = na2 + x0 * x0 + x1 * x1 + x2 * x2 + x3 * x3;
        nb2 = nb2 + y0 * y0 + y1 * y1 + y2 * y2 + y3 * y3;
        sum_a = sum_a + x0 + x1 + x2 + x3;
        sum_b = sum_b + y0 + y1 + y2 + y3;
        let (d0, d1, d2, d3) = (
            (x0 - y0).abs(),
            (x1 - y1).abs(),
            (x2 - y2).abs(),
            (x3 - y3).abs(),
        );
        abs_diff = abs_diff + d0 + d1 + d2 + d3;
        max_diff = max_diff.max(d0).max(d1).max(d2).max(d3);
        sq_diff = sq_diff
            + (x0 - y0) * (x0 - y0)
            + (x1 - y1) * (x1 - y1)
            + (x2 - y2) * (x2 - y2)
            + (x3 - y3) * (x3 - y3);
        abs_sum = abs_sum + (x0 + y0).abs() + (x1 + y1).abs() + (x2 + y2).abs() + (x3 + y3).abs();
        let (den0, den1, den2, den3) = (
            x0.abs() + y0.abs(),
            x1.abs() + y1.abs(),
            x2.abs() + y2.abs(),
            x3.abs() + y3.abs(),
        );
        canberra = canberra
            + (if den0 == 0.0 { 0.0 } else { d0 / den0 })
            + (if den1 == 0.0 { 0.0 } else { d1 / den1 })
            + (if den2 == 0.0 { 0.0 } else { d2 / den2 })
            + (if den3 == 0.0 { 0.0 } else { d3 / den3 });
    }
    for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        identical &= x == y;
        dot += x * y;
        na2 += x * x;
        nb2 += y * y;
        sum_a += x;
        sum_b += y;
        let d = (x - y).abs();
        abs_diff += d;
        max_diff = max_diff.max(d);
        sq_diff += (x - y) * (x - y);
        abs_sum += (x + y).abs();
        let den = x.abs() + y.abs();
        if den != 0.0 {
            canberra += d / den;
        }
    }

    out[DistanceKind::Cosine.index()] = if identical {
        0.0
    } else {
        let na = na2.sqrt();
        let nb = nb2.sqrt();
        if na == 0.0 || nb == 0.0 {
            1.0
        } else {
            1.0 - dot / (na * nb)
        }
    };
    out[DistanceKind::Euclidean.index()] = sq_diff.sqrt();
    out[DistanceKind::Correlation.index()] = if identical {
        0.0
    } else {
        let n = a.len() as f64;
        let ma = sum_a / n;
        let mb = sum_b / n;
        // Centered moments from raw sums; clamp the tiny negative values the
        // cancellation can produce for near-constant vectors.
        let cov = dot - n * ma * mb;
        let va = (na2 - n * ma * ma).max(0.0);
        let vb = (nb2 - n * mb * mb).max(0.0);
        if correlation_is_degenerate(va, a.len()) || correlation_is_degenerate(vb, b.len()) {
            1.0
        } else {
            1.0 - cov / (va.sqrt() * vb.sqrt())
        }
    };
    out[DistanceKind::Chebyshev.index()] = max_diff;
    out[DistanceKind::Braycurtis.index()] = if abs_sum == 0.0 {
        0.0
    } else {
        abs_diff / abs_sum
    };
    out[DistanceKind::Canberra.index()] = canberra;
    out[DistanceKind::Cityblock.index()] = abs_diff;
    out[DistanceKind::Sqeuclidean.index()] = sq_diff;
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [0.7, 0.2, 0.1];
    const B: [f64; 3] = [0.1, 0.3, 0.6];

    #[test]
    fn identical_vectors_have_zero_distance() {
        for kind in DistanceKind::ALL {
            let d = pairwise_distance(kind, &A, &A);
            assert!(d.abs() < 1e-12, "{}: d(a,a) = {d}", kind.name());
        }
    }

    #[test]
    fn distances_are_symmetric() {
        for kind in DistanceKind::ALL {
            let d1 = pairwise_distance(kind, &A, &B);
            let d2 = pairwise_distance(kind, &B, &A);
            assert!((d1 - d2).abs() < 1e-12, "{} not symmetric", kind.name());
        }
    }

    #[test]
    fn distances_are_positive_for_distinct_vectors() {
        for kind in DistanceKind::ALL {
            let d = pairwise_distance(kind, &A, &B);
            assert!(
                d > 0.0,
                "{}: expected positive distance, got {d}",
                kind.name()
            );
        }
    }

    #[test]
    fn known_values_match_hand_computation() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((pairwise_distance(DistanceKind::Euclidean, &a, &b) - 2f64.sqrt()).abs() < 1e-12);
        assert!((pairwise_distance(DistanceKind::Sqeuclidean, &a, &b) - 2.0).abs() < 1e-12);
        assert!((pairwise_distance(DistanceKind::Cityblock, &a, &b) - 2.0).abs() < 1e-12);
        assert!((pairwise_distance(DistanceKind::Chebyshev, &a, &b) - 1.0).abs() < 1e-12);
        assert!((pairwise_distance(DistanceKind::Cosine, &a, &b) - 1.0).abs() < 1e-12);
        assert!((pairwise_distance(DistanceKind::Braycurtis, &a, &b) - 1.0).abs() < 1e-12);
        assert!((pairwise_distance(DistanceKind::Canberra, &a, &b) - 2.0).abs() < 1e-12);
        // Perfectly anti-correlated vectors have correlation distance 2.
        assert!((pairwise_distance(DistanceKind::Correlation, &a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_vectors_do_not_produce_nan() {
        let zero = [0.0, 0.0, 0.0];
        let constant = [0.5, 0.5, 0.5];
        for kind in DistanceKind::ALL {
            let d = pairwise_distance(kind, &zero, &constant);
            assert!(d.is_finite(), "{} produced a non-finite value", kind.name());
        }
    }

    #[test]
    fn identical_degenerate_vectors_have_zero_distance() {
        // Regression: Cosine used to return 1.0 for two zero vectors and
        // Correlation 1.0 for two identical constant vectors, violating the
        // documented "0 for identical vectors" contract.
        let zero = [0.0, 0.0, 0.0];
        let constant = [0.9, 0.9, 0.9];
        for kind in DistanceKind::ALL {
            let dz = pairwise_distance(kind, &zero, &zero);
            let dc = pairwise_distance(kind, &constant, &constant);
            assert_eq!(dz, 0.0, "{}: d(0,0) = {dz}", kind.name());
            assert_eq!(dc, 0.0, "{}: d(c,c) = {dc}", kind.name());
        }
    }

    #[test]
    fn non_identical_degenerate_vectors_keep_the_undefined_sentinel() {
        let zero = [0.0, 0.0];
        let constant = [0.5, 0.5];
        let varying = [0.2, 0.8];
        assert_eq!(
            pairwise_distance(DistanceKind::Cosine, &zero, &varying),
            1.0
        );
        assert_eq!(
            pairwise_distance(DistanceKind::Correlation, &constant, &varying),
            1.0
        );
        assert_eq!(
            pairwise_distance(DistanceKind::Correlation, &zero, &constant),
            1.0
        );
    }

    #[test]
    fn correlation_survives_low_but_real_variance() {
        // Near-uniform posteriors (the output of a strongly defended model)
        // with deviations ~1e-7 carry real correlation structure and must
        // NOT be collapsed to the degenerate 1.0 sentinel — only the band
        // below the raw-moment rounding noise (~3e-8 deviations) may be.
        let a = [0.25 + 1e-7, 0.25 - 1e-7, 0.25 + 2e-7, 0.25 - 2e-7];
        let b = [0.25 + 2e-7, 0.25 - 2e-7, 0.25 + 4e-7, 0.25 - 4e-7];
        let d = pairwise_distance(DistanceKind::Correlation, &a, &b);
        assert!(
            d < 1e-6,
            "perfectly correlated low-variance vectors must give d ≈ 0, got {d}"
        );
        let mut out = [0.0; N_DISTANCE_KINDS];
        multi_distance(&a, &b, &mut out);
        assert!(
            (out[DistanceKind::Correlation.index()] - d).abs() < 1e-3,
            "kernel {} vs reference {d} in the low-variance regime",
            out[DistanceKind::Correlation.index()]
        );
    }

    #[test]
    fn kind_index_matches_all_order() {
        for (i, kind) in DistanceKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i, "{} out of order", kind.name());
        }
    }

    #[test]
    fn multi_distance_matches_the_single_metric_reference() {
        let cases: [(&[f64], &[f64]); 6] = [
            (&A, &B),
            (&A, &A),
            (&[0.0, 0.0, 0.0], &[0.5, 0.5, 0.5]),
            (&[0.0, 0.0, 0.0], &[0.0, 0.0, 0.0]),
            (&[0.9, 0.9, 0.9], &[0.9, 0.9, 0.9]),
            (&[1.0, 0.0], &[0.0, 1.0]),
        ];
        let mut out = [0.0; N_DISTANCE_KINDS];
        for (a, b) in cases {
            multi_distance(a, b, &mut out);
            for kind in DistanceKind::ALL {
                let reference = pairwise_distance(kind, a, b);
                let got = out[kind.index()];
                let tol = if kind == DistanceKind::Correlation {
                    1e-9
                } else {
                    0.0
                };
                assert!(
                    (got - reference).abs() <= tol,
                    "{}: kernel {got} vs reference {reference} on {a:?} / {b:?}",
                    kind.name()
                );
            }
        }
    }
}
