//! The eight pairwise distances used by the link-stealing attack evaluation.

/// Distance functions between two prediction (probability) vectors, matching
/// the set used by He et al. and by the paper's Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistanceKind {
    /// `1 − cos(a, b)`.
    Cosine,
    /// `‖a − b‖₂`.
    Euclidean,
    /// `1 − corr(a, b)` (Pearson correlation distance).
    Correlation,
    /// `max_i |a_i − b_i|`.
    Chebyshev,
    /// `Σ|a_i − b_i| / Σ|a_i + b_i|`.
    Braycurtis,
    /// `Σ |a_i − b_i| / (|a_i| + |b_i|)`.
    Canberra,
    /// `Σ |a_i − b_i|` (Manhattan).
    Cityblock,
    /// `‖a − b‖₂²`.
    Sqeuclidean,
}

impl DistanceKind {
    /// The eight distances, in the order the paper lists them.
    pub const ALL: [DistanceKind; 8] = [
        DistanceKind::Cosine,
        DistanceKind::Euclidean,
        DistanceKind::Correlation,
        DistanceKind::Chebyshev,
        DistanceKind::Braycurtis,
        DistanceKind::Canberra,
        DistanceKind::Cityblock,
        DistanceKind::Sqeuclidean,
    ];

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            DistanceKind::Cosine => "cosine",
            DistanceKind::Euclidean => "euclidean",
            DistanceKind::Correlation => "correlation",
            DistanceKind::Chebyshev => "chebyshev",
            DistanceKind::Braycurtis => "braycurtis",
            DistanceKind::Canberra => "canberra",
            DistanceKind::Cityblock => "cityblock",
            DistanceKind::Sqeuclidean => "sqeuclidean",
        }
    }
}

/// Distance between two vectors under the chosen metric.
///
/// All metrics return 0 for identical vectors and grow as the vectors become
/// less alike, so "smaller distance ⇒ more likely connected" holds uniformly.
pub fn pairwise_distance(kind: DistanceKind, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal-length vectors");
    match kind {
        DistanceKind::Cosine => {
            let dot: f64 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
            let na: f64 = a.iter().map(|&x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|&x| x * x).sum::<f64>().sqrt();
            if na == 0.0 || nb == 0.0 {
                return 1.0;
            }
            1.0 - dot / (na * nb)
        }
        DistanceKind::Euclidean => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt(),
        DistanceKind::Correlation => {
            let ma = a.iter().sum::<f64>() / a.len() as f64;
            let mb = b.iter().sum::<f64>() / b.len() as f64;
            let mut cov = 0.0;
            let mut va = 0.0;
            let mut vb = 0.0;
            for (&x, &y) in a.iter().zip(b) {
                cov += (x - ma) * (y - mb);
                va += (x - ma) * (x - ma);
                vb += (y - mb) * (y - mb);
            }
            if va <= f64::EPSILON || vb <= f64::EPSILON {
                return 1.0;
            }
            1.0 - cov / (va.sqrt() * vb.sqrt())
        }
        DistanceKind::Chebyshev => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0, f64::max),
        DistanceKind::Braycurtis => {
            let num: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum();
            let den: f64 = a.iter().zip(b).map(|(&x, &y)| (x + y).abs()).sum();
            if den == 0.0 {
                0.0
            } else {
                num / den
            }
        }
        DistanceKind::Canberra => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                let den = x.abs() + y.abs();
                if den == 0.0 {
                    0.0
                } else {
                    (x - y).abs() / den
                }
            })
            .sum(),
        DistanceKind::Cityblock => a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum(),
        DistanceKind::Sqeuclidean => a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [0.7, 0.2, 0.1];
    const B: [f64; 3] = [0.1, 0.3, 0.6];

    #[test]
    fn identical_vectors_have_zero_distance() {
        for kind in DistanceKind::ALL {
            let d = pairwise_distance(kind, &A, &A);
            assert!(d.abs() < 1e-12, "{}: d(a,a) = {d}", kind.name());
        }
    }

    #[test]
    fn distances_are_symmetric() {
        for kind in DistanceKind::ALL {
            let d1 = pairwise_distance(kind, &A, &B);
            let d2 = pairwise_distance(kind, &B, &A);
            assert!((d1 - d2).abs() < 1e-12, "{} not symmetric", kind.name());
        }
    }

    #[test]
    fn distances_are_positive_for_distinct_vectors() {
        for kind in DistanceKind::ALL {
            let d = pairwise_distance(kind, &A, &B);
            assert!(
                d > 0.0,
                "{}: expected positive distance, got {d}",
                kind.name()
            );
        }
    }

    #[test]
    fn known_values_match_hand_computation() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((pairwise_distance(DistanceKind::Euclidean, &a, &b) - 2f64.sqrt()).abs() < 1e-12);
        assert!((pairwise_distance(DistanceKind::Sqeuclidean, &a, &b) - 2.0).abs() < 1e-12);
        assert!((pairwise_distance(DistanceKind::Cityblock, &a, &b) - 2.0).abs() < 1e-12);
        assert!((pairwise_distance(DistanceKind::Chebyshev, &a, &b) - 1.0).abs() < 1e-12);
        assert!((pairwise_distance(DistanceKind::Cosine, &a, &b) - 1.0).abs() < 1e-12);
        assert!((pairwise_distance(DistanceKind::Braycurtis, &a, &b) - 1.0).abs() < 1e-12);
        assert!((pairwise_distance(DistanceKind::Canberra, &a, &b) - 2.0).abs() < 1e-12);
        // Perfectly anti-correlated vectors have correlation distance 2.
        assert!((pairwise_distance(DistanceKind::Correlation, &a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_vectors_do_not_produce_nan() {
        let zero = [0.0, 0.0, 0.0];
        let constant = [0.5, 0.5, 0.5];
        for kind in DistanceKind::ALL {
            let d = pairwise_distance(kind, &zero, &constant);
            assert!(d.is_finite(), "{} produced a non-finite value", kind.name());
        }
    }
}
