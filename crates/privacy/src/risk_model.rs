//! Closed-form edge-sensitivity model of §VI-B2 (Eq. 20).
//!
//! For an intra-class node pair `(v_i, v_j)` of a left-normalised GCN layer,
//! the expected change of their embedding distance caused by adding the edge
//! `e_ij` is `E[Δd(v_i, v_j)] = ‖μ₁ − μ₀‖ · |δ|` with
//! `δ = d_i^{y1} / ((d_i+1)(d_i+2)) − d_j^{y1} / ((d_j+1)(d_j+2))`.
//!
//! The model motivates the privacy-aware perturbation: a better-separated
//! model (larger `‖μ₁ − μ₀‖`) leaks more, and injecting heterophilic edges
//! shrinks exactly that separation.

/// Inputs of the edge-sensitivity formula for one intra-class node pair.
#[derive(Debug, Clone, Copy)]
pub struct EdgeSensitivityInputs {
    /// Distance between the two class-mean embeddings `‖μ₁ − μ₀‖`.
    pub class_mean_gap: f64,
    /// Degree of node `v_i`.
    pub degree_i: usize,
    /// Number of class-1 neighbours of `v_i`.
    pub hetero_neighbors_i: usize,
    /// Degree of node `v_j`.
    pub degree_j: usize,
    /// Number of class-1 neighbours of `v_j`.
    pub hetero_neighbors_j: usize,
}

/// Expected embedding-distance sensitivity `E[Δd(v_i, v_j)]` of Eq. (20).
pub fn edge_sensitivity(inputs: &EdgeSensitivityInputs) -> f64 {
    assert!(
        inputs.hetero_neighbors_i <= inputs.degree_i
            && inputs.hetero_neighbors_j <= inputs.degree_j,
        "heterophilic neighbour count cannot exceed the degree"
    );
    let term = |hetero: usize, degree: usize| {
        hetero as f64 / ((degree as f64 + 1.0) * (degree as f64 + 2.0))
    };
    let delta = term(inputs.hetero_neighbors_i, inputs.degree_i)
        - term(inputs.hetero_neighbors_j, inputs.degree_j);
    inputs.class_mean_gap * delta.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_scales_linearly_with_class_separation() {
        let base = EdgeSensitivityInputs {
            class_mean_gap: 1.0,
            degree_i: 4,
            hetero_neighbors_i: 1,
            degree_j: 6,
            hetero_neighbors_j: 0,
        };
        let wide = EdgeSensitivityInputs {
            class_mean_gap: 3.0,
            ..base
        };
        let s1 = edge_sensitivity(&base);
        let s3 = edge_sensitivity(&wide);
        assert!(
            (s3 - 3.0 * s1).abs() < 1e-12,
            "Eq. (20) is linear in ‖μ₁ − μ₀‖"
        );
    }

    #[test]
    fn symmetric_pairs_have_zero_sensitivity() {
        // Identical degree profiles ⇒ δ = 0 ⇒ the edge is undetectable in expectation.
        let inputs = EdgeSensitivityInputs {
            class_mean_gap: 2.0,
            degree_i: 5,
            hetero_neighbors_i: 2,
            degree_j: 5,
            hetero_neighbors_j: 2,
        };
        assert_eq!(edge_sensitivity(&inputs), 0.0);
    }

    #[test]
    fn well_separated_models_leak_more() {
        // The paper's reading of Eq. (20): higher-performing GNNs (larger
        // class-mean gap) have higher edge-leakage risk, everything else equal.
        let tight = EdgeSensitivityInputs {
            class_mean_gap: 0.2,
            degree_i: 3,
            hetero_neighbors_i: 1,
            degree_j: 8,
            hetero_neighbors_j: 2,
        };
        let separated = EdgeSensitivityInputs {
            class_mean_gap: 2.0,
            ..tight
        };
        assert!(edge_sensitivity(&separated) > edge_sensitivity(&tight));
    }

    #[test]
    fn adding_heterophilic_neighbors_to_the_low_degree_node_changes_delta() {
        let before = EdgeSensitivityInputs {
            class_mean_gap: 1.0,
            degree_i: 2,
            hetero_neighbors_i: 0,
            degree_j: 10,
            hetero_neighbors_j: 5,
        };
        // Heterophilic perturbation on v_i: degree and hetero count both grow.
        let after = EdgeSensitivityInputs {
            degree_i: 4,
            hetero_neighbors_i: 2,
            ..before
        };
        // The formula stays finite and well-defined; the perturbed value differs.
        assert_ne!(edge_sensitivity(&before), edge_sensitivity(&after));
    }

    #[test]
    #[should_panic(expected = "cannot exceed the degree")]
    fn rejects_inconsistent_neighbour_counts() {
        let bad = EdgeSensitivityInputs {
            class_mean_gap: 1.0,
            degree_i: 2,
            hetero_neighbors_i: 3,
            degree_j: 2,
            hetero_neighbors_j: 0,
        };
        let _ = edge_sensitivity(&bad);
    }
}
