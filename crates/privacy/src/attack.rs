//! Black-box link-stealing attack (Attack-0 of He et al., USENIX Security'21).
//!
//! The attacker queries the target GNN once per node, computes a distance
//! between the prediction vectors of a node pair and infers "connected" when
//! the distance is small.  The paper measures edge-privacy risk as the AUC of
//! this attack, averaged over eight distance metrics; the unsupervised 2-means
//! clustering variant described in §IV is also provided.

use crate::{pairwise_distance, DistanceKind};
use ppfr_graph::Graph;
use ppfr_linalg::Matrix;
use rand::Rng;
use std::collections::BTreeSet;

/// A balanced sample of node pairs used to evaluate the attack:
/// every training-graph edge as positives plus an equal number of *distinct*
/// sampled unconnected pairs as negatives.
#[derive(Debug, Clone)]
pub struct PairSample {
    /// Connected node pairs (positives).
    pub positives: Vec<(usize, usize)>,
    /// Unconnected node pairs (negatives).
    pub negatives: Vec<(usize, usize)>,
}

impl PairSample {
    /// Builds the balanced sample from the *original* (pre-perturbation)
    /// graph — the attacker targets the confidential edges of the training
    /// data, not whatever noisy structure a defence exposes.
    ///
    /// Negatives are rejection-sampled without replacement; when rejection
    /// stalls (small or dense graphs where distinct non-edges are scarce) the
    /// sampler falls back to a deterministic enumeration of the remaining
    /// non-edges, so the sample only stays unbalanced when the graph has
    /// fewer non-edges than edges.  [`PairSample::counts`] exposes the
    /// achieved sizes.
    pub fn balanced<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Self {
        Self::with_ratio(graph, 1.0, rng)
    }

    /// [`PairSample::balanced`] with a configurable negative:positive ratio —
    /// `neg_per_pos` negatives are targeted per positive (rounded), so threat
    /// models can evaluate the attack on imbalanced pair sets (real attackers
    /// face far more non-edges than edges).  Sampling follows the same
    /// rejection-then-enumeration scheme as the balanced sampler; the achieved
    /// ratio (via [`PairSample::counts`]) only falls short when the graph has
    /// fewer distinct non-edges than the target.
    ///
    /// # Panics
    /// Panics when `neg_per_pos` is negative or non-finite.
    pub fn with_ratio<R: Rng + ?Sized>(graph: &Graph, neg_per_pos: f64, rng: &mut R) -> Self {
        assert!(
            neg_per_pos.is_finite() && neg_per_pos >= 0.0,
            "negative:positive ratio must be finite and non-negative"
        );
        let positives: Vec<(usize, usize)> = graph.edges().collect();
        let target = (positives.len() as f64 * neg_per_pos).round() as usize;
        let negatives = sample_negatives(graph, target, rng);
        Self {
            positives,
            negatives,
        }
    }

    /// A size-capped balanced sample for large graphs: at most `max_pos`
    /// *distinct* edges as positives (all edges when the graph has fewer) and
    /// an equal number of sampled non-edges as negatives.
    ///
    /// [`PairSample::balanced`] keeps every edge, which at 10⁶ nodes means
    /// millions of pairs and a distance table in the hundreds of megabytes;
    /// capping the positives keeps attack evaluation `O(max_pos)` while the
    /// AUC stays an unbiased estimate of the all-edges value (positives are
    /// drawn uniformly without replacement, in deterministic ascending edge
    /// order for a fixed RNG stream).
    ///
    /// # Panics
    /// Panics when `max_pos` is zero.
    pub fn capped<R: Rng + ?Sized>(graph: &Graph, max_pos: usize, rng: &mut R) -> Self {
        assert!(max_pos > 0, "positive cap must be positive");
        let n_edges = graph.n_edges();
        let positives: Vec<(usize, usize)> = if n_edges <= max_pos {
            graph.edges().collect()
        } else {
            // Rejection-sample distinct edge indices; the BTreeSet keeps the
            // chosen set free of hash order, and collecting in ascending
            // index order makes the sample a pure function of the RNG stream.
            let mut chosen: BTreeSet<usize> = BTreeSet::new();
            while chosen.len() < max_pos {
                chosen.insert(rng.gen_range(0..n_edges));
            }
            graph
                .edges()
                .enumerate()
                .filter(|(i, _)| chosen.contains(i))
                .map(|(_, e)| e)
                .collect()
        };
        let target = positives.len();
        let negatives = sample_negatives(graph, target, rng);
        Self {
            positives,
            negatives,
        }
    }

    /// Total number of sampled pairs.
    pub fn len(&self) -> usize {
        self.positives.len() + self.negatives.len()
    }

    /// True when no pairs were sampled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Achieved `(positives, negatives)` counts.  They differ from the
    /// targeted ratio only when the graph has fewer distinct non-edges than
    /// the negative target.
    pub fn counts(&self) -> (usize, usize) {
        (self.positives.len(), self.negatives.len())
    }
}

/// Draws `target` distinct non-edges `(u, v)` with `u < v`: rejection
/// sampling from the RNG stream, falling back to deterministic enumeration
/// of the remaining non-edges when the attempt budget runs out.
///
/// Membership-only dedup: a BTreeSet keeps the sampler free of any
/// hash-iteration order so the drawn negatives depend only on the RNG
/// stream and the deterministic enumeration fallback.
fn sample_negatives<R: Rng + ?Sized>(
    graph: &Graph,
    target: usize,
    rng: &mut R,
) -> Vec<(usize, usize)> {
    let n = graph.n_nodes();
    let mut negatives = Vec::with_capacity(target);
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut attempts = 0usize;
    let max_attempts = target.saturating_mul(50).max(1000);
    while negatives.len() < target && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || graph.has_edge(u, v) {
            continue;
        }
        let pair = (u.min(v), u.max(v));
        if seen.insert(pair) {
            negatives.push(pair);
        }
    }
    if negatives.len() < target {
        // Rejection sampling exhausted its budget: deterministically
        // enumerate the non-edges that were not already drawn.
        'fill: for u in 0..n {
            for v in (u + 1)..n {
                if negatives.len() >= target {
                    break 'fill;
                }
                if graph.has_edge(u, v) || seen.contains(&(u, v)) {
                    continue;
                }
                seen.insert((u, v));
                negatives.push((u, v));
            }
        }
    }
    negatives
}

fn pair_distances(probs: &Matrix, pairs: &[(usize, usize)], kind: DistanceKind) -> Vec<f64> {
    pairs
        .iter()
        .map(|&(u, v)| pairwise_distance(kind, probs.row(u), probs.row(v)))
        .collect()
}

/// Area under the ROC curve of the score "negative distance" for separating
/// connected from unconnected pairs.  0.5 ⇒ no leakage, 1.0 ⇒ the attacker
/// recovers every edge.
pub fn attack_auc(probs: &Matrix, sample: &PairSample, kind: DistanceKind) -> f64 {
    let pos = pair_distances(probs, &sample.positives, kind);
    let neg = pair_distances(probs, &sample.negatives, kind);
    auc_from_distances(&pos, &neg)
}

/// AUC computed directly from distance samples of connected (`pos`) and
/// unconnected (`neg`) pairs.  A positive "wins" when its distance is
/// smaller; exact-value ties count as half a win.
///
/// Runs in `O(m log m)` via the Mann–Whitney rank statistic with midrank tie
/// handling, replacing the seed's `O(|pos|·|neg|)` pairwise loop; on
/// tie-free inputs it matches [`auc_from_distances_quadratic`] exactly.
pub fn auc_from_distances(pos: &[f64], neg: &[f64]) -> f64 {
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let n_pos = pos.len();
    let n_neg = neg.len();
    let mut all: Vec<(f64, bool)> = pos
        .iter()
        .map(|&d| (d, true))
        .chain(neg.iter().map(|&d| (d, false)))
        .collect();
    all.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Rank sum of the positives in ascending order, ties sharing the midrank.
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < all.len() {
        let mut j = i + 1;
        while j < all.len() && all[j].0 == all[i].0 {
            j += 1;
        }
        // Ranks are 1-based: the tie group spans ranks i+1 ..= j.
        let midrank = (i + 1 + j) as f64 / 2.0;
        let pos_in_group = all[i..j].iter().filter(|&&(_, is_pos)| is_pos).count();
        rank_sum_pos += midrank * pos_in_group as f64;
        i = j;
    }
    // U counts (pos > neg) pairs plus half the exact ties; a positive wins
    // when its distance is *smaller*, hence the complement.
    let u_pos = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    1.0 - u_pos / (n_pos as f64 * n_neg as f64)
}

/// The seed's quadratic AUC, kept as the test oracle for
/// [`auc_from_distances`].
///
/// Ties are counted by *exact value equality* (half a win each): the seed's
/// `(p − q).abs() <= f64::EPSILON` tolerance missed genuinely equal ranks at
/// magnitudes above ~2 and fired spuriously for distinct values near 0.
pub fn auc_from_distances_quadratic(pos: &[f64], neg: &[f64]) -> f64 {
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for &p in pos {
        for &q in neg {
            if p < q {
                wins += 1.0;
            } else if p == q {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() as f64 * neg.len() as f64)
}

/// Attack AUC for each of the eight distance metrics (the series of Fig. 4).
pub fn auc_per_distance(probs: &Matrix, sample: &PairSample) -> Vec<(DistanceKind, f64)> {
    DistanceKind::ALL
        .iter()
        .map(|&kind| (kind, attack_auc(probs, sample, kind)))
        .collect()
}

/// Mean attack AUC over the eight distances — the scalar privacy-risk value
/// used in Tables IV and V.
pub fn average_attack_auc(probs: &Matrix, sample: &PairSample) -> f64 {
    let per = auc_per_distance(probs, sample);
    per.iter().map(|(_, auc)| auc).sum::<f64>() / per.len() as f64
}

/// Result of the unsupervised clustering attack.
#[derive(Debug, Clone, Copy)]
pub struct ClusterAttackOutcome {
    /// Fraction of pairs classified correctly.
    pub accuracy: f64,
    /// Precision on the "connected" class.
    pub precision: f64,
    /// Recall on the "connected" class.
    pub recall: f64,
    /// F1 on the "connected" class.
    pub f1: f64,
}

/// The unsupervised attack variant of §IV: 2-means clustering of the pair
/// distances; the cluster with the smaller centroid is predicted "connected".
pub fn cluster_attack(
    probs: &Matrix,
    sample: &PairSample,
    kind: DistanceKind,
) -> ClusterAttackOutcome {
    let pos = pair_distances(probs, &sample.positives, kind);
    let neg = pair_distances(probs, &sample.negatives, kind);
    let mut all: Vec<(f64, bool)> = pos
        .iter()
        .map(|&d| (d, true))
        .chain(neg.iter().map(|&d| (d, false)))
        .collect();
    // `total_cmp` keeps a NaN posterior distance from panicking the whole
    // experiment: NaN pairs land at a sign-dependent end of the total order
    // and merely degrade this attack's score.
    all.sort_by(|a, b| a.0.total_cmp(&b.0));
    if all.is_empty() {
        return ClusterAttackOutcome {
            accuracy: 0.0,
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
        };
    }
    // 1-D 2-means via Lloyd iterations on the sorted distances.
    let mut c_low = all.first().unwrap().0;
    let mut c_high = all.last().unwrap().0;
    for _ in 0..50 {
        let threshold = (c_low + c_high) / 2.0;
        let (mut sum_low, mut n_low, mut sum_high, mut n_high) = (0.0, 0usize, 0.0, 0usize);
        for &(d, _) in &all {
            if d <= threshold {
                sum_low += d;
                n_low += 1;
            } else {
                sum_high += d;
                n_high += 1;
            }
        }
        if n_low == 0 || n_high == 0 {
            break;
        }
        let new_low = sum_low / n_low as f64;
        let new_high = sum_high / n_high as f64;
        if (new_low - c_low).abs() < 1e-12 && (new_high - c_high).abs() < 1e-12 {
            break;
        }
        c_low = new_low;
        c_high = new_high;
    }
    let threshold = (c_low + c_high) / 2.0;
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut tn = 0usize;
    let mut fn_ = 0usize;
    for &(d, connected) in &all {
        let predicted = d <= threshold;
        match (predicted, connected) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, false) => tn += 1,
            (false, true) => fn_ += 1,
        }
    }
    let accuracy = (tp + tn) as f64 / all.len() as f64;
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    ClusterAttackOutcome {
        accuracy,
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A graph whose two communities get visibly different predictions, so
    /// the attack should succeed; plus shared helper probabilities.
    fn separable_setup() -> (Graph, Matrix, PairSample) {
        // Two 4-cliques joined by a single bridge edge.
        let mut edges = Vec::new();
        for block in 0..2 {
            let base = block * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 4));
        let g = Graph::from_edges(8, &edges);
        let mut probs = Matrix::zeros(8, 2);
        for v in 0..8 {
            // Small per-node wiggle keeps pairs distinguishable.
            let wiggle = v as f64 * 0.01;
            if v < 4 {
                probs[(v, 0)] = 0.9 - wiggle;
                probs[(v, 1)] = 0.1 + wiggle;
            } else {
                probs[(v, 0)] = 0.1 + wiggle;
                probs[(v, 1)] = 0.9 - wiggle;
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        let sample = PairSample::balanced(&g, &mut rng);
        (g, probs, sample)
    }

    #[test]
    fn auc_from_distances_handles_perfect_and_random_cases() {
        assert_eq!(auc_from_distances(&[0.1, 0.2], &[0.9, 0.8]), 1.0);
        assert_eq!(auc_from_distances(&[0.9, 0.8], &[0.1, 0.2]), 0.0);
        assert_eq!(auc_from_distances(&[0.5], &[0.5]), 0.5);
        assert_eq!(auc_from_distances(&[], &[0.5]), 0.5);
    }

    #[test]
    fn ties_count_as_half_wins_at_any_magnitude() {
        // Regression for the seed's `(p - q).abs() <= f64::EPSILON` tie test:
        // distinct distances below ~2e-16 were spuriously merged into ties,
        // while above magnitude ~2 the absolute tolerance degenerates away.
        // Exact-value equality is the rank semantics.
        let tiny_pos = [1e-17];
        let tiny_neg = [9e-17];
        assert_eq!(
            auc_from_distances(&tiny_pos, &tiny_neg),
            1.0,
            "distinct near-zero distances are not ties"
        );
        for scale in [1.0, 10.0, 1e6] {
            let all_equal = [0.7 * scale; 5];
            assert_eq!(
                auc_from_distances(&all_equal, &all_equal[..3]),
                0.5,
                "all-equal inputs at scale {scale}"
            );
        }
        // Mixed ties: pos = [1, 2, 2], neg = [2, 3].
        // Pairwise wins: 1<2 ✓, 1<3 ✓, 2=2 ½, 2<3 ✓, 2=2 ½, 2<3 ✓ → 5/6.
        let pos = [1.0, 2.0, 2.0];
        let neg = [2.0, 3.0];
        let expected = 5.0 / 6.0;
        assert!((auc_from_distances(&pos, &neg) - expected).abs() < 1e-15);
        assert!((auc_from_distances_quadratic(&pos, &neg) - expected).abs() < 1e-15);
    }

    #[test]
    fn rank_auc_matches_the_quadratic_oracle() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..25 {
            let n_pos = 1 + (trial % 7);
            let n_neg = 1 + (trial % 11);
            let pos: Vec<f64> = (0..n_pos).map(|_| rng.gen_range(0.0..3.0)).collect();
            let mut neg: Vec<f64> = (0..n_neg).map(|_| rng.gen_range(0.0..3.0)).collect();
            // Inject exact ties in half the trials.
            if trial % 2 == 0 {
                neg[0] = pos[0];
            }
            let fast = auc_from_distances(&pos, &neg);
            let slow = auc_from_distances_quadratic(&pos, &neg);
            assert!(
                (fast - slow).abs() < 1e-12,
                "trial {trial}: rank {fast} vs quadratic {slow}"
            );
        }
    }

    #[test]
    fn pair_sampling_is_deterministic_for_a_fixed_seed() {
        // Pins the sampler's order-independence: the negative dedup structure
        // carries no hash-iteration order, so the sample is a pure function of
        // (graph, ratio, seed) — including the enumeration fallback, which a
        // dense graph with a high ratio forces.
        let (g, _, _) = separable_setup();
        for ratio in [1.0, 4.0] {
            let draw = || PairSample::with_ratio(&g, ratio, &mut StdRng::seed_from_u64(42));
            let a = draw();
            let b = draw();
            assert_eq!(
                a.positives, b.positives,
                "positives differ at ratio {ratio}"
            );
            assert_eq!(
                a.negatives, b.negatives,
                "negatives differ at ratio {ratio}"
            );
        }
    }

    #[test]
    fn balanced_sample_is_balanced_and_disjoint() {
        let (g, _, sample) = separable_setup();
        assert_eq!(sample.positives.len(), g.n_edges());
        assert!(sample.negatives.len() <= sample.positives.len());
        for &(u, v) in &sample.negatives {
            assert!(
                !g.has_edge(u, v),
                "negative pair ({u},{v}) is actually an edge"
            );
        }
    }

    #[test]
    fn negatives_are_distinct_and_fill_dense_graphs_deterministically() {
        // A near-complete graph: 8 nodes, all edges except three.  Rejection
        // sampling alone cannot find 25 distinct negatives (only 3 exist) and
        // the seed's sampler both duplicated and under-filled; the fallback
        // must enumerate every missing non-edge exactly once.
        let n = 8;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        let missing = [(0, 1), (2, 5), (6, 7)];
        edges.retain(|e| !missing.contains(e));
        let g = Graph::from_edges(n, &edges);
        let mut rng = StdRng::seed_from_u64(3);
        let sample = PairSample::balanced(&g, &mut rng);
        let (n_pos, n_neg) = sample.counts();
        assert_eq!(n_pos, g.n_edges());
        assert_eq!(n_neg, missing.len(), "every non-edge must be found");
        let unique: std::collections::HashSet<_> = sample.negatives.iter().collect();
        assert_eq!(unique.len(), sample.negatives.len(), "duplicate negatives");
        for &(u, v) in &sample.negatives {
            assert!(missing.contains(&(u, v)));
        }
    }

    #[test]
    fn with_ratio_reports_the_achieved_ratio_through_counts() {
        // A sparse ring has plenty of non-edges, so every target is met.
        let n = 40;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::from_edges(n, &edges);
        for (ratio, expected_neg) in [(0.5, 20), (1.0, 40), (3.0, 120)] {
            let mut rng = StdRng::seed_from_u64(9);
            let sample = PairSample::with_ratio(&g, ratio, &mut rng);
            let (n_pos, n_neg) = sample.counts();
            assert_eq!(n_pos, g.n_edges());
            assert_eq!(n_neg, expected_neg, "ratio {ratio} missed its target");
            let unique: std::collections::HashSet<_> = sample.negatives.iter().collect();
            assert_eq!(unique.len(), n_neg, "ratio {ratio} duplicated negatives");
            for &(u, v) in &sample.negatives {
                assert!(!g.has_edge(u, v));
            }
        }
        // Zero ratio: positives only.
        let mut rng = StdRng::seed_from_u64(9);
        let sample = PairSample::with_ratio(&g, 0.0, &mut rng);
        assert_eq!(sample.counts(), (g.n_edges(), 0));
        // Balanced is exactly ratio 1.
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(4);
        let a = PairSample::balanced(&g, &mut rng_a);
        let b = PairSample::with_ratio(&g, 1.0, &mut rng_b);
        assert_eq!(a.negatives, b.negatives);
    }

    #[test]
    #[should_panic(expected = "ratio must be finite")]
    fn with_ratio_rejects_nan_ratios() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = PairSample::with_ratio(&g, f64::NAN, &mut rng);
    }

    #[test]
    fn capped_sample_respects_the_cap_and_stays_balanced() {
        let n = 40;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::from_edges(n, &edges);
        let mut rng = StdRng::seed_from_u64(11);
        let sample = PairSample::capped(&g, 12, &mut rng);
        let (n_pos, n_neg) = sample.counts();
        assert_eq!(n_pos, 12, "cap must bind on a 40-edge graph");
        assert_eq!(n_neg, n_pos, "capped sample must stay balanced");
        let edge_set: std::collections::HashSet<(usize, usize)> = g.edges().collect();
        for &(u, v) in &sample.positives {
            assert!(edge_set.contains(&(u, v)), "positive ({u},{v}) not an edge");
        }
        let unique: std::collections::HashSet<_> = sample.positives.iter().collect();
        assert_eq!(unique.len(), n_pos, "duplicate positives under the cap");
        for &(u, v) in &sample.negatives {
            assert!(!g.has_edge(u, v), "negative ({u},{v}) is an edge");
        }
    }

    #[test]
    fn capped_sample_is_deterministic_and_degrades_to_balanced() {
        let n = 40;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::from_edges(n, &edges);
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let a = PairSample::capped(&g, 12, &mut rng_a);
        let b = PairSample::capped(&g, 12, &mut rng_b);
        assert_eq!(
            a.positives, b.positives,
            "positives must be seed-determined"
        );
        assert_eq!(
            a.negatives, b.negatives,
            "negatives must be seed-determined"
        );
        // A cap at or above the edge count keeps every edge, exactly like
        // `balanced` with the same RNG stream.
        let mut rng_c = StdRng::seed_from_u64(21);
        let mut rng_d = StdRng::seed_from_u64(21);
        let c = PairSample::capped(&g, g.n_edges(), &mut rng_c);
        let d = PairSample::balanced(&g, &mut rng_d);
        assert_eq!(c.positives, d.positives);
        assert_eq!(c.negatives, d.negatives);
    }

    #[test]
    #[should_panic(expected = "positive cap must be positive")]
    fn capped_rejects_a_zero_cap() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = PairSample::capped(&g, 0, &mut rng);
    }

    #[test]
    fn negatives_never_duplicate_on_sparse_graphs() {
        let (g, _, _) = separable_setup();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let sample = PairSample::balanced(&g, &mut rng);
            let unique: std::collections::HashSet<_> = sample.negatives.iter().collect();
            assert_eq!(
                unique.len(),
                sample.negatives.len(),
                "seed {seed} produced duplicate negatives"
            );
            assert_eq!(sample.counts(), (g.n_edges(), sample.negatives.len()));
        }
    }

    #[test]
    fn community_predictions_leak_edges() {
        let (_, probs, sample) = separable_setup();
        for kind in DistanceKind::ALL {
            let auc = attack_auc(&probs, &sample, kind);
            assert!(auc > 0.6, "{}: expected leakage, AUC {auc}", kind.name());
        }
        let avg = average_attack_auc(&probs, &sample);
        assert!(avg > 0.7, "average AUC {avg}");
    }

    #[test]
    fn uniform_predictions_do_not_leak() {
        let (_, _, sample) = separable_setup();
        let probs = Matrix::filled(8, 2, 0.5);
        let avg = average_attack_auc(&probs, &sample);
        assert!(
            (avg - 0.5).abs() < 0.05,
            "no information ⇒ AUC ≈ 0.5, got {avg}"
        );
    }

    #[test]
    fn cluster_attack_beats_chance_on_separable_predictions() {
        let (_, probs, sample) = separable_setup();
        let outcome = cluster_attack(&probs, &sample, DistanceKind::Euclidean);
        assert!(outcome.accuracy > 0.6, "accuracy {}", outcome.accuracy);
        assert!(outcome.f1 > 0.6, "f1 {}", outcome.f1);
    }

    #[test]
    fn tighter_predictions_reduce_auc() {
        // Shrinking the gap between the two communities' predictions lowers risk.
        let (_, probs, sample) = separable_setup();
        let shrunk = probs.map(|v| 0.5 + (v - 0.5) * 0.05);
        let sharp = average_attack_auc(&probs, &sample);
        let blur = average_attack_auc(&shrunk, &sample);
        assert!(
            sharp >= blur,
            "shrinking prediction gaps must not increase AUC: {sharp} vs {blur}"
        );
    }
}
