//! Black-box link-stealing attack (Attack-0 of He et al., USENIX Security'21).
//!
//! The attacker queries the target GNN once per node, computes a distance
//! between the prediction vectors of a node pair and infers "connected" when
//! the distance is small.  The paper measures edge-privacy risk as the AUC of
//! this attack, averaged over eight distance metrics; the unsupervised 2-means
//! clustering variant described in §IV is also provided.

use crate::{pairwise_distance, DistanceKind};
use ppfr_graph::Graph;
use ppfr_linalg::Matrix;
use rand::Rng;

/// A balanced sample of node pairs used to evaluate the attack:
/// every training-graph edge as positives plus an equal number of sampled
/// unconnected pairs as negatives.
#[derive(Debug, Clone)]
pub struct PairSample {
    /// Connected node pairs (positives).
    pub positives: Vec<(usize, usize)>,
    /// Unconnected node pairs (negatives).
    pub negatives: Vec<(usize, usize)>,
}

impl PairSample {
    /// Builds the balanced sample from the *original* (pre-perturbation)
    /// graph — the attacker targets the confidential edges of the training
    /// data, not whatever noisy structure a defence exposes.
    pub fn balanced<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Self {
        let positives: Vec<(usize, usize)> = graph.edges().collect();
        let n = graph.n_nodes();
        let target = positives.len();
        let mut negatives = Vec::with_capacity(target);
        let mut attempts = 0usize;
        let max_attempts = target.saturating_mul(50).max(1000);
        while negatives.len() < target && attempts < max_attempts {
            attempts += 1;
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v || graph.has_edge(u, v) {
                continue;
            }
            negatives.push((u.min(v), u.max(v)));
        }
        Self {
            positives,
            negatives,
        }
    }

    /// Total number of sampled pairs.
    pub fn len(&self) -> usize {
        self.positives.len() + self.negatives.len()
    }

    /// True when no pairs were sampled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn pair_distances(probs: &Matrix, pairs: &[(usize, usize)], kind: DistanceKind) -> Vec<f64> {
    pairs
        .iter()
        .map(|&(u, v)| pairwise_distance(kind, probs.row(u), probs.row(v)))
        .collect()
}

/// Area under the ROC curve of the score "negative distance" for separating
/// connected from unconnected pairs.  0.5 ⇒ no leakage, 1.0 ⇒ the attacker
/// recovers every edge.
pub fn attack_auc(probs: &Matrix, sample: &PairSample, kind: DistanceKind) -> f64 {
    let pos = pair_distances(probs, &sample.positives, kind);
    let neg = pair_distances(probs, &sample.negatives, kind);
    auc_from_distances(&pos, &neg)
}

/// AUC computed directly from distance samples of connected (`pos`) and
/// unconnected (`neg`) pairs.  A positive "wins" when its distance is smaller.
pub fn auc_from_distances(pos: &[f64], neg: &[f64]) -> f64 {
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for &p in pos {
        for &q in neg {
            if p < q {
                wins += 1.0;
            } else if (p - q).abs() <= f64::EPSILON {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() as f64 * neg.len() as f64)
}

/// Attack AUC for each of the eight distance metrics (the series of Fig. 4).
pub fn auc_per_distance(probs: &Matrix, sample: &PairSample) -> Vec<(DistanceKind, f64)> {
    DistanceKind::ALL
        .iter()
        .map(|&kind| (kind, attack_auc(probs, sample, kind)))
        .collect()
}

/// Mean attack AUC over the eight distances — the scalar privacy-risk value
/// used in Tables IV and V.
pub fn average_attack_auc(probs: &Matrix, sample: &PairSample) -> f64 {
    let per = auc_per_distance(probs, sample);
    per.iter().map(|(_, auc)| auc).sum::<f64>() / per.len() as f64
}

/// Result of the unsupervised clustering attack.
#[derive(Debug, Clone, Copy)]
pub struct ClusterAttackOutcome {
    /// Fraction of pairs classified correctly.
    pub accuracy: f64,
    /// Precision on the "connected" class.
    pub precision: f64,
    /// Recall on the "connected" class.
    pub recall: f64,
    /// F1 on the "connected" class.
    pub f1: f64,
}

/// The unsupervised attack variant of §IV: 2-means clustering of the pair
/// distances; the cluster with the smaller centroid is predicted "connected".
pub fn cluster_attack(
    probs: &Matrix,
    sample: &PairSample,
    kind: DistanceKind,
) -> ClusterAttackOutcome {
    let pos = pair_distances(probs, &sample.positives, kind);
    let neg = pair_distances(probs, &sample.negatives, kind);
    let mut all: Vec<(f64, bool)> = pos
        .iter()
        .map(|&d| (d, true))
        .chain(neg.iter().map(|&d| (d, false)))
        .collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    if all.is_empty() {
        return ClusterAttackOutcome {
            accuracy: 0.0,
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
        };
    }
    // 1-D 2-means via Lloyd iterations on the sorted distances.
    let mut c_low = all.first().unwrap().0;
    let mut c_high = all.last().unwrap().0;
    for _ in 0..50 {
        let threshold = (c_low + c_high) / 2.0;
        let (mut sum_low, mut n_low, mut sum_high, mut n_high) = (0.0, 0usize, 0.0, 0usize);
        for &(d, _) in &all {
            if d <= threshold {
                sum_low += d;
                n_low += 1;
            } else {
                sum_high += d;
                n_high += 1;
            }
        }
        if n_low == 0 || n_high == 0 {
            break;
        }
        let new_low = sum_low / n_low as f64;
        let new_high = sum_high / n_high as f64;
        if (new_low - c_low).abs() < 1e-12 && (new_high - c_high).abs() < 1e-12 {
            break;
        }
        c_low = new_low;
        c_high = new_high;
    }
    let threshold = (c_low + c_high) / 2.0;
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut tn = 0usize;
    let mut fn_ = 0usize;
    for &(d, connected) in &all {
        let predicted = d <= threshold;
        match (predicted, connected) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, false) => tn += 1,
            (false, true) => fn_ += 1,
        }
    }
    let accuracy = (tp + tn) as f64 / all.len() as f64;
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    ClusterAttackOutcome {
        accuracy,
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A graph whose two communities get visibly different predictions, so
    /// the attack should succeed; plus shared helper probabilities.
    fn separable_setup() -> (Graph, Matrix, PairSample) {
        // Two 4-cliques joined by a single bridge edge.
        let mut edges = Vec::new();
        for block in 0..2 {
            let base = block * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 4));
        let g = Graph::from_edges(8, &edges);
        let mut probs = Matrix::zeros(8, 2);
        for v in 0..8 {
            // Small per-node wiggle keeps pairs distinguishable.
            let wiggle = v as f64 * 0.01;
            if v < 4 {
                probs[(v, 0)] = 0.9 - wiggle;
                probs[(v, 1)] = 0.1 + wiggle;
            } else {
                probs[(v, 0)] = 0.1 + wiggle;
                probs[(v, 1)] = 0.9 - wiggle;
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        let sample = PairSample::balanced(&g, &mut rng);
        (g, probs, sample)
    }

    #[test]
    fn auc_from_distances_handles_perfect_and_random_cases() {
        assert_eq!(auc_from_distances(&[0.1, 0.2], &[0.9, 0.8]), 1.0);
        assert_eq!(auc_from_distances(&[0.9, 0.8], &[0.1, 0.2]), 0.0);
        assert_eq!(auc_from_distances(&[0.5], &[0.5]), 0.5);
        assert_eq!(auc_from_distances(&[], &[0.5]), 0.5);
    }

    #[test]
    fn balanced_sample_is_balanced_and_disjoint() {
        let (g, _, sample) = separable_setup();
        assert_eq!(sample.positives.len(), g.n_edges());
        assert!(sample.negatives.len() <= sample.positives.len());
        for &(u, v) in &sample.negatives {
            assert!(
                !g.has_edge(u, v),
                "negative pair ({u},{v}) is actually an edge"
            );
        }
    }

    #[test]
    fn community_predictions_leak_edges() {
        let (_, probs, sample) = separable_setup();
        for kind in DistanceKind::ALL {
            let auc = attack_auc(&probs, &sample, kind);
            assert!(auc > 0.6, "{}: expected leakage, AUC {auc}", kind.name());
        }
        let avg = average_attack_auc(&probs, &sample);
        assert!(avg > 0.7, "average AUC {avg}");
    }

    #[test]
    fn uniform_predictions_do_not_leak() {
        let (_, _, sample) = separable_setup();
        let probs = Matrix::filled(8, 2, 0.5);
        let avg = average_attack_auc(&probs, &sample);
        assert!(
            (avg - 0.5).abs() < 0.05,
            "no information ⇒ AUC ≈ 0.5, got {avg}"
        );
    }

    #[test]
    fn cluster_attack_beats_chance_on_separable_predictions() {
        let (_, probs, sample) = separable_setup();
        let outcome = cluster_attack(&probs, &sample, DistanceKind::Euclidean);
        assert!(outcome.accuracy > 0.6, "accuracy {}", outcome.accuracy);
        assert!(outcome.f1 > 0.6, "f1 {}", outcome.f1);
    }

    #[test]
    fn tighter_predictions_reduce_auc() {
        // Shrinking the gap between the two communities' predictions lowers risk.
        let (_, probs, sample) = separable_setup();
        let shrunk = probs.map(|v| 0.5 + (v - 0.5) * 0.05);
        let sharp = average_attack_auc(&probs, &sample);
        let blur = average_attack_auc(&shrunk, &sample);
        assert!(
            sharp >= blur,
            "shrinking prediction gaps must not increase AUC: {sharp} vs {blur}"
        );
    }
}
