//! The scalable link-stealing attack evaluator.
//!
//! [`AttackEvaluator`] owns one [`PairSample`] plus a reusable distance
//! buffer and scores the attack for arbitrary many posterior matrices against
//! that fixed sample — the shape of the paper's evaluation, where five
//! methods × several seeds are attacked on exactly the same pairs and only
//! the posteriors change.
//!
//! Two design choices make it scale past the seed implementation:
//!
//! 1. **Single-pass multi-metric kernel** — [`multi_distance`] computes all
//!    eight [`DistanceKind`] values per node pair in one traversal of the two
//!    posterior rows, instead of re-walking every pair once per metric.  The
//!    pair loop is parallelised over pair chunks via
//!    [`ppfr_linalg::parallel::par_chunks`], with a serial twin
//!    ([`AttackEvaluator::distances_serial`]) pinned bit-identical by tests
//!    across forced `PPFR_NUM_THREADS` counts.
//! 2. **Rank-based AUC** — [`auc_from_distances`] is the `O(m log m)`
//!    Mann–Whitney statistic with exact midrank tie handling, replacing the
//!    seed's `O(|pos|·|neg|)` pairwise loop.

use crate::attack::{auc_from_distances, PairSample};
use crate::distance::{multi_distance, DistanceKind, N_DISTANCE_KINDS};
use ppfr_graph::Graph;
use ppfr_linalg::parallel::par_chunks;
use ppfr_linalg::{mean, Matrix};
use rand::Rng;

/// All eight pairwise distances for every sampled pair, positives first —
/// the single materialised artefact every attack statistic is derived from.
///
/// Layout: row-major `n_pairs × N_DISTANCE_KINDS`, pair `i`'s metrics at
/// `values[i*8 .. (i+1)*8]` in [`DistanceKind::ALL`] order.
#[derive(Debug, Clone)]
pub struct DistanceTable {
    values: Vec<f64>,
    n_pos: usize,
    n_neg: usize,
}

impl DistanceTable {
    /// Number of positive (connected) pairs.
    pub fn n_pos(&self) -> usize {
        self.n_pos
    }

    /// Number of negative (unconnected) pairs.
    pub fn n_neg(&self) -> usize {
        self.n_neg
    }

    /// Total number of pairs.
    pub fn n_pairs(&self) -> usize {
        self.n_pos + self.n_neg
    }

    /// The eight distances of pair `i` in [`DistanceKind::ALL`] order.
    pub fn pair(&self, i: usize) -> &[f64] {
        &self.values[i * N_DISTANCE_KINDS..(i + 1) * N_DISTANCE_KINDS]
    }

    /// Raw row-major buffer (`n_pairs × 8`), for the equivalence tests.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Gathers one metric's column, split into `(positives, negatives)`.
    pub fn split(&self, kind: DistanceKind) -> (Vec<f64>, Vec<f64>) {
        let k = kind.index();
        let column = |range: std::ops::Range<usize>| -> Vec<f64> {
            range
                .map(|i| self.values[i * N_DISTANCE_KINDS + k])
                .collect()
        };
        (column(0..self.n_pos), column(self.n_pos..self.n_pairs()))
    }

    /// Rank-based attack AUC under one distance metric.
    pub fn auc(&self, kind: DistanceKind) -> f64 {
        let (pos, neg) = self.split(kind);
        auc_from_distances(&pos, &neg)
    }

    /// Attack AUC for each of the eight metrics (the series of Fig. 4).
    pub fn auc_per_distance(&self) -> Vec<(DistanceKind, f64)> {
        DistanceKind::ALL
            .iter()
            .map(|&kind| (kind, self.auc(kind)))
            .collect()
    }

    /// `f_risk` of Definition 2 under one metric: the absolute gap between
    /// the mean distance of unconnected and connected pairs.
    pub fn mean_gap(&self, kind: DistanceKind) -> f64 {
        if self.n_pos == 0 || self.n_neg == 0 {
            return 0.0;
        }
        let (pos, neg) = self.split(kind);
        (mean(&neg) - mean(&pos)).abs()
    }
}

/// One full attack scoring of a posterior matrix.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Attack AUC per distance metric, in [`DistanceKind::ALL`] order.
    pub auc_per_distance: Vec<(DistanceKind, f64)>,
    /// Mean attack AUC over the eight metrics.
    pub average_auc: f64,
    /// `f_risk` of Definition 2 (euclidean mean-distance gap).
    pub risk_gap: f64,
}

/// Link-stealing attack evaluator with a fixed pair sample and a distance
/// buffer reused across posterior matrices.
#[derive(Debug, Clone)]
pub struct AttackEvaluator {
    sample: PairSample,
    table: DistanceTable,
}

impl AttackEvaluator {
    /// Wraps an existing pair sample.
    pub fn new(sample: PairSample) -> Self {
        let n_pos = sample.positives.len();
        let n_neg = sample.negatives.len();
        Self {
            sample,
            table: DistanceTable {
                values: Vec::new(),
                n_pos,
                n_neg,
            },
        }
    }

    /// Samples balanced pairs from `graph` (see [`PairSample::balanced`]) and
    /// wraps them.
    pub fn from_graph<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Self {
        Self::new(PairSample::balanced(graph, rng))
    }

    /// The pair sample every call scores against.
    pub fn sample(&self) -> &PairSample {
        &self.sample
    }

    /// The distance table of the most recent `distances*` / `evaluate` call.
    pub fn table(&self) -> &DistanceTable {
        &self.table
    }

    fn fill(&mut self, probs: &Matrix, parallel: bool) -> &DistanceTable {
        let n_pairs = self.table.n_pairs();
        self.table.values.clear();
        self.table.values.resize(n_pairs * N_DISTANCE_KINDS, 0.0);
        let sample = &self.sample;
        let n_pos = self.table.n_pos;
        let pair_metrics = |i: usize, out: &mut [f64]| {
            let (u, v) = if i < n_pos {
                sample.positives[i]
            } else {
                sample.negatives[i - n_pos]
            };
            multi_distance(probs.row(u), probs.row(v), out);
        };
        if parallel {
            par_chunks(&mut self.table.values, N_DISTANCE_KINDS, pair_metrics);
        } else {
            for (i, out) in self.table.values.chunks_mut(N_DISTANCE_KINDS).enumerate() {
                pair_metrics(i, out);
            }
        }
        &self.table
    }

    /// Computes all eight distances for every sampled pair in one pass over
    /// the posterior rows, parallelised over pair chunks.
    pub fn distances(&mut self, probs: &Matrix) -> &DistanceTable {
        self.fill(probs, true)
    }

    /// Serial twin of [`AttackEvaluator::distances`]; bit-identical results
    /// regardless of worker-thread count.
    pub fn distances_serial(&mut self, probs: &Matrix) -> &DistanceTable {
        self.fill(probs, false)
    }

    /// Scores the attack on one posterior matrix: per-metric AUC, mean AUC
    /// and the euclidean risk gap, all derived from a single distance pass.
    pub fn evaluate(&mut self, probs: &Matrix) -> AttackReport {
        let table = self.distances(probs);
        let auc_per_distance = table.auc_per_distance();
        let average_auc =
            auc_per_distance.iter().map(|(_, a)| a).sum::<f64>() / auc_per_distance.len() as f64;
        AttackReport {
            average_auc,
            risk_gap: table.mean_gap(DistanceKind::Euclidean),
            auc_per_distance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{attack_auc, auc_per_distance, average_attack_auc};
    use crate::distance::pairwise_distance;
    use crate::risk::prediction_distance_gap;
    use ppfr_linalg::parallel::with_forced_threads;
    use ppfr_linalg::row_softmax;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A two-community graph with separable posteriors (mirrors attack.rs).
    fn setup(n_per_block: usize) -> (Graph, Matrix, AttackEvaluator) {
        let mut edges = Vec::new();
        for block in 0..2 {
            let base = block * n_per_block;
            for i in 0..n_per_block {
                for j in (i + 1)..n_per_block {
                    if (i + j) % 3 != 0 {
                        edges.push((base + i, base + j));
                    }
                }
            }
        }
        edges.push((0, n_per_block));
        let n = 2 * n_per_block;
        let g = Graph::from_edges(n, &edges);
        let mut rng = StdRng::seed_from_u64(17);
        let logits = Matrix::gaussian(n, 4, 0.0, 1.0, &mut rng);
        let probs = row_softmax(&logits.map(|v| v * 0.3));
        let mut rng = StdRng::seed_from_u64(5);
        let evaluator = AttackEvaluator::from_graph(&g, &mut rng);
        (g, probs, evaluator)
    }

    #[test]
    fn table_matches_the_per_pair_reference_distances() {
        let (_, probs, mut ev) = setup(6);
        ev.distances(&probs);
        let n_pos = ev.sample().positives.len();
        for (i, &(u, v)) in ev
            .sample()
            .positives
            .iter()
            .chain(ev.sample().negatives.iter())
            .enumerate()
        {
            let row = ev.table().pair(i);
            for kind in DistanceKind::ALL {
                let reference = pairwise_distance(kind, probs.row(u), probs.row(v));
                let tol = if kind == DistanceKind::Correlation {
                    1e-9
                } else {
                    0.0
                };
                assert!(
                    (row[kind.index()] - reference).abs() <= tol,
                    "{} differs on pair {i} ({u},{v}), pos={}",
                    kind.name(),
                    i < n_pos
                );
            }
        }
    }

    #[test]
    fn parallel_and_serial_tables_are_bit_identical_across_thread_counts() {
        let (_, probs, mut ev) = setup(8);
        let serial = ev.distances_serial(&probs).as_slice().to_vec();
        for threads in [1, 2, 4, 7] {
            let parallel =
                with_forced_threads(threads, || ev.distances(&probs).as_slice().to_vec());
            assert_eq!(parallel, serial, "results differ at {threads} threads");
        }
    }

    #[test]
    fn evaluator_agrees_with_the_legacy_per_metric_path() {
        let (_, probs, mut ev) = setup(6);
        let report = ev.evaluate(&probs);
        let sample = ev.sample().clone();
        for (kind, auc) in &report.auc_per_distance {
            let legacy = attack_auc(&probs, &sample, *kind);
            assert!(
                (auc - legacy).abs() < 1e-9,
                "{}: evaluator {auc} vs legacy {legacy}",
                kind.name()
            );
        }
        let legacy_avg = average_attack_auc(&probs, &sample);
        assert!((report.average_auc - legacy_avg).abs() < 1e-9);
        let legacy_gap = prediction_distance_gap(&probs, &sample, DistanceKind::Euclidean);
        assert!((report.risk_gap - legacy_gap).abs() < 1e-12);
        assert_eq!(
            report.auc_per_distance.len(),
            auc_per_distance(&probs, &sample).len()
        );
    }

    #[test]
    fn buffer_is_reused_across_posterior_matrices() {
        let (_, probs, mut ev) = setup(6);
        let first = ev.evaluate(&probs);
        let blurred = probs.map(|v| 0.25 + (v - 0.25) * 0.01);
        let second = ev.evaluate(&blurred);
        // Same sample, different posteriors: reports must be self-consistent.
        assert_eq!(first.auc_per_distance.len(), 8);
        assert_eq!(second.auc_per_distance.len(), 8);
        let third = ev.evaluate(&probs);
        for (a, b) in first.auc_per_distance.iter().zip(third.auc_per_distance) {
            assert_eq!(a.1, b.1, "re-evaluation must be deterministic");
        }
    }

    #[test]
    fn empty_sample_reports_chance_level() {
        let g = Graph::empty(4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut ev = AttackEvaluator::from_graph(&g, &mut rng);
        let probs = Matrix::filled(4, 2, 0.5);
        let report = ev.evaluate(&probs);
        assert_eq!(report.average_auc, 0.5);
        assert_eq!(report.risk_gap, 0.0);
    }
}
