//! Edge differential-privacy defences (Wu et al., IEEE S&P 2022).
//!
//! * **EdgeRand** — randomised response on adjacency cells: each existing
//!   edge is kept with probability `e^ε / (1 + e^ε)`, and non-edges are
//!   flipped to edges with probability `1 / (1 + e^ε)`.  Because flipping
//!   every one of the `O(n²)` empty cells individually would be wasteful on
//!   sparse graphs, the number of injected edges is drawn from the matching
//!   binomial and placed uniformly at random — an exact sampling of the same
//!   distribution.
//! * **LapGraph** — adds Laplace(1/ε) noise to the adjacency entries of a
//!   candidate cell set and keeps the top-`Ẽ` cells, where `Ẽ` is the
//!   edge count perturbed with Laplace noise (a small fraction of the budget).
//!
//! Both return a *new* graph; the original is untouched so attacks can still
//! be evaluated against the true confidential edges.

use ppfr_graph::Graph;
use rand::Rng;
use rand_distr::{Distribution, Uniform};

/// Samples Laplace(0, scale) noise.
fn laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    let u: f64 = Uniform::new(-0.5, 0.5).sample(rng);
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// EdgeRand: ε-edge-DP randomised response over the adjacency matrix.
pub fn edge_rand<R: Rng + ?Sized>(graph: &Graph, epsilon: f64, rng: &mut R) -> Graph {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let n = graph.n_nodes();
    let keep_prob = epsilon.exp() / (1.0 + epsilon.exp());
    let flip_prob = 1.0 - keep_prob;

    // Kept original edges.
    let mut edges: Vec<(usize, usize)> =
        graph.edges().filter(|_| rng.gen_bool(keep_prob)).collect();

    // Injected noise edges: binomial over the non-edge cells, sampled lazily.
    let total_pairs = n * (n - 1) / 2;
    let non_edges = total_pairs.saturating_sub(graph.n_edges());
    let expected_flips = flip_prob * non_edges as f64;
    // Poisson-like approximation of the binomial count (exact enough for the
    // sparse graphs here and avoids an O(n²) pass).
    let n_flips = expected_flips.round() as usize;
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < n_flips && guard < n_flips * 20 + 100 {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || graph.has_edge(u, v) {
            continue;
        }
        edges.push((u.min(v), u.max(v)));
        added += 1;
    }
    Graph::from_edges(n, &edges)
}

/// LapGraph: ε-edge-DP via Laplace noise on adjacency cells.
///
/// A 10 % slice of the budget perturbs the edge count; the remaining 90 %
/// perturbs cell values.  Candidate cells are all existing edges plus a
/// random sample of non-edges (four times the edge count), which keeps the
/// mechanism linear in `|E|` on sparse graphs while preserving its behaviour:
/// with small ε many true edges drop out of the top-`Ẽ` selection and random
/// non-edges take their place.
pub fn lap_graph<R: Rng + ?Sized>(graph: &Graph, epsilon: f64, rng: &mut R) -> Graph {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let n = graph.n_nodes();
    let eps_count = 0.1 * epsilon;
    let eps_cells = 0.9 * epsilon;

    let noisy_count =
        ((graph.n_edges() as f64 + laplace(1.0 / eps_count, rng)).round()).max(0.0) as usize;

    // Candidate cells: every true edge + sampled non-edges.
    let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
    for (u, v) in graph.edges() {
        candidates.push((u, v, 1.0 + laplace(1.0 / eps_cells, rng)));
    }
    let extra = graph.n_edges() * 4;
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < extra && guard < extra * 20 + 100 {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || graph.has_edge(u, v) {
            continue;
        }
        candidates.push((u.min(v), u.max(v), laplace(1.0 / eps_cells, rng)));
        added += 1;
    }
    // NaN-safe descending sort: NaN scores are canonicalised to -inf so a
    // bad cell deterministically sinks to the tail (never into the released
    // top-k) instead of panicking.
    let rank = |s: f64| if s.is_nan() { f64::NEG_INFINITY } else { s };
    candidates.sort_by(|a, b| rank(b.2).total_cmp(&rank(a.2)));
    let edges: Vec<(usize, usize)> = candidates
        .into_iter()
        .take(noisy_count)
        .map(|(u, v, _)| (u, v))
        .collect();
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn high_epsilon_edge_rand_preserves_most_edges() {
        let g = ring(60);
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = edge_rand(&g, 8.0, &mut rng);
        let kept = g.edges().filter(|&(u, v)| noisy.has_edge(u, v)).count();
        assert!(
            kept as f64 > 0.9 * g.n_edges() as f64,
            "kept only {kept}/{}",
            g.n_edges()
        );
    }

    #[test]
    fn low_epsilon_edge_rand_destroys_structure() {
        let g = ring(60);
        let mut rng = StdRng::seed_from_u64(2);
        let noisy = edge_rand(&g, 0.1, &mut rng);
        let kept = g.edges().filter(|&(u, v)| noisy.has_edge(u, v)).count();
        // With ε=0.1 the keep probability is ≈ 0.52, so roughly half survive.
        assert!(kept < g.n_edges(), "low epsilon must drop some edges");
        assert!(
            noisy.n_edges() > g.n_edges(),
            "low epsilon must also inject many noise edges"
        );
    }

    #[test]
    fn lap_graph_returns_roughly_the_original_edge_count() {
        let g = ring(80);
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = lap_graph(&g, 5.0, &mut rng);
        let ratio = noisy.n_edges() as f64 / g.n_edges() as f64;
        assert!(
            ratio > 0.5 && ratio < 1.6,
            "edge count ratio {ratio} too far from 1"
        );
    }

    #[test]
    fn lap_graph_with_small_epsilon_replaces_edges_with_noise() {
        let g = ring(80);
        let mut rng = StdRng::seed_from_u64(4);
        let noisy = lap_graph(&g, 0.5, &mut rng);
        let kept = g.edges().filter(|&(u, v)| noisy.has_edge(u, v)).count();
        assert!(
            kept < g.n_edges(),
            "small epsilon should push some true edges out of the selection (kept {kept})"
        );
    }

    #[test]
    fn mechanisms_do_not_mutate_the_input_graph() {
        let g = ring(30);
        let before = g.n_edges();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = edge_rand(&g, 1.0, &mut rng);
        let _ = lap_graph(&g, 1.0, &mut rng);
        assert_eq!(g.n_edges(), before);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_is_rejected() {
        let g = ring(10);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = edge_rand(&g, 0.0, &mut rng);
    }
}
