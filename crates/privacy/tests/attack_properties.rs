//! Property tests for the attack layer: metric axioms for every
//! `DistanceKind`, single-pass kernel vs single-metric reference, and the
//! rank-based AUC vs the quadratic oracle.

use ppfr_linalg::row_softmax;
use ppfr_linalg::Matrix;
use ppfr_privacy::{
    auc_from_distances, auc_from_distances_quadratic, multi_distance, pairwise_distance,
    DistanceKind, N_DISTANCE_KINDS,
};
use proptest::prelude::*;

/// Strategy: a random probability matrix with rows summing to one.
fn arb_probs(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-4.0f64..4.0, rows * cols)
        .prop_map(move |logits| row_softmax(&Matrix::from_vec(rows, cols, logits)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_distance_kind_is_symmetric_non_negative_and_zero_on_identical(
        probs in arb_probs(8, 4),
        i in 0usize..8,
        j in 0usize..8,
    ) {
        for kind in DistanceKind::ALL {
            let d_ij = pairwise_distance(kind, probs.row(i), probs.row(j));
            let d_ji = pairwise_distance(kind, probs.row(j), probs.row(i));
            prop_assert!(d_ij >= -1e-12, "{}: negative distance {}", kind.name(), d_ij);
            prop_assert!((d_ij - d_ji).abs() < 1e-9, "{}: asymmetric", kind.name());
            let d_ii = pairwise_distance(kind, probs.row(i), probs.row(i));
            prop_assert!(d_ii == 0.0, "{}: d(x,x) = {}", kind.name(), d_ii);
        }
    }

    #[test]
    fn single_pass_kernel_matches_the_single_metric_reference(
        probs in arb_probs(6, 5),
        i in 0usize..6,
        j in 0usize..6,
    ) {
        let mut out = [0.0; N_DISTANCE_KINDS];
        multi_distance(probs.row(i), probs.row(j), &mut out);
        for kind in DistanceKind::ALL {
            let reference = pairwise_distance(kind, probs.row(i), probs.row(j));
            let tol = if kind == DistanceKind::Correlation { 1e-8 } else { 0.0 };
            prop_assert!(
                (out[kind.index()] - reference).abs() <= tol,
                "{}: kernel {} vs reference {}",
                kind.name(),
                out[kind.index()],
                reference
            );
        }
    }

    #[test]
    fn rank_auc_equals_quadratic_oracle_on_tie_free_samples(
        pos in proptest::collection::vec(0.0f64..2.0, 1..60),
        neg in proptest::collection::vec(0.0f64..2.0, 1..60),
    ) {
        // Continuous draws are tie-free almost surely; the contract demands
        // 1e-12 agreement there.
        let fast = auc_from_distances(&pos, &neg);
        let slow = auc_from_distances_quadratic(&pos, &neg);
        prop_assert!(
            (fast - slow).abs() < 1e-12,
            "rank {} vs quadratic {}",
            fast,
            slow
        );
        prop_assert!((0.0..=1.0).contains(&fast));
    }

    #[test]
    fn rank_auc_matches_oracle_under_heavy_ties(
        raw_pos in proptest::collection::vec(0u32..6, 1..40),
        raw_neg in proptest::collection::vec(0u32..6, 1..40),
    ) {
        // Quantised values force many exact ties; both paths must count each
        // tie as half a win.
        let pos: Vec<f64> = raw_pos.iter().map(|&v| v as f64 / 4.0).collect();
        let neg: Vec<f64> = raw_neg.iter().map(|&v| v as f64 / 4.0).collect();
        let fast = auc_from_distances(&pos, &neg);
        let slow = auc_from_distances_quadratic(&pos, &neg);
        prop_assert!(
            (fast - slow).abs() < 1e-12,
            "rank {} vs quadratic {} on tied inputs",
            fast,
            slow
        );
        // Mirror symmetry must hold exactly with midrank tie handling.
        let swapped = auc_from_distances(&neg, &pos);
        prop_assert!((fast + swapped - 1.0).abs() < 1e-12);
    }
}
