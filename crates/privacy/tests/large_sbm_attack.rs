//! Large-SBM scaling scenario for the attack evaluator.
//!
//! The seed implementation scored the attack with an `O(|pos|·|neg|)` AUC
//! loop per metric — on the ~100k positive + 100k negative pairs below that
//! is ~8 × 10¹⁰ comparisons, far beyond any test budget.  The rank-based
//! single-pass [`AttackEvaluator`] finishes the same evaluation in seconds
//! even in a debug build, which is the point of this test.

use ppfr_datasets::sparse_sbm;
use ppfr_linalg::Matrix;
use ppfr_privacy::{AttackEvaluator, DistanceKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn twenty_thousand_node_sbm_attack_evaluation_completes() {
    let n = 20_000;
    let (graph, labels) = sparse_sbm(n, 2, 9.0, 1.0, 99);
    assert!(graph.n_nodes() == n);
    assert!(
        graph.n_edges() > 80_000,
        "scenario needs ≥80k positive pairs, got {}",
        graph.n_edges()
    );

    // Synthetic block-separated posteriors with a deterministic per-node
    // wiggle, standing in for a trained model's predictions: nodes in the
    // same block (where most edges live) get similar rows.
    let mut probs = Matrix::zeros(n, 2);
    for v in 0..n {
        let wiggle = (v % 97) as f64 * 1e-3;
        let hi = 0.85 - wiggle;
        let lo = 1.0 - hi;
        if labels[v] == 0 {
            probs[(v, 0)] = hi;
            probs[(v, 1)] = lo;
        } else {
            probs[(v, 0)] = lo;
            probs[(v, 1)] = hi;
        }
    }

    // Deterministic negative sampling: the seeded RNG plus the dedup set
    // makes the sample reproducible across runs.
    let mut rng = StdRng::seed_from_u64(7);
    let mut evaluator = AttackEvaluator::from_graph(&graph, &mut rng);
    let (n_pos, n_neg) = evaluator.sample().counts();
    assert_eq!(n_pos, graph.n_edges());
    assert_eq!(
        n_neg, n_pos,
        "sparse 20k-node graph must fill all negatives"
    );

    let report = evaluator.evaluate(&probs);
    assert_eq!(report.auc_per_distance.len(), 8);
    for &(kind, auc) in &report.auc_per_distance {
        assert!(
            (0.0..=1.0).contains(&auc),
            "{}: AUC {auc} out of range",
            kind.name()
        );
    }
    // ~90% of edges are intra-block (close posteriors) while only ~50% of
    // random non-edges are, so the attack must clear chance by a wide margin.
    assert!(
        report.average_auc > 0.6,
        "block-separated posteriors must leak edges, got {}",
        report.average_auc
    );
    assert!(report.risk_gap > 0.0);

    // Re-scoring different posteriors reuses the sample and buffers: uniform
    // predictions must drop the attack to chance level.
    let uniform = Matrix::filled(n, 2, 0.5);
    let blind = evaluator.evaluate(&uniform);
    assert!(
        (blind.average_auc - 0.5).abs() < 0.02,
        "no information ⇒ AUC ≈ 0.5, got {}",
        blind.average_auc
    );
    assert!(blind.average_auc < report.average_auc);
}

#[test]
fn large_sample_rank_auc_matches_oracle_on_a_subsample() {
    // Spot-check the rank AUC against the quadratic oracle on a slice of the
    // large scenario small enough for the oracle to afford.
    let (graph, labels) = sparse_sbm(2_000, 2, 6.0, 2.0, 5);
    let mut probs = Matrix::zeros(2_000, 2);
    for v in 0..2_000 {
        let p = if labels[v] == 0 { 0.8 } else { 0.2 };
        probs[(v, 0)] = p;
        probs[(v, 1)] = 1.0 - p;
    }
    let mut rng = StdRng::seed_from_u64(11);
    let mut evaluator = AttackEvaluator::from_graph(&graph, &mut rng);
    evaluator.distances(&probs);
    let (pos, neg) = evaluator.table().split(DistanceKind::Euclidean);
    let fast = ppfr_privacy::auc_from_distances(&pos, &neg);
    let slow = ppfr_privacy::auc_from_distances_quadratic(&pos[..400], &neg[..400]);
    let fast_sub = ppfr_privacy::auc_from_distances(&pos[..400], &neg[..400]);
    assert!(
        (fast_sub - slow).abs() < 1e-12,
        "rank {fast_sub} vs quadratic {slow}"
    );
    assert!((0.0..=1.0).contains(&fast));
}
