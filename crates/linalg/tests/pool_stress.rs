//! Stealing-determinism stress suite for the persistent work-stealing pool.
//!
//! The pool balances *work* dynamically (LIFO local pop, FIFO steal), so the
//! set of chunks each worker executes is racy by design — but every result
//! lands at its own index, so the *outputs* must be bit-identical to the
//! serial twin for every `parallel::*` entry point, at every thread count,
//! for arbitrarily uneven per-item workloads.  This suite hammers exactly
//! that contract: deterministic-but-skewed workloads under
//! `PPFR_NUM_THREADS ∈ {1, 2, 8}`, panic propagation out of worker-executed
//! chunks (with the pool still serviceable afterwards), and a proptest that
//! raw pool dispatch runs every index exactly once.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use ppfr_linalg::parallel::{
    par_chunks, par_fill, par_join, par_row_blocks, par_rows, with_forced_threads,
};
use proptest::prelude::*;

const STRESS_THREADS: [usize; 3] = [1, 2, 8];

/// Deterministic per-index workload weight with a heavy skew: most items are
/// cheap, every 13th costs ~two orders of magnitude more.  This is the shape
/// that defeats static partitioning and forces actual stealing.
fn weight(i: usize) -> usize {
    let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
    if i.is_multiple_of(13) {
        500 + (h % 500) as usize
    } else {
        1 + (h % 7) as usize
    }
}

/// Burns `weight(i)` float ops and returns a value that depends on every
/// iteration, so the work cannot be optimised away and the result pins the
/// exact computation.
fn heavy(i: usize) -> f64 {
    let mut acc = i as f64 + 0.5;
    for t in 0..weight(i) {
        acc = (acc * 1.000_001 + t as f64).sin();
    }
    acc
}

#[test]
fn par_chunks_is_bit_identical_across_thread_counts_under_skew() {
    let n_chunks = 301;
    let chunk_len = 3;
    let run = |threads: usize| {
        let mut data = vec![0.0; n_chunks * chunk_len];
        with_forced_threads(threads, || {
            par_chunks(&mut data, chunk_len, |i, chunk| {
                let v = heavy(i);
                for (c, o) in chunk.iter_mut().enumerate() {
                    *o = v + c as f64;
                }
            });
        });
        data
    };
    let serial = run(1);
    for threads in STRESS_THREADS {
        assert_eq!(
            run(threads),
            serial,
            "par_chunks differs at {threads} threads"
        );
    }
}

#[test]
fn par_row_blocks_is_bit_identical_across_thread_counts_under_skew() {
    // 258 rows in blocks of 4: 64 full blocks plus a ragged 2-row tail.
    let n_rows = 258;
    let row_len = 3;
    let run = |threads: usize| {
        let mut data = vec![0.0; n_rows * row_len];
        with_forced_threads(threads, || {
            par_row_blocks(&mut data, row_len, 4, |first_row, block| {
                for (r, row) in block.chunks_mut(row_len).enumerate() {
                    let v = heavy(first_row + r);
                    for (c, o) in row.iter_mut().enumerate() {
                        *o = v - c as f64;
                    }
                }
            });
        });
        data
    };
    let serial = run(1);
    for threads in STRESS_THREADS {
        assert_eq!(
            run(threads),
            serial,
            "par_row_blocks differs at {threads} threads"
        );
    }
}

#[test]
fn par_fill_is_bit_identical_across_thread_counts_under_skew() {
    let n = 513;
    let run = |threads: usize| {
        let mut out = vec![0.0; n];
        with_forced_threads(threads, || par_fill(&mut out, heavy));
        out
    };
    let serial = run(1);
    for threads in STRESS_THREADS {
        assert_eq!(
            run(threads),
            serial,
            "par_fill differs at {threads} threads"
        );
    }
}

#[test]
fn par_rows_is_bit_identical_across_thread_counts_under_skew() {
    let n = 173;
    let run = |threads: usize| {
        with_forced_threads(threads, || par_rows(n, |r| vec![heavy(r), heavy(r) * 2.0]))
    };
    let serial = run(1);
    for threads in STRESS_THREADS {
        assert_eq!(
            run(threads),
            serial,
            "par_rows differs at {threads} threads"
        );
    }
}

#[test]
fn par_join_is_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        with_forced_threads(threads, || {
            par_join(
                || (0..97).map(heavy).sum::<f64>(),
                || (97..211).map(heavy).sum::<f64>(),
            )
        })
    };
    let serial = run(1);
    for threads in STRESS_THREADS {
        let got = run(threads);
        assert_eq!(got, serial, "par_join differs at {threads} threads");
    }
}

#[test]
fn panic_in_worker_chunk_propagates_and_pool_survives() {
    let n_chunks = 300;
    let caught = with_forced_threads(4, || {
        catch_unwind(AssertUnwindSafe(|| {
            let mut data = vec![0.0; n_chunks];
            par_chunks(&mut data, 1, |i, chunk| {
                if i == 217 {
                    panic!("stress chunk panicked on purpose");
                }
                chunk[0] = heavy(i);
            });
        }))
    });
    let payload = caught.expect_err("the chunk panic must reach the dispatching thread");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("on purpose"), "unexpected payload: {msg}");

    // The pool must keep servicing dispatches after an aborted job.
    let serial = {
        let mut out = vec![0.0; 64];
        with_forced_threads(1, || par_fill(&mut out, heavy));
        out
    };
    let mut out = vec![0.0; 64];
    with_forced_threads(4, || par_fill(&mut out, heavy));
    assert_eq!(out, serial, "pool produced wrong results after a panic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Raw pool dispatch must run every index exactly once — no drops, no
    /// duplicates — for any item count and requested thread count.
    #[test]
    fn dispatch_covers_every_index_exactly_once(n in 0usize..300, threads in 1usize..9) {
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        rayon::dispatch(n, threads, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counters.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "index {} at {} threads", i, threads);
        }
    }
}
