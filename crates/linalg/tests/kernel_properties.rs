//! Property-based equivalence suite for the in-place / transpose-free GEMM
//! kernels: every fast path must be **bit-identical** to its allocating
//! oracle (`transpose()` + `matmul`) across arbitrary shapes — including
//! empty, `1×N` and `N×1` matrices — and across forced worker-thread counts.

use ppfr_linalg::parallel::with_forced_threads;
use ppfr_linalg::{
    relu, relu_grad, relu_grad_into, relu_into, row_softmax, row_softmax_backward,
    row_softmax_backward_into, row_softmax_into, Matrix,
};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with finite entries and ReLU-like
/// sparsity (zeros are common, so the sparse fast paths actually fire).
fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f64..3.0, rows * cols).prop_map(move |mut data| {
        for v in &mut data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        Matrix::from_vec(rows, cols, data)
    })
}

/// Strategy: an `m×k` / `k×n` matmul pair, dimensions down to zero.
fn arb_mk_kn() -> impl Strategy<Value = (Matrix, Matrix)> {
    (0usize..12, 0usize..12, 0usize..12)
        .prop_flat_map(|(m, k, n)| (arb_matrix(m, k), arb_matrix(k, n)))
}

/// Strategy: an `m×k` / `m×n` pair for `Aᵀ·B`.
fn arb_mk_mn() -> impl Strategy<Value = (Matrix, Matrix)> {
    (0usize..12, 0usize..12, 0usize..12)
        .prop_flat_map(|(m, k, n)| (arb_matrix(m, k), arb_matrix(m, n)))
}

/// Strategy: an `m×k` / `n×k` pair for `A·Bᵀ`.
fn arb_mk_nk() -> impl Strategy<Value = (Matrix, Matrix)> {
    (0usize..12, 0usize..12, 0usize..12)
        .prop_flat_map(|(m, k, n)| (arb_matrix(m, k), arb_matrix(n, k)))
}

/// Strategy: two same-shaped matrices.
fn arb_same_shape(min_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (min_dim..8usize, min_dim..8usize).prop_flat_map(|(r, c)| (arb_matrix(r, c), arb_matrix(r, c)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_into_matches_serial_oracle(pair in arb_mk_kn()) {
        let (a, b) = pair;
        let oracle = a.matmul_serial(&b);
        let mut out = Matrix::zeros(3, 3);
        for threads in [1, 4] {
            with_forced_threads(threads, || a.matmul_into(&b, &mut out));
            prop_assert_eq!(out.as_slice(), oracle.as_slice());
            prop_assert_eq!(out.shape(), oracle.shape());
        }
        a.matmul_into_serial(&b, &mut out);
        prop_assert_eq!(out.as_slice(), oracle.as_slice());
    }

    #[test]
    fn matmul_at_b_matches_transpose_oracle(pair in arb_mk_mn()) {
        let (a, b) = pair;
        let oracle = a.transpose().matmul_serial(&b);
        let mut out = Matrix::zeros(1, 1);
        for threads in [1, 4] {
            with_forced_threads(threads, || a.matmul_at_b_into(&b, &mut out));
            prop_assert_eq!(out.as_slice(), oracle.as_slice());
            prop_assert_eq!(out.shape(), oracle.shape());
        }
        a.matmul_at_b_into_serial(&b, &mut out);
        prop_assert_eq!(out.as_slice(), oracle.as_slice());
        prop_assert_eq!(a.matmul_at_b(&b).as_slice(), oracle.as_slice());
    }

    #[test]
    fn matmul_a_bt_matches_transpose_oracle(pair in arb_mk_nk()) {
        let (a, b) = pair;
        let oracle = a.matmul_serial(&b.transpose());
        let mut out = Matrix::zeros(1, 1);
        for threads in [1, 4] {
            with_forced_threads(threads, || a.matmul_a_bt_into(&b, &mut out));
            prop_assert_eq!(out.as_slice(), oracle.as_slice());
            prop_assert_eq!(out.shape(), oracle.shape());
        }
        a.matmul_a_bt_into_serial(&b, &mut out);
        prop_assert_eq!(out.as_slice(), oracle.as_slice());
        prop_assert_eq!(a.matmul_a_bt(&b).as_slice(), oracle.as_slice());
    }

    #[test]
    fn elementwise_into_kernels_match_oracles(pair in arb_same_shape(0)) {
        let (pre, up) = pair;
        let mut out = Matrix::zeros(2, 2);

        relu_into(&pre, &mut out);
        prop_assert_eq!(out.as_slice(), relu(&pre).as_slice());

        relu_grad_into(&pre, &up, &mut out);
        prop_assert_eq!(out.as_slice(), relu_grad(&pre, &up).as_slice());

        let oracle = row_softmax(&pre);
        for threads in [1, 4] {
            with_forced_threads(threads, || row_softmax_into(&pre, &mut out));
            prop_assert_eq!(out.as_slice(), oracle.as_slice());
        }

        let d_oracle = row_softmax_backward(&oracle, &up);
        for threads in [1, 4] {
            with_forced_threads(threads, || row_softmax_backward_into(&oracle, &up, &mut out));
            prop_assert_eq!(out.as_slice(), d_oracle.as_slice());
        }
    }

    #[test]
    fn zip_map_col_and_broadcast_match_oracles(pair in arb_same_shape(1)) {
        let (a, b) = pair;
        let (rows, cols) = a.shape();
        let mut out = Matrix::zeros(2, 2);

        a.zip_into(&b, &mut out, |x, y| x - 2.0 * y);
        prop_assert_eq!(out.as_slice(), a.zip_with(&b, |x, y| x - 2.0 * y).as_slice());

        let mut sum = a.clone();
        sum.add_inplace(&b);
        prop_assert_eq!(sum.as_slice(), a.add(&b).as_slice());

        let bias: Vec<f64> = (0..cols).map(|c| c as f64 - 1.5).collect();
        let mut inplace = a.clone();
        inplace.add_row_broadcast_inplace(&bias);
        prop_assert_eq!(inplace.as_slice(), a.add_row_broadcast(&bias).as_slice());

        let mut col_buf = vec![0.0; rows];
        for c in 0..cols {
            a.col_into(c, &mut col_buf);
            prop_assert_eq!(&col_buf, &a.col(c));
        }
    }
}
