//! The shared parallel-iteration idiom of the PPFR stack.
//!
//! Every hot kernel in the workspace — dense matmul and row-wise softmax
//! here, CSR SpMM and Jaccard similarity in `ppfr_graph`, the
//! Hessian-vector products and per-node influence dot products in
//! `ppfr_influence`, the GAT attention projections in `ppfr_gnn` — funnels
//! through the helpers in this module instead of touching rayon directly:
//!
//! * [`par_chunks`] — partition a flat buffer into equal-length mutable
//!   chunks (matrix rows) and fill each chunk independently;
//! * [`par_row_blocks`] — the cache-blocked variant: fixed-height blocks of
//!   rows, last block ragged;
//! * [`par_fill`] — one scalar per output element;
//! * [`par_rows`] — compute one owned value per row index and collect them
//!   in order;
//! * [`par_join`] — run two independent closures concurrently.
//!
//! All of them route through the persistent work-stealing pool in the
//! vendored rayon ([`rayon::dispatch`]): the calling thread and any idle
//! workers pull chunk ranges from per-participant deques (LIFO locally, FIFO
//! when stealing), so uneven per-item workloads balance dynamically while
//! every result still lands at its own index — bit-identical to the serial
//! twin no matter the thread count or stealing order.  The indexed entry
//! points hand workers raw disjoint sub-slices, so the parallel path
//! allocates nothing per item.
//!
//! Dispatch is gated by [`MIN_ITEMS_PER_WORKER`]: inputs too small to
//! amortise the pool handoff take an allocation-free serial loop instead.
//! The thread count re-reads `PPFR_NUM_THREADS` on every call (see
//! [`with_forced_threads`]).
//!
//! Centralising the idiom keeps the parallel surface auditable (one module
//! decides how threads are used), makes serial/parallel equivalence testable
//! per kernel, and gives later PRs a single seam for swapping the execution
//! backend (thread pools, SIMD blocking, accelerators).

pub use rayon::current_num_threads;

/// Minimum items each worker must have before a fine-grained entry point
/// ([`par_chunks`], [`par_row_blocks`] in rows, [`par_fill`]) dispatches to
/// the pool.  Below this, per-call dispatch overhead outweighs the split —
/// the worker count is capped so tiny inputs (e.g. the per-pair distance
/// rows of a small attack audit) stay on the serial fast path.  [`par_rows`]
/// tasks are whole-row computations, coarse enough to parallelise from two
/// items up, so they bypass this floor.
pub const MIN_ITEMS_PER_WORKER: usize = 16;

/// Worker count for `n_items` fine-grained items: the configured thread
/// count, capped so each worker gets at least [`MIN_ITEMS_PER_WORKER`].
fn plan_workers(n_items: usize) -> usize {
    current_num_threads()
        .min(n_items / MIN_ITEMS_PER_WORKER)
        .max(1)
}

static DISPATCH_POOL: ppfr_telemetry::Counter =
    ppfr_telemetry::Counter::new("linalg.dispatch.pool");
static DISPATCH_SERIAL: ppfr_telemetry::Counter =
    ppfr_telemetry::Counter::new("linalg.dispatch.serial");

/// Records one dispatch decision (pool vs serial fast path) in the telemetry
/// metrics, and — on the first recorded decision — switches the vendored
/// pool's own statistics counters on, so steal/park counts accompany the
/// dispatch counts in every export.  A single static branch when telemetry
/// is disabled; recording never influences the decision itself.
fn note_dispatch(pool: bool) {
    if !ppfr_telemetry::enabled() {
        return;
    }
    static ENABLE_POOL_STATS: std::sync::Once = std::sync::Once::new();
    ENABLE_POOL_STATS.call_once(|| rayon::set_pool_stats_enabled(true));
    if pool {
        DISPATCH_POOL.incr();
    } else {
        DISPATCH_SERIAL.incr();
    }
}

/// A raw pointer that may cross thread boundaries; each pool task derives
/// its own disjoint sub-slice (or slot) from it by index.
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Copies the whole wrapper into the capturing closure (edition-2021
    /// disjoint capture would otherwise grab only the raw-pointer field,
    /// which is not `Sync`) and returns the pointer.
    fn get(self) -> *mut T {
        self.0
    }
}

// SAFETY: every dispatch touches each index's disjoint region from exactly
// one task, and the owning buffer outlives the dispatch.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: shared references to the wrapper only ever copy the pointer out;
// the disjoint-region argument above covers all dereferences.
unsafe impl<T> Sync for SendPtr<T> {}

/// Splits `data` into consecutive `chunk_len`-sized mutable chunks (matrix
/// rows, typically) and applies `f(chunk_index, chunk)` to each in parallel.
///
/// Small inputs (fewer than [`MIN_ITEMS_PER_WORKER`] chunks per worker) are
/// visited by a plain loop, bypassing the pool entirely: the training hot
/// loop calls this helper several times per epoch, so the small-input path
/// must stay allocation-free.  Chunk results are independent, so both paths
/// are bit-identical.
///
/// # Panics
/// Panics when `chunk_len` is zero or does not divide `data.len()`.
pub fn par_chunks(data: &mut [f64], chunk_len: usize, f: impl Fn(usize, &mut [f64]) + Sync) {
    assert!(chunk_len > 0, "chunk length must be positive");
    assert_eq!(
        data.len() % chunk_len,
        0,
        "buffer of {} does not split into {}-element chunks",
        data.len(),
        chunk_len
    );
    let n_chunks = data.len() / chunk_len;
    let threads = plan_workers(n_chunks);
    note_dispatch(threads > 1);
    if threads <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    rayon::dispatch(n_chunks, threads, |i| {
        // SAFETY: chunk `i` is the disjoint range [i*chunk_len, (i+1)*chunk_len)
        // of `data`, each index is dispatched exactly once, and `data`
        // outlives the dispatch.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(i * chunk_len), chunk_len) };
        f(i, chunk);
    });
}

/// Splits `data` into blocks of `rows_per_block` consecutive `row_len`-sized
/// rows (the final block may be shorter) and applies
/// `f(first_row_index, block)` to each in parallel.
///
/// Used by the cache-blocked transpose-free GEMM kernels: one block of output
/// rows shares a single sweep over the packed right-hand operand.  The block
/// size is a fixed constant chosen by the caller — never derived from the
/// worker-thread count — so results are bit-identical across forced
/// `PPFR_NUM_THREADS`.  The dispatch threshold is measured in *rows* (the
/// unit of work), not blocks.
///
/// # Panics
/// Panics when `row_len` or `rows_per_block` is zero, or `row_len` does not
/// divide `data.len()`.
pub fn par_row_blocks(
    data: &mut [f64],
    row_len: usize,
    rows_per_block: usize,
    f: impl Fn(usize, &mut [f64]) + Sync,
) {
    assert!(row_len > 0, "row length must be positive");
    assert!(rows_per_block > 0, "block height must be positive");
    assert_eq!(
        data.len() % row_len,
        0,
        "buffer of {} does not split into {}-element rows",
        data.len(),
        row_len
    );
    let n_rows = data.len() / row_len;
    let block_len = rows_per_block * row_len;
    let n_blocks = n_rows.div_ceil(rows_per_block);
    let threads = plan_workers(n_rows).min(n_blocks.max(1));
    note_dispatch(threads > 1);
    if threads <= 1 {
        for (b, block) in data.chunks_mut(block_len).enumerate() {
            f(b * rows_per_block, block);
        }
        return;
    }
    let len = data.len();
    let base = SendPtr(data.as_mut_ptr());
    rayon::dispatch(n_blocks, threads, |b| {
        let start = b * block_len;
        let this_len = block_len.min(len - start);
        // SAFETY: block `b` is the disjoint range [start, start + this_len)
        // of `data`, each index is dispatched exactly once, and `data`
        // outlives the dispatch.
        let block = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), this_len) };
        f(b * rows_per_block, block);
    });
}

/// Fills `out[i] = f(i)` for every index in parallel (per-node scalar
/// projections, e.g. the GAT attention scores).  Small inputs use a plain
/// allocation-free loop; results are independent per element, so both paths
/// are bit-identical.
pub fn par_fill(out: &mut [f64], f: impl Fn(usize) -> f64 + Sync) {
    let threads = plan_workers(out.len());
    note_dispatch(threads > 1);
    if threads <= 1 {
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(i);
        }
        return;
    }
    let base = SendPtr(out.as_mut_ptr());
    rayon::dispatch(out.len(), threads, |i| {
        // SAFETY: element `i` is written by exactly one task and `out`
        // outlives the dispatch.
        unsafe { *base.get().add(i) = f(i) };
    });
}

/// Computes `f(row)` for every `row in 0..n_rows` in parallel and returns the
/// results in row order.
///
/// Rows here are coarse tasks (a whole training example, audit pair group,
/// or scenario), so this entry point parallelises from two rows up instead
/// of applying [`MIN_ITEMS_PER_WORKER`].
pub fn par_rows<T: Send>(n_rows: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = current_num_threads().min(n_rows);
    note_dispatch(threads > 1);
    if threads <= 1 {
        return (0..n_rows).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n_rows).map(|_| None).collect();
    let base = SendPtr(out.as_mut_ptr());
    rayon::dispatch(n_rows, threads, |i| {
        // SAFETY: slot `i` is written by exactly one task and `out` outlives
        // the dispatch.
        unsafe { *base.get().add(i) = Some(f(i)) };
    });
    out.into_iter()
        .map(|slot| slot.expect("pool dispatch covered every row"))
        .collect()
}

/// [`par_rows`] with per-row panic quarantine: a panicking row is reported
/// as `Err(panic message)` at its own index instead of aborting the whole
/// dispatch, so every other row still computes.  Built for coarse fallible
/// tasks — the scenario runner's `(dataset, seed)` groups — where one bad
/// row must not lose the rest of the matrix.
///
/// Ordering and determinism match [`par_rows`]: results land by index and
/// the quarantine decision depends only on whether `f(row)` panics, never on
/// thread count or stealing order (pinned by the forced-thread test below).
pub fn par_rows_quarantined<T: Send>(
    n_rows: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<Result<T, String>> {
    let threads = current_num_threads().min(n_rows.max(1));
    note_dispatch(threads > 1);
    let mut out: Vec<Option<T>> = (0..n_rows).map(|_| None).collect();
    let base = SendPtr(out.as_mut_ptr());
    let caught = rayon::dispatch_quarantined(n_rows, threads, |i| {
        // SAFETY: slot `i` is written by exactly one task and `out` outlives
        // the dispatch.
        unsafe { *base.get().add(i) = Some(f(i)) };
    });
    let mut results: Vec<Result<T, String>> = out
        .into_iter()
        .map(|slot| slot.ok_or_else(String::new))
        .collect();
    for (i, payload) in caught {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        results[i] = Err(message);
    }
    results
}

/// Runs both closures, potentially concurrently, and returns both results.
///
/// Pool-aware: the second closure is published to the persistent pool as a
/// stealable task; if no worker is idle, the caller runs it inline after the
/// first — no per-call thread spawn either way.
pub fn par_join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    rayon::join(a, b)
}

/// Runs `f` with the worker-thread count forced to `n`.
///
/// Exists for the serial-vs-parallel equivalence tests, which must exercise
/// the real multi-threaded partitioning even on single-core CI machines.
/// Calls are serialised process-wide; concurrent *other* parallel calls may
/// briefly observe the override, which is harmless because every kernel is
/// required to produce thread-count-independent results — the very property
/// the equivalence tests assert.
pub fn with_forced_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    use std::sync::Mutex;
    static GUARD: Mutex<()> = Mutex::new(());
    let _lock = GUARD
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());

    struct Restore(Option<String>);
    impl Drop for Restore {
        fn drop(&mut self) {
            match self.0.take() {
                Some(prev) => std::env::set_var("PPFR_NUM_THREADS", prev),
                None => std::env::remove_var("PPFR_NUM_THREADS"),
            }
        }
    }
    let _restore = Restore(std::env::var("PPFR_NUM_THREADS").ok());
    std::env::set_var("PPFR_NUM_THREADS", n.to_string());
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_visits_every_chunk_once() {
        let mut data = vec![0.0; 12];
        par_chunks(&mut data, 3, |i, chunk| {
            for v in chunk.iter_mut() {
                *v += (i + 1) as f64;
            }
        });
        assert_eq!(data[0], 1.0);
        assert_eq!(data[3], 2.0);
        assert_eq!(data[11], 4.0);
    }

    #[test]
    #[should_panic(expected = "does not split")]
    fn par_chunks_rejects_ragged_buffers() {
        let mut data = vec![0.0; 10];
        par_chunks(&mut data, 3, |_, _| {});
    }

    #[test]
    fn par_chunks_dispatches_above_the_worker_floor() {
        // 64 chunks at 2 threads = 32 per worker >= MIN_ITEMS_PER_WORKER, so
        // this exercises the pool path; the result must match the serial twin.
        let n_chunks = 4 * MIN_ITEMS_PER_WORKER;
        let serial: Vec<f64> = (0..n_chunks * 2).map(|i| (i as f64).sqrt()).collect();
        for threads in [2, 8] {
            let mut data = vec![0.0; n_chunks * 2];
            with_forced_threads(threads, || {
                par_chunks(&mut data, 2, |i, chunk| {
                    chunk[0] = ((2 * i) as f64).sqrt();
                    chunk[1] = ((2 * i + 1) as f64).sqrt();
                });
            });
            assert_eq!(data, serial, "differs at {threads} threads");
        }
    }

    #[test]
    fn par_row_blocks_covers_ragged_tails_identically() {
        // 10 rows of 3 elements in blocks of 4 rows: blocks of 4, 4, 2 rows.
        let serial = {
            let mut data = vec![0.0; 30];
            with_forced_threads(1, || {
                par_row_blocks(&mut data, 3, 4, |first_row, block| {
                    for (r, row) in block.chunks_mut(3).enumerate() {
                        for (c, v) in row.iter_mut().enumerate() {
                            *v = ((first_row + r) * 10 + c) as f64;
                        }
                    }
                });
            });
            data
        };
        for threads in [2, 4] {
            let mut data = vec![0.0; 30];
            with_forced_threads(threads, || {
                par_row_blocks(&mut data, 3, 4, |first_row, block| {
                    for (r, row) in block.chunks_mut(3).enumerate() {
                        for (c, v) in row.iter_mut().enumerate() {
                            *v = ((first_row + r) * 10 + c) as f64;
                        }
                    }
                });
            });
            assert_eq!(data, serial, "differs at {threads} threads");
        }
        assert_eq!(serial[29], 92.0, "last row/col is row 9 col 2");
    }

    #[test]
    fn par_row_blocks_pool_path_covers_ragged_tail() {
        // Enough rows to clear the dispatch floor at 2 threads, with a
        // ragged final block (101 rows in blocks of 4 = 25 blocks + 1 row).
        let fill = |first_row: usize, block: &mut [f64]| {
            for (r, row) in block.chunks_mut(3).enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = ((first_row + r) * 10 + c) as f64;
                }
            }
        };
        let serial = {
            let mut data = vec![0.0; 303];
            with_forced_threads(1, || par_row_blocks(&mut data, 3, 4, fill));
            data
        };
        for threads in [2, 8] {
            let mut data = vec![0.0; 303];
            with_forced_threads(threads, || par_row_blocks(&mut data, 3, 4, fill));
            assert_eq!(data, serial, "differs at {threads} threads");
        }
    }

    #[test]
    fn par_fill_matches_serial_loop() {
        let serial: Vec<f64> = (0..57).map(|i| (i as f64).cos()).collect();
        for threads in [1, 2, 4] {
            let mut out = vec![0.0; 57];
            with_forced_threads(threads, || par_fill(&mut out, |i| (i as f64).cos()));
            assert_eq!(out, serial, "differs at {threads} threads");
        }
    }

    #[test]
    fn par_rows_preserves_order() {
        let squares = par_rows(100, |r| (r * r) as f64);
        assert_eq!(squares.len(), 100);
        for (r, &v) in squares.iter().enumerate() {
            assert_eq!(v, (r * r) as f64);
        }
    }

    #[test]
    fn par_rows_parallelises_coarse_tasks_from_two_rows() {
        // par_rows has no MIN_ITEMS_PER_WORKER floor: two rows at two
        // threads already takes the pool path, and must still land in order.
        for threads in [2, 8] {
            let rows = with_forced_threads(threads, || par_rows(2, |r| vec![r as f64; 3]));
            assert_eq!(rows, vec![vec![0.0; 3], vec![1.0; 3]]);
        }
    }

    #[test]
    fn par_rows_quarantined_isolates_panics_across_thread_counts() {
        for threads in [1, 2, 4] {
            let rows = with_forced_threads(threads, || {
                par_rows_quarantined(10, |r| {
                    if r == 3 {
                        panic!("row {r} exploded");
                    }
                    (r * r) as f64
                })
            });
            assert_eq!(rows.len(), 10);
            for (r, slot) in rows.iter().enumerate() {
                if r == 3 {
                    assert_eq!(
                        slot.as_ref().unwrap_err(),
                        "row 3 exploded",
                        "payload message survives at {threads} threads"
                    );
                } else {
                    assert_eq!(slot.as_ref().unwrap(), &((r * r) as f64));
                }
            }
        }
    }

    #[test]
    fn par_rows_quarantined_matches_par_rows_when_nothing_panics() {
        let plain = par_rows(64, |r| (r as f64).sin());
        for threads in [1, 4] {
            let quarantined =
                with_forced_threads(threads, || par_rows_quarantined(64, |r| (r as f64).sin()));
            let unwrapped: Vec<f64> = quarantined.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(unwrapped, plain, "differs at {threads} threads");
        }
    }

    #[test]
    fn par_join_runs_both_sides() {
        let (a, b) = par_join(|| vec![1.0; 4], || "right");
        assert_eq!(a.len(), 4);
        assert_eq!(b, "right");
    }

    #[test]
    fn forced_threads_cover_multi_threaded_partitioning() {
        let serial: Vec<f64> = (0..1000).map(|r| (r as f64).sin()).collect();
        for threads in [1, 2, 4, 7] {
            let parallel = with_forced_threads(threads, || {
                assert_eq!(current_num_threads(), threads);
                par_rows(1000, |r| (r as f64).sin())
            });
            assert_eq!(parallel, serial, "results differ at {threads} threads");
        }
    }
}
