//! The shared parallel-iteration idiom of the PPFR stack.
//!
//! Every hot kernel in the workspace — dense matmul and row-wise softmax
//! here, CSR SpMM and Jaccard similarity in `ppfr_graph`, the
//! Hessian-vector products and per-node influence dot products in
//! `ppfr_influence`, the GAT attention projections in `ppfr_gnn` — funnels
//! through the three helpers in this module instead of touching rayon
//! directly:
//!
//! * [`par_chunks`] — partition a flat buffer into equal-length mutable
//!   chunks (matrix rows) and fill each chunk independently;
//! * [`par_rows`] — compute one owned value per row index and collect them
//!   in order;
//! * [`par_join`] — run two independent closures concurrently.
//!
//! Centralising the idiom keeps the parallel surface auditable (one module
//! decides how threads are used), makes serial/parallel equivalence testable
//! per kernel, and gives later PRs a single seam for swapping the execution
//! backend (thread pools, SIMD blocking, accelerators).

pub use rayon::current_num_threads;
use rayon::prelude::*;

/// Splits `data` into consecutive `chunk_len`-sized mutable chunks (matrix
/// rows, typically) and applies `f(chunk_index, chunk)` to each in parallel.
///
/// At one worker thread the chunks are visited by a plain loop, bypassing the
/// combinator layer entirely: the vendored shim materialises its chunk list
/// per call, and the training hot loop calls this helper several times per
/// epoch, so the single-thread path must stay allocation-free.  Chunk results
/// are independent, so both paths are bit-identical.
///
/// # Panics
/// Panics when `chunk_len` is zero or does not divide `data.len()`.
pub fn par_chunks(data: &mut [f64], chunk_len: usize, f: impl Fn(usize, &mut [f64]) + Sync) {
    assert!(chunk_len > 0, "chunk length must be positive");
    assert_eq!(
        data.len() % chunk_len,
        0,
        "buffer of {} does not split into {}-element chunks",
        data.len(),
        chunk_len
    );
    if current_num_threads() <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    data.par_chunks_mut(chunk_len)
        .enumerate()
        .for_each(|(i, chunk)| f(i, chunk));
}

/// Splits `data` into blocks of `rows_per_block` consecutive `row_len`-sized
/// rows (the final block may be shorter) and applies
/// `f(first_row_index, block)` to each in parallel.
///
/// Used by the cache-blocked transpose-free GEMM kernels: one block of output
/// rows shares a single sweep over the packed right-hand operand.  The block
/// size is a fixed constant chosen by the caller — never derived from the
/// worker-thread count — so results are bit-identical across forced
/// `PPFR_NUM_THREADS`.
///
/// # Panics
/// Panics when `row_len` or `rows_per_block` is zero, or `row_len` does not
/// divide `data.len()`.
pub fn par_row_blocks(
    data: &mut [f64],
    row_len: usize,
    rows_per_block: usize,
    f: impl Fn(usize, &mut [f64]) + Sync,
) {
    assert!(row_len > 0, "row length must be positive");
    assert!(rows_per_block > 0, "block height must be positive");
    assert_eq!(
        data.len() % row_len,
        0,
        "buffer of {} does not split into {}-element rows",
        data.len(),
        row_len
    );
    let block_len = rows_per_block * row_len;
    if current_num_threads() <= 1 {
        for (b, block) in data.chunks_mut(block_len).enumerate() {
            f(b * rows_per_block, block);
        }
        return;
    }
    data.par_chunks_mut(block_len)
        .enumerate()
        .for_each(|(b, block)| f(b * rows_per_block, block));
}

/// Fills `out[i] = f(i)` for every index in parallel (per-node scalar
/// projections, e.g. the GAT attention scores).  Single-thread calls use a
/// plain allocation-free loop; results are independent per element, so both
/// paths are bit-identical.
pub fn par_fill(out: &mut [f64], f: impl Fn(usize) -> f64 + Sync) {
    if current_num_threads() <= 1 {
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(i);
        }
        return;
    }
    out.par_iter_mut().enumerate().for_each(|(i, o)| *o = f(i));
}

/// Computes `f(row)` for every `row in 0..n_rows` in parallel and returns the
/// results in row order.
pub fn par_rows<T: Send>(n_rows: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    (0..n_rows).into_par_iter().map(f).collect()
}

/// Runs both closures, potentially concurrently, and returns both results.
pub fn par_join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    rayon::join(a, b)
}

/// Runs `f` with the worker-thread count forced to `n`.
///
/// Exists for the serial-vs-parallel equivalence tests, which must exercise
/// the real multi-threaded partitioning even on single-core CI machines.
/// Calls are serialised process-wide; concurrent *other* parallel calls may
/// briefly observe the override, which is harmless because every kernel is
/// required to produce thread-count-independent results — the very property
/// the equivalence tests assert.
pub fn with_forced_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    use std::sync::Mutex;
    static GUARD: Mutex<()> = Mutex::new(());
    let _lock = GUARD
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());

    struct Restore(Option<String>);
    impl Drop for Restore {
        fn drop(&mut self) {
            match self.0.take() {
                Some(prev) => std::env::set_var("PPFR_NUM_THREADS", prev),
                None => std::env::remove_var("PPFR_NUM_THREADS"),
            }
        }
    }
    let _restore = Restore(std::env::var("PPFR_NUM_THREADS").ok());
    std::env::set_var("PPFR_NUM_THREADS", n.to_string());
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_visits_every_chunk_once() {
        let mut data = vec![0.0; 12];
        par_chunks(&mut data, 3, |i, chunk| {
            for v in chunk.iter_mut() {
                *v += (i + 1) as f64;
            }
        });
        assert_eq!(data[0], 1.0);
        assert_eq!(data[3], 2.0);
        assert_eq!(data[11], 4.0);
    }

    #[test]
    #[should_panic(expected = "does not split")]
    fn par_chunks_rejects_ragged_buffers() {
        let mut data = vec![0.0; 10];
        par_chunks(&mut data, 3, |_, _| {});
    }

    #[test]
    fn par_row_blocks_covers_ragged_tails_identically() {
        // 10 rows of 3 elements in blocks of 4 rows: blocks of 4, 4, 2 rows.
        let serial = {
            let mut data = vec![0.0; 30];
            with_forced_threads(1, || {
                par_row_blocks(&mut data, 3, 4, |first_row, block| {
                    for (r, row) in block.chunks_mut(3).enumerate() {
                        for (c, v) in row.iter_mut().enumerate() {
                            *v = ((first_row + r) * 10 + c) as f64;
                        }
                    }
                });
            });
            data
        };
        for threads in [2, 4] {
            let mut data = vec![0.0; 30];
            with_forced_threads(threads, || {
                par_row_blocks(&mut data, 3, 4, |first_row, block| {
                    for (r, row) in block.chunks_mut(3).enumerate() {
                        for (c, v) in row.iter_mut().enumerate() {
                            *v = ((first_row + r) * 10 + c) as f64;
                        }
                    }
                });
            });
            assert_eq!(data, serial, "differs at {threads} threads");
        }
        assert_eq!(serial[29], 92.0, "last row/col is row 9 col 2");
    }

    #[test]
    fn par_fill_matches_serial_loop() {
        let serial: Vec<f64> = (0..57).map(|i| (i as f64).cos()).collect();
        for threads in [1, 2, 4] {
            let mut out = vec![0.0; 57];
            with_forced_threads(threads, || par_fill(&mut out, |i| (i as f64).cos()));
            assert_eq!(out, serial, "differs at {threads} threads");
        }
    }

    #[test]
    fn par_rows_preserves_order() {
        let squares = par_rows(100, |r| (r * r) as f64);
        assert_eq!(squares.len(), 100);
        for (r, &v) in squares.iter().enumerate() {
            assert_eq!(v, (r * r) as f64);
        }
    }

    #[test]
    fn par_join_runs_both_sides() {
        let (a, b) = par_join(|| vec![1.0; 4], || "right");
        assert_eq!(a.len(), 4);
        assert_eq!(b, "right");
    }

    #[test]
    fn forced_threads_cover_multi_threaded_partitioning() {
        let serial: Vec<f64> = (0..1000).map(|r| (r as f64).sin()).collect();
        for threads in [1, 2, 4, 7] {
            let parallel = with_forced_threads(threads, || {
                assert_eq!(current_num_threads(), threads);
                par_rows(1000, |r| (r as f64).sin())
            });
            assert_eq!(parallel, serial, "results differ at {threads} threads");
        }
    }
}
