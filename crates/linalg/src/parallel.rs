//! The shared parallel-iteration idiom of the PPFR stack.
//!
//! Every hot kernel in the workspace — dense matmul and row-wise softmax
//! here, CSR SpMM and Jaccard similarity in `ppfr_graph`, the
//! Hessian-vector products and per-node influence dot products in
//! `ppfr_influence`, the GAT attention projections in `ppfr_gnn` — funnels
//! through the three helpers in this module instead of touching rayon
//! directly:
//!
//! * [`par_chunks`] — partition a flat buffer into equal-length mutable
//!   chunks (matrix rows) and fill each chunk independently;
//! * [`par_rows`] — compute one owned value per row index and collect them
//!   in order;
//! * [`par_join`] — run two independent closures concurrently.
//!
//! Centralising the idiom keeps the parallel surface auditable (one module
//! decides how threads are used), makes serial/parallel equivalence testable
//! per kernel, and gives later PRs a single seam for swapping the execution
//! backend (thread pools, SIMD blocking, accelerators).

pub use rayon::current_num_threads;
use rayon::prelude::*;

/// Splits `data` into consecutive `chunk_len`-sized mutable chunks (matrix
/// rows, typically) and applies `f(chunk_index, chunk)` to each in parallel.
///
/// # Panics
/// Panics when `chunk_len` is zero or does not divide `data.len()`.
pub fn par_chunks(data: &mut [f64], chunk_len: usize, f: impl Fn(usize, &mut [f64]) + Sync) {
    assert!(chunk_len > 0, "chunk length must be positive");
    assert_eq!(
        data.len() % chunk_len,
        0,
        "buffer of {} does not split into {}-element chunks",
        data.len(),
        chunk_len
    );
    data.par_chunks_mut(chunk_len)
        .enumerate()
        .for_each(|(i, chunk)| f(i, chunk));
}

/// Computes `f(row)` for every `row in 0..n_rows` in parallel and returns the
/// results in row order.
pub fn par_rows<T: Send>(n_rows: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    (0..n_rows).into_par_iter().map(f).collect()
}

/// Runs both closures, potentially concurrently, and returns both results.
pub fn par_join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    rayon::join(a, b)
}

/// Runs `f` with the worker-thread count forced to `n`.
///
/// Exists for the serial-vs-parallel equivalence tests, which must exercise
/// the real multi-threaded partitioning even on single-core CI machines.
/// Calls are serialised process-wide; concurrent *other* parallel calls may
/// briefly observe the override, which is harmless because every kernel is
/// required to produce thread-count-independent results — the very property
/// the equivalence tests assert.
pub fn with_forced_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    use std::sync::Mutex;
    static GUARD: Mutex<()> = Mutex::new(());
    let _lock = GUARD
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());

    struct Restore(Option<String>);
    impl Drop for Restore {
        fn drop(&mut self) {
            match self.0.take() {
                Some(prev) => std::env::set_var("PPFR_NUM_THREADS", prev),
                None => std::env::remove_var("PPFR_NUM_THREADS"),
            }
        }
    }
    let _restore = Restore(std::env::var("PPFR_NUM_THREADS").ok());
    std::env::set_var("PPFR_NUM_THREADS", n.to_string());
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_visits_every_chunk_once() {
        let mut data = vec![0.0; 12];
        par_chunks(&mut data, 3, |i, chunk| {
            for v in chunk.iter_mut() {
                *v += (i + 1) as f64;
            }
        });
        assert_eq!(data[0], 1.0);
        assert_eq!(data[3], 2.0);
        assert_eq!(data[11], 4.0);
    }

    #[test]
    #[should_panic(expected = "does not split")]
    fn par_chunks_rejects_ragged_buffers() {
        let mut data = vec![0.0; 10];
        par_chunks(&mut data, 3, |_, _| {});
    }

    #[test]
    fn par_rows_preserves_order() {
        let squares = par_rows(100, |r| (r * r) as f64);
        assert_eq!(squares.len(), 100);
        for (r, &v) in squares.iter().enumerate() {
            assert_eq!(v, (r * r) as f64);
        }
    }

    #[test]
    fn par_join_runs_both_sides() {
        let (a, b) = par_join(|| vec![1.0; 4], || "right");
        assert_eq!(a.len(), 4);
        assert_eq!(b, "right");
    }

    #[test]
    fn forced_threads_cover_multi_threaded_partitioning() {
        let serial: Vec<f64> = (0..1000).map(|r| (r as f64).sin()).collect();
        for threads in [1, 2, 4, 7] {
            let parallel = with_forced_threads(threads, || {
                assert_eq!(current_num_threads(), threads);
                par_rows(1000, |r| (r as f64).sin())
            });
            assert_eq!(parallel, serial, "results differ at {threads} threads");
        }
    }
}
