//! Activation functions, row-wise softmax and their gradients.

use crate::parallel::par_chunks;
use crate::Matrix;

/// Rectified linear unit applied element-wise.
pub fn relu(m: &Matrix) -> Matrix {
    m.map(|v| if v > 0.0 { v } else { 0.0 })
}

/// [`relu`] writing into a caller-owned buffer (resized as needed;
/// allocation-free when the shape already matches).
pub fn relu_into(m: &Matrix, out: &mut Matrix) {
    m.map_into(out, |v| if v > 0.0 { v } else { 0.0 });
}

/// Gradient mask of ReLU evaluated at the pre-activation `pre`.
pub fn relu_grad(pre: &Matrix, upstream: &Matrix) -> Matrix {
    pre.zip_with(upstream, |p, u| if p > 0.0 { u } else { 0.0 })
}

/// [`relu_grad`] writing into a caller-owned buffer.
pub fn relu_grad_into(pre: &Matrix, upstream: &Matrix, out: &mut Matrix) {
    pre.zip_into(upstream, out, |p, u| if p > 0.0 { u } else { 0.0 });
}

/// Leaky ReLU with negative slope `alpha` (GAT uses `alpha = 0.2`).
pub fn leaky_relu(v: f64, alpha: f64) -> f64 {
    if v > 0.0 {
        v
    } else {
        alpha * v
    }
}

/// Derivative of the leaky ReLU at pre-activation `v`.
pub fn leaky_relu_grad(v: f64, alpha: f64) -> f64 {
    if v > 0.0 {
        1.0
    } else {
        alpha
    }
}

/// One softmax row in place; shared by the parallel and serial entry points
/// so both produce bit-identical results.
///
/// The max pass runs 4-laned: each lane folds every fourth element and the
/// lane maxima combine at the end.  `f64::max` is exact (no rounding) and
/// order-independent on the values that reach the subtraction — NaNs are
/// ignored by every ordering, and a `±0.0` sign flip cannot change
/// `(v - max).exp()` — so the reassociated reduction stays bit-identical to
/// the sequential fold while exposing four independent compares per step.
/// The exp/sum pass stays sequential: float addition does *not* reassociate.
#[inline]
fn softmax_row_inplace(row: &mut [f64]) {
    let mut chunks = row.chunks_exact(4);
    let mut lanes = [f64::NEG_INFINITY; 4];
    for c in chunks.by_ref() {
        lanes[0] = lanes[0].max(c[0]);
        lanes[1] = lanes[1].max(c[1]);
        lanes[2] = lanes[2].max(c[2]);
        lanes[3] = lanes[3].max(c[3]);
    }
    let mut max = lanes[0].max(lanes[1]).max(lanes[2].max(lanes[3]));
    for &v in chunks.remainder() {
        max = max.max(v);
    }
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Numerically-stable row-wise softmax, parallelised over rows: each row of
/// the result sums to one.
pub fn row_softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    let cols = out.cols();
    if cols == 0 || out.rows() == 0 {
        return out;
    }
    par_chunks(out.as_mut_slice(), cols, |_, row| softmax_row_inplace(row));
    out
}

/// Single-threaded reference implementation of [`row_softmax`]; kept for
/// equivalence tests and benchmark baselines.
pub fn row_softmax_serial(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        softmax_row_inplace(out.row_mut(r));
    }
    out
}

/// [`row_softmax`] writing into a caller-owned buffer (resized as needed;
/// allocation-free when the shape already matches).
pub fn row_softmax_into(logits: &Matrix, out: &mut Matrix) {
    out.copy_from(logits);
    let cols = out.cols();
    if cols == 0 || out.rows() == 0 {
        return;
    }
    par_chunks(out.as_mut_slice(), cols, |_, row| softmax_row_inplace(row));
}

/// Single-threaded twin of [`row_softmax_into`].
pub fn row_softmax_into_serial(logits: &Matrix, out: &mut Matrix) {
    out.copy_from(logits);
    for r in 0..out.rows() {
        softmax_row_inplace(out.row_mut(r));
    }
}

/// Back-propagates a gradient w.r.t. softmax probabilities `d_probs` to a
/// gradient w.r.t. the logits, given the probabilities `probs` themselves.
///
/// For each row: `dZ_c = P_c * (dP_c - sum_k dP_k * P_k)`.
pub fn row_softmax_backward(probs: &Matrix, d_probs: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    row_softmax_backward_into(probs, d_probs, &mut out);
    out
}

/// [`row_softmax_backward`] writing into a caller-owned buffer.
pub fn row_softmax_backward_into(probs: &Matrix, d_probs: &Matrix, out: &mut Matrix) {
    assert_eq!(probs.shape(), d_probs.shape(), "shape mismatch");
    out.resize_to(probs.rows(), probs.cols());
    let cols = probs.cols();
    if cols == 0 || probs.rows() == 0 {
        return;
    }
    par_chunks(out.as_mut_slice(), cols, |r, out_row| {
        let p = probs.row(r);
        let dp = d_probs.row(r);
        let inner: f64 = p.iter().zip(dp.iter()).map(|(&pi, &di)| pi * di).sum();
        for (c, o) in out_row.iter_mut().enumerate() {
            *o = p[c] * (dp[c] - inner);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn relu_zeroes_negative_entries() {
        let m = Matrix::from_rows(&[vec![-1.0, 2.0], vec![0.0, -3.0]]);
        let r = relu(&m);
        assert_eq!(r.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn relu_grad_masks_by_preactivation() {
        let pre = Matrix::from_rows(&[vec![-1.0, 2.0]]);
        let up = Matrix::from_rows(&[vec![5.0, 5.0]]);
        let g = relu_grad(&pre, &up);
        assert_eq!(g.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn leaky_relu_and_grad() {
        assert_eq!(leaky_relu(2.0, 0.2), 2.0);
        assert_eq!(leaky_relu(-2.0, 0.2), -0.4);
        assert_eq!(leaky_relu_grad(2.0, 0.2), 1.0);
        assert_eq!(leaky_relu_grad(-2.0, 0.2), 0.2);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let p = row_softmax(&m);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!(approx_eq(s, 1.0, 1e-12));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[vec![101.0, 102.0, 103.0]]);
        let pa = row_softmax(&a);
        let pb = row_softmax(&b);
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-12));
        }
    }

    #[test]
    fn parallel_softmax_equals_serial_exactly() {
        let logits = Matrix::from_rows(
            &(0..40)
                .map(|r| (0..7).map(|c| ((r * 7 + c) as f64).sin() * 3.0).collect())
                .collect::<Vec<_>>(),
        );
        let serial = row_softmax_serial(&logits);
        for threads in [1, 2, 4] {
            let parallel = crate::parallel::with_forced_threads(threads, || row_softmax(&logits));
            assert_eq!(
                parallel.as_slice(),
                serial.as_slice(),
                "differs at {threads} threads"
            );
        }
    }

    #[test]
    fn into_variants_match_allocating_versions_bitwise() {
        let m = Matrix::from_rows(&[vec![-1.0, 2.0, 0.0], vec![3.0, -0.5, 1.5]]);
        let up = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let mut buf = Matrix::zeros(0, 0);

        relu_into(&m, &mut buf);
        assert_eq!(buf.as_slice(), relu(&m).as_slice());

        relu_grad_into(&m, &up, &mut buf);
        assert_eq!(buf.as_slice(), relu_grad(&m, &up).as_slice());

        let reference = row_softmax_serial(&m);
        for threads in [1, 2, 4] {
            crate::parallel::with_forced_threads(threads, || row_softmax_into(&m, &mut buf));
            assert_eq!(
                buf.as_slice(),
                reference.as_slice(),
                "row_softmax_into differs at {threads} threads"
            );
        }
        row_softmax_into_serial(&m, &mut buf);
        assert_eq!(buf.as_slice(), reference.as_slice());

        let probs = row_softmax(&m);
        let want = row_softmax_backward(&probs, &up);
        row_softmax_backward_into(&probs, &up, &mut buf);
        assert_eq!(buf.as_slice(), want.as_slice());
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let logits = Matrix::from_rows(&[vec![0.3, -0.7, 1.2]]);
        // Arbitrary smooth function of the probabilities: f(P) = sum c_i * P_i^2
        let coeff = [0.5, -1.5, 2.0];
        let f = |z: &Matrix| -> f64 {
            let p = row_softmax(z);
            p.row(0)
                .iter()
                .zip(coeff.iter())
                .map(|(&pi, &ci)| ci * pi * pi)
                .sum()
        };
        let probs = row_softmax(&logits);
        let d_probs = Matrix::from_rows(&[probs
            .row(0)
            .iter()
            .zip(coeff.iter())
            .map(|(&pi, &ci)| 2.0 * ci * pi)
            .collect::<Vec<_>>()]);
        let analytic = row_softmax_backward(&probs, &d_probs);
        let h = 1e-6;
        for c in 0..3 {
            let mut plus = logits.clone();
            plus[(0, c)] += h;
            let mut minus = logits.clone();
            minus[(0, c)] -= h;
            let numeric = (f(&plus) - f(&minus)) / (2.0 * h);
            assert!(
                (numeric - analytic[(0, c)]).abs() < 1e-6,
                "col {c}: numeric {numeric} vs analytic {}",
                analytic[(0, c)]
            );
        }
    }
}
