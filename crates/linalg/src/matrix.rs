//! A small row-major dense matrix of `f64`.

use crate::parallel::{par_chunks, par_row_blocks};
use rand::Rng;
use rand_distr::{Distribution, Normal};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Output rows per block in the cache-blocked `Aᵀ·B` kernel: one block shares
/// a single sweep over the packed rows of `B`.  A fixed constant (never
/// derived from the thread count) so results are identical across forced
/// `PPFR_NUM_THREADS`.
const AT_B_BLOCK_ROWS: usize = 8;

/// Row-major dense matrix of `f64`.
///
/// This is the only tensor type in the PPFR stack.  Rows are node/sample
/// indices, columns are feature/class indices.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 36 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested rows (convenient in tests).
    ///
    /// # Panics
    /// Panics when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Self {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Glorot/Xavier-style random initialisation used for GNN weights.
    pub fn glorot<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let scale = (6.0 / (rows + cols) as f64).sqrt();
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.gen_range(-scale..scale);
        }
        m
    }

    /// Gaussian random matrix (used by synthetic feature generators).
    pub fn gaussian<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        mean: f64,
        std: f64,
        rng: &mut R,
    ) -> Self {
        let dist = Normal::new(mean, std).expect("std must be finite and non-negative");
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = dist.sample(rng);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.col_into(c, &mut out);
        out
    }

    /// Writes column `c` into `out` without allocating.
    ///
    /// # Panics
    /// Panics when `out.len() != rows` or `c` is out of bounds.
    pub fn col_into(&self, c: usize, out: &mut [f64]) {
        assert!(
            c < self.cols,
            "column {c} out of bounds for {} cols",
            self.cols
        );
        assert_eq!(out.len(), self.rows, "column buffer length mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.data[r * self.cols + c];
        }
    }

    /// Reshapes the matrix to `rows × cols`, reallocating only when the new
    /// element count exceeds the current capacity.  Existing contents are
    /// unspecified afterwards — every `*_into` kernel fully overwrites its
    /// output, so workspace buffers can be resized freely.
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        if self.rows == rows && self.cols == cols {
            return;
        }
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Overwrites `self` with the shape and contents of `other`.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.resize_to(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// One output row of the dense product: `out_row += a_row * other`, with a
    /// sparse fast path that skips zero coefficients.  Shared by the parallel
    /// and serial matmul so both produce bit-identical results.
    ///
    /// The zero-skip is only valid when every row of `other` reachable from a
    /// zero coefficient is finite (`0 × NaN = NaN`, `0 × ∞ = NaN` under
    /// IEEE-754); the entry points dispatch to
    /// [`Matrix::matmul_row_into_exact`] when `other` contains non-finite
    /// values.
    /// The inner loop is a packed 4-wide microkernel over `k`: when a group
    /// of four consecutive coefficients is entirely nonzero, their four
    /// `b`-row contributions are fused into one sweep of `out_row`
    /// (`o + t₀ + t₁ + t₂ + t₃` — left-associative, hence bit-identical to
    /// the four sequential adds of the scalar loop, while giving the
    /// autovectoriser four independent multiplies per output element).
    /// Groups containing a zero fall back to the per-term skip loop, so the
    /// ReLU-sparse activations that motivate the skip keep their fast path.
    #[inline]
    fn matmul_row_into(a_row: &[f64], other: &Matrix, out_row: &mut [f64]) {
        let mut groups = a_row.chunks_exact(4);
        let mut k = 0;
        for group in groups.by_ref() {
            let (c0, c1, c2, c3) = (group[0], group[1], group[2], group[3]);
            if c0 != 0.0 && c1 != 0.0 && c2 != 0.0 && c3 != 0.0 {
                let b0 = other.row(k);
                let b1 = other.row(k + 1);
                let b2 = other.row(k + 2);
                let b3 = other.row(k + 3);
                for ((((o, &v0), &v1), &v2), &v3) in
                    out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    *o = *o + c0 * v0 + c1 * v1 + c2 * v2 + c3 * v3;
                }
            } else {
                for (dk, &a) in group.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = other.row(k + dk);
                    for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += a * b;
                    }
                }
            }
            k += 4;
        }
        for (dk, &a) in groups.remainder().iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let b_row = other.row(k + dk);
            for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a * b;
            }
        }
    }

    /// IEEE-exact variant of [`Matrix::matmul_row_into`]: no zero-skip, so
    /// products with non-finite operands follow the mathematical result
    /// (`0 × NaN` and `0 × ∞` contribute NaN instead of silently vanishing).
    /// Uses the always-fused 4-wide microkernel (left-associative adds keep
    /// it bit-identical to the sequential scalar loop).
    #[inline]
    fn matmul_row_into_exact(a_row: &[f64], other: &Matrix, out_row: &mut [f64]) {
        let mut groups = a_row.chunks_exact(4);
        let mut k = 0;
        for group in groups.by_ref() {
            let (c0, c1, c2, c3) = (group[0], group[1], group[2], group[3]);
            let b0 = other.row(k);
            let b1 = other.row(k + 1);
            let b2 = other.row(k + 2);
            let b3 = other.row(k + 3);
            for ((((o, &v0), &v1), &v2), &v3) in out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
            {
                *o = *o + c0 * v0 + c1 * v1 + c2 * v2 + c3 * v3;
            }
            k += 4;
        }
        for (dk, &a) in groups.remainder().iter().enumerate() {
            let b_row = other.row(k + dk);
            for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a * b;
            }
        }
    }

    #[inline]
    fn matmul_row_dispatch(a_row: &[f64], other: &Matrix, exact: bool, out_row: &mut [f64]) {
        if exact {
            Self::matmul_row_into_exact(a_row, other, out_row);
        } else {
            Self::matmul_row_into(a_row, other, out_row);
        }
    }

    fn matmul_check(&self, other: &Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
    }

    /// Dense matrix product `self * other`, parallelised over output rows via
    /// the shared [`crate::parallel`] idiom.
    ///
    /// Non-finite operands follow IEEE-754 semantics: the sparse zero-skip
    /// fast path is only taken when `other` is entirely finite, so `0 × NaN`
    /// and `0 × ∞` propagate NaN into the product.
    ///
    /// # Panics
    /// Panics when inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// Single-threaded reference implementation of [`Matrix::matmul`]; kept
    /// for equivalence tests and benchmark baselines.
    pub fn matmul_serial(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into_serial(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing into a caller-owned output buffer (resized
    /// as needed; allocation-free when the shape already matches).
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_check(other);
        out.resize_to(self.rows, other.cols);
        if out.data.is_empty() {
            return;
        }
        out.data.fill(0.0);
        let exact = other.has_non_finite();
        let oc = other.cols;
        par_chunks(&mut out.data, oc, |r, out_row| {
            Self::matmul_row_dispatch(self.row(r), other, exact, out_row);
        });
    }

    /// Single-threaded twin of [`Matrix::matmul_into`].
    pub fn matmul_into_serial(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_check(other);
        out.resize_to(self.rows, other.cols);
        if out.data.is_empty() {
            return;
        }
        out.data.fill(0.0);
        let exact = other.has_non_finite();
        for r in 0..self.rows {
            Self::matmul_row_dispatch(self.row(r), other, exact, out.row_mut(r));
        }
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// Bit-identical to `self.transpose().matmul(other)`: each output element
    /// accumulates its terms in the same order with the same zero-skip (and
    /// the same IEEE-exact fallback when `other` contains non-finite values).
    ///
    /// # Panics
    /// Panics when `self.rows() != other.rows()`.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_at_b_into(other, &mut out);
        out
    }

    fn at_b_check(&self, other: &Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_at_b dimension mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
    }

    /// One cache block of the `Aᵀ·B` product: `block` holds whole output rows
    /// starting at `first_row` (its length is always a multiple of `n`), and
    /// the whole block shares one sweep over the packed rows of `other`.  Per
    /// output element the accumulation order (ascending `i`, zero-skip on
    /// `self[(i, k)]`) is independent of the blocking, so any block size
    /// gives bit-identical results.
    ///
    /// The `i` loop runs as a packed 4-wide microkernel: four consecutive
    /// input rows are swept together, and when a block row's four
    /// coefficients are all usable (exact mode, or all nonzero) their
    /// contributions fuse into one left-associative update per output
    /// element — bit-identical to the four sequential scalar adds, but with
    /// four independent multiplies for the autovectoriser.  Groups with a
    /// zero coefficient fall back to the per-`i` skip loop.
    #[inline]
    fn at_b_block(&self, other: &Matrix, exact: bool, first_row: usize, block: &mut [f64]) {
        let n = other.cols;
        block.fill(0.0);
        let mut i = 0;
        while i + 4 <= self.rows {
            let a = [
                self.row(i),
                self.row(i + 1),
                self.row(i + 2),
                self.row(i + 3),
            ];
            let b0 = other.row(i);
            let b1 = other.row(i + 1);
            let b2 = other.row(i + 2);
            let b3 = other.row(i + 3);
            for (r, out_row) in block.chunks_mut(n).enumerate() {
                let c0 = a[0][first_row + r];
                let c1 = a[1][first_row + r];
                let c2 = a[2][first_row + r];
                let c3 = a[3][first_row + r];
                if exact || (c0 != 0.0 && c1 != 0.0 && c2 != 0.0 && c3 != 0.0) {
                    for ((((o, &v0), &v1), &v2), &v3) in
                        out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                    {
                        *o = *o + c0 * v0 + c1 * v1 + c2 * v2 + c3 * v3;
                    }
                } else {
                    for (coeff, b_row) in [(c0, b0), (c1, b1), (c2, b2), (c3, b3)] {
                        if coeff == 0.0 {
                            continue;
                        }
                        for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                            *o += coeff * b;
                        }
                    }
                }
            }
            i += 4;
        }
        while i < self.rows {
            let a_row = self.row(i);
            let b_row = other.row(i);
            for (r, out_row) in block.chunks_mut(n).enumerate() {
                let coeff = a_row[first_row + r];
                if !exact && coeff == 0.0 {
                    continue;
                }
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += coeff * b;
                }
            }
            i += 1;
        }
    }

    /// [`Matrix::matmul_at_b`] writing into a caller-owned buffer, cache
    /// blocked over [`AT_B_BLOCK_ROWS`] output rows and parallelised over
    /// blocks.
    pub fn matmul_at_b_into(&self, other: &Matrix, out: &mut Matrix) {
        self.at_b_check(other);
        out.resize_to(self.cols, other.cols);
        if out.data.is_empty() {
            return;
        }
        let exact = other.has_non_finite();
        let n = other.cols;
        par_row_blocks(&mut out.data, n, AT_B_BLOCK_ROWS, |first_row, block| {
            self.at_b_block(other, exact, first_row, block);
        });
    }

    /// Single-threaded twin of [`Matrix::matmul_at_b_into`].
    pub fn matmul_at_b_into_serial(&self, other: &Matrix, out: &mut Matrix) {
        self.at_b_check(other);
        out.resize_to(self.cols, other.cols);
        if out.data.is_empty() {
            return;
        }
        let exact = other.has_non_finite();
        let n = other.cols;
        let block_len = AT_B_BLOCK_ROWS * n;
        for (b, block) in out.data.chunks_mut(block_len).enumerate() {
            self.at_b_block(other, exact, b * AT_B_BLOCK_ROWS, block);
        }
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// Bit-identical to `self.matmul(&other.transpose())`: each output element
    /// is a dot product over ascending `k` with the same zero-skip on
    /// `self[(i, k)]` (and the same IEEE-exact fallback when `other` contains
    /// non-finite values), and both rows are read packed.
    ///
    /// # Panics
    /// Panics when `self.cols() != other.cols()`.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_a_bt_into(other, &mut out);
        out
    }

    fn a_bt_check(&self, other: &Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_a_bt dimension mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
    }

    /// One output row of the `A·Bᵀ` product: a packed dot product per column.
    ///
    /// Runs as a 4-wide microkernel over output columns: four dot products
    /// against four packed `B` rows share one sweep of `a_row`, accumulating
    /// into a `[f64; 4]` register block.  Each lane performs exactly the
    /// scalar loop's operations in the same order (lanes are independent
    /// output elements), so results are bit-identical while the shared sweep
    /// quarters the traffic over `a_row` and exposes four independent
    /// multiply-adds per step.
    #[inline]
    fn a_bt_row(a_row: &[f64], other: &Matrix, exact: bool, out_row: &mut [f64]) {
        let n = out_row.len();
        let mut j = 0;
        while j + 4 <= n {
            let b0 = other.row(j);
            let b1 = other.row(j + 1);
            let b2 = other.row(j + 2);
            let b3 = other.row(j + 3);
            let mut acc = [0.0f64; 4];
            for (k, &a) in a_row.iter().enumerate() {
                if !exact && a == 0.0 {
                    continue;
                }
                acc[0] += a * b0[k];
                acc[1] += a * b1[k];
                acc[2] += a * b2[k];
                acc[3] += a * b3[k];
            }
            out_row[j..j + 4].copy_from_slice(&acc);
            j += 4;
        }
        for (j, o) in out_row.iter_mut().enumerate().skip(j) {
            let b_row = other.row(j);
            let mut acc = 0.0;
            for (k, &a) in a_row.iter().enumerate() {
                if !exact && a == 0.0 {
                    continue;
                }
                acc += a * b_row[k];
            }
            *o = acc;
        }
    }

    /// [`Matrix::matmul_a_bt`] writing into a caller-owned buffer,
    /// parallelised over output rows.
    pub fn matmul_a_bt_into(&self, other: &Matrix, out: &mut Matrix) {
        self.a_bt_check(other);
        out.resize_to(self.rows, other.rows);
        if out.data.is_empty() {
            return;
        }
        let exact = other.has_non_finite();
        let n = other.rows;
        par_chunks(&mut out.data, n, |r, out_row| {
            Self::a_bt_row(self.row(r), other, exact, out_row);
        });
    }

    /// Single-threaded twin of [`Matrix::matmul_a_bt_into`].
    pub fn matmul_a_bt_into_serial(&self, other: &Matrix, out: &mut Matrix) {
        self.a_bt_check(other);
        out.resize_to(self.rows, other.rows);
        if out.data.is_empty() {
            return;
        }
        let exact = other.has_non_finite();
        for r in 0..self.rows {
            Self::a_bt_row(self.row(r), other, exact, out.row_mut(r));
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise combination with a closure.
    pub fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.zip_into(other, &mut out, f);
        out
    }

    /// [`Matrix::zip_with`] writing into a caller-owned buffer (resized as
    /// needed; allocation-free when the shape already matches).
    pub fn zip_into(&self, other: &Matrix, out: &mut Matrix, f: impl Fn(f64, f64) -> f64) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        out.resize_to(self.rows, self.cols);
        for ((o, &a), &b) in out
            .data
            .iter_mut()
            .zip(self.data.iter())
            .zip(other.data.iter())
        {
            *o = f(a, b);
        }
    }

    /// [`Matrix::map`] writing into a caller-owned buffer.
    pub fn map_into(&self, out: &mut Matrix, f: impl Fn(f64) -> f64) {
        out.resize_to(self.rows, self.cols);
        for (o, &v) in out.data.iter_mut().zip(self.data.iter()) {
            *o = f(v);
        }
    }

    /// `self += other` without allocating.
    pub fn add_inplace(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// `self += other * s` without allocating.
    pub fn add_scaled_inplace(&mut self, other: &Matrix, s: f64) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * s;
        }
    }

    /// Adds `row` (length `cols`) to every row of the matrix (bias add).
    pub fn add_row_broadcast(&self, row: &[f64]) -> Matrix {
        let mut out = self.clone();
        out.add_row_broadcast_inplace(row);
        out
    }

    /// In-place variant of [`Matrix::add_row_broadcast`] for hot paths that
    /// already own a temporary (e.g. a bias add right after a matmul).
    pub fn add_row_broadcast_inplace(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "broadcast row length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(row.iter()) {
                *v += b;
            }
        }
    }

    /// Sum of every element.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Per-column sums (length `cols`).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Per-row sums (length `rows`).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|r| self.row(r).iter().sum()).collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Index of the maximum entry in each row (`argmax`), used for predictions.
    pub fn row_argmax(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in argmax"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Dot product between two rows of (possibly different) matrices.
    pub fn row_dot(&self, r: usize, other: &Matrix, r_other: usize) -> f64 {
        self.row(r)
            .iter()
            .zip(other.row(r_other).iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Returns `true` when any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix — the initial state of reusable workspace
    /// buffers, which the `*_into` kernels resize on first use.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::gaussian(4, 4, 0.0, 1.0, &mut rng);
        let i = Matrix::eye(4);
        let left = i.matmul(&a);
        let right = a.matmul(&i);
        for (x, y) in left.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
        for (x, y) in right.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::gaussian(3, 5, 0.0, 1.0, &mut rng);
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn row_argmax_picks_largest_column() {
        let a = Matrix::from_rows(&[vec![0.1, 0.9, 0.0], vec![2.0, -1.0, 1.0]]);
        assert_eq!(a.row_argmax(), vec![1, 0]);
    }

    #[test]
    fn col_and_row_sums() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
        assert_eq!(a.row_sums(), vec![3.0, 7.0]);
        assert_eq!(a.sum(), 10.0);
    }

    #[test]
    fn glorot_values_bounded_by_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Matrix::glorot(10, 20, &mut rng);
        let scale = (6.0_f64 / 30.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= scale));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_scaled_inplace_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_scaled_inplace(&b, 0.5);
        assert!(a.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn parallel_matmul_equals_serial_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        for (m, k, n) in [(1, 1, 1), (5, 3, 7), (17, 9, 4), (64, 32, 16)] {
            let a = Matrix::gaussian(m, k, 0.0, 1.0, &mut rng);
            let b = Matrix::gaussian(k, n, 0.0, 1.0, &mut rng);
            let serial = a.matmul_serial(&b);
            for threads in [1, 3, 4] {
                let parallel = crate::parallel::with_forced_threads(threads, || a.matmul(&b));
                assert_eq!(
                    parallel.as_slice(),
                    serial.as_slice(),
                    "{m}x{k}*{k}x{n} differs at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn has_non_finite_detects_nan() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_non_finite());
        a[(0, 1)] = f64::NAN;
        assert!(a.has_non_finite());
    }

    #[test]
    fn matmul_propagates_non_finite_through_zero_coefficients() {
        // Row [0, 1] times a B whose first row is non-finite: the mathematical
        // result is 0·NaN + 1·b = NaN, which the zero-skip fast path used to
        // silently turn into b.
        let a = Matrix::from_rows(&[vec![0.0, 1.0]]);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let b = Matrix::from_rows(&[vec![bad, bad], vec![2.0, 3.0]]);
            for product in [a.matmul(&b), a.matmul_serial(&b)] {
                assert!(
                    product.as_slice().iter().all(|v| v.is_nan()),
                    "0 × {bad} must contribute NaN, got {:?}",
                    product.as_slice()
                );
            }
            let at_b = Matrix::from_rows(&[vec![0.0], vec![1.0]]).matmul_at_b(&b);
            assert!(at_b.as_slice().iter().all(|v| v.is_nan()));
            let a_bt = a.matmul_a_bt(&b.transpose());
            assert!(a_bt.as_slice().iter().all(|v| v.is_nan()));
        }
    }

    #[test]
    fn matmul_finite_inputs_still_use_the_sparse_skip_consistently() {
        // Dense product with many zero coefficients: parallel, serial and
        // into-variants must agree bitwise.
        let mut rng = StdRng::seed_from_u64(19);
        let mut a = Matrix::gaussian(9, 7, 0.0, 1.0, &mut rng);
        a.map_inplace(|v| if v < 0.0 { 0.0 } else { v });
        let b = Matrix::gaussian(7, 5, 0.0, 1.0, &mut rng);
        let reference = a.matmul_serial(&b);
        let mut buf = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut buf);
        assert_eq!(buf.as_slice(), reference.as_slice());
        a.matmul_into_serial(&b, &mut buf);
        assert_eq!(buf.as_slice(), reference.as_slice());
    }

    #[test]
    fn matmul_at_b_matches_explicit_transpose_bitwise() {
        let mut rng = StdRng::seed_from_u64(23);
        for (m, k, n) in [(1, 1, 1), (5, 3, 7), (17, 9, 4), (33, 20, 6)] {
            let mut a = Matrix::gaussian(m, k, 0.0, 1.0, &mut rng);
            // ReLU-like sparsity so the zero-skip actually fires.
            a.map_inplace(|v| if v < 0.3 { 0.0 } else { v });
            let b = Matrix::gaussian(m, n, 0.0, 1.0, &mut rng);
            let reference = a.transpose().matmul_serial(&b);
            for threads in [1, 3, 4] {
                let fast = crate::parallel::with_forced_threads(threads, || a.matmul_at_b(&b));
                assert_eq!(
                    fast.as_slice(),
                    reference.as_slice(),
                    "({m}x{k})ᵀ*{m}x{n} differs at {threads} threads"
                );
            }
            let mut serial = Matrix::zeros(0, 0);
            a.matmul_at_b_into_serial(&b, &mut serial);
            assert_eq!(serial.as_slice(), reference.as_slice());
        }
    }

    #[test]
    fn matmul_a_bt_matches_explicit_transpose_bitwise() {
        let mut rng = StdRng::seed_from_u64(29);
        for (m, k, n) in [(1, 1, 1), (5, 3, 7), (17, 9, 4), (12, 20, 33)] {
            let mut a = Matrix::gaussian(m, k, 0.0, 1.0, &mut rng);
            a.map_inplace(|v| if v < 0.3 { 0.0 } else { v });
            let b = Matrix::gaussian(n, k, 0.0, 1.0, &mut rng);
            let reference = a.matmul_serial(&b.transpose());
            for threads in [1, 3, 4] {
                let fast = crate::parallel::with_forced_threads(threads, || a.matmul_a_bt(&b));
                assert_eq!(
                    fast.as_slice(),
                    reference.as_slice(),
                    "{m}x{k}*({n}x{k})ᵀ differs at {threads} threads"
                );
            }
            let mut serial = Matrix::zeros(0, 0);
            a.matmul_a_bt_into_serial(&b, &mut serial);
            assert_eq!(serial.as_slice(), reference.as_slice());
        }
    }

    #[test]
    fn into_kernels_handle_degenerate_shapes() {
        let empty_rows = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let mut out = Matrix::zeros(5, 5);
        empty_rows.matmul_into(&b, &mut out);
        assert_eq!(out.shape(), (0, 2));
        // (0×3)ᵀ · (0×2): a sum over zero rows must yield an all-zero 3×2.
        empty_rows.matmul_at_b_into(&Matrix::zeros(0, 2), &mut out);
        assert_eq!(out.shape(), (3, 2));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
        let row_vec = Matrix::zeros(1, 3);
        row_vec.matmul_a_bt_into(&Matrix::zeros(4, 3), &mut out);
        assert_eq!(out.shape(), (1, 4));
    }

    #[test]
    fn col_into_matches_col_without_allocating_per_call() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let mut buf = vec![0.0; 3];
        for c in 0..2 {
            a.col_into(c, &mut buf);
            assert_eq!(buf, a.col(c));
        }
    }

    #[test]
    fn add_row_broadcast_inplace_matches_allocating_version() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let bias = [0.5, -1.5];
        let want = a.add_row_broadcast(&bias);
        let mut got = a.clone();
        got.add_row_broadcast_inplace(&bias);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn zip_into_and_map_into_match_allocating_versions() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.5, 2.0], vec![-1.0, 0.0]]);
        let mut out = Matrix::zeros(0, 0);
        a.zip_into(&b, &mut out, |x, y| x * y + 1.0);
        assert_eq!(
            out.as_slice(),
            a.zip_with(&b, |x, y| x * y + 1.0).as_slice()
        );
        a.map_into(&mut out, |x| x.abs());
        assert_eq!(out.as_slice(), a.map(|x| x.abs()).as_slice());
        let mut sum = a.clone();
        sum.add_inplace(&b);
        assert_eq!(sum.as_slice(), a.add(&b).as_slice());
    }

    #[test]
    fn resize_to_reuses_capacity_and_copy_from_round_trips() {
        let mut m = Matrix::zeros(4, 4);
        m.resize_to(2, 3);
        assert_eq!(m.shape(), (2, 3));
        let src = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.copy_from(&src);
        assert_eq!(m, src);
    }
}
