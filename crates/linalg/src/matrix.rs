//! A small row-major dense matrix of `f64`.

use crate::parallel::par_chunks;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Row-major dense matrix of `f64`.
///
/// This is the only tensor type in the PPFR stack.  Rows are node/sample
/// indices, columns are feature/class indices.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 36 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested rows (convenient in tests).
    ///
    /// # Panics
    /// Panics when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Self {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Glorot/Xavier-style random initialisation used for GNN weights.
    pub fn glorot<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let scale = (6.0 / (rows + cols) as f64).sqrt();
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.gen_range(-scale..scale);
        }
        m
    }

    /// Gaussian random matrix (used by synthetic feature generators).
    pub fn gaussian<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        mean: f64,
        std: f64,
        rng: &mut R,
    ) -> Self {
        let dist = Normal::new(mean, std).expect("std must be finite and non-negative");
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = dist.sample(rng);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// One output row of the dense product: `out_row += a_row * other`.
    /// Shared by the parallel and serial matmul so both produce bit-identical
    /// results.
    #[inline]
    fn matmul_row_into(a_row: &[f64], other: &Matrix, out_row: &mut [f64]) {
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let b_row = other.row(k);
            for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a * b;
            }
        }
    }

    fn matmul_check(&self, other: &Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
    }

    /// Dense matrix product `self * other`, parallelised over output rows via
    /// the shared [`crate::parallel`] idiom.
    ///
    /// # Panics
    /// Panics when inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_check(other);
        let mut out = Matrix::zeros(self.rows, other.cols);
        if out.data.is_empty() {
            return out;
        }
        let oc = other.cols;
        par_chunks(&mut out.data, oc, |r, out_row| {
            Self::matmul_row_into(self.row(r), other, out_row);
        });
        out
    }

    /// Single-threaded reference implementation of [`Matrix::matmul`]; kept
    /// for equivalence tests and benchmark baselines.
    pub fn matmul_serial(&self, other: &Matrix) -> Matrix {
        self.matmul_check(other);
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            Self::matmul_row_into(self.row(r), other, out.row_mut(r));
        }
        out
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise combination with a closure.
    pub fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// `self += other * s` without allocating.
    pub fn add_scaled_inplace(&mut self, other: &Matrix, s: f64) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * s;
        }
    }

    /// Adds `row` (length `cols`) to every row of the matrix (bias add).
    pub fn add_row_broadcast(&self, row: &[f64]) -> Matrix {
        assert_eq!(row.len(), self.cols, "broadcast row length mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, &b) in out.row_mut(r).iter_mut().zip(row.iter()) {
                *v += b;
            }
        }
        out
    }

    /// Sum of every element.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Per-column sums (length `cols`).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Per-row sums (length `rows`).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|r| self.row(r).iter().sum()).collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Index of the maximum entry in each row (`argmax`), used for predictions.
    pub fn row_argmax(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in argmax"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Dot product between two rows of (possibly different) matrices.
    pub fn row_dot(&self, r: usize, other: &Matrix, r_other: usize) -> f64 {
        self.row(r)
            .iter()
            .zip(other.row(r_other).iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Returns `true` when any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::gaussian(4, 4, 0.0, 1.0, &mut rng);
        let i = Matrix::eye(4);
        let left = i.matmul(&a);
        let right = a.matmul(&i);
        for (x, y) in left.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
        for (x, y) in right.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::gaussian(3, 5, 0.0, 1.0, &mut rng);
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn row_argmax_picks_largest_column() {
        let a = Matrix::from_rows(&[vec![0.1, 0.9, 0.0], vec![2.0, -1.0, 1.0]]);
        assert_eq!(a.row_argmax(), vec![1, 0]);
    }

    #[test]
    fn col_and_row_sums() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
        assert_eq!(a.row_sums(), vec![3.0, 7.0]);
        assert_eq!(a.sum(), 10.0);
    }

    #[test]
    fn glorot_values_bounded_by_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Matrix::glorot(10, 20, &mut rng);
        let scale = (6.0_f64 / 30.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= scale));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_scaled_inplace_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_scaled_inplace(&b, 0.5);
        assert!(a.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn parallel_matmul_equals_serial_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        for (m, k, n) in [(1, 1, 1), (5, 3, 7), (17, 9, 4), (64, 32, 16)] {
            let a = Matrix::gaussian(m, k, 0.0, 1.0, &mut rng);
            let b = Matrix::gaussian(k, n, 0.0, 1.0, &mut rng);
            let serial = a.matmul_serial(&b);
            for threads in [1, 3, 4] {
                let parallel = crate::parallel::with_forced_threads(threads, || a.matmul(&b));
                assert_eq!(
                    parallel.as_slice(),
                    serial.as_slice(),
                    "{m}x{k}*{k}x{n} differs at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn has_non_finite_detects_nan() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_non_finite());
        a[(0, 1)] = f64::NAN;
        assert!(a.has_non_finite());
    }
}
