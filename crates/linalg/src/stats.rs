//! Small statistics helpers (means, variances, Pearson correlation).

/// Arithmetic mean; returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; returns 0 for slices shorter than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient between two equally-long samples.
///
/// Returns 0 when either sample is (numerically) constant, which matches how
/// the paper treats degenerate influence vectors in Table II.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal-length samples");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= f64::EPSILON || vy <= f64::EPSILON {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_linear_relation_is_one() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let ys_neg: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!((pearson(&xs, &ys_neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_sample_is_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [0.0, 2.0, 5.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[42.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }
}
