//! Dense linear-algebra kernels used throughout the PPFR stack.
//!
//! The crate deliberately keeps a small surface: a row-major [`Matrix`] of
//! `f64` plus the handful of kernels a hand-written GNN needs (matmul,
//! transpose, row-wise softmax, activations, reductions and random
//! initialisation).  Everything is CPU-only; the kernels that dominate
//! training time run 4-wide microkernels in their inner loops and dispatch
//! to the persistent work-stealing pool via [`parallel`] (sparse-adjacency ×
//! dense products live in `ppfr-graph`).

mod matrix;
mod ops;
pub mod parallel;
mod stats;

pub use matrix::Matrix;
pub use ops::{
    leaky_relu, leaky_relu_grad, relu, relu_grad, relu_grad_into, relu_into, row_softmax,
    row_softmax_backward, row_softmax_backward_into, row_softmax_into, row_softmax_into_serial,
    row_softmax_serial,
};
pub use parallel::{
    par_chunks, par_fill, par_join, par_row_blocks, par_rows, par_rows_quarantined,
};
pub use stats::{mean, pearson, std_dev, variance};

/// Numerical tolerance used by tests and iterative solvers in downstream
/// crates.  Kept here so every crate agrees on what "equal enough" means.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` are equal within `tol` (absolute).
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_respects_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }
}
