//! Synthetic graph datasets for the PPFR reproduction.
//!
//! The paper evaluates on Cora, Citeseer, Pubmed (high homophily) and
//! Enzymes, Credit (weak homophily).  Those datasets cannot be downloaded in
//! this offline environment, so this crate generates *seeded synthetic
//! analogues* with a degree-corrected stochastic block model (SBM) plus
//! class-conditional sparse binary features.  Each preset matches the paper's
//! reported class count, homophily level, average degree, feature
//! dimensionality (scaled) and label rate; node counts are scaled down so
//! influence-function experiments run in seconds.  See DESIGN.md §2 for the
//! substitution argument.

#![forbid(unsafe_code)]

mod sbm;
mod shadow;
mod specs;
mod splits;

pub use sbm::{class_features, generate, sparse_sbm, Dataset};
pub use shadow::{shadow_of, sparse_sbm_dataset};
pub use specs::{citeseer, cora, credit, enzymes, pubmed, two_block_synthetic, DatasetSpec};
pub use splits::Splits;

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_graph::{average_degree, homophily};

    #[test]
    fn all_presets_generate_and_match_their_target_homophily() {
        for (spec, lo, hi) in [
            (cora(), 0.74, 0.88),
            (citeseer(), 0.66, 0.82),
            (pubmed(), 0.72, 0.88),
            (enzymes(), 0.56, 0.74),
            (credit(), 0.52, 0.72),
        ] {
            let ds = generate(&spec, 7);
            let h = homophily(&ds.graph, &ds.labels);
            assert!(
                h > lo && h < hi,
                "{}: homophily {h} outside [{lo},{hi}] (target {})",
                spec.name,
                spec.target_homophily
            );
            assert!(average_degree(&ds.graph) > 1.5, "{} too sparse", spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = generate(&cora(), 3);
        let b = generate(&cora(), 3);
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.features.as_slice(), b.features.as_slice());
        let c = generate(&cora(), 4);
        assert_ne!(a.graph.n_edges(), c.graph.n_edges());
    }
}
