//! Degree-corrected stochastic block model generator with class-conditional
//! sparse binary features.

use crate::{DatasetSpec, Splits};
use ppfr_graph::Graph;
use ppfr_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated dataset: graph structure, node features, labels and the
/// Planetoid-style train/val/test split.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (copied from the spec).
    pub name: &'static str,
    /// Undirected graph structure.
    pub graph: Graph,
    /// Node features, one row per node.
    pub features: Matrix,
    /// Ground-truth class label per node.
    pub labels: Vec<usize>,
    /// Train / validation / test node-index split.
    pub splits: Splits,
    /// Number of classes.
    pub n_classes: usize,
}

impl Dataset {
    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.graph.n_nodes()
    }

    /// One-hot label matrix (used by cross-entropy helpers in tests).
    pub fn one_hot_labels(&self) -> Matrix {
        let mut y = Matrix::zeros(self.labels.len(), self.n_classes);
        for (i, &l) in self.labels.iter().enumerate() {
            y[(i, l)] = 1.0;
        }
        y
    }
}

/// Generates a dataset from a spec with a fixed RNG seed.
///
/// The generator follows three steps:
/// 1. assign balanced labels (`node i → class i mod c`, then shuffled);
/// 2. sample edges from a degree-corrected SBM with intra/inter probabilities
///    from [`DatasetSpec::block_probabilities`];
/// 3. sample sparse binary features where each class "owns" a contiguous
///    block of feature bits that fire with probability `feature_signal`
///    (background bits fire with `feature_noise`).
pub fn generate(spec: &DatasetSpec, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let n = spec.n_nodes;
    let c = spec.n_classes;

    // --- labels: balanced then shuffled -------------------------------------
    let mut labels: Vec<usize> = (0..n).map(|i| i % c).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        labels.swap(i, j);
    }

    // --- degree propensities (degree correction) ----------------------------
    // theta_i in [1-skew, 1+skew*tail], normalised to mean 1.
    let mut theta: Vec<f64> = (0..n)
        .map(|_| {
            if spec.degree_skew <= 0.0 {
                1.0
            } else {
                // Pareto-ish heavy tail truncated at 6x the mean.
                let u: f64 = rng.gen_range(0.0_f64..1.0);
                (1.0 - spec.degree_skew) + spec.degree_skew * (1.0 / (1.0 - 0.9 * u)).min(6.0)
            }
        })
        .collect();
    let mean_theta = theta.iter().sum::<f64>() / n as f64;
    for t in &mut theta {
        *t /= mean_theta;
    }

    // --- edges ---------------------------------------------------------------
    let (p, q) = spec.block_probabilities();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let base = if labels[u] == labels[v] { p } else { q };
            let prob = (base * theta[u] * theta[v]).min(1.0);
            if prob > 0.0 && rng.gen_bool(prob) {
                edges.push((u, v));
            }
        }
    }
    let graph = Graph::from_edges(n, &edges);

    // --- features ------------------------------------------------------------
    let features = class_features(
        &labels,
        c,
        spec.feat_dim,
        spec.feature_signal,
        spec.feature_noise,
        &mut rng,
    );

    // --- splits --------------------------------------------------------------
    let splits = Splits::planetoid(
        &labels,
        c,
        spec.train_per_class,
        spec.n_val,
        spec.n_test,
        &mut rng,
    );

    Dataset {
        name: spec.name,
        graph,
        features,
        labels,
        splits,
        n_classes: c,
    }
}

/// Class-conditional sparse binary features: each class "owns" a contiguous
/// block of feature bits that fire with probability `signal`, background bits
/// fire with `noise`.  Shared by [`generate`] and the shadow-dataset
/// generators in [`crate::shadow`].
pub fn class_features<R: Rng + ?Sized>(
    labels: &[usize],
    n_classes: usize,
    feat_dim: usize,
    signal: f64,
    noise: f64,
    rng: &mut R,
) -> Matrix {
    let n = labels.len();
    let block = (feat_dim / n_classes).max(1);
    let mut features = Matrix::zeros(n, feat_dim);
    for i in 0..n {
        let class = labels[i];
        let start = class * block;
        let end = ((class + 1) * block).min(feat_dim);
        for f in 0..feat_dim {
            let p_fire = if f >= start && f < end { signal } else { noise };
            if rng.gen_bool(p_fire) {
                features[(i, f)] = 1.0;
            }
        }
    }
    features
}

/// Sparse SBM graph sampled in `O(n · d̄)` expected time, for large-graph
/// scenarios where [`generate`]'s exact `O(n²)` pair sweep is unaffordable.
///
/// Blocks are assigned round-robin (`node i → block i mod n_blocks`); each
/// node draws ≈`intra_degree/2` same-block and ≈`inter_degree/2` cross-block
/// partners uniformly (each undirected edge is drawn from both endpoints, so
/// expected degrees come out at `intra_degree + inter_degree`).  Duplicate
/// draws collapse in [`Graph::from_edges`], which makes the realised density
/// fractionally lower than nominal — irrelevant for scaling scenarios.
/// Fully deterministic in `seed`.
///
/// Returns the graph and the block label of every node.
pub fn sparse_sbm(
    n_nodes: usize,
    n_blocks: usize,
    intra_degree: f64,
    inter_degree: f64,
    seed: u64,
) -> (Graph, Vec<usize>) {
    assert!(n_blocks >= 1 && n_blocks <= n_nodes, "invalid block count");
    assert!(
        intra_degree >= 0.0 && inter_degree >= 0.0,
        "degrees must be non-negative"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5b3c_1a2d_9e8f_7064);
    let labels: Vec<usize> = (0..n_nodes).map(|i| i % n_blocks).collect();
    // Block b's members are {b, b + k, b + 2k, ...}: membership is indexable
    // without materialising per-block node lists.
    let block_size = |b: usize| n_nodes / n_blocks + usize::from(b < n_nodes % n_blocks);
    // Stochastic rounding of a fractional stub count.
    let draw_count = |expected: f64, rng: &mut StdRng| -> usize {
        let floor = expected.floor();
        floor as usize + usize::from(rng.gen_bool(expected - floor))
    };
    let mut edges =
        Vec::with_capacity((n_nodes as f64 * (intra_degree + inter_degree) / 2.0).ceil() as usize);
    for (u, &b) in labels.iter().enumerate() {
        for _ in 0..draw_count(intra_degree / 2.0, &mut rng) {
            let v = b + n_blocks * rng.gen_range(0..block_size(b));
            if v != u {
                edges.push((u, v));
            }
        }
        if n_blocks > 1 {
            for _ in 0..draw_count(inter_degree / 2.0, &mut rng) {
                // A uniformly random block other than u's own.
                let other = (b + 1 + rng.gen_range(0..n_blocks - 1)) % n_blocks;
                let v = other + n_blocks * rng.gen_range(0..block_size(other));
                edges.push((u, v));
            }
        }
    }
    (Graph::from_edges(n_nodes, &edges), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{cora, two_block_synthetic};
    use ppfr_graph::{edge_density, intra_inter_probabilities};

    #[test]
    fn sparse_sbm_is_deterministic_homophilous_and_near_nominal_degree() {
        let (g, labels) = sparse_sbm(4000, 4, 8.0, 2.0, 42);
        let (g2, labels2) = sparse_sbm(4000, 4, 8.0, 2.0, 42);
        assert_eq!(labels, labels2);
        assert_eq!(g.n_edges(), g2.n_edges(), "same seed ⇒ same graph");
        let avg_degree = 2.0 * g.n_edges() as f64 / g.n_nodes() as f64;
        assert!(
            (7.0..=10.0).contains(&avg_degree),
            "average degree {avg_degree} far from nominal 10"
        );
        let (p, q) = intra_inter_probabilities(&g, &labels);
        assert!(p > 3.0 * q, "intra {p} must dominate inter {q}");
        // Degrees concentrate: no isolated half of the graph.
        let isolated = (0..g.n_nodes()).filter(|&v| g.degree(v) == 0).count();
        assert!(isolated < g.n_nodes() / 100, "{isolated} isolated nodes");
    }

    #[test]
    fn sparse_sbm_handles_single_block_and_uneven_blocks() {
        let (g, labels) = sparse_sbm(101, 1, 4.0, 3.0, 7);
        assert_eq!(g.n_nodes(), 101);
        assert!(labels.iter().all(|&l| l == 0));
        assert!(g.n_edges() > 0);
        // 3 blocks over 100 nodes: block 0 has 34 members, blocks 1-2 have 33.
        let (g3, labels3) = sparse_sbm(100, 3, 6.0, 1.0, 7);
        for (v, &l) in labels3.iter().enumerate() {
            assert_eq!(l, v % 3);
        }
        for (u, v) in g3.edges() {
            assert!(u < 100 && v < 100);
        }
    }

    #[test]
    fn labels_are_roughly_balanced() {
        let ds = generate(&cora(), 1);
        let mut counts = vec![0usize; ds.n_classes];
        for &l in &ds.labels {
            counts[l] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(
            max - min <= 1,
            "balanced assignment expected, got {counts:?}"
        );
    }

    #[test]
    fn generated_graph_is_sparse_and_homophilous_in_p_q() {
        let ds = generate(&cora(), 2);
        assert!(
            edge_density(&ds.graph) < 0.02,
            "citation graphs must be sparse"
        );
        let (p, q) = intra_inter_probabilities(&ds.graph, &ds.labels);
        assert!(p > q, "empirical p={p} must exceed q={q}");
    }

    #[test]
    fn features_are_binary_and_class_informative() {
        let ds = generate(&two_block_synthetic(), 5);
        assert!(ds.features.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        // Class-0 nodes should fire more bits in the class-0 block than class-1 nodes do.
        let spec = two_block_synthetic();
        let block = spec.feat_dim / spec.n_classes;
        let mut in_block = [0.0_f64; 2];
        let mut counts = [0.0_f64; 2];
        for i in 0..ds.n_nodes() {
            let c = ds.labels[i];
            counts[c] += 1.0;
            in_block[c] += ds.features.row(i)[..block].iter().sum::<f64>();
        }
        let rate0 = in_block[0] / counts[0];
        let rate1 = in_block[1] / counts[1];
        assert!(
            rate0 > 2.0 * rate1,
            "class-0 block should fire mostly for class-0 nodes: {rate0} vs {rate1}"
        );
    }

    #[test]
    fn one_hot_labels_have_single_one_per_row() {
        let ds = generate(&two_block_synthetic(), 9);
        let y = ds.one_hot_labels();
        for r in 0..y.rows() {
            assert!((y.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert_eq!(y[(r, ds.labels[r])], 1.0);
        }
    }

    #[test]
    fn splits_are_disjoint_and_train_covers_each_class() {
        let ds = generate(&cora(), 4);
        ds.splits.assert_valid(ds.n_nodes());
        let mut class_seen = vec![false; ds.n_classes];
        for &v in &ds.splits.train {
            class_seen[ds.labels[v]] = true;
        }
        assert!(
            class_seen.iter().all(|&b| b),
            "every class needs labelled training nodes"
        );
    }
}
