//! Planetoid-style train / validation / test splits.

use rand::Rng;

/// Node-index splits for semi-supervised node classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Splits {
    /// Labelled training nodes `V_l`.
    pub train: Vec<usize>,
    /// Validation nodes.
    pub val: Vec<usize>,
    /// Test nodes.
    pub test: Vec<usize>,
}

impl Splits {
    /// Planetoid-style split: `train_per_class` labelled nodes per class, then
    /// `n_val` validation and `n_test` test nodes drawn from the remainder.
    pub fn planetoid<R: Rng + ?Sized>(
        labels: &[usize],
        n_classes: usize,
        train_per_class: usize,
        n_val: usize,
        n_test: usize,
        rng: &mut R,
    ) -> Self {
        let n = labels.len();
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut per_class_taken = vec![0usize; n_classes];
        let mut train = Vec::with_capacity(n_classes * train_per_class);
        let mut rest = Vec::with_capacity(n);
        for &v in &order {
            let c = labels[v];
            if per_class_taken[c] < train_per_class {
                per_class_taken[c] += 1;
                train.push(v);
            } else {
                rest.push(v);
            }
        }
        let n_val = n_val.min(rest.len());
        let val: Vec<usize> = rest[..n_val].to_vec();
        let n_test = n_test.min(rest.len() - n_val);
        let test: Vec<usize> = rest[n_val..n_val + n_test].to_vec();
        train.sort_unstable();
        Self { train, val, test }
    }

    /// Panics unless the three splits are pairwise disjoint, in range and
    /// non-empty — used by tests and by the experiment harness as a guard.
    pub fn assert_valid(&self, n_nodes: usize) {
        let mut seen = vec![false; n_nodes];
        for (name, split) in [
            ("train", &self.train),
            ("val", &self.val),
            ("test", &self.test),
        ] {
            assert!(!split.is_empty(), "{name} split must not be empty");
            for &v in split {
                assert!(v < n_nodes, "{name} index {v} out of range");
                assert!(!seen[v], "node {v} appears in more than one split");
                seen[v] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planetoid_split_has_requested_sizes() {
        let labels: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let s = Splits::planetoid(&labels, 4, 5, 20, 30, &mut rng);
        assert_eq!(s.train.len(), 20);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 30);
        s.assert_valid(100);
    }

    #[test]
    fn train_split_is_class_balanced() {
        let labels: Vec<usize> = (0..90).map(|i| i % 3).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let s = Splits::planetoid(&labels, 3, 7, 10, 10, &mut rng);
        let mut counts = [0usize; 3];
        for &v in &s.train {
            counts[labels[v]] += 1;
        }
        assert_eq!(counts, [7, 7, 7]);
    }

    #[test]
    fn oversized_requests_are_clamped() {
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let s = Splits::planetoid(&labels, 2, 3, 7, 1000, &mut rng);
        assert_eq!(s.train.len(), 6);
        assert_eq!(s.val.len(), 7);
        assert_eq!(s.test.len(), 7);
        s.assert_valid(20);
    }

    #[test]
    #[should_panic(expected = "more than one split")]
    fn assert_valid_rejects_overlap() {
        let s = Splits {
            train: vec![0, 1],
            val: vec![1],
            test: vec![2],
        };
        s.assert_valid(3);
    }
}
