//! Dataset specifications (presets).
//!
//! Every preset records the statistics the paper's analysis actually depends
//! on: number of classes, homophily, average degree, feature dimensionality
//! and the number of labelled training nodes per class.  Node counts are
//! scaled down relative to the real datasets (Pubmed: 19 717 → 3 000 nodes)
//! so the influence-function experiments finish quickly; the scaling keeps
//! homophily, sparsity and label-rate, which drive all reported trends.

/// Parameters of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Human-readable dataset name ("cora", "citeseer", ...).
    pub name: &'static str,
    /// Number of nodes `|V|` (scaled relative to the real dataset).
    pub n_nodes: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Feature dimensionality (scaled).
    pub feat_dim: usize,
    /// Target average degree.
    pub avg_degree: f64,
    /// Target edge homophily (fraction of intra-class edges).
    pub target_homophily: f64,
    /// Probability that an informative feature bit fires for a node of the
    /// "owning" class; higher values make classification easier.
    pub feature_signal: f64,
    /// Background probability that any feature bit fires.
    pub feature_noise: f64,
    /// Labelled training nodes per class (Planetoid-style split).
    pub train_per_class: usize,
    /// Validation nodes (total).
    pub n_val: usize,
    /// Test nodes (total).
    pub n_test: usize,
    /// Degree-correction exponent: 0 gives a plain SBM, larger values give a
    /// heavier-tailed degree distribution (citation networks are skewed).
    pub degree_skew: f64,
}

/// Cora analogue: 7 classes, homophily ≈ 0.81, avg degree ≈ 4.
pub fn cora() -> DatasetSpec {
    DatasetSpec {
        name: "cora",
        n_nodes: 1400,
        n_classes: 7,
        feat_dim: 140,
        avg_degree: 4.0,
        target_homophily: 0.81,
        feature_signal: 0.25,
        feature_noise: 0.01,
        train_per_class: 20,
        n_val: 300,
        n_test: 500,
        degree_skew: 0.8,
    }
}

/// Citeseer analogue: 6 classes, homophily ≈ 0.74, avg degree ≈ 2.8.
/// The real Citeseer is the hardest of the three citation graphs (the paper
/// reports only ~64 % accuracy), so the feature signal is weaker here.
pub fn citeseer() -> DatasetSpec {
    DatasetSpec {
        name: "citeseer",
        n_nodes: 1200,
        n_classes: 6,
        feat_dim: 160,
        avg_degree: 2.8,
        target_homophily: 0.74,
        feature_signal: 0.12,
        feature_noise: 0.02,
        train_per_class: 20,
        n_val: 300,
        n_test: 400,
        degree_skew: 0.8,
    }
}

/// Pubmed analogue: 3 classes, homophily ≈ 0.80, avg degree ≈ 4.5.
/// Node count scaled from 19 717 to 3 000 (see module docs).
pub fn pubmed() -> DatasetSpec {
    DatasetSpec {
        name: "pubmed",
        n_nodes: 3000,
        n_classes: 3,
        feat_dim: 100,
        avg_degree: 4.5,
        target_homophily: 0.80,
        feature_signal: 0.22,
        feature_noise: 0.015,
        train_per_class: 20,
        n_val: 400,
        n_test: 800,
        degree_skew: 0.9,
    }
}

/// Enzymes analogue (weak homophily ≈ 0.66, 6 classes).
pub fn enzymes() -> DatasetSpec {
    DatasetSpec {
        name: "enzymes",
        n_nodes: 900,
        n_classes: 6,
        feat_dim: 36,
        avg_degree: 7.5,
        target_homophily: 0.66,
        feature_signal: 0.30,
        feature_noise: 0.03,
        train_per_class: 30,
        n_val: 150,
        n_test: 300,
        degree_skew: 0.3,
    }
}

/// Credit analogue (weak homophily ≈ 0.62, binary task, denser graph).
pub fn credit() -> DatasetSpec {
    DatasetSpec {
        name: "credit",
        n_nodes: 1500,
        n_classes: 2,
        feat_dim: 26,
        avg_degree: 9.0,
        target_homophily: 0.62,
        feature_signal: 0.35,
        feature_noise: 0.05,
        train_per_class: 100,
        n_val: 200,
        n_test: 500,
        degree_skew: 0.2,
    }
}

/// Tiny two-class synthetic graph used by the §VI-B2 risk-model analysis and
/// by fast unit/property tests across the workspace.
pub fn two_block_synthetic() -> DatasetSpec {
    DatasetSpec {
        name: "two-block",
        n_nodes: 200,
        n_classes: 2,
        feat_dim: 24,
        avg_degree: 6.0,
        target_homophily: 0.85,
        feature_signal: 0.4,
        feature_noise: 0.02,
        train_per_class: 20,
        n_val: 40,
        n_test: 80,
        degree_skew: 0.0,
    }
}

impl DatasetSpec {
    /// Intra-class (`p`) and inter-class (`q`) linking probabilities implied by
    /// the target average degree and homophily, assuming balanced classes.
    ///
    /// With `c` classes and `n` nodes, a node has `n/c − 1 ≈ n/c` intra-class
    /// and `n (c−1)/c` inter-class partners, so
    /// `avg_degree * homophily = p * n / c` and
    /// `avg_degree * (1 − homophily) = q * n (c−1) / c`.
    pub fn block_probabilities(&self) -> (f64, f64) {
        let n = self.n_nodes as f64;
        let c = self.n_classes as f64;
        let intra_partners = (n / c - 1.0).max(1.0);
        let inter_partners = (n * (c - 1.0) / c).max(1.0);
        let p = (self.avg_degree * self.target_homophily / intra_partners).min(1.0);
        let q = (self.avg_degree * (1.0 - self.target_homophily) / inter_partners).min(1.0);
        (p, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_probabilities_are_homophilous_and_sparse() {
        for spec in [
            cora(),
            citeseer(),
            pubmed(),
            enzymes(),
            credit(),
            two_block_synthetic(),
        ] {
            let (p, q) = spec.block_probabilities();
            assert!(
                p > q,
                "{}: need p > q (homophily), got p={p} q={q}",
                spec.name
            );
            assert!(
                p < 0.2,
                "{}: intra-class probability {p} violates sparsity",
                spec.name
            );
            assert!(q >= 0.0);
        }
    }

    #[test]
    fn expected_degree_matches_target() {
        for spec in [cora(), pubmed(), credit()] {
            let (p, q) = spec.block_probabilities();
            let n = spec.n_nodes as f64;
            let c = spec.n_classes as f64;
            let expected = p * (n / c - 1.0) + q * n * (c - 1.0) / c;
            assert!(
                (expected - spec.avg_degree).abs() / spec.avg_degree < 0.05,
                "{}: expected degree {expected} vs target {}",
                spec.name,
                spec.avg_degree
            );
        }
    }
}
