//! Shadow-dataset generation for supervised link-stealing attacks.
//!
//! A shadow adversary (LSA-style, He et al. / Surma et al.) does not know the
//! target's confidential edges, but does know *public* coarse statistics:
//! roughly how large the graph is, how many classes it has, how dense it is
//! and how homophilous — enough to sample a look-alike graph, train an attack
//! model on it where ground-truth edges are known, and transfer the attack to
//! the target.  This module builds such look-alikes on top of the `O(n · d̄)`
//! [`sparse_sbm`] generator so shadow construction stays affordable even for
//! the 20k-node scaling scenarios.

use crate::sbm::class_features;
use crate::{sparse_sbm, Dataset, Splits};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Feature-bit fire rate the shadow attacker assumes for class-owned bits.
const SHADOW_FEATURE_SIGNAL: f64 = 0.2;
/// Background feature-bit fire rate the shadow attacker assumes.
const SHADOW_FEATURE_NOISE: f64 = 0.02;

/// Builds a full [`Dataset`] (graph + class-conditional binary features +
/// Planetoid split) around the sparse SBM generator.  Unlike
/// [`crate::generate`], which sweeps all `O(n²)` node pairs, this runs in
/// `O(n · d̄)` and therefore scales to tens of thousands of nodes — it backs
/// both the shadow datasets of the supervised attacks and the large-graph
/// scenarios.  Fully deterministic in `seed`.
pub fn sparse_sbm_dataset(
    n_nodes: usize,
    n_classes: usize,
    intra_degree: f64,
    inter_degree: f64,
    feat_dim: usize,
    seed: u64,
) -> Dataset {
    let (graph, labels) = sparse_sbm(n_nodes, n_classes, intra_degree, inter_degree, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x8d5c_31f2_a9b0_6e47);
    let features = class_features(
        &labels,
        n_classes,
        feat_dim,
        SHADOW_FEATURE_SIGNAL,
        SHADOW_FEATURE_NOISE,
        &mut rng,
    );
    // The split is incidental for attack training (the attacker supervises on
    // edges, not labels) but keeps the type a fully usable Dataset.
    let train_per_class = (n_nodes / (4 * n_classes)).clamp(2, 20);
    let n_val = (n_nodes / 10).clamp(4, 200);
    let n_test = (n_nodes / 5).clamp(4, 400);
    let splits = Splits::planetoid(&labels, n_classes, train_per_class, n_val, n_test, &mut rng);
    Dataset {
        name: "shadow-sbm",
        graph,
        features,
        labels,
        splits,
        n_classes,
    }
}

/// Samples a shadow analogue of `target`, mirroring only the statistics a
/// realistic adversary can know: node count, class count, feature
/// dimensionality, and the intra-/inter-class expected degrees measured from
/// the target's (public) coarse structure.  The shadow shares **no** edges or
/// nodes with the target — it is a fresh SBM draw with look-alike moments.
pub fn shadow_of(target: &Dataset, seed: u64) -> Dataset {
    let n = target.n_nodes().max(2);
    let c = target.n_classes.max(1);
    let mut intra_edges = 0usize;
    for (u, v) in target.graph.edges() {
        if target.labels[u] == target.labels[v] {
            intra_edges += 1;
        }
    }
    let inter_edges = target.graph.n_edges() - intra_edges;
    let intra_degree = 2.0 * intra_edges as f64 / n as f64;
    let inter_degree = 2.0 * inter_edges as f64 / n as f64;
    sparse_sbm_dataset(
        n,
        c,
        intra_degree,
        inter_degree,
        target.features.cols().max(1),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::cora;
    use crate::Dataset;
    use ppfr_graph::{homophily, intra_inter_probabilities};

    #[test]
    fn sparse_sbm_dataset_is_complete_and_deterministic() {
        let a = sparse_sbm_dataset(800, 4, 6.0, 2.0, 64, 3);
        let b = sparse_sbm_dataset(800, 4, 6.0, 2.0, 64, 3);
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.features.as_slice(), b.features.as_slice());
        assert_eq!(a.features.shape(), (800, 64));
        a.splits.assert_valid(800);
        assert!(a.features.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn shadow_mirrors_the_target_moments_without_sharing_edges() {
        let target = crate::generate(&cora(), 7);
        let shadow = shadow_of(&target, 11);
        assert_eq!(shadow.n_nodes(), target.n_nodes());
        assert_eq!(shadow.n_classes, target.n_classes);
        assert_eq!(shadow.features.cols(), target.features.cols());
        // Degree within a factor of ~1.5 (duplicate draws collapse).
        let d_target = 2.0 * target.graph.n_edges() as f64 / target.n_nodes() as f64;
        let d_shadow = 2.0 * shadow.graph.n_edges() as f64 / shadow.n_nodes() as f64;
        assert!(
            (d_shadow / d_target - 1.0).abs() < 0.5,
            "shadow degree {d_shadow} far from target {d_target}"
        );
        // Homophily direction preserved: intra dominates inter in both.
        let h = homophily(&shadow.graph, &shadow.labels);
        assert!(h > 0.5, "shadow lost the target's homophily: {h}");
        let (p, q) = intra_inter_probabilities(&shadow.graph, &shadow.labels);
        assert!(p > q);
        // A fresh draw, not a copy: edge sets differ.
        let shared = target
            .graph
            .edges()
            .filter(|&(u, v)| shadow.graph.has_edge(u, v))
            .count();
        assert!(
            shared < target.graph.n_edges() / 2,
            "shadow copied the target's edges"
        );
    }

    #[test]
    fn shadow_of_survives_degenerate_targets() {
        let target = Dataset {
            name: "tiny",
            graph: ppfr_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]),
            features: ppfr_linalg::Matrix::zeros(4, 3),
            labels: vec![0, 0, 1, 1],
            splits: Splits {
                train: vec![0],
                val: vec![1],
                test: vec![2],
            },
            n_classes: 2,
        };
        let shadow = shadow_of(&target, 1);
        assert_eq!(shadow.n_nodes(), 4);
        assert_eq!(shadow.n_classes, 2);
    }
}
