//! Umbrella crate of the PPFR workspace.
//!
//! Re-exports every layer of the reproduction of *"Unraveling Privacy Risks
//! of Individual Fairness in Graph Neural Networks"* (ICDE 2024) so the
//! examples, integration tests and downstream users can depend on a single
//! crate.  See the individual crates for the substance:
//!
//! * [`linalg`] — dense matrices and the shared parallel kernel layer;
//! * [`graph`] — graphs, CSR sparse matrices, Jaccard similarity;
//! * [`nn`] — losses, optimisers, gradient checking;
//! * [`gnn`] — GCN/GAT/GraphSAGE and the training loop;
//! * [`fairness`] — InFoRM bias and fairness metrics;
//! * [`privacy`] — link-stealing attacks and edge-DP mechanisms;
//! * [`influence`] — influence functions (HVP + conjugate gradient);
//! * [`qclp`] — the fairness re-weighting QCLP solver;
//! * [`datasets`] — synthetic stand-ins for the paper's datasets;
//! * [`core`] — the PPFR pipeline, baselines and experiment drivers;
//! * [`runner`] — the multi-seed scenario runner with artifact caching.

#![forbid(unsafe_code)]

pub use ppfr_core as core;
pub use ppfr_datasets as datasets;
pub use ppfr_fairness as fairness;
pub use ppfr_gnn as gnn;
pub use ppfr_graph as graph;
pub use ppfr_influence as influence;
pub use ppfr_linalg as linalg;
pub use ppfr_nn as nn;
pub use ppfr_privacy as privacy;
pub use ppfr_qclp as qclp;
pub use ppfr_runner as runner;
