//! Pins the stochastic LiSSA estimator against the exact dense-CG engine at
//! small `n`: full-batch LiSSA must agree with CG within the documented
//! tolerance (relative ℓ2 error ≤ 5e-2) and preserve the top-k influence
//! ranking, across seeds, damping and depth; mini-batch LiSSA must stay
//! strongly rank-correlated; and the estimator must be bit-identical across
//! forced thread counts.

use ppfr_datasets::{generate, two_block_synthetic};
use ppfr_gnn::{train, AnyModel, GraphContext, ModelKind, TrainConfig};
use ppfr_graph::{jaccard_similarity, similarity_laplacian};
use ppfr_influence::{
    bias_grad_wrt_params, influence_on, lissa_influence_on, pearson, InfluenceConfig, LissaConfig,
};
use proptest::prelude::*;
use std::sync::OnceLock;

struct Setup {
    model: AnyModel,
    ctx: GraphContext,
    labels: Vec<usize>,
    train_ids: Vec<usize>,
    grad_bias: Vec<f64>,
}

/// One trained model shared by every proptest case (training dominates the
/// cost; the estimators are what varies).
fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let ds = generate(&two_block_synthetic(), 7);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let mut model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 6, ds.n_classes, 5);
        let weights = vec![1.0; ds.splits.train.len()];
        let cfg = TrainConfig {
            epochs: 80,
            lr: 0.02,
            weight_decay: 5e-4,
            seed: 1,
        };
        train(
            &mut model,
            &ctx,
            &ds.labels,
            &ds.splits.train,
            &weights,
            None,
            &cfg,
        );
        let l_s = similarity_laplacian(&jaccard_similarity(&ds.graph));
        let grad_bias = bias_grad_wrt_params(&model, &ctx, &l_s);
        Setup {
            model,
            ctx,
            labels: ds.labels,
            train_ids: ds.splits.train,
            grad_bias,
        }
    })
}

fn exact_influences(s: &Setup, damping: f64) -> Vec<f64> {
    let cfg = InfluenceConfig {
        damping,
        cg_iters: 60,
        cg_tol: 1e-10,
        fd_step: 1e-4,
    };
    influence_on(
        &s.model,
        &s.ctx,
        &s.labels,
        &s.train_ids,
        &s.grad_bias,
        &cfg,
    )
}

fn relative_l2_error(got: &[f64], want: &[f64]) -> f64 {
    let num: f64 = got
        .iter()
        .zip(want)
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let den: f64 = want.iter().map(|&b| b * b).sum::<f64>().sqrt();
    num / den.max(1e-12)
}

/// Indices of the `k` largest values, in descending order.
fn top_k(values: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).expect("finite scores"));
    idx.truncate(k);
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn full_batch_lissa_matches_cg_within_tolerance_and_preserves_topk(
        damping in 0.6f64..1.5,
        depth in 150usize..250,
        seed in 0u64..u64::MAX,
    ) {
        let s = setup();
        let exact = exact_influences(s, damping);
        let lissa_cfg = LissaConfig {
            damping,
            fd_step: 1e-4,
            depth,
            scale: 0.0,
            batch: 0,
            samples: 1,
            seed,
        };
        let approx = lissa_influence_on(
            &s.model, &s.ctx, &s.labels, &s.train_ids, &s.grad_bias, &lissa_cfg,
        );
        prop_assert!(approx.iter().all(|v| v.is_finite()), "non-finite LiSSA scores");
        let err = relative_l2_error(&approx, &exact);
        prop_assert!(
            err <= 5e-2,
            "LiSSA deviates from CG beyond the documented tolerance: rel l2 {err} \
             (damping {damping}, depth {depth})"
        );
        // Identical top-k rankings, both for the most bias-increasing and the
        // most bias-decreasing training nodes.
        prop_assert_eq!(top_k(&approx, 3), top_k(&exact, 3), "top-3 ranking diverges");
        let neg_approx: Vec<f64> = approx.iter().map(|v| -v).collect();
        let neg_exact: Vec<f64> = exact.iter().map(|v| -v).collect();
        prop_assert_eq!(
            top_k(&neg_approx, 3),
            top_k(&neg_exact, 3),
            "bottom-3 ranking diverges"
        );
    }
}

#[test]
fn mini_batch_lissa_stays_rank_correlated_with_the_exact_engine() {
    let s = setup();
    let damping = 1.0;
    let exact = exact_influences(s, damping);
    let lissa_cfg = LissaConfig {
        damping,
        fd_step: 1e-4,
        depth: 200,
        scale: 0.0,
        batch: s.train_ids.len().div_ceil(2),
        samples: 4,
        seed: 17,
    };
    let approx = lissa_influence_on(
        &s.model,
        &s.ctx,
        &s.labels,
        &s.train_ids,
        &s.grad_bias,
        &lissa_cfg,
    );
    assert!(approx.iter().all(|v| v.is_finite()));
    let r = pearson(&approx, &exact);
    assert!(
        r > 0.8,
        "mini-batch LiSSA lost the influence signal: pearson {r}"
    );
}

#[test]
fn lissa_is_deterministic_and_bit_identical_across_thread_counts() {
    let s = setup();
    let lissa_cfg = LissaConfig {
        damping: 1.0,
        fd_step: 1e-4,
        depth: 40,
        scale: 0.0,
        batch: 5,
        samples: 2,
        seed: 23,
    };
    let run = || {
        lissa_influence_on(
            &s.model,
            &s.ctx,
            &s.labels,
            &s.train_ids,
            &s.grad_bias,
            &lissa_cfg,
        )
    };
    let baseline = ppfr_linalg::parallel::with_forced_threads(1, run);
    assert_eq!(baseline, run(), "LiSSA must be deterministic run-to-run");
    let parallel = ppfr_linalg::parallel::with_forced_threads(4, run);
    assert_eq!(parallel, baseline, "LiSSA differs at 4 threads");
}
