//! The influence engine: per-node influences on utility, bias and risk.

use crate::{
    bias_grad_wrt_params, conjugate_gradient, hessian_vector_product_with, node_loss_grad,
    risk_grad_wrt_params, training_loss_grad, HvpScratch,
};
use ppfr_gnn::{AnyModel, GraphContext};
use ppfr_graph::SparseMatrix;
use ppfr_linalg::par_rows;
use ppfr_privacy::PairSample;

/// Hyper-parameters of the influence computation.
#[derive(Debug, Clone)]
pub struct InfluenceConfig {
    /// Damping λ added to the Hessian (`H + λI`) to keep CG well-conditioned.
    pub damping: f64,
    /// Maximum conjugate-gradient iterations per solve.
    pub cg_iters: usize,
    /// CG residual tolerance.
    pub cg_tol: f64,
    /// Finite-difference step for Hessian-vector products.
    pub fd_step: f64,
}

impl Default for InfluenceConfig {
    fn default() -> Self {
        Self {
            damping: 0.01,
            cg_iters: 30,
            cg_tol: 1e-6,
            fd_step: 1e-4,
        }
    }
}

/// Influence of every labelled training node on the three interested
/// functions, aligned with `train_ids`.
#[derive(Debug, Clone)]
pub struct InfluenceSet {
    /// `I_futil(w_v)` — effect of leaving node `v` out on the training loss.
    pub util: Vec<f64>,
    /// `I_fbias(w_v)` — effect on the InFoRM bias.
    pub bias: Vec<f64>,
    /// `I_frisk(w_v)` — effect on the edge-privacy risk.
    pub risk: Vec<f64>,
}

/// Influence of each training node on an arbitrary interested function whose
/// parameter gradient is `grad_f`:
/// `I_f(w_v) = −∇_θ f(θ*)ᵀ (H + λI)⁻¹ ∇_θ L(v)`.
///
/// Uses the adjoint trick: one CG solve for `s_f = (H+λI)⁻¹ ∇_θ f`, then a dot
/// product with every per-node loss gradient (computed in parallel).
///
/// The CG solve runs its Hessian-vector products through one persistent
/// [`HvpScratch`], so the per-iteration model clones and gradient buffers of
/// the oracle path are reused instead of reallocated (bit-identical results).
pub fn influence_on(
    model: &AnyModel,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    grad_f: &[f64],
    cfg: &InfluenceConfig,
) -> Vec<f64> {
    let _span = ppfr_telemetry::span!("influence");
    let mut scratch = HvpScratch::new(model);
    let apply = |v: &[f64]| {
        hessian_vector_product_with(
            &mut scratch,
            ctx,
            labels,
            train_ids,
            v,
            cfg.fd_step,
            cfg.damping,
        )
    };
    let s_f = conjugate_gradient(apply, grad_f, cfg.cg_iters, cfg.cg_tol);
    influence_from_s_f(model, ctx, labels, train_ids, &s_f)
}

/// The adjoint-trick tail shared by the exact CG solve ([`influence_on`]) and
/// the stochastic LiSSA estimator ([`crate::lissa_influence_on`]): given the
/// solved adjoint `s_f = (H+λI)⁻¹ ∇_θ f`, returns
/// `I_f(w_v) = −s_f · ∇_θ L(v)` for every training node (computed in
/// parallel, collected in index order).
pub fn influence_from_s_f(
    model: &AnyModel,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    s_f: &[f64],
) -> Vec<f64> {
    par_rows(train_ids.len(), |i| {
        let g_v = node_loss_grad(model, ctx, labels, train_ids[i]);
        -s_f.iter()
            .zip(g_v.iter())
            .map(|(&a, &b)| a * b)
            // lint: allow(par-float-reduction) — row-local dot product, each
            // row independent and collected in index order; pinned by the
            // forced-thread bit-identity test in this module
            .sum::<f64>()
    })
}

/// Computes [`InfluenceSet`] for the model at its current (vanilla-trained)
/// parameters: influences on utility (Eq. 11), bias and risk (Eq. 12).
pub fn compute_influences(
    model: &AnyModel,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    l_s: &SparseMatrix,
    sample: &PairSample,
    cfg: &InfluenceConfig,
) -> InfluenceSet {
    let grad_util = training_loss_grad(model, ctx, labels, train_ids);
    let grad_bias = bias_grad_wrt_params(model, ctx, l_s);
    let grad_risk = risk_grad_wrt_params(model, ctx, sample);
    InfluenceSet {
        util: influence_on(model, ctx, labels, train_ids, &grad_util, cfg),
        bias: influence_on(model, ctx, labels, train_ids, &grad_bias, cfg),
        risk: influence_on(model, ctx, labels, train_ids, &grad_risk, cfg),
    }
}

/// [`compute_influences`] with the stochastic LiSSA estimator in place of the
/// exact CG solve — the degraded rung of the resilience ladder (and the
/// opt-in fast path when `lissa_depth` is configured).  Shares the gradient
/// and adjoint-tail code with the exact path, so only the inverse-Hessian
/// solve differs; callers must flag results as approximate (the runner
/// records a [`ppfr_resilience::DegradationEvent`] per downgrade).
pub fn compute_influences_lissa(
    model: &AnyModel,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    l_s: &SparseMatrix,
    sample: &PairSample,
    cfg: &crate::LissaConfig,
) -> InfluenceSet {
    let grad_util = training_loss_grad(model, ctx, labels, train_ids);
    let grad_bias = bias_grad_wrt_params(model, ctx, l_s);
    let grad_risk = risk_grad_wrt_params(model, ctx, sample);
    InfluenceSet {
        util: crate::lissa_influence_on(model, ctx, labels, train_ids, &grad_util, cfg),
        bias: crate::lissa_influence_on(model, ctx, labels, train_ids, &grad_bias, cfg),
        risk: crate::lissa_influence_on(model, ctx, labels, train_ids, &grad_risk, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_datasets::{generate, two_block_synthetic};
    use ppfr_fairness::bias;
    use ppfr_gnn::{train, GnnModel, ModelKind, TrainConfig};
    use ppfr_graph::{jaccard_similarity, similarity_laplacian};
    use ppfr_linalg::{pearson, row_softmax};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Setup {
        model: AnyModel,
        ctx: GraphContext,
        labels: Vec<usize>,
        train_ids: Vec<usize>,
        l_s: SparseMatrix,
        sample: PairSample,
    }

    fn trained_setup() -> Setup {
        let ds = generate(&two_block_synthetic(), 7);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let mut model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 6, ds.n_classes, 5);
        let weights = vec![1.0; ds.splits.train.len()];
        let cfg = TrainConfig {
            epochs: 80,
            lr: 0.02,
            weight_decay: 5e-4,
            seed: 1,
        };
        train(
            &mut model,
            &ctx,
            &ds.labels,
            &ds.splits.train,
            &weights,
            None,
            &cfg,
        );
        let s = jaccard_similarity(&ds.graph);
        let l_s = similarity_laplacian(&s);
        let mut rng = StdRng::seed_from_u64(2);
        let sample = PairSample::balanced(&ds.graph, &mut rng);
        Setup {
            model,
            ctx,
            labels: ds.labels,
            train_ids: ds.splits.train,
            l_s,
            sample,
        }
    }

    #[test]
    fn influences_are_finite_and_aligned_with_training_nodes() {
        let s = trained_setup();
        let cfg = InfluenceConfig {
            cg_iters: 15,
            ..Default::default()
        };
        let inf = compute_influences(
            &s.model,
            &s.ctx,
            &s.labels,
            &s.train_ids,
            &s.l_s,
            &s.sample,
            &cfg,
        );
        for (name, values) in [
            ("util", &inf.util),
            ("bias", &inf.bias),
            ("risk", &inf.risk),
        ] {
            assert_eq!(values.len(), s.train_ids.len(), "{name} length");
            assert!(
                values.iter().all(|v| v.is_finite()),
                "{name} contains non-finite values"
            );
            assert!(
                values.iter().any(|&v| v != 0.0),
                "{name} is identically zero"
            );
        }
        // Pearson correlation of bias/risk influences must be a valid value in [-1, 1].
        let r = pearson(&inf.bias, &inf.risk);
        assert!((-1.0..=1.0).contains(&r), "correlation out of range: {r}");
    }

    #[test]
    fn influence_on_is_bit_identical_across_thread_counts() {
        let s = trained_setup();
        let cfg = InfluenceConfig {
            cg_iters: 6,
            ..Default::default()
        };
        let grad_bias = bias_grad_wrt_params(&s.model, &s.ctx, &s.l_s);
        let baseline = ppfr_linalg::parallel::with_forced_threads(1, || {
            influence_on(&s.model, &s.ctx, &s.labels, &s.train_ids, &grad_bias, &cfg)
        });
        for threads in [2, 8] {
            let parallel = ppfr_linalg::parallel::with_forced_threads(threads, || {
                influence_on(&s.model, &s.ctx, &s.labels, &s.train_ids, &grad_bias, &cfg)
            });
            assert_eq!(
                parallel, baseline,
                "influence_on differs at {threads} threads"
            );
        }
    }

    #[test]
    fn influence_from_s_f_is_bit_identical_across_thread_counts() {
        let s = trained_setup();
        let s_f: Vec<f64> = (0..s.model.n_params())
            .map(|i| ((i as f64) * 0.13).sin())
            .collect();
        let baseline = ppfr_linalg::parallel::with_forced_threads(1, || {
            influence_from_s_f(&s.model, &s.ctx, &s.labels, &s.train_ids, &s_f)
        });
        for threads in [2, 4] {
            let parallel = ppfr_linalg::parallel::with_forced_threads(threads, || {
                influence_from_s_f(&s.model, &s.ctx, &s.labels, &s.train_ids, &s_f)
            });
            assert_eq!(
                parallel, baseline,
                "influence_from_s_f differs at {threads} threads"
            );
        }
    }

    #[test]
    fn bias_influence_predicts_the_effect_of_leaving_a_node_out() {
        // Retrain without the most bias-increasing node and check that the
        // realised bias change has the sign the influence function predicts.
        // (This is the first-order approximation of Eq. (8); we only check the
        // direction on the extreme node, which is what the QCLP exploits.)
        let s = trained_setup();
        let cfg = InfluenceConfig {
            cg_iters: 20,
            ..Default::default()
        };
        let grad_bias = bias_grad_wrt_params(&s.model, &s.ctx, &s.l_s);
        let inf_bias = influence_on(&s.model, &s.ctx, &s.labels, &s.train_ids, &grad_bias, &cfg);

        // Most harmful node: leaving it out should *reduce* bias the most,
        // i.e. its influence value is the minimum (most negative).
        let (harmful_idx, _) = inf_bias
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let (helpful_idx, _) = inf_bias
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();

        let baseline_bias = {
            let probs = row_softmax(&s.model.forward(&s.ctx));
            bias(&probs, &s.l_s)
        };

        let retrain_without = |skip: usize| -> f64 {
            let kept: Vec<usize> = s
                .train_ids
                .iter()
                .copied()
                .filter(|&v| v != s.train_ids[skip])
                .collect();
            let weights = vec![1.0; kept.len()];
            let mut model = AnyModel::new(ModelKind::Gcn, s.ctx.feat_dim(), 6, 2, 5);
            let cfg = TrainConfig {
                epochs: 80,
                lr: 0.02,
                weight_decay: 5e-4,
                seed: 1,
            };
            train(&mut model, &s.ctx, &s.labels, &kept, &weights, None, &cfg);
            let probs = row_softmax(&model.forward(&s.ctx));
            bias(&probs, &s.l_s)
        };

        let bias_without_harmful = retrain_without(harmful_idx);
        let bias_without_helpful = retrain_without(helpful_idx);
        // Removing the node flagged as most bias-increasing should leave the
        // model at most as biased as removing the node flagged as most
        // bias-decreasing.
        assert!(
            bias_without_harmful <= bias_without_helpful + 0.05 * baseline_bias.abs().max(1e-6),
            "influence ranking inverted: without-harmful {bias_without_harmful} vs without-helpful {bias_without_helpful} (baseline {baseline_bias})"
        );
    }
}
