//! Hessian-vector products and the damped conjugate-gradient solver.

use crate::{training_loss_grad, training_loss_grad_ws};
use ppfr_gnn::{AnyModel, GnnModel, GraphContext, TrainWorkspace};
use ppfr_linalg::par_join;

/// One finite-difference side of a Hessian-vector product: a model clone, a
/// shifted parameter buffer and the training workspace the gradient
/// evaluation runs through.
#[derive(Debug, Clone)]
struct SideScratch {
    model: AnyModel,
    shifted: Vec<f64>,
    ws: TrainWorkspace,
}

/// Persistent scratch state for repeated Hessian-vector products at a fixed
/// base point `θ*`: two model/workspace pairs (one per finite-difference
/// side) reused across every conjugate-gradient iteration, instead of the
/// two model clones and full gradient re-allocation the oracle
/// [`hessian_vector_product`] performs per call.
///
/// The base parameters are captured at construction; rebuild the scratch if
/// the model's parameters change.
#[derive(Debug, Clone)]
pub struct HvpScratch {
    theta: Vec<f64>,
    plus: SideScratch,
    minus: SideScratch,
}

impl HvpScratch {
    /// Captures the model's current parameters as the HVP base point and
    /// clones the model once per finite-difference side.
    pub fn new(model: &AnyModel) -> Self {
        let theta = model.params();
        let side = || SideScratch {
            model: model.clone(),
            shifted: theta.clone(),
            ws: TrainWorkspace::new(),
        };
        Self {
            plus: side(),
            minus: side(),
            theta,
        }
    }

    /// Re-captures the base point from `model`, keeping the training
    /// workspaces warm.  Call this instead of [`HvpScratch::new`] when
    /// reusing a scratch after the model changed — e.g. interleaving
    /// fine-tuning steps with influence estimation.  The side models are
    /// re-cloned wholesale so *all* model state follows, not just the
    /// parameters (a sampling-enabled GraphSAGE carries its current sampled
    /// aggregation operator, which `set_params` alone would leave stale).
    pub fn reset(&mut self, model: &AnyModel) {
        self.theta.clear();
        self.theta.extend(model.params());
        for side in [&mut self.plus, &mut self.minus] {
            side.model = model.clone();
            side.shifted.resize(self.theta.len(), 0.0);
        }
    }
}

/// [`hessian_vector_product`] through a persistent [`HvpScratch`]:
/// bit-identical to the oracle (pinned by this crate's tests) but reuses the
/// scratch models, shifted-parameter buffers and training workspaces across
/// calls, so a conjugate-gradient solve allocates only its result vectors.
pub fn hessian_vector_product_with(
    scratch: &mut HvpScratch,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    v: &[f64],
    fd_step: f64,
    damping: f64,
) -> Vec<f64> {
    let n_train = train_ids.len().max(1) as f64;
    // lint: allow(par-float-reduction) — the `.sum` norm runs serially before
    // par_join; the two gradient sides are independent, pinned bit-identical
    // by this crate's forced-thread tests
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm <= f64::EPSILON {
        return vec![0.0; v.len()];
    }
    let eps = fd_step / norm;
    let HvpScratch { theta, plus, minus } = scratch;

    let grad_side = |side: &mut SideScratch, direction: f64| {
        side.shifted.copy_from_slice(theta);
        for (p, &vi) in side.shifted.iter_mut().zip(v) {
            *p += direction * eps * vi;
        }
        side.model.set_params(&side.shifted);
        training_loss_grad_ws(&side.model, ctx, labels, train_ids, &mut side.ws);
    };
    par_join(|| grad_side(plus, 1.0), || grad_side(minus, -1.0));

    plus.ws
        .grads
        .iter()
        .zip(minus.ws.grads.iter())
        .zip(v.iter())
        .map(|((&gp, &gm), &vi)| (gp - gm) / (2.0 * eps * n_train) + damping * vi)
        .collect()
}

/// Hessian-vector product `(H + damping·I) v` where `H` is the Hessian of the
/// *mean* training loss at the model's current parameters.
///
/// Computed with central finite differences of the analytic gradient:
/// `H v ≈ (∇L(θ + εv) − ∇L(θ − εv)) / 2ε` with `ε` scaled by `1/‖v‖` so the
/// perturbation stays small regardless of the direction's magnitude.
pub fn hessian_vector_product(
    model: &AnyModel,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    v: &[f64],
    fd_step: f64,
    damping: f64,
) -> Vec<f64> {
    let n_train = train_ids.len().max(1) as f64;
    // lint: allow(par-float-reduction) — the `.sum` norm runs serially before
    // par_join; the oracle is pinned against the scratch path by this
    // crate's tests
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm <= f64::EPSILON {
        return vec![0.0; v.len()];
    }
    let eps = fd_step / norm;
    let theta = model.params();

    // The two finite-difference gradient evaluations are independent; run
    // them concurrently via the shared parallel idiom, each on its own model
    // clone.
    let grad_at = |direction: f64| {
        let mut shifted = theta.clone();
        for (p, &vi) in shifted.iter_mut().zip(v) {
            *p += direction * eps * vi;
        }
        let mut work = model.clone();
        work.set_params(&shifted);
        training_loss_grad(&work, ctx, labels, train_ids)
    };
    let (g_plus, g_minus) = par_join(|| grad_at(1.0), || grad_at(-1.0));

    g_plus
        .iter()
        .zip(g_minus.iter())
        .zip(v.iter())
        .map(|((&gp, &gm), &vi)| (gp - gm) / (2.0 * eps * n_train) + damping * vi)
        .collect()
}

/// Solves `A x = b` with conjugate gradient, where `A` is given implicitly by
/// the closure `apply` (assumed symmetric positive definite — guaranteed here
/// by the damping term).  Returns the approximate solution.
pub fn conjugate_gradient(
    mut apply: impl FnMut(&[f64]) -> Vec<f64>,
    b: &[f64],
    max_iters: usize,
    tol: f64,
) -> Vec<f64> {
    static CG_ITERS: ppfr_telemetry::Histogram =
        ppfr_telemetry::Histogram::new("influence.cg_iters");
    let _span = ppfr_telemetry::span!("influence_cg");
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    if rs_old.sqrt() < tol {
        CG_ITERS.record(0);
        return x;
    }
    let mut iters = 0u64;
    for _ in 0..max_iters {
        // Cooperative deadline: an exhausted ambient budget truncates the
        // solve at the current (finite, partially converged) iterate.
        if !ppfr_resilience::checkpoint(1) {
            break;
        }
        iters += 1;
        let ap = apply(&p);
        let p_ap: f64 = p.iter().zip(&ap).map(|(&a, &b)| a * b).sum();
        if p_ap.abs() <= f64::EPSILON {
            break;
        }
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        if rs_new.sqrt() < tol {
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    CG_ITERS.record(iters);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_datasets::{generate, two_block_synthetic};
    use ppfr_gnn::ModelKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn conjugate_gradient_solves_a_small_spd_system() {
        // A = [[4,1],[1,3]], b = [1,2]  →  x = [1/11, 7/11].
        let a = [[4.0, 1.0], [1.0, 3.0]];
        let apply = |v: &[f64]| {
            vec![
                a[0][0] * v[0] + a[0][1] * v[1],
                a[1][0] * v[0] + a[1][1] * v[1],
            ]
        };
        let x = conjugate_gradient(apply, &[1.0, 2.0], 50, 1e-12);
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-9);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn hvp_is_linear_and_symmetric() {
        let ds = generate(&two_block_synthetic(), 11);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 4, ds.n_classes, 2);
        let labels = &ds.labels;
        let train = &ds.splits.train;
        let mut rng = StdRng::seed_from_u64(9);
        let dim = model.n_params();
        let u: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let hvp = |x: &[f64]| hessian_vector_product(&model, &ctx, labels, train, x, 1e-4, 0.0);
        // Symmetry of the Hessian: uᵀ(Hv) == vᵀ(Hu) (up to FD noise).
        let hu = hvp(&u);
        let hv = hvp(&v);
        let left: f64 = u.iter().zip(&hv).map(|(&a, &b)| a * b).sum();
        let right: f64 = v.iter().zip(&hu).map(|(&a, &b)| a * b).sum();
        assert!(
            (left - right).abs() < 1e-3 * left.abs().max(right.abs()).max(1e-3),
            "Hessian symmetry violated: {left} vs {right}"
        );
        // Approximate homogeneity: H(2u) ≈ 2 H(u).
        let two_u: Vec<f64> = u.iter().map(|x| 2.0 * x).collect();
        let h2u = hvp(&two_u);
        for (a, b) in h2u.iter().zip(hu.iter()) {
            assert!(
                (a - 2.0 * b).abs() < 1e-3 * b.abs().max(1e-3),
                "homogeneity violated: {a} vs {}",
                2.0 * b
            );
        }
    }

    #[test]
    fn damping_adds_identity_times_vector() {
        let ds = generate(&two_block_synthetic(), 12);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 4, ds.n_classes, 3);
        let dim = model.n_params();
        let v = vec![1.0; dim];
        let no_damp =
            hessian_vector_product(&model, &ctx, &ds.labels, &ds.splits.train, &v, 1e-4, 0.0);
        let damped =
            hessian_vector_product(&model, &ctx, &ds.labels, &ds.splits.train, &v, 1e-4, 0.5);
        for (a, b) in damped.iter().zip(no_damp.iter()) {
            assert!(
                (a - b - 0.5).abs() < 1e-6,
                "damping must add exactly 0.5·v: {a} vs {b}"
            );
        }
    }

    #[test]
    fn hvp_is_identical_across_thread_counts() {
        let ds = generate(&two_block_synthetic(), 14);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 4, ds.n_classes, 6);
        let mut rng = StdRng::seed_from_u64(15);
        let v: Vec<f64> = (0..model.n_params())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let hvp_at = |threads: usize| {
            ppfr_linalg::parallel::with_forced_threads(threads, || {
                hessian_vector_product(&model, &ctx, &ds.labels, &ds.splits.train, &v, 1e-4, 0.1)
            })
        };
        let single = hvp_at(1);
        for threads in [2, 4] {
            assert_eq!(hvp_at(threads), single, "HVP differs at {threads} threads");
        }
    }

    #[test]
    fn scratch_hvp_is_bit_identical_to_oracle_and_reusable() {
        let ds = generate(&two_block_synthetic(), 14);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        for kind in [ModelKind::Gcn, ModelKind::Gat, ModelKind::GraphSage] {
            let model = AnyModel::new(kind, ctx.feat_dim(), 4, ds.n_classes, 6);
            let mut rng = StdRng::seed_from_u64(21);
            let mut scratch = super::HvpScratch::new(&model);
            // Several successive products through the same scratch (as in a
            // CG solve) must each equal the allocating oracle exactly.
            for round in 0..3 {
                let v: Vec<f64> = (0..model.n_params())
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect();
                let oracle = hessian_vector_product(
                    &model,
                    &ctx,
                    &ds.labels,
                    &ds.splits.train,
                    &v,
                    1e-4,
                    0.1,
                );
                let fast = super::hessian_vector_product_with(
                    &mut scratch,
                    &ctx,
                    &ds.labels,
                    &ds.splits.train,
                    &v,
                    1e-4,
                    0.1,
                );
                assert_eq!(fast, oracle, "round {round} diverges for {:?}", kind);
            }
            // reset() re-captures a changed base point without rebuilding.
            let mut moved = model.clone();
            let bumped: Vec<f64> = model.params().iter().map(|p| p + 0.01).collect();
            moved.set_params(&bumped);
            scratch.reset(&moved);
            let v = vec![0.5; model.n_params()];
            let oracle =
                hessian_vector_product(&moved, &ctx, &ds.labels, &ds.splits.train, &v, 1e-4, 0.1);
            let fast = super::hessian_vector_product_with(
                &mut scratch,
                &ctx,
                &ds.labels,
                &ds.splits.train,
                &v,
                1e-4,
                0.1,
            );
            assert_eq!(fast, oracle, "post-reset HVP diverges for {:?}", kind);
        }
    }

    #[test]
    fn reset_carries_non_parameter_state_of_a_sampling_graphsage() {
        use ppfr_gnn::GraphSage;
        let ds = generate(&two_block_synthetic(), 14);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = AnyModel::GraphSage(
            GraphSage::new(ctx.feat_dim(), 4, ds.n_classes, &mut rng).with_sampling(2),
        );
        model.resample(&ctx, 40);
        let mut scratch = super::HvpScratch::new(&model);
        // Change *non-parameter* state (the sampled aggregation operator):
        // reset() must pick it up, not just the parameter vector.
        model.resample(&ctx, 41);
        scratch.reset(&model);
        let v = vec![0.3; model.n_params()];
        let oracle =
            hessian_vector_product(&model, &ctx, &ds.labels, &ds.splits.train, &v, 1e-4, 0.1);
        let fast = super::hessian_vector_product_with(
            &mut scratch,
            &ctx,
            &ds.labels,
            &ds.splits.train,
            &v,
            1e-4,
            0.1,
        );
        assert_eq!(fast, oracle, "reset missed the resampled aggregator");
    }

    #[test]
    fn scratch_hvp_is_identical_across_thread_counts() {
        let ds = generate(&two_block_synthetic(), 14);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 4, ds.n_classes, 6);
        let mut rng = StdRng::seed_from_u64(15);
        let v: Vec<f64> = (0..model.n_params())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let hvp_at = |threads: usize| {
            ppfr_linalg::parallel::with_forced_threads(threads, || {
                let mut scratch = super::HvpScratch::new(&model);
                super::hessian_vector_product_with(
                    &mut scratch,
                    &ctx,
                    &ds.labels,
                    &ds.splits.train,
                    &v,
                    1e-4,
                    0.1,
                )
            })
        };
        let single = hvp_at(1);
        for threads in [2, 4] {
            assert_eq!(hvp_at(threads), single, "differs at {threads} threads");
        }
    }

    #[test]
    fn zero_vector_maps_to_zero() {
        let ds = generate(&two_block_synthetic(), 13);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 4, ds.n_classes, 4);
        let v = vec![0.0; model.n_params()];
        let out = hessian_vector_product(&model, &ctx, &ds.labels, &ds.splits.train, &v, 1e-4, 1.0);
        assert!(out.iter().all(|&x| x == 0.0));
    }
}
