//! Hessian-vector products and the damped conjugate-gradient solver.

use crate::training_loss_grad;
use ppfr_gnn::{AnyModel, GnnModel, GraphContext};
use ppfr_linalg::par_join;

/// Hessian-vector product `(H + damping·I) v` where `H` is the Hessian of the
/// *mean* training loss at the model's current parameters.
///
/// Computed with central finite differences of the analytic gradient:
/// `H v ≈ (∇L(θ + εv) − ∇L(θ − εv)) / 2ε` with `ε` scaled by `1/‖v‖` so the
/// perturbation stays small regardless of the direction's magnitude.
pub fn hessian_vector_product(
    model: &AnyModel,
    ctx: &GraphContext,
    labels: &[usize],
    train_ids: &[usize],
    v: &[f64],
    fd_step: f64,
    damping: f64,
) -> Vec<f64> {
    let n_train = train_ids.len().max(1) as f64;
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm <= f64::EPSILON {
        return vec![0.0; v.len()];
    }
    let eps = fd_step / norm;
    let theta = model.params();

    // The two finite-difference gradient evaluations are independent; run
    // them concurrently via the shared parallel idiom, each on its own model
    // clone.
    let grad_at = |direction: f64| {
        let mut shifted = theta.clone();
        for (p, &vi) in shifted.iter_mut().zip(v) {
            *p += direction * eps * vi;
        }
        let mut work = model.clone();
        work.set_params(&shifted);
        training_loss_grad(&work, ctx, labels, train_ids)
    };
    let (g_plus, g_minus) = par_join(|| grad_at(1.0), || grad_at(-1.0));

    g_plus
        .iter()
        .zip(g_minus.iter())
        .zip(v.iter())
        .map(|((&gp, &gm), &vi)| (gp - gm) / (2.0 * eps * n_train) + damping * vi)
        .collect()
}

/// Solves `A x = b` with conjugate gradient, where `A` is given implicitly by
/// the closure `apply` (assumed symmetric positive definite — guaranteed here
/// by the damping term).  Returns the approximate solution.
pub fn conjugate_gradient(
    apply: impl Fn(&[f64]) -> Vec<f64>,
    b: &[f64],
    max_iters: usize,
    tol: f64,
) -> Vec<f64> {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    if rs_old.sqrt() < tol {
        return x;
    }
    for _ in 0..max_iters {
        let ap = apply(&p);
        let p_ap: f64 = p.iter().zip(&ap).map(|(&a, &b)| a * b).sum();
        if p_ap.abs() <= f64::EPSILON {
            break;
        }
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        if rs_new.sqrt() < tol {
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_datasets::{generate, two_block_synthetic};
    use ppfr_gnn::ModelKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn conjugate_gradient_solves_a_small_spd_system() {
        // A = [[4,1],[1,3]], b = [1,2]  →  x = [1/11, 7/11].
        let a = [[4.0, 1.0], [1.0, 3.0]];
        let apply = |v: &[f64]| {
            vec![
                a[0][0] * v[0] + a[0][1] * v[1],
                a[1][0] * v[0] + a[1][1] * v[1],
            ]
        };
        let x = conjugate_gradient(apply, &[1.0, 2.0], 50, 1e-12);
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-9);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn hvp_is_linear_and_symmetric() {
        let ds = generate(&two_block_synthetic(), 11);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 4, ds.n_classes, 2);
        let labels = &ds.labels;
        let train = &ds.splits.train;
        let mut rng = StdRng::seed_from_u64(9);
        let dim = model.n_params();
        let u: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let hvp = |x: &[f64]| hessian_vector_product(&model, &ctx, labels, train, x, 1e-4, 0.0);
        // Symmetry of the Hessian: uᵀ(Hv) == vᵀ(Hu) (up to FD noise).
        let hu = hvp(&u);
        let hv = hvp(&v);
        let left: f64 = u.iter().zip(&hv).map(|(&a, &b)| a * b).sum();
        let right: f64 = v.iter().zip(&hu).map(|(&a, &b)| a * b).sum();
        assert!(
            (left - right).abs() < 1e-3 * left.abs().max(right.abs()).max(1e-3),
            "Hessian symmetry violated: {left} vs {right}"
        );
        // Approximate homogeneity: H(2u) ≈ 2 H(u).
        let two_u: Vec<f64> = u.iter().map(|x| 2.0 * x).collect();
        let h2u = hvp(&two_u);
        for (a, b) in h2u.iter().zip(hu.iter()) {
            assert!(
                (a - 2.0 * b).abs() < 1e-3 * b.abs().max(1e-3),
                "homogeneity violated: {a} vs {}",
                2.0 * b
            );
        }
    }

    #[test]
    fn damping_adds_identity_times_vector() {
        let ds = generate(&two_block_synthetic(), 12);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 4, ds.n_classes, 3);
        let dim = model.n_params();
        let v = vec![1.0; dim];
        let no_damp =
            hessian_vector_product(&model, &ctx, &ds.labels, &ds.splits.train, &v, 1e-4, 0.0);
        let damped =
            hessian_vector_product(&model, &ctx, &ds.labels, &ds.splits.train, &v, 1e-4, 0.5);
        for (a, b) in damped.iter().zip(no_damp.iter()) {
            assert!(
                (a - b - 0.5).abs() < 1e-6,
                "damping must add exactly 0.5·v: {a} vs {b}"
            );
        }
    }

    #[test]
    fn hvp_is_identical_across_thread_counts() {
        let ds = generate(&two_block_synthetic(), 14);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 4, ds.n_classes, 6);
        let mut rng = StdRng::seed_from_u64(15);
        let v: Vec<f64> = (0..model.n_params())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let hvp_at = |threads: usize| {
            ppfr_linalg::parallel::with_forced_threads(threads, || {
                hessian_vector_product(&model, &ctx, &ds.labels, &ds.splits.train, &v, 1e-4, 0.1)
            })
        };
        let single = hvp_at(1);
        for threads in [2, 4] {
            assert_eq!(hvp_at(threads), single, "HVP differs at {threads} threads");
        }
    }

    #[test]
    fn zero_vector_maps_to_zero() {
        let ds = generate(&two_block_synthetic(), 13);
        let ctx = GraphContext::new(ds.graph.clone(), ds.features.clone());
        let model = AnyModel::new(ModelKind::Gcn, ctx.feat_dim(), 4, ds.n_classes, 4);
        let v = vec![0.0; model.n_params()];
        let out = hessian_vector_product(&model, &ctx, &ds.labels, &ds.splits.train, &v, 1e-4, 1.0);
        assert!(out.iter().all(|&x| x == 0.0));
    }
}
