//! Differentiable instantiation of the privacy-risk function `f_risk(θ)`.
//!
//! For influence estimation the paper instantiates
//! `f_risk(θ) = 2‖d̄₀ − d̄₁‖ / (var(d₀) + var(d₁))` (§VI-B1).  To make the
//! gradient tractable the pair distance is the squared euclidean distance in
//! prediction space, which is smooth in the probabilities.  This module
//! provides the score and its analytic gradient w.r.t. the probability matrix
//! (verified against finite differences in tests).

use ppfr_linalg::{mean, variance, Matrix};
use ppfr_privacy::PairSample;

fn sq_distance(probs: &Matrix, u: usize, v: usize) -> f64 {
    let mut d = 0.0;
    for c in 0..probs.cols() {
        let diff = probs[(u, c)] - probs[(v, c)];
        d += diff * diff;
    }
    d
}

/// The normalised risk score with squared-euclidean pair distances.
pub fn sq_risk_score(probs: &Matrix, sample: &PairSample) -> f64 {
    let d1: Vec<f64> = sample
        .positives
        .iter()
        .map(|&(u, v)| sq_distance(probs, u, v))
        .collect();
    let d0: Vec<f64> = sample
        .negatives
        .iter()
        .map(|&(u, v)| sq_distance(probs, u, v))
        .collect();
    let gap = (mean(&d0) - mean(&d1)).abs();
    let denom = (variance(&d0) + variance(&d1)).max(1e-9);
    2.0 * gap / denom
}

/// Analytic gradient of [`sq_risk_score`] w.r.t. the probabilities.
pub fn sq_risk_gradient_wrt_probs(probs: &Matrix, sample: &PairSample) -> Matrix {
    let d1: Vec<f64> = sample
        .positives
        .iter()
        .map(|&(u, v)| sq_distance(probs, u, v))
        .collect();
    let d0: Vec<f64> = sample
        .negatives
        .iter()
        .map(|&(u, v)| sq_distance(probs, u, v))
        .collect();
    let m1 = d1.len().max(1) as f64;
    let m0 = d0.len().max(1) as f64;
    let mean1 = mean(&d1);
    let mean0 = mean(&d0);
    let var_sum = (variance(&d0) + variance(&d1)).max(1e-9);
    let gap = mean0 - mean1;
    let sign = if gap >= 0.0 { 1.0 } else { -1.0 };
    let abs_gap = gap.abs();

    // ∂f/∂d_i for a connected pair i (contributes to d1):
    //   f = 2|D0 − D1| / V,    V = var(d0) + var(d1)
    //   ∂|D0 − D1|/∂d_i = −sign / m1
    //   ∂V/∂d_i        = 2 (d_i − D1) / m1
    let df_dd1 = |d_i: f64| -> f64 {
        (2.0 / var_sum) * (-sign / m1)
            - (2.0 * abs_gap / (var_sum * var_sum)) * (2.0 * (d_i - mean1) / m1)
    };
    let df_dd0 = |d_i: f64| -> f64 {
        (2.0 / var_sum) * (sign / m0)
            - (2.0 * abs_gap / (var_sum * var_sum)) * (2.0 * (d_i - mean0) / m0)
    };

    let mut grad = Matrix::zeros(probs.rows(), probs.cols());
    let mut accumulate = |pairs: &[(usize, usize)], dists: &[f64], df: &dyn Fn(f64) -> f64| {
        for (&(u, v), &d_i) in pairs.iter().zip(dists.iter()) {
            let coeff = df(d_i);
            for c in 0..probs.cols() {
                let diff = probs[(u, c)] - probs[(v, c)];
                grad[(u, c)] += coeff * 2.0 * diff;
                grad[(v, c)] -= coeff * 2.0 * diff;
            }
        }
    };
    accumulate(&sample.positives, &d1, &df_dd1);
    accumulate(&sample.negatives, &d0, &df_dd0);
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppfr_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Matrix, PairSample) {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let mut rng = StdRng::seed_from_u64(17);
        let sample = PairSample::balanced(&g, &mut rng);
        let probs = Matrix::from_rows(&[
            vec![0.85, 0.15],
            vec![0.80, 0.20],
            vec![0.75, 0.25],
            vec![0.20, 0.80],
            vec![0.25, 0.75],
            vec![0.30, 0.70],
        ]);
        (probs, sample)
    }

    #[test]
    fn score_is_positive_for_separated_communities() {
        let (probs, sample) = setup();
        assert!(sq_risk_score(&probs, &sample) > 0.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let (probs, sample) = setup();
        let grad = sq_risk_gradient_wrt_probs(&probs, &sample);
        let h = 1e-6;
        for r in 0..probs.rows() {
            for c in 0..probs.cols() {
                let mut plus = probs.clone();
                plus[(r, c)] += h;
                let mut minus = probs.clone();
                minus[(r, c)] -= h;
                let numeric =
                    (sq_risk_score(&plus, &sample) - sq_risk_score(&minus, &sample)) / (2.0 * h);
                assert!(
                    (numeric - grad[(r, c)]).abs() < 1e-4 * numeric.abs().max(1.0),
                    "({r},{c}): numeric {numeric} vs analytic {}",
                    grad[(r, c)]
                );
            }
        }
    }

    #[test]
    fn identical_predictions_give_zero_score() {
        let (_, sample) = setup();
        let probs = Matrix::filled(6, 2, 0.5);
        assert!(sq_risk_score(&probs, &sample).abs() < 1e-9);
    }
}
